#include "einsum/parser.hpp"

#include <algorithm>
#include <cctype>

#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::einsum
{

namespace
{

/** Parse "q+s", "k", "q+1", "0" into an IndexExpr. */
IndexExpr
parseIndexExpr(const std::string& text, const std::string& context)
{
    IndexExpr expr;
    // Split on +/- keeping signs; only + between vars is meaningful,
    // constants may be signed.
    std::string t = trim(text);
    if (t.empty())
        specError("empty index expression in ", context);
    std::size_t i = 0;
    int sign = 1;
    while (i < t.size()) {
        if (t[i] == '+') {
            sign = 1;
            ++i;
            continue;
        }
        if (t[i] == '-') {
            sign = -1;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(t[i]))) {
            ++i;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(t[i]))) {
            std::size_t j = i;
            while (j < t.size() &&
                   std::isdigit(static_cast<unsigned char>(t[j]))) {
                ++j;
            }
            expr.offset += sign * parseLong(t.substr(i, j - i), context);
            i = j;
        } else if (std::isalpha(static_cast<unsigned char>(t[i]))) {
            if (sign < 0)
                specError("negative index variable in ", context, ": '",
                          text, "'");
            std::size_t j = i;
            while (j < t.size() &&
                   (std::isalnum(static_cast<unsigned char>(t[j])) ||
                    t[j] == '_')) {
                ++j;
            }
            expr.vars.push_back(t.substr(i, j - i));
            i = j;
        } else {
            specError("bad character '", t[i], "' in index expression '",
                      text, "' (", context, ")");
        }
        sign = 1;
    }
    return expr;
}

/** Parse "A[k, m]" or bare "P0" into a TensorRef. */
TensorRef
parseTensorRef(const std::string& text, const std::string& context)
{
    TensorRef ref;
    const std::string t = trim(text);
    const std::size_t lb = t.find('[');
    if (lb == std::string::npos) {
        ref.name = t;
        if (ref.name.empty())
            specError("empty tensor reference in ", context);
        return ref;
    }
    if (t.back() != ']')
        specError("unterminated index list in '", text, "' (", context,
                  ")");
    ref.name = trim(t.substr(0, lb));
    const std::string inner = trim(t.substr(lb + 1, t.size() - lb - 2));
    if (!inner.empty()) {
        for (const std::string& field : splitTopLevel(inner, ','))
            ref.indices.push_back(parseIndexExpr(field, context));
    }
    if (ref.name.empty())
        specError("tensor reference missing name in ", context);
    return ref;
}

/** Validate a tensor name: identifier starting with a letter. */
void
checkName(const std::string& name, const std::string& context)
{
    if (name.empty() ||
        !std::isalpha(static_cast<unsigned char>(name[0])))
        specError("bad tensor name '", name, "' in ", context);
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            specError("bad tensor name '", name, "' in ", context);
    }
}

} // namespace

Expression
parseExpression(const std::string& text)
{
    Expression expr;
    expr.text = trim(text);

    const std::size_t eq = expr.text.find('=');
    if (eq == std::string::npos)
        specError("einsum '", text, "' has no '='");
    const std::string lhs = trim(expr.text.substr(0, eq));
    const std::string rhs = trim(expr.text.substr(eq + 1));
    if (rhs.empty())
        specError("einsum '", text, "' has empty right-hand side");

    expr.output = parseTensorRef(lhs, "einsum '" + text + "'");
    checkName(expr.output.name, "einsum '" + text + "'");
    for (const IndexExpr& ie : expr.output.indices) {
        if (!ie.isSimpleVar())
            specError("einsum '", text,
                      "': output indices must be simple variables");
    }

    // take(a, b, i)?
    if (startsWith(rhs, "take(") || startsWith(rhs, "take (")) {
        const std::size_t open = rhs.find('(');
        if (rhs.back() != ')')
            specError("einsum '", text, "': unterminated take()");
        const std::string inner =
            rhs.substr(open + 1, rhs.size() - open - 2);
        const auto args = splitTopLevel(inner, ',');
        if (args.size() != 3)
            specError("einsum '", text, "': take() needs 3 arguments");
        expr.kind = OpKind::Take;
        expr.inputs.push_back(parseTensorRef(args[0], text));
        expr.inputs.push_back(parseTensorRef(args[1], text));
        expr.takeArg = static_cast<int>(parseLong(args[2], text));
        if (expr.takeArg != 0 && expr.takeArg != 1)
            specError("einsum '", text, "': take() arg must be 0 or 1");
        return expr;
    }

    // Split additive terms at top level (keeping signs).
    std::vector<std::pair<int, std::string>> terms;
    {
        int depth = 0;
        int sign = 1;
        std::string current;
        for (char c : rhs) {
            if (c == '(' || c == '[')
                ++depth;
            else if (c == ')' || c == ']')
                --depth;
            if ((c == '+' || c == '-') && depth == 0 &&
                !trim(current).empty()) {
                terms.emplace_back(sign, trim(current));
                sign = c == '-' ? -1 : 1;
                current.clear();
            } else {
                current.push_back(c);
            }
        }
        if (!trim(current).empty())
            terms.emplace_back(sign, trim(current));
    }
    TEAAL_ASSERT(!terms.empty(), "no terms parsed from '", text, "'");

    if (terms.size() > 1) {
        // Sum/difference of plain references.
        expr.kind = OpKind::Add;
        for (const auto& [sign, term] : terms) {
            if (term.find('*') != std::string::npos)
                specError("einsum '", text,
                          "': mixing + and * is not supported");
            expr.inputs.push_back(parseTensorRef(term, text));
            expr.signs.push_back(sign);
        }
        return expr;
    }

    // Single term: product or plain copy/reduction.
    const auto factors = splitTopLevel(terms[0].second, '*');
    if (factors.size() == 1) {
        expr.kind = OpKind::Assign;
        expr.inputs.push_back(parseTensorRef(factors[0], text));
        return expr;
    }
    expr.kind = OpKind::Multiply;
    for (const std::string& f : factors)
        expr.inputs.push_back(parseTensorRef(f, text));
    return expr;
}

EinsumSpec
EinsumSpec::parse(const yaml::Node& node)
{
    EinsumSpec spec;
    const yaml::Node& decl = node.at("declaration");
    for (const auto& [tensor, ranks] : decl.mapping()) {
        checkName(tensor, "declaration");
        spec.declaration[tensor] = ranks.scalarList();
    }
    for (const yaml::Node& e : node.at("expressions").sequence())
        spec.expressions.push_back(parseExpression(e.scalar()));
    spec.validate();
    return spec;
}

std::vector<std::string>
EinsumSpec::producedTensors() const
{
    std::vector<std::string> out;
    for (const Expression& e : expressions)
        out.push_back(e.output.name);
    return out;
}

std::vector<std::string>
EinsumSpec::inputTensors() const
{
    const auto produced = producedTensors();
    std::vector<std::string> inputs;
    for (const Expression& e : expressions) {
        for (const TensorRef& in : e.inputs) {
            const bool is_produced =
                std::find(produced.begin(), produced.end(), in.name) !=
                produced.end();
            const bool seen =
                std::find(inputs.begin(), inputs.end(), in.name) !=
                inputs.end();
            if (!is_produced && !seen)
                inputs.push_back(in.name);
        }
    }
    return inputs;
}

const std::string&
EinsumSpec::resultTensor() const
{
    if (expressions.empty())
        specError("empty einsum cascade");
    return expressions.back().output.name;
}

void
EinsumSpec::validate() const
{
    if (expressions.empty())
        specError("einsum spec has no expressions");
    for (const Expression& e : expressions) {
        auto check_ref = [&](const TensorRef& ref) {
            const auto it = declaration.find(ref.name);
            if (it == declaration.end())
                diagError("einsum", ref.name, "einsum '", e.text,
                          "': tensor '", ref.name, "' is not declared");
            // Whole-tensor references (P1 = P0) skip arity checking.
            if (!ref.indices.empty() &&
                ref.indices.size() != it->second.size()) {
                diagError("einsum", ref.name, "einsum '", e.text,
                          "': tensor '", ref.name, "' used with ",
                          ref.indices.size(),
                          " indices but declared with ",
                          it->second.size(), " ranks");
            }
        };
        check_ref(e.output);
        for (const TensorRef& in : e.inputs)
            check_ref(in);
        // Each simple index of the output must appear in some input
        // (otherwise its extent would be unconstrained) unless the
        // output is dense over that rank -- permitted, the executor
        // iterates the declared shape.
    }
    // Each tensor may be produced at most once except accumulator
    // updates (GraphDynS writes P0 again); allow re-production but
    // require it to be declared.
    for (const Expression& e : expressions) {
        for (const TensorRef& in : e.inputs) {
            if (in.name == e.output.name)
                specError("einsum '", e.text,
                          "': tensor cannot appear on both sides");
        }
    }
}

int
EinsumSpec::producerOf(const std::string& tensor) const
{
    // The *last* producer wins: re-assignments (P0 updated late in the
    // GraphDynS cascade) shadow earlier ones for later consumers.
    int producer = -1;
    for (std::size_t i = 0; i < expressions.size(); ++i) {
        if (expressions[i].output.name == tensor)
            producer = static_cast<int>(i);
    }
    return producer;
}

std::vector<int>
EinsumSpec::consumersOf(const std::string& tensor) const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < expressions.size(); ++i) {
        for (const TensorRef& in : expressions[i].inputs) {
            if (in.name == tensor) {
                out.push_back(static_cast<int>(i));
                break;
            }
        }
    }
    return out;
}

} // namespace teaal::einsum
