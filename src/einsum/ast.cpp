#include "einsum/ast.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.hpp"

namespace teaal::einsum
{

std::string
IndexExpr::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < vars.size(); ++i)
        oss << (i ? "+" : "") << vars[i];
    if (offset != 0 || vars.empty()) {
        if (!vars.empty())
            oss << (offset >= 0 ? "+" : "");
        oss << offset;
    }
    return oss.str();
}

std::string
TensorRef::toString() const
{
    std::ostringstream oss;
    oss << name;
    if (!indices.empty()) {
        oss << "[";
        for (std::size_t i = 0; i < indices.size(); ++i)
            oss << (i ? "," : "") << indices[i].toString();
        oss << "]";
    }
    return oss.str();
}

std::vector<std::string>
TensorRef::varNames() const
{
    std::vector<std::string> out;
    for (const IndexExpr& ie : indices) {
        for (const std::string& v : ie.vars) {
            if (std::find(out.begin(), out.end(), v) == out.end())
                out.push_back(v);
        }
    }
    return out;
}

std::vector<std::string>
Expression::outputVars() const
{
    return output.varNames();
}

std::vector<std::string>
Expression::iterationVars() const
{
    std::vector<std::string> vars = outputVars();
    for (const TensorRef& in : inputs) {
        for (const std::string& v : in.varNames()) {
            if (std::find(vars.begin(), vars.end(), v) == vars.end())
                vars.push_back(v);
        }
    }
    return vars;
}

std::vector<std::string>
Expression::reductionVars() const
{
    const auto out_vars = outputVars();
    std::vector<std::string> red;
    for (const std::string& v : iterationVars()) {
        if (std::find(out_vars.begin(), out_vars.end(), v) ==
            out_vars.end()) {
            red.push_back(v);
        }
    }
    return red;
}

std::string
Expression::toString() const
{
    std::ostringstream oss;
    oss << output.toString() << " = ";
    switch (kind) {
      case OpKind::Take:
        oss << "take(" << inputs[0].toString() << ", "
            << inputs[1].toString() << ", " << takeArg << ")";
        break;
      case OpKind::Multiply:
        for (std::size_t i = 0; i < inputs.size(); ++i)
            oss << (i ? " * " : "") << inputs[i].toString();
        break;
      case OpKind::Add:
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            if (i)
                oss << (signs[i] < 0 ? " - " : " + ");
            oss << inputs[i].toString();
        }
        break;
      case OpKind::Assign:
        oss << inputs[0].toString();
        break;
    }
    return oss.str();
}

std::string
rankOfVar(const std::string& var)
{
    std::string out = var;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::toupper(c));
                   });
    return out;
}

std::string
varOfRank(const std::string& rank)
{
    std::string out = rank;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

} // namespace teaal::einsum
