/**
 * @file
 * Text parser for extended-Einsum expressions and the `einsum:`
 * section of a TeAAL specification (declaration + expressions).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "einsum/ast.hpp"
#include "yaml/yaml.hpp"

namespace teaal::einsum
{

/** Parse one expression, e.g. "Z[m, n] = A[k, m] * B[k, n]". */
Expression parseExpression(const std::string& text);

/** The `einsum:` section: declarations plus the expression cascade. */
struct EinsumSpec
{
    /// Tensor name -> declared ranks (alphabetical per the paper).
    std::map<std::string, std::vector<std::string>> declaration;

    /// The cascade, in program order.
    std::vector<Expression> expressions;

    /** Parse from the `einsum:` YAML node. */
    static EinsumSpec parse(const yaml::Node& node);

    /** Tensors produced by some expression, in production order. */
    std::vector<std::string> producedTensors() const;

    /** Tensors never produced (external inputs). */
    std::vector<std::string> inputTensors() const;

    /** The final expression's output (the kernel result). */
    const std::string& resultTensor() const;

    /**
     * Validate arity and rank-name consistency against declarations;
     * throws SpecError with context on any mismatch.
     */
    void validate() const;

    /**
     * Producer index of @p tensor (position in `expressions`), or -1
     * for external inputs.
     */
    int producerOf(const std::string& tensor) const;

    /** Consumer expression indices of @p tensor. */
    std::vector<int> consumersOf(const std::string& tensor) const;
};

} // namespace teaal::einsum
