/**
 * @file
 * Extended-Einsum AST (paper §2.2, §3.1).
 *
 * An Einsum defines (1) the tensors and their ranks, (2) an iteration
 * space (the Cartesian product of all legal index-variable values),
 * and (3) the computation at each point. Supported expression shapes
 * cover everything in the paper (Figures 3, 8, 12 and Table 2):
 *
 *   - products:      Z[m,n] = A[k,m] * B[k,n]      (2..N operands)
 *   - reduction/copy: Z[m,n] = T[k,m,n]
 *   - sums:          P1[v] = R[v] + P0[v], M[v] = NP[v] - MP[v]
 *   - take:          T[k,m,n] = take(A[k,m], B[k,n], 1)
 *   - affine indices: O[q] = I[q+s] * F[s]  (Toeplitz/conv)
 *   - constant indices: E0[k0] = P[0,k0,n1,0] * X[n1,0]  (FFT step)
 *   - whole-tensor copy: P1 = P0
 */
#pragma once

#include <string>
#include <vector>

#include "fibertree/types.hpp"

namespace teaal::einsum
{

/**
 * An index expression in one tensor slot: a sum of index variables
 * plus a constant offset. `q+s` has vars {q, s}; a bare constant has
 * no vars.
 */
struct IndexExpr
{
    std::vector<std::string> vars;
    ft::Coord offset = 0;

    /** True for a single variable with no offset. */
    bool
    isSimpleVar() const
    {
        return vars.size() == 1 && offset == 0;
    }

    /** True for a constant (no variables). */
    bool isConstant() const { return vars.empty(); }

    /** Canonical text, e.g. "q+s" or "q+1" or "0". */
    std::string toString() const;

    bool
    operator==(const IndexExpr& o) const
    {
        return vars == o.vars && offset == o.offset;
    }
};

/** A tensor reference with per-slot index expressions: A[k, m]. */
struct TensorRef
{
    std::string name;
    std::vector<IndexExpr> indices;

    std::string toString() const;

    /** All index variables appearing in this reference. */
    std::vector<std::string> varNames() const;
};

/** The combining operation of one Einsum. */
enum class OpKind
{
    Multiply, ///< product of operands, reduced with +
    Add,      ///< sum of operands (signs per operand)
    Assign,   ///< single operand copy / reduction
    Take      ///< take(a, b, which): intersect, copy one side
};

/** One Einsum in a cascade. */
struct Expression
{
    TensorRef output;
    OpKind kind = OpKind::Assign;
    std::vector<TensorRef> inputs;

    /// Signs for OpKind::Add operands (+1 / -1), parallel to inputs.
    std::vector<int> signs;

    /// For OpKind::Take: which input is copied to the output (0 or 1).
    int takeArg = -1;

    /// The original source text (for diagnostics and Table 2 printing).
    std::string text;

    /**
     * Index variables of the iteration space: output variables first
     * (in output order), then reduction variables in first-appearance
     * order.
     */
    std::vector<std::string> iterationVars() const;

    /** Variables appearing in the output. */
    std::vector<std::string> outputVars() const;

    /** Iteration variables not appearing in the output (reduced). */
    std::vector<std::string> reductionVars() const;

    std::string toString() const;
};

/**
 * The rank name an index variable iterates: upper-cased variable name
 * (paper convention: `A: [K, M]` is indexed as `A[k, m]`).
 */
std::string rankOfVar(const std::string& var);

/** Inverse of rankOfVar. */
std::string varOfRank(const std::string& rank);

} // namespace teaal::einsum
