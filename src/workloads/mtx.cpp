#include "workloads/mtx.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/string_utils.hpp"

namespace teaal::workloads
{

namespace
{

/** One parsed coordinate stream: sorted row-major (r, c, v) triples. */
struct MtxCoo
{
    long rows = 0;
    long cols = 0;
    std::vector<std::pair<std::pair<ft::Coord, ft::Coord>, double>> coo;
};

/** Whitespace-split @p s (already trimmed). */
std::vector<std::string>
splitFields(const std::string& s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

/** Strict integer field: the whole token must parse (no '1x', '1.5',
 *  or overflow slipping through as a truncated long). */
long
parseIndex(const std::string& tok, std::size_t line_no,
           const char* what)
{
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end != tok.c_str() + tok.size() ||
        errno == ERANGE) {
        diagError("workload", "mtx", "MatrixMarket line ", line_no,
                  ": non-numeric ", what, " '", tok, "'");
    }
    return v;
}

/** Strict floating-point field. */
double
parseValue(const std::string& tok, std::size_t line_no)
{
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size()) {
        diagError("workload", "mtx", "MatrixMarket line ", line_no,
                  ": non-numeric value '", tok, "'");
    }
    return v;
}

MtxCoo
parseCoo(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    if (!std::getline(in, line))
        diagError("workload", "mtx", "empty MatrixMarket input");
    ++line_no;
    const std::string header = toLower(trim(line));
    if (!startsWith(header, "%%matrixmarket matrix coordinate"))
        diagError("workload", "mtx",
                  "unsupported MatrixMarket header: '", line, "'");
    const bool pattern = header.find("pattern") != std::string::npos;
    const bool symmetric = header.find("symmetric") != std::string::npos;

    // Skip comments to the size line.
    bool have_size = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!trim(line).empty() && trim(line)[0] != '%') {
            have_size = true;
            break;
        }
    }
    if (!have_size)
        diagError("workload", "mtx",
                  "MatrixMarket input ends before the size line");
    const std::vector<std::string> size_f = splitFields(trim(line));
    if (size_f.size() != 3)
        diagError("workload", "mtx", "MatrixMarket line ", line_no,
                  ": bad size line '", line,
                  "' (want 'rows cols nnz')");
    MtxCoo out;
    out.rows = parseIndex(size_f[0], line_no, "row count");
    out.cols = parseIndex(size_f[1], line_no, "column count");
    const long nnz = parseIndex(size_f[2], line_no, "entry count");
    if (out.rows < 0 || out.cols < 0 || nnz < 0)
        diagError("workload", "mtx", "MatrixMarket line ", line_no,
                  ": negative dimension in size line '", line, "'");

    out.coo.reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
    long count = 0;
    while (count < nnz && std::getline(in, line)) {
        ++line_no;
        const std::string t = trim(line);
        if (t.empty() || t[0] == '%')
            continue;
        const std::vector<std::string> f = splitFields(t);
        const std::size_t want = pattern ? 2 : 3;
        if (f.size() != want)
            diagError("workload", "mtx", "MatrixMarket line ", line_no,
                      ": bad entry '", line, "' (want ", want,
                      " fields)");
        const long r = parseIndex(f[0], line_no, "row index");
        const long c = parseIndex(f[1], line_no, "column index");
        const double v = pattern ? 1.0 : parseValue(f[2], line_no);
        if (r < 1 || r > out.rows || c < 1 || c > out.cols)
            diagError("workload", "mtx", "MatrixMarket line ", line_no,
                      ": index (", r, ", ", c,
                      ") out of range for a ", out.rows, " x ",
                      out.cols, " matrix");
        out.coo.push_back({{r - 1, c - 1}, v});
        if (symmetric && r != c)
            out.coo.push_back({{c - 1, r - 1}, v});
        ++count;
    }
    if (count != nnz)
        diagError("workload", "mtx",
                  "truncated MatrixMarket input: expected ", nnz,
                  " entries, got ", count);

    std::sort(out.coo.begin(), out.coo.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    // Duplicate coordinates used to be resolved last-wins, silently —
    // but which value the writer meant is ambiguous (and the packed
    // and pointer paths could have disagreed), so reject them.
    for (std::size_t i = 1; i < out.coo.size(); ++i) {
        if (out.coo[i].first == out.coo[i - 1].first) {
            diagError("workload", "mtx",
                      "duplicate MatrixMarket entry at (",
                      out.coo[i].first.first + 1, ", ",
                      out.coo[i].first.second + 1, ")");
        }
    }
    return out;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        diagError("workload", "path",
                  "cannot open MatrixMarket file '", path, "'");
    TEAAL_FAILPOINT("workloads.mtx.io_error");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

ft::Tensor
parseMatrixMarket(const std::string& text, const std::string& name,
                  const std::vector<std::string>& rank_ids)
{
    const MtxCoo parsed = parseCoo(text);
    ft::Tensor t(name, rank_ids, {parsed.rows, parsed.cols});
    for (const auto& [p, v] : parsed.coo) {
        const std::vector<ft::Coord> point{p.first, p.second};
        t.set(point, v);
    }
    return t;
}

ft::Tensor
readMatrixMarket(const std::string& path, const std::string& name,
                 const std::vector<std::string>& rank_ids)
{
    return parseMatrixMarket(slurp(path), name, rank_ids);
}

storage::PackedTensor
parseMatrixMarketPacked(const std::string& text, const std::string& name,
                        const std::vector<std::string>& rank_ids,
                        const fmt::TensorFormat& format)
{
    const MtxCoo parsed = parseCoo(text);
    storage::PackedBuilder builder(name, rank_ids,
                                   {parsed.rows, parsed.cols}, format);
    builder.reserve(parsed.coo.size());
    for (std::size_t i = 0; i < parsed.coo.size(); ++i) {
        // parseCoo rejects duplicate coordinates, so the sorted
        // stream appends straight into the packed builder.
        const ft::Coord point[2] = {parsed.coo[i].first.first,
                                    parsed.coo[i].first.second};
        builder.append(point, parsed.coo[i].second);
    }
    return std::move(builder).finish();
}

storage::PackedTensor
readMatrixMarketPacked(const std::string& path, const std::string& name,
                       const std::vector<std::string>& rank_ids,
                       const fmt::TensorFormat& format)
{
    return parseMatrixMarketPacked(slurp(path), name, rank_ids, format);
}

std::string
renderMatrixMarket(const ft::Tensor& t)
{
    TEAAL_ASSERT(t.numRanks() == 2, "MatrixMarket needs a matrix");
    std::ostringstream out;
    out << std::setprecision(17);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by teaal-cpp\n";
    out << t.rank(0).shape << " " << t.rank(1).shape << " " << t.nnz()
        << "\n";
    t.forEachLeaf([&](std::span<const ft::Coord> p, double v) {
        out << (p[0] + 1) << " " << (p[1] + 1) << " " << v << "\n";
    });
    return out.str();
}

void
writeMatrixMarket(const std::string& path, const ft::Tensor& t)
{
    std::ofstream out(path);
    if (!out)
        specError("cannot write MatrixMarket file '", path, "'");
    out << renderMatrixMarket(t);
}

} // namespace teaal::workloads
