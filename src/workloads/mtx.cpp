#include "workloads/mtx.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::workloads
{

namespace
{

/** One parsed coordinate stream: sorted row-major (r, c, v) triples. */
struct MtxCoo
{
    long rows = 0;
    long cols = 0;
    std::vector<std::pair<std::pair<ft::Coord, ft::Coord>, double>> coo;
};

MtxCoo
parseCoo(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        specError("empty MatrixMarket input");
    const std::string header = toLower(trim(line));
    if (!startsWith(header, "%%matrixmarket matrix coordinate"))
        specError("unsupported MatrixMarket header: '", line, "'");
    const bool pattern = header.find("pattern") != std::string::npos;
    const bool symmetric = header.find("symmetric") != std::string::npos;

    // Skip comments to the size line.
    while (std::getline(in, line)) {
        if (!trim(line).empty() && trim(line)[0] != '%')
            break;
    }
    std::istringstream size_line(line);
    MtxCoo out;
    long nnz = 0;
    if (!(size_line >> out.rows >> out.cols >> nnz))
        specError("bad MatrixMarket size line: '", line, "'");

    out.coo.reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
    long count = 0;
    while (count < nnz && std::getline(in, line)) {
        const std::string t = trim(line);
        if (t.empty() || t[0] == '%')
            continue;
        std::istringstream entry(t);
        long r = 0, c = 0;
        double v = 1.0;
        if (!(entry >> r >> c))
            specError("bad MatrixMarket entry: '", line, "'");
        if (!pattern && !(entry >> v))
            specError("missing value in MatrixMarket entry: '", line,
                      "'");
        if (r < 1 || r > out.rows || c < 1 || c > out.cols)
            specError("MatrixMarket index out of range: '", line, "'");
        out.coo.push_back({{r - 1, c - 1}, v});
        if (symmetric && r != c)
            out.coo.push_back({{c - 1, r - 1}, v});
        ++count;
    }
    if (count != nnz)
        specError("MatrixMarket: expected ", nnz, " entries, got ",
                  count);

    std::sort(out.coo.begin(), out.coo.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    return out;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        specError("cannot open MatrixMarket file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

ft::Tensor
parseMatrixMarket(const std::string& text, const std::string& name,
                  const std::vector<std::string>& rank_ids)
{
    const MtxCoo parsed = parseCoo(text);
    ft::Tensor t(name, rank_ids, {parsed.rows, parsed.cols});
    for (const auto& [p, v] : parsed.coo) {
        const std::vector<ft::Coord> point{p.first, p.second};
        t.set(point, v);
    }
    return t;
}

ft::Tensor
readMatrixMarket(const std::string& path, const std::string& name,
                 const std::vector<std::string>& rank_ids)
{
    return parseMatrixMarket(slurp(path), name, rank_ids);
}

storage::PackedTensor
parseMatrixMarketPacked(const std::string& text, const std::string& name,
                        const std::vector<std::string>& rank_ids,
                        const fmt::TensorFormat& format)
{
    const MtxCoo parsed = parseCoo(text);
    storage::PackedBuilder builder(name, rank_ids,
                                   {parsed.rows, parsed.cols}, format);
    builder.reserve(parsed.coo.size());
    for (std::size_t i = 0; i < parsed.coo.size(); ++i) {
        // Duplicate points keep the last value, matching what
        // Tensor::set does on the legacy path.
        if (i + 1 < parsed.coo.size() &&
            parsed.coo[i + 1].first == parsed.coo[i].first)
            continue;
        const ft::Coord point[2] = {parsed.coo[i].first.first,
                                    parsed.coo[i].first.second};
        builder.append(point, parsed.coo[i].second);
    }
    return std::move(builder).finish();
}

storage::PackedTensor
readMatrixMarketPacked(const std::string& path, const std::string& name,
                       const std::vector<std::string>& rank_ids,
                       const fmt::TensorFormat& format)
{
    return parseMatrixMarketPacked(slurp(path), name, rank_ids, format);
}

std::string
renderMatrixMarket(const ft::Tensor& t)
{
    TEAAL_ASSERT(t.numRanks() == 2, "MatrixMarket needs a matrix");
    std::ostringstream out;
    out << std::setprecision(17);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by teaal-cpp\n";
    out << t.rank(0).shape << " " << t.rank(1).shape << " " << t.nnz()
        << "\n";
    t.forEachLeaf([&](std::span<const ft::Coord> p, double v) {
        out << (p[0] + 1) << " " << (p[1] + 1) << " " << v << "\n";
    });
    return out.str();
}

void
writeMatrixMarket(const std::string& path, const ft::Tensor& t)
{
    std::ofstream out(path);
    if (!out)
        specError("cannot write MatrixMarket file '", path, "'");
    out << renderMatrixMarket(t);
}

} // namespace teaal::workloads
