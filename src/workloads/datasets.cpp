#include "workloads/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/random.hpp"

namespace teaal::workloads
{

const std::vector<DatasetInfo>&
table4()
{
    static const std::vector<DatasetInfo> datasets = {
        {"wi", "wiki-Vote", 8300, 8300, 104000, "elections",
         Structure::PowerLaw},
        {"p2", "p2p-Gnutella31", 63000, 63000, 148000, "file-sharing",
         Structure::PowerLaw},
        {"ca", "ca-CondMat", 23000, 23000, 187000, "collab. net.",
         Structure::PowerLaw},
        {"po", "poisson3Da", 14000, 23000, 353000, "fluid dynamics",
         Structure::QuasiUniform},
        {"em", "email-Enron", 37000, 37000, 368000, "email comms.",
         Structure::PowerLaw},
        {"fl", "flickr", 820000, 820000, 9800000, "site crawl graph",
         Structure::PowerLaw},
        {"wk", "wikipedia-20070206", 3600000, 3600000, 42000000,
         "site link graph", Structure::PowerLaw},
        {"lj", "soc-LiveJournal1", 4800000, 4800000, 69000000,
         "follower graph", Structure::PowerLaw},
    };
    return datasets;
}

const DatasetInfo&
dataset(const std::string& key)
{
    for (const DatasetInfo& d : table4()) {
        if (d.key == key)
            return d;
    }
    specError("unknown dataset '", key, "' (see Table 4)");
}

namespace
{

/** Build a [K, M] tensor from (row, col, value) triples. */
ft::Tensor
fromTriples(const std::string& name, ft::Coord rows, ft::Coord cols,
            std::vector<std::pair<std::uint64_t, double>>& packed,
            const std::vector<std::string>& rank_ids)
{
    std::sort(packed.begin(), packed.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    TEAAL_ASSERT(rank_ids.size() == 2, "matrix needs 2 rank ids");
    ft::Tensor t(name, rank_ids, {rows, cols});
    const auto ucols = static_cast<std::uint64_t>(cols);
    for (const auto& [rc, v] : packed) {
        const auto r = static_cast<ft::Coord>(rc / ucols);
        const auto c = static_cast<ft::Coord>(rc % ucols);
        const std::vector<ft::Coord> p{r, c};
        t.set(p, v);
    }
    return t;
}

} // namespace

ft::Tensor
uniformMatrix(const std::string& name, ft::Coord rows, ft::Coord cols,
              std::size_t nnz, std::uint64_t seed,
              const std::vector<std::string>& rank_ids)
{
    TEAAL_ASSERT(rows > 0 && cols > 0, "matrix must be non-empty");
    Xoshiro256 rng(seed);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(nnz * 2);
    const auto ucols = static_cast<std::uint64_t>(cols);
    const std::size_t target = std::min<std::size_t>(
        nnz, static_cast<std::size_t>(rows) *
                 static_cast<std::size_t>(cols));
    while (seen.size() < target) {
        const std::uint64_t r =
            rng.below(static_cast<std::uint64_t>(rows));
        const std::uint64_t c = rng.below(ucols);
        seen.insert(r * ucols + c);
    }
    std::vector<std::pair<std::uint64_t, double>> packed;
    packed.reserve(seen.size());
    for (std::uint64_t rc : seen)
        packed.emplace_back(rc, 1.0 + rng.uniform());
    return fromTriples(name, rows, cols, packed, rank_ids);
}

ft::Tensor
powerLawMatrix(const std::string& name, ft::Coord rows, ft::Coord cols,
               std::size_t nnz, std::uint64_t seed,
               const std::vector<std::string>& rank_ids)
{
    Xoshiro256 rng(seed);
    // Zipf-like row degrees: deg(i) ~ (i+1)^-0.8, scaled to nnz, with
    // the row order shuffled so heavy rows are scattered.
    std::vector<double> weights(static_cast<std::size_t>(rows));
    double total = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
        total += weights[i];
    }
    std::vector<std::uint32_t> row_of(weights.size());
    for (std::size_t i = 0; i < row_of.size(); ++i)
        row_of[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = row_of.size(); i > 1; --i)
        std::swap(row_of[i - 1], row_of[rng.below(i)]);

    const auto ucols = static_cast<std::uint64_t>(cols);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(nnz * 2);
    std::vector<std::pair<std::uint64_t, double>> packed;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto degree = static_cast<std::size_t>(
            std::ceil(weights[i] / total * static_cast<double>(nnz)));
        const std::uint64_t row = row_of[i];
        for (std::size_t e = 0; e < degree && seen.size() < nnz; ++e) {
            // Preferential columns: square the uniform draw to skew
            // toward low column indices (hub vertices).
            const double u = rng.uniform();
            const auto col = static_cast<std::uint64_t>(
                u * u * static_cast<double>(cols));
            const std::uint64_t rc =
                row * ucols + std::min(col, ucols - 1);
            if (seen.insert(rc).second)
                packed.emplace_back(rc, 1.0 + rng.uniform());
        }
        if (seen.size() >= nnz)
            break;
    }
    return fromTriples(name, rows, cols, packed, rank_ids);
}

ft::Tensor
bandedMatrix(const std::string& name, ft::Coord rows, ft::Coord cols,
             std::size_t nnz, std::uint64_t seed,
             const std::vector<std::string>& rank_ids)
{
    Xoshiro256 rng(seed);
    // PDE-mesh-like: each row has ~nnz/rows entries clustered near the
    // diagonal (bandwidth ~3x the mean degree).
    const double mean_degree =
        static_cast<double>(nnz) / static_cast<double>(rows);
    const auto band = static_cast<std::int64_t>(
        std::max(4.0, 3.0 * mean_degree));
    const auto ucols = static_cast<std::uint64_t>(cols);
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::pair<std::uint64_t, double>> packed;
    while (seen.size() < nnz) {
        const auto r = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(rows)));
        const std::int64_t center =
            r * cols / rows; // diagonal position for non-square
        std::int64_t c = center + static_cast<std::int64_t>(
                                      rng.below(static_cast<std::uint64_t>(
                                          2 * band + 1))) -
                         band;
        c = std::clamp<std::int64_t>(c, 0, cols - 1);
        const std::uint64_t rc =
            static_cast<std::uint64_t>(r) * ucols +
            static_cast<std::uint64_t>(c);
        if (seen.insert(rc).second)
            packed.emplace_back(rc, 1.0 + rng.uniform());
    }
    return fromTriples(name, rows, cols, packed, rank_ids);
}

ft::Tensor
synthesize(const DatasetInfo& info, const std::string& name,
           std::uint64_t seed, double scale,
           const std::vector<std::string>& rank_ids)
{
    const auto rows = static_cast<ft::Coord>(
        std::max(1.0, static_cast<double>(info.rows) * scale));
    const auto cols = static_cast<ft::Coord>(
        std::max(1.0, static_cast<double>(info.cols) * scale));
    const auto nnz = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(info.nnz) * scale));
    switch (info.structure) {
      case Structure::PowerLaw:
        return powerLawMatrix(name, rows, cols, nnz, seed, rank_ids);
      case Structure::QuasiUniform:
        return bandedMatrix(name, rows, cols, nnz, seed, rank_ids);
      case Structure::Uniform:
        return uniformMatrix(name, rows, cols, nnz, seed, rank_ids);
    }
    specError("bad structure for dataset ", info.key);
}

Graph
rmatGraph(ft::Coord vertices, std::size_t edges, std::uint64_t seed)
{
    TEAAL_ASSERT(vertices > 1, "graph needs >= 2 vertices");
    Xoshiro256 rng(seed);
    int levels = 0;
    while ((ft::Coord{1} << levels) < vertices)
        ++levels;

    std::unordered_set<std::uint64_t> seen;
    seen.reserve(edges * 2);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
    list.reserve(edges);
    const auto uvertices = static_cast<std::uint64_t>(vertices);
    std::size_t attempts = 0;
    const std::size_t max_attempts = edges * 8 + 1024;
    while (list.size() < edges && attempts < max_attempts) {
        ++attempts;
        std::uint64_t src = 0, dst = 0;
        for (int l = 0; l < levels; ++l) {
            const double u = rng.uniform();
            // a=0.57, b=0.19, c=0.19, d=0.05
            int quadrant;
            if (u < 0.57)
                quadrant = 0;
            else if (u < 0.76)
                quadrant = 1;
            else if (u < 0.95)
                quadrant = 2;
            else
                quadrant = 3;
            src = (src << 1) | static_cast<std::uint64_t>(quadrant >> 1);
            dst = (dst << 1) | static_cast<std::uint64_t>(quadrant & 1);
        }
        if (src >= uvertices || dst >= uvertices || src == dst)
            continue;
        if (seen.insert(src * uvertices + dst).second) {
            list.emplace_back(static_cast<std::uint32_t>(src),
                              static_cast<std::uint32_t>(dst));
        }
    }

    std::sort(list.begin(), list.end());
    Graph g;
    g.vertices = vertices;
    g.offsets.assign(static_cast<std::size_t>(vertices) + 1, 0);
    g.targets.reserve(list.size());
    g.weights.reserve(list.size());
    for (const auto& [src, dst] : list)
        ++g.offsets[src + 1];
    for (std::size_t v = 1; v < g.offsets.size(); ++v)
        g.offsets[v] += g.offsets[v - 1];
    for (const auto& [src, dst] : list) {
        (void)src;
        g.targets.push_back(dst);
        g.weights.push_back(
            1.0f + static_cast<float>(rng.uniform() * 9.0));
    }
    return g;
}

Graph
synthesizeGraph(const DatasetInfo& info, std::uint64_t seed, double scale)
{
    const auto vertices = static_cast<ft::Coord>(
        std::max(2.0, static_cast<double>(info.rows) * scale));
    const auto edges = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(info.nnz) * scale));
    return rmatGraph(vertices, edges, seed);
}

ft::Tensor
graphToTensor(const Graph& g, const std::string& name,
              const std::vector<std::string>& rank_ids)
{
    TEAAL_ASSERT(rank_ids.size() == 2, "graph tensor needs 2 ranks");
    ft::Tensor t(name, rank_ids, {g.vertices, g.vertices});
    // Build [D, S]: destination-major so the process phase's
    // reduction over sources is concordant.
    std::vector<std::pair<std::uint64_t, double>> packed;
    packed.reserve(g.edges());
    const auto uv = static_cast<std::uint64_t>(g.vertices);
    for (ft::Coord s = 0; s < g.vertices; ++s) {
        for (std::uint32_t e = g.offsets[static_cast<std::size_t>(s)];
             e < g.offsets[static_cast<std::size_t>(s) + 1]; ++e) {
            packed.emplace_back(
                static_cast<std::uint64_t>(g.targets[e]) * uv +
                    static_cast<std::uint64_t>(s),
                static_cast<double>(g.weights[e]));
        }
    }
    std::sort(packed.begin(), packed.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    for (const auto& [ds, w] : packed) {
        const std::vector<ft::Coord> p{
            static_cast<ft::Coord>(ds / uv),
            static_cast<ft::Coord>(ds % uv)};
        t.set(p, w);
    }
    return t;
}

} // namespace teaal::workloads
