/**
 * @file
 * Matrix Market (.mtx) I/O so the models can run on the actual
 * SuiteSparse/SNAP matrices of Table 4 when the user has them on disk
 * (the repository itself ships only synthetic stand-ins).
 *
 * Supported subset: `%%MatrixMarket matrix coordinate
 * (real|integer|pattern) (general|symmetric)`. Pattern entries get
 * value 1.0; symmetric matrices are expanded. 1-based indices per the
 * format.
 */
#pragma once

#include <string>

#include "fibertree/tensor.hpp"
#include "storage/packed.hpp"

namespace teaal::workloads
{

/** Read a Matrix Market file into a [rank_ids] fibertree. */
ft::Tensor readMatrixMarket(const std::string& path,
                            const std::string& name,
                            const std::vector<std::string>& rank_ids = {
                                "K", "M"});

/** Parse Matrix Market text (for tests and in-memory use). */
ft::Tensor parseMatrixMarket(const std::string& text,
                             const std::string& name,
                             const std::vector<std::string>& rank_ids = {
                                 "K", "M"});

/**
 * Read a Matrix Market file straight into a packed CSR store: entries
 * are sorted once and bulk-appended to a storage::PackedBuilder — no
 * per-element fibertree insert, no pointer fiber ever built. The
 * first rank is rows, the second columns (the file's coordinate
 * order); callers wanting a discordant (e.g. column-major) rank order
 * keep the legacy path: readMatrixMarket + ft::swizzle (or
 * PackedTensor::fromTensor of the swizzled tree).
 *
 * @param format Rank formats for the packed store (footprints,
 *               bitmap/implicit walk auxiliaries); defaults to
 *               all-compressed.
 */
storage::PackedTensor readMatrixMarketPacked(
    const std::string& path, const std::string& name,
    const std::vector<std::string>& rank_ids = {"K", "M"},
    const fmt::TensorFormat& format = {});

/** Packed counterpart of parseMatrixMarket (tests, in-memory use). */
storage::PackedTensor parseMatrixMarketPacked(
    const std::string& text, const std::string& name,
    const std::vector<std::string>& rank_ids = {"K", "M"},
    const fmt::TensorFormat& format = {});

/** Write a tensor (2 ranks) as Matrix Market coordinate/real/general. */
void writeMatrixMarket(const std::string& path, const ft::Tensor& t);

/** Render to text (for tests). */
std::string renderMatrixMarket(const ft::Tensor& t);

} // namespace teaal::workloads
