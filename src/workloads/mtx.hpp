/**
 * @file
 * Matrix Market (.mtx) I/O so the models can run on the actual
 * SuiteSparse/SNAP matrices of Table 4 when the user has them on disk
 * (the repository itself ships only synthetic stand-ins).
 *
 * Supported subset: `%%MatrixMarket matrix coordinate
 * (real|integer|pattern) (general|symmetric)`. Pattern entries get
 * value 1.0; symmetric matrices are expanded. 1-based indices per the
 * format.
 */
#pragma once

#include <string>

#include "fibertree/tensor.hpp"

namespace teaal::workloads
{

/** Read a Matrix Market file into a [rank_ids] fibertree. */
ft::Tensor readMatrixMarket(const std::string& path,
                            const std::string& name,
                            const std::vector<std::string>& rank_ids = {
                                "K", "M"});

/** Parse Matrix Market text (for tests and in-memory use). */
ft::Tensor parseMatrixMarket(const std::string& text,
                             const std::string& name,
                             const std::vector<std::string>& rank_ids = {
                                 "K", "M"});

/** Write a tensor (2 ranks) as Matrix Market coordinate/real/general. */
void writeMatrixMarket(const std::string& path, const ft::Tensor& t);

/** Render to text (for tests). */
std::string renderMatrixMarket(const ft::Tensor& t);

} // namespace teaal::workloads
