/**
 * @file
 * The Table 4 dataset registry and synthetic stand-in generators.
 *
 * SuiteSparse/SNAP matrices are not redistributable here, so each
 * dataset is synthesized deterministically with the published shape
 * and NNZ and a structure class matching its domain: social/web
 * graphs get power-law degree distributions (R-MAT), PDE meshes get
 * quasi-uniform banded structure, and synthetic-uniform matrices are
 * plain Bernoulli. The model is data-driven, so preserving shape, NNZ
 * and skew preserves the relative behaviour the figures compare
 * (DESIGN.md §3 records this substitution).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fibertree/tensor.hpp"

namespace teaal::workloads
{

/** Sparsity structure class used for synthesis. */
enum class Structure { PowerLaw, QuasiUniform, Uniform };

/** One Table 4 row. */
struct DatasetInfo
{
    std::string key;  ///< short name used in the figures ("wi")
    std::string name; ///< published matrix name
    ft::Coord rows;
    ft::Coord cols;
    std::size_t nnz;
    std::string domain;
    Structure structure;
};

/** All eight Table 4 datasets (top 5 validation, bottom 3 graphs). */
const std::vector<DatasetInfo>& table4();

/** Lookup by key; throws SpecError for unknown keys. */
const DatasetInfo& dataset(const std::string& key);

/**
 * Synthesize the stand-in matrix for @p info as a [K, M] fibertree
 * (K = rows). @p scale scales rows/cols/nnz (benches shrink the
 * large graphs; the header of each bench records the factor).
 */
ft::Tensor synthesize(const DatasetInfo& info, const std::string& name,
                      std::uint64_t seed, double scale = 1.0,
                      const std::vector<std::string>& rank_ids = {"K",
                                                                  "M"});

/** Uniform Bernoulli sparse matrix with ~nnz nonzeros. */
ft::Tensor uniformMatrix(const std::string& name, ft::Coord rows,
                         ft::Coord cols, std::size_t nnz,
                         std::uint64_t seed,
                         const std::vector<std::string>& rank_ids = {
                             "K", "M"});

/** Power-law (Zipf row degree) matrix with ~nnz nonzeros. */
ft::Tensor powerLawMatrix(const std::string& name, ft::Coord rows,
                          ft::Coord cols, std::size_t nnz,
                          std::uint64_t seed,
                          const std::vector<std::string>& rank_ids = {
                              "K", "M"});

/** Quasi-uniform banded matrix (PDE-mesh-like). */
ft::Tensor bandedMatrix(const std::string& name, ft::Coord rows,
                        ft::Coord cols, std::size_t nnz,
                        std::uint64_t seed,
                        const std::vector<std::string>& rank_ids = {
                            "K", "M"});

/** Compressed adjacency for the graph engine. */
struct Graph
{
    ft::Coord vertices = 0;
    std::vector<std::uint32_t> offsets; ///< size vertices+1
    std::vector<std::uint32_t> targets;
    std::vector<float> weights;

    std::size_t edges() const { return targets.size(); }
};

/**
 * R-MAT graph with 2^ceil(log2(vertices)) vertex id space truncated
 * to @p vertices; ~edges edges after dedup (standard a/b/c/d =
 * 0.57/0.19/0.19/0.05 skew, matching SNAP-like degree distributions).
 */
Graph rmatGraph(ft::Coord vertices, std::size_t edges,
                std::uint64_t seed);

/** Graph stand-in for a Table 4 dataset (fl/wk/lj). */
Graph synthesizeGraph(const DatasetInfo& info, std::uint64_t seed,
                      double scale = 1.0);

/** Adjacency as a destination-major fibertree (default ranks [D, S];
 *  the Figure 12 cascades use [V, S]). */
ft::Tensor graphToTensor(const Graph& g, const std::string& name,
                         const std::vector<std::string>& rank_ids = {
                             "D", "S"});

} // namespace teaal::workloads
