/**
 * @file
 * Co-iteration strategies: the per-loop fiber-walk algorithms the
 * execution engine dispatches between (enum-keyed at plan time, never
 * a virtual call per element).
 *
 *   TwoFinger   sorted n-way merge advancing below the running max —
 *               the classic intersection walk (paper §2.4),
 *   Gallop      leader-follower with exponential + binary-search leaps
 *               through the denser fiber (the row-fetching pattern of
 *               Gamma-style designs); wins when one driver is >= ~32x
 *               denser than the other,
 *   DenseDrive  iterate the coordinate space and probe each driver —
 *               what a dense address generator does in hardware,
 *   Union       sorted merge-union for Add Einsums (not a planner
 *               choice: unions must visit every driver element).
 *
 * The walk bodies are templates over the per-coordinate callback so
 * the engine's (large) coordinate body inlines into the merge loop;
 * the callback returns false to stop the walk (probe-only ranks).
 *
 * Observed work counters deliberately model the *hardware* cost, not
 * the host cost: gallop charges two steps per leader element (leader
 * element + follower probe) exactly like the old leader-follower
 * escape, so modeled action counts are independent of how fast the
 * host finds the match.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "fibertree/coiter.hpp"
#include "ir/plan.hpp"

namespace teaal::exec
{

using ir::CoiterStrategy;

/** Work counters of one walk, fed to the intersection-unit model. */
struct WalkCounts
{
    std::size_t steps = 0;
    std::size_t matches = 0;
};

/**
 * N-way two-finger intersection over @p views. @p pos are the running
 * cursors (pre-seeded at each view's lo); @p scans accumulates
 * per-driver element advances. @p body is called as body(c) with
 * pos[d] at each driver's matching position, and returns false to
 * stop early.
 */
template <typename Body>
WalkCounts
intersectTwoFinger(const std::vector<ft::FiberView>& views,
                   std::vector<std::size_t>& pos,
                   std::vector<std::size_t>& scans, Body&& body)
{
    WalkCounts wc;
    const std::size_t nd = views.size();
    while (true) {
        bool all_have = true;
        for (std::size_t d = 0; d < nd; ++d) {
            if (pos[d] >= views[d].hi)
                all_have = false;
        }
        if (!all_have)
            break;
        ft::Coord cmax = views[0].coordAt(pos[0]);
        for (std::size_t d = 1; d < nd; ++d)
            cmax = std::max(cmax, views[d].coordAt(pos[d]));
        bool aligned = true;
        for (std::size_t d = 0; d < nd; ++d) {
            while (pos[d] < views[d].hi &&
                   views[d].coordAt(pos[d]) < cmax) {
                ++pos[d];
                ++scans[d];
                ++wc.steps;
            }
            if (pos[d] >= views[d].hi ||
                views[d].coordAt(pos[d]) != cmax) {
                aligned = false;
            }
        }
        if (!aligned)
            continue; // re-derive the max and keep advancing
        ++wc.matches;
        const bool keep_going = body(cmax);
        // Advance every driver past the consumed coordinate.
        for (std::size_t d = 0; d < nd; ++d) {
            ++pos[d];
            ++scans[d];
            ++wc.steps;
        }
        if (!keep_going)
            break;
    }
    return wc;
}

/**
 * Galloping 2-way intersection: walk the sparse @p lead view; locate
 * each of its coordinates in @p big by exponential search from the
 * last match followed by binary search in the bracketed window.
 * body(c, lead_pos, big_pos) returns false to stop. Charged steps are
 * the leader-follower hardware cost (2 per leader element), matching
 * the engine's historical runtime escape bit-for-bit.
 */
template <typename Body>
WalkCounts
gallopIntersect(const ft::FiberView& lead, const ft::FiberView& big,
                std::size_t& lead_scans, std::size_t& big_scans,
                Body&& body)
{
    WalkCounts wc;
    std::size_t bpos = big.lo;
    for (std::size_t pl = lead.lo; pl < lead.hi; ++pl) {
        const ft::Coord c = lead.coordAt(pl);
        // Charged even when the follower is exhausted, matching the
        // historical escape's per-leader-element accounting.
        wc.steps += 2; // leader element + follower probe
        ++lead_scans;
        if (bpos >= big.hi)
            continue;
        // Exponential leap: bracket the first big position >= c.
        std::size_t step = 1;
        while (bpos + step < big.hi && big.coordAt(bpos + step) < c)
            step <<= 1;
        std::size_t lo = bpos;
        std::size_t hi = std::min(bpos + step + 1, big.hi);
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (big.coordAt(mid) < c)
                lo = mid + 1;
            else
                hi = mid;
        }
        bpos = lo;
        if (bpos >= big.hi || big.coordAt(bpos) != c)
            continue;
        ++big_scans;
        ++wc.matches;
        if (!body(c, pl, bpos))
            break;
    }
    return wc;
}

/**
 * N-way merge-union over @p views (Add Einsums). body(c) is called
 * with @p present marking which drivers carry the coordinate (their
 * pos[d] at the match); returns false to stop.
 */
template <typename Body>
WalkCounts
unionMergeN(const std::vector<ft::FiberView>& views,
            std::vector<std::size_t>& pos,
            std::vector<std::size_t>& scans, std::vector<bool>& present,
            Body&& body)
{
    WalkCounts wc;
    const std::size_t nd = views.size();
    while (true) {
        bool any = false;
        ft::Coord c = 0;
        for (std::size_t d = 0; d < nd; ++d) {
            if (pos[d] < views[d].hi) {
                const ft::Coord cd = views[d].coordAt(pos[d]);
                if (!any || cd < c)
                    c = cd;
                any = true;
            }
        }
        if (!any)
            break;
        for (std::size_t d = 0; d < nd; ++d)
            present[d] =
                pos[d] < views[d].hi && views[d].coordAt(pos[d]) == c;
        ++wc.matches;
        const bool keep_going = body(c);
        for (std::size_t d = 0; d < nd; ++d) {
            if (present[d]) {
                ++pos[d];
                ++scans[d];
                ++wc.steps;
            }
        }
        if (!keep_going)
            break;
    }
    return wc;
}

/**
 * Dense coordinate drive with driver probes: iterate [0, extent) and
 * binary-search each driver for the coordinate. In intersection mode
 * every driver must be present for the body to fire; in union mode
 * any. Charged steps: one probe per driver per coordinate (the dense
 * address generator's lookups). body(c) sees pos[d]/present[d] at the
 * match; returns false to stop.
 */
template <typename Body>
WalkCounts
denseProbe(const std::vector<ft::FiberView>& views, ft::Coord extent,
           bool unite, std::vector<std::size_t>& pos,
           std::vector<std::size_t>& scans, std::vector<bool>& present,
           Body&& body)
{
    WalkCounts wc;
    const std::size_t nd = views.size();
    for (ft::Coord c = 0; c < extent; ++c) {
        bool all = true;
        bool any = false;
        for (std::size_t d = 0; d < nd; ++d) {
            ++wc.steps;
            ++scans[d];
            present[d] = false;
            if (const auto f = views[d].find(c)) {
                present[d] = true;
                pos[d] = *f;
            }
            all &= present[d];
            any |= present[d];
        }
        if (unite ? !any : !all)
            continue;
        ++wc.matches;
        if (!body(c))
            break;
    }
    return wc;
}

/**
 * Runtime escape check for TwoFinger 2-way intersections: when one
 * fiber is more than @p ratio times the other's size, the sparse side
 * leads a gallop instead (the historical behavior, preserved so
 * modeled counts are unchanged for plans that predate plan-time
 * strategy selection). Returns the leader index, or -1 to stay on the
 * two-finger merge.
 */
int gallopLeader(const std::vector<ft::FiberView>& views, bool unite,
                 std::size_t ratio = 8);

} // namespace teaal::exec
