#include "exec/executor.hpp"

namespace teaal::exec
{

Executor::Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
                   Semiring sr, const ExecOptions& opts)
    : engine_(plan, obs, sr, opts)
{
}

ft::Tensor
Executor::run()
{
    return engine_.run();
}

} // namespace teaal::exec
