#include "exec/executor.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace teaal::exec
{

namespace
{

/**
 * Shard-count cap. The plan's top walk is split into
 * min(matches, kMaxShards) contiguous slices — a pure function of the
 * plan and data, never of the thread count, so traces and results are
 * identical for every N. 64 slices keep dynamic scheduling balanced
 * on any realistic worker count while the per-shard engine setup
 * stays negligible.
 */
constexpr std::size_t kMaxShards = 64;

/**
 * Drop non-leaf output-insert events whose path key an earlier shard
 * already inserted. Output paths materialize lazily *per shard*, so a
 * shared ancestor node (e.g. the root row of an output both shards
 * write under, when the sharded rank is not the output's top rank) is
 * created once per shard — but the serial engine creates it exactly
 * once, at the stream position where the first shard's copy lands.
 * Filtering duplicates during the in-order replay therefore restores
 * the serial event sequence exactly; walk boundaries are re-indexed
 * onto the surviving events.
 *
 * NOTE: this traversal mirrors BatchBus::replay's chunk/walkEnds
 * bookkeeping (trace/batch.cpp) — change them together. The
 * thread-equivalence tests (tests/test_parallel.cpp) compare replayed
 * streams *including batch boundaries* against the serial path and
 * will catch any divergence.
 *
 * Filtered captures (model split): a dropped record occupies one slot
 * in the logged stream AND one in the logical stream, so the logical
 * walk boundaries and total shift by the same running count — keeping
 * the replay's serial-equivalent event/batch accounting exact (the
 * serial engine never emitted the duplicate at all).
 */
void
dropDuplicateInserts(trace::TraceLog& log,
                     std::unordered_set<std::uint64_t>& inserted)
{
    std::size_t dropped = 0;
    std::size_t we = 0;
    std::size_t base = 0; // global *input* index of the chunk start
    for (std::vector<trace::Event>& chunk : log.chunks) {
        const std::size_t in_size = chunk.size();
        std::size_t out = 0;
        for (std::size_t i = 0; i < in_size; ++i) {
            while (we < log.walkEnds.size() &&
                   log.walkEnds[we] == base + i) {
                log.walkEnds[we] -= dropped;
                if (log.filtered)
                    log.logicalWalkEnds[we] -= dropped;
                ++we;
            }
            const trace::Event& e = chunk[i];
            if (e.kind == trace::Event::Kind::OutputWrite && e.flagA &&
                !e.flagB && !inserted.insert(e.key).second) {
                ++dropped;
                continue;
            }
            if (out != i)
                chunk[out] = e;
            ++out;
        }
        chunk.resize(out);
        base += in_size;
    }
    while (we < log.walkEnds.size()) {
        log.walkEnds[we] -= dropped;
        if (log.filtered)
            log.logicalWalkEnds[we] -= dropped;
        ++we;
    }
    if (log.filtered)
        log.logicalEvents -= dropped;
}

} // namespace

Executor::Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
                   Semiring sr, const ExecOptions& opts)
    : plan_(plan), sr_(sr), opts_(opts), engine_(plan, obs, sr, opts)
{
}

ft::Tensor
Executor::run()
{
    unsigned threads = opts_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (threads > 1 && plan_.shard.shardable)
        return runSharded(threads);
    ft::Tensor out = engine_.run();
    stats_ = engine_.stats();
    return out;
}

ft::Tensor
Executor::runSharded(unsigned threads)
{
    // Serial enumeration of the outermost walk fixes every shard's
    // coordinates, driver cursors, and PE ids up front (the walk
    // summary events are replayed after the shards, where the serial
    // merge loop would emit them).
    // Model split (performance-model hooks set, see ShardModelHooks):
    // datapath records are consumed by per-shard accumulators inside
    // the shards; only order-dependent storage records are captured
    // and replayed. The coordinator's own emissions route through the
    // same filter to the coordinator sink.
    const bool split_model = opts_.modelHooks.enabled();
    if (split_model) {
        engine_.setTraceFilter(opts_.modelHooks.classifier,
                               opts_.modelHooks.coordinatorSink);
    }

    engine_.beginRun(/*announce_swizzles=*/false);
    TopWalk tw;
    engine_.enumerateTop(tw);

    const std::size_t n = tw.entries.size();
    if (n == 0) {
        engine_.emitSwizzleAnnouncements();
        engine_.emitTopSummary(tw);
        stats_ = ExecutionStats{};
        return engine_.finishOutput(engine_.takeOutput());
    }

    const std::size_t shards = std::min(n, kMaxShards);
    std::vector<std::size_t> bounds(shards + 1);
    for (std::size_t s = 0; s <= shards; ++s)
        bounds[s] = s * n / shards;

    std::vector<trace::Observer*> shard_sinks;
    if (split_model)
        shard_sinks = opts_.modelHooks.makeShardSinks(shards);

    // Hybrid scheme: workers race ahead claiming shards and executing
    // them into trace captures; the coordinator walks the shards
    // strictly in index order, *live-executing* (straight onto the
    // delivery bus — no capture, no replay) every shard no worker got
    // to first, and replaying worker captures otherwise. When workers
    // are starved (few cores) the coordinator degenerates to a nearly
    // zero-overhead serial run; when they keep up, replay overlaps
    // their execution.
    enum : int
    {
        kUnclaimed = 0,
        kWorker = 1,
        kCoordinator = 2
    };
    struct ShardResult
    {
        std::atomic<int> claim{kUnclaimed};
        trace::TraceLog log;
        ft::Tensor out;
        ExecutionStats stats;
        bool done = false;
    };
    trace::ChunkPool chunk_pool; // outlives the shard results below
    std::vector<ShardResult> results(shards);
    std::mutex mutex;
    std::condition_variable done_cv;
    for (ShardResult& r : results)
        r.log.pool = &chunk_pool;

    // Next shard the coordinator will finalize. Workers only claim
    // within a window ahead of it, bounding how much captured (not
    // yet replayed) trace can pile up in memory.
    std::atomic<std::size_t> coord_pos{0};
    const std::size_t window =
        std::max<std::size_t>(8, 4 * static_cast<std::size_t>(threads));

    // First exception from any thread: workers and the coordinator
    // stop promptly, everyone is joined, then it is rethrown to the
    // caller — run(threads=N) surfaces errors exactly like the serial
    // path instead of aborting the process.
    std::atomic<bool> abort{false};
    std::exception_ptr first_error;
    auto record_error = [&]() {
        {
            std::lock_guard<std::mutex> lk(mutex);
            if (first_error == nullptr)
                first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_release);
        done_cv.notify_all();
    };

    auto drainShards = [&](unsigned) {
        for (;;) {
            if (abort.load(std::memory_order_acquire))
                return;
            const std::size_t base =
                coord_pos.load(std::memory_order_acquire);
            if (base >= shards)
                return;
            bool claimed = false;
            const std::size_t limit =
                std::min(shards, base + window);
            for (std::size_t s = base; s < limit; ++s) {
                ShardResult& r = results[s];
                int expected = kUnclaimed;
                if (!r.claim.compare_exchange_strong(
                        expected, kWorker, std::memory_order_acq_rel))
                    continue;
                try {
                    Engine shard(plan_, r.log, sr_, opts_);
                    if (split_model) {
                        shard.setTraceFilter(
                            opts_.modelHooks.classifier,
                            shard_sinks[s]);
                    }
                    r.out =
                        shard.runShard(tw, bounds[s], bounds[s + 1]);
                    r.stats = shard.stats();
                } catch (...) {
                    record_error();
                }
                {
                    std::lock_guard<std::mutex> lk(mutex);
                    r.done = true;
                }
                done_cv.notify_all();
                claimed = true;
                break;
            }
            if (!claimed) {
                // Window exhausted: wait for coordinator progress.
                std::unique_lock<std::mutex> lk(mutex);
                done_cv.wait_for(
                    lk, std::chrono::milliseconds(1), [&] {
                        return coord_pos.load(
                                   std::memory_order_acquire) !=
                                   base ||
                               abort.load(std::memory_order_acquire);
                    });
            }
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads - 1, shards));
    util::ThreadPool::Ticket ticket;
    std::vector<std::thread> adhoc;
    if (opts_.pool != nullptr) {
        ticket = opts_.pool->launch(workers, drainShards);
    } else {
        adhoc.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            adhoc.emplace_back(drainShards, w);
    }

    engine_.emitSwizzleAnnouncements();
    std::unordered_set<std::uint64_t> inserted_keys;
    engine_.setInsertFilter(&inserted_keys);
    ft::Tensor merged;
    bool first = true;
    ExecutionStats agg;
    auto absorb = [&](ft::Tensor&& part) {
        if (first) {
            merged = std::move(part);
            first = false;
            return;
        }
        TEAAL_ASSERT(merged.root() != nullptr && part.root() != nullptr,
                     "shard output missing a root fiber");
        merged.root()->absorbDisjoint(std::move(*part.root()));
    };
    try {
        for (std::size_t s = 0; s < shards; ++s) {
            if (abort.load(std::memory_order_acquire))
                break;
            ShardResult& r = results[s];
            int expected = kUnclaimed;
            if (r.claim.compare_exchange_strong(
                    expected, kCoordinator,
                    std::memory_order_acq_rel)) {
                engine_.runShardContinue(tw, bounds[s], bounds[s + 1]);
            } else {
                {
                    std::unique_lock<std::mutex> lk(mutex);
                    done_cv.wait(lk, [&r] { return r.done; });
                }
                if (abort.load(std::memory_order_acquire))
                    break;
                dropDuplicateInserts(r.log, inserted_keys);
                engine_.replayTrace(r.log);
                r.log.clear();
                agg += r.stats;
                absorb(std::move(r.out));
                r.out = ft::Tensor();
            }
            coord_pos.store(s + 1, std::memory_order_release);
            done_cv.notify_all();
        }
    } catch (...) {
        record_error();
    }

    // Always drain the workers before unwinding: they reference this
    // frame's state (tw, results, mutex).
    coord_pos.store(shards, std::memory_order_release);
    done_cv.notify_all();
    if (opts_.pool != nullptr) {
        ticket.wait();
    } else {
        for (std::thread& t : adhoc)
            t.join();
    }
    engine_.setInsertFilter(nullptr);
    if (first_error != nullptr)
        std::rethrow_exception(first_error);

    // The coordinator's live shards accumulated into the engine's own
    // output partial and stats.
    agg += engine_.stats();
    absorb(engine_.takeOutput());

    engine_.emitTopSummary(tw);
    stats_ = agg;
    return engine_.finishOutput(std::move(merged));
}

} // namespace teaal::exec
