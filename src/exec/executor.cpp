#include "exec/executor.hpp"

namespace teaal::exec
{

Executor::Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
                   Semiring sr)
    : engine_(plan, obs, sr)
{
}

ft::Tensor
Executor::run()
{
    return engine_.run();
}

} // namespace teaal::exec
