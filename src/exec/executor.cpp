#include "exec/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "trace/spill.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace teaal::exec
{

namespace
{

/**
 * Initial slice-count cap. The plan's recorded walk is split into
 * min(units, kMaxShards) contiguous slices at work-weighted
 * boundaries. 64 slices keep dynamic scheduling balanced on any
 * realistic worker count while per-slice engine setup stays
 * negligible.
 */
constexpr std::size_t kMaxShards = 64;

/**
 * Hard cap on total slices including work-stealing splits. A split
 * halves a straggler, so a handful suffice; the cap only bounds the
 * bookkeeping (and the model's per-slice sink pool).
 */
constexpr std::size_t kSliceCap = 2 * kMaxShards;

/**
 * Split [0, n) into @p shards contiguous slices at the weighted
 * quantiles of tw.weight (each slice non-empty). Falls back to equal
 * unit counts when no weights were recorded.
 */
std::vector<std::size_t>
weightedBounds(const TopWalk& tw, std::size_t shards)
{
    const std::size_t n = tw.entries.size();
    std::vector<std::size_t> bounds(shards + 1, 0);
    bounds[shards] = n;
    if (shards <= 1)
        return bounds;
    double total = 0.0;
    if (tw.weight.size() == n) {
        for (const double w : tw.weight)
            total += w;
    }
    if (!(total > 0.0)) {
        for (std::size_t s = 0; s < shards; ++s)
            bounds[s] = s * n / shards;
        return bounds;
    }
    std::size_t s = 1;
    double acc = 0.0;
    for (std::size_t i = 0; i < n && s < shards; ++i) {
        acc += tw.weight[i];
        while (s < shards &&
               acc >= total * static_cast<double>(s) /
                          static_cast<double>(shards)) {
            std::size_t cut = std::min(i + 1, n - (shards - s));
            cut = std::max(cut, bounds[s - 1] + 1);
            bounds[s] = cut;
            ++s;
        }
    }
    for (; s < shards; ++s)
        bounds[s] = std::max(bounds[s - 1] + 1, n - (shards - s));
    return bounds;
}

/** Cross-slice state the in-order replay fixup threads through every
 *  capture (and that the coordinator's live engine shares via
 *  Engine::setInsertFilter). */
struct FixupState
{
    /// Interior output nodes already announced (shared with the live
    /// engine's insert filter).
    std::unordered_set<std::uint64_t> insertedKeys;
    /// Reduce mode: leaf path keys some earlier slice already wrote.
    std::unordered_set<std::uint64_t> reducedLeaves;
};

/**
 * Restore the serial event stream from one slice's capture, in slice
 * replay order. Two rewrites happen in a single pass:
 *
 * 1. Interior-insert dedup (all modes): output paths materialize
 *    lazily *per slice*, so an output node shared between slices
 *    announces its creation once per slice — the serial engine
 *    announces it exactly once, where the first slice's copy lands.
 *    Duplicates are dropped.
 *
 * 2. Reduce-add restoration (reduction sharding): each slice engine
 *    held a *private* partial output, so a leaf another slice already
 *    wrote looks fresh to it — its capture carries flagA=1 and the
 *    expression-add count in `a` (Engine::setReduceCapture). The
 *    serial engine instead reduced into the existing leaf: one extra
 *    semiring add, folded into the leaf's compute('a') record. For
 *    every marked write whose key was already seen, the immediately
 *    preceding compute('a') is bumped by one (or, when the expression
 *    itself had no adds, a compute('a', pe, 1) is inserted before the
 *    write). Marked writes are then normalized to the serial form
 *    (flagA=0, a=0) either way.
 *
 * Filtered captures (model split) hold no compute records — those
 * went to the slice's datapath accumulator with the shard-local
 * count. The restored adds are delivered to @p datapath_sink as
 * synthetic compute events instead, and the *logical* stream
 * accounting (logicalWalkEnds/logicalEvents) absorbs the inserted
 * events so replayed flush points stay serial-identical.
 *
 * Walk boundaries are re-indexed onto the surviving events (drops
 * shift them down, inserts up). No boundary can fall between a leaf's
 * compute and its output write — both are emitted inside one
 * leafCompute with no walkEnd between — so the insert position is
 * unambiguous.
 *
 * NOTE: the chunk/walkEnds traversal mirrors BatchBus::replay
 * (trace/batch.cpp) — change them together. The thread-equivalence
 * tests (tests/test_parallel.cpp) compare replayed streams including
 * batch boundaries against the serial path and catch any divergence.
 *
 * Returns the number of reduce adds restored (the serial run counted
 * them in ExecutionStats::computeAdds; slice engines could not).
 */
std::size_t
fixupReplayLog(trace::TraceLog& log, FixupState& fs, bool reduce,
               trace::Observer* datapath_sink)
{
    std::ptrdiff_t dlog = 0;     // logged-index shift (drops/inserts)
    std::ptrdiff_t dlogical = 0; // logical-index shift (filtered)
    std::size_t fixups = 0;
    std::size_t we = 0;
    std::size_t base = 0; // global *input* index of the chunk start
    std::vector<trace::Event>* prev_chunk = nullptr;
    trace::EventBatch synthetic;

    for (std::vector<trace::Event>& chunk : log.chunks) {
        const std::size_t in_size = chunk.size();
        std::vector<trace::Event> out;
        out.reserve(in_size + 4);
        for (std::size_t i = 0; i < in_size; ++i) {
            while (we < log.walkEnds.size() &&
                   log.walkEnds[we] == base + i) {
                log.walkEnds[we] = static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(log.walkEnds[we]) +
                    dlog);
                if (log.filtered) {
                    log.logicalWalkEnds[we] = static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(
                            log.logicalWalkEnds[we]) +
                        dlogical);
                }
                ++we;
            }
            trace::Event e = chunk[i];
            if (e.kind == trace::Event::Kind::OutputWrite && e.flagA &&
                !e.flagB && !fs.insertedKeys.insert(e.key).second) {
                --dlog;
                if (log.filtered)
                    --dlogical;
                continue;
            }
            if (reduce && e.kind == trace::Event::Kind::OutputWrite &&
                e.flagB && e.flagA) {
                if (!fs.reducedLeaves.insert(e.key).second) {
                    // An earlier slice wrote this leaf: the serial
                    // engine reduced — restore the missing add.
                    ++fixups;
                    if (log.filtered) {
                        synthetic.events.emplace_back();
                        trace::Event& c = synthetic.events.back();
                        c.kind = trace::Event::Kind::Compute;
                        c.op = 'a';
                        c.pe = e.pe;
                        c.a = 1;
                        if (e.a == 0)
                            ++dlogical; // serial had one more event
                    } else if (e.a > 0) {
                        trace::Event* prev =
                            !out.empty() ? &out.back()
                            : prev_chunk != nullptr
                                ? &prev_chunk->back()
                                : nullptr;
                        TEAAL_ASSERT(
                            prev != nullptr &&
                                prev->kind ==
                                    trace::Event::Kind::Compute &&
                                prev->op == 'a' && prev->pe == e.pe,
                            "reduce fixup: leaf write not preceded by "
                            "its compute record");
                        ++prev->a;
                    } else {
                        trace::Event c{};
                        c.kind = trace::Event::Kind::Compute;
                        c.op = 'a';
                        c.pe = e.pe;
                        c.a = 1;
                        out.push_back(c);
                        ++dlog;
                    }
                }
                e.flagA = false;
                e.a = 0;
            }
            out.push_back(e);
        }
        chunk = std::move(out);
        if (!chunk.empty())
            prev_chunk = &chunk;
        base += in_size;
    }
    while (we < log.walkEnds.size()) {
        log.walkEnds[we] = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(log.walkEnds[we]) + dlog);
        if (log.filtered) {
            log.logicalWalkEnds[we] = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(log.logicalWalkEnds[we]) +
                dlogical);
        }
        ++we;
    }
    if (log.filtered) {
        log.logicalEvents = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(log.logicalEvents) + dlogical);
        if (!synthetic.events.empty() && datapath_sink != nullptr)
            datapath_sink->onEventBatch(synthetic);
    }
    return fixups;
}

} // namespace

Executor::Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
                   Semiring sr, const ExecOptions& opts)
    : plan_(plan), sr_(sr), opts_(opts), engine_(plan, obs, sr, opts)
{
}

ft::Tensor
Executor::run()
{
    unsigned threads = opts_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (threads > 1 && plan_.shard.shardable)
        return runSharded(threads);
    ft::Tensor out = engine_.run();
    stats_ = engine_.stats();
    return out;
}

ft::Tensor
Executor::runSharded(unsigned threads)
{
    // Serial enumeration of the sharded walk fixes every unit's
    // coordinates, driver cursors, and PE ids up front (the top-walk
    // summary events are replayed after the slices, where the serial
    // merge loop would emit them). Model split (performance-model
    // hooks set, see ShardModelHooks): datapath records are consumed
    // by per-slice accumulators inside the workers; only
    // order-dependent storage records are captured and replayed.
    const bool split_model = opts_.modelHooks.enabled();
    if (split_model) {
        engine_.setTraceFilter(opts_.modelHooks.classifier,
                               opts_.modelHooks.coordinatorSink);
    }
    const ir::ShardPlan& sp = plan_.shard;
    const bool reduce_mode = sp.reduceMerge;
    // Live execution writes straight to the delivery bus, which only
    // reproduces the serial stream when slice outputs are disjoint
    // and units are top-level (no positional outer ownership).
    const bool live_ok = !reduce_mode && sp.depth == 0;

    engine_.beginRun(/*announce_swizzles=*/false);
    engine_.emitSwizzleAnnouncements();
    TopWalk tw;
    engine_.enumerateTop(tw);

    const std::size_t n = tw.entries.size();
    if (n == 0) {
        if (!tw.topSkipped)
            engine_.emitTopSummary(tw);
        stats_ = ExecutionStats{};
        return engine_.finishOutput(engine_.takeOutput());
    }

    const std::size_t init_shards = std::min(n, kMaxShards);
    const std::vector<std::size_t> bounds =
        weightedBounds(tw, init_shards);
    const std::size_t sink_cap = std::min(n, kSliceCap);

    std::vector<trace::Observer*> shard_sinks;
    if (split_model)
        shard_sinks = opts_.modelHooks.makeShardSinks(sink_cap);

    /**
     * One contiguous, exclusively-owned unit range [lo, hi). The unit
     * cursor advances under the global mutex so an idle thread can
     * steal the unexecuted upper half of any in-flight slice (the
     * victim simply observes its hi shrink at its next claim). Slices
     * stay sorted by lo and are replayed in that order — which is
     * serial unit order, so results, counters, and replayed streams
     * are byte-identical no matter where steals land.
     */
    struct Slice
    {
        std::size_t lo = 0;
        std::size_t hi = 0;
        std::size_t cursor = 0;
        std::size_t sink = 0;
        bool running = false;
        bool done = false;
        bool live = false; // coordinator executed it on the delivery bus
        trace::TraceLog log;
        /// Out-of-core capture (ExecOptions::spill): this slice's log
        /// partition. Created for every capture slice; touches disk
        /// only if the log actually crosses the segment threshold.
        std::unique_ptr<trace::SpillWriter> spillw;
        ft::Tensor out;
        ExecutionStats stats;
    };

    trace::ChunkPool chunk_pool; // outlives the slices below
    const auto arm_spill = [this](Slice& sl) {
        if (opts_.spill == nullptr)
            return;
        sl.spillw = opts_.spill->makeWriter();
        sl.log.spill = sl.spillw.get();
    };
    std::vector<std::unique_ptr<Slice>> slices;
    slices.reserve(sink_cap);
    for (std::size_t s = 0; s < init_shards; ++s) {
        auto sl = std::make_unique<Slice>();
        sl->lo = bounds[s];
        sl->hi = bounds[s + 1];
        sl->cursor = bounds[s];
        sl->sink = s;
        sl->log.pool = &chunk_pool;
        arm_spill(*sl);
        slices.push_back(std::move(sl));
    }

    std::mutex mutex;
    std::condition_variable cv;
    std::size_t replay_idx = 0;   // next slice the coordinator finalizes
    std::size_t sink_next = init_shards;
    bool abort = false;
    std::exception_ptr first_error;

    // Workers only claim within a window ahead of the replay cursor,
    // bounding how much captured (not yet replayed) trace can pile up.
    const std::size_t window =
        std::max<std::size_t>(8, 4 * static_cast<std::size_t>(threads));

    auto record_error = [&]() {
        {
            std::lock_guard<std::mutex> lk(mutex);
            if (first_error == nullptr)
                first_error = std::current_exception();
            abort = true;
        }
        cv.notify_all();
    };

    // Claim work under the lock: the first unclaimed slice in the
    // window, else steal — split the largest unexecuted remainder of
    // an in-flight slice and claim its upper half.
    auto claim_work = [&]() -> Slice* {
        const std::size_t limit =
            std::min(slices.size(), replay_idx + window);
        for (std::size_t i = replay_idx; i < limit; ++i) {
            Slice* s = slices[i].get();
            if (!s->running && !s->done) {
                s->running = true;
                return s;
            }
        }
        // Reduce-merge partials fold per slice, so the partition IS
        // the fp summation grouping: it must stay a pure function of
        // plan and data. Never split reduce slices — idle workers
        // fall back to waiting for unclaimed whole slices.
        if (reduce_mode)
            return nullptr;
        if (slices.size() >= kSliceCap || sink_next >= sink_cap)
            return nullptr;
        std::size_t best = limit;
        std::size_t best_rem = 1; // a split needs >= 2 remaining units
        for (std::size_t i = replay_idx; i < limit; ++i) {
            Slice* s = slices[i].get();
            if (s->done)
                continue;
            const std::size_t rem = s->hi - s->cursor;
            if (rem > best_rem) {
                best_rem = rem;
                best = i;
            }
        }
        if (best == limit)
            return nullptr;
        Slice* victim = slices[best].get();
        const std::size_t mid =
            victim->cursor + (victim->hi - victim->cursor + 1) / 2;
        auto stolen = std::make_unique<Slice>();
        stolen->lo = mid;
        stolen->hi = victim->hi;
        stolen->cursor = mid;
        stolen->sink = sink_next++;
        stolen->running = true;
        stolen->log.pool = &chunk_pool;
        arm_spill(*stolen);
        victim->hi = mid;
        Slice* p = stolen.get();
        slices.insert(slices.begin() +
                          static_cast<std::ptrdiff_t>(best) + 1,
                      std::move(stolen));
        return p;
    };

    // Execute one claimed slice on a fresh capture engine, advancing
    // the shared cursor unit by unit so thieves can shrink hi.
    auto work_slice = [&](Slice* s) {
        try {
            TEAAL_FAILPOINT("exec.executor.slice");
            Engine eng(plan_, s->log, sr_, opts_);
            if (split_model) {
                eng.setTraceFilter(opts_.modelHooks.classifier,
                                   shard_sinks[s->sink]);
            }
            if (reduce_mode)
                eng.setReduceCapture(true);
            eng.beginShard();
            for (;;) {
                std::size_t u;
                {
                    std::lock_guard<std::mutex> lk(mutex);
                    if (abort || s->cursor >= s->hi)
                        break;
                    u = s->cursor++;
                }
                eng.executeUnit(tw, u);
            }
            eng.finishShard();
            s->out = eng.takeOutput();
            s->stats = eng.stats();
        } catch (...) {
            record_error();
        }
        {
            std::lock_guard<std::mutex> lk(mutex);
            s->done = true;
        }
        cv.notify_all();
    };

    auto drain = [&](unsigned) {
        for (;;) {
            Slice* s = nullptr;
            {
                std::unique_lock<std::mutex> lk(mutex);
                if (abort || replay_idx >= slices.size())
                    return;
                s = claim_work();
                if (s == nullptr) {
                    cv.wait_for(lk, std::chrono::milliseconds(1));
                    continue;
                }
            }
            work_slice(s);
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads - 1, n));
    util::ThreadPool::Ticket ticket;
    std::vector<std::thread> adhoc;
    if (opts_.pool != nullptr) {
        ticket = opts_.pool->launch(workers, drain);
    } else {
        adhoc.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            adhoc.emplace_back(drain, w);
    }

    FixupState fixup_state;
    engine_.setInsertFilter(&fixup_state.insertedKeys);
    ft::AbsorbContext actx;
    actx.einsum = plan_.output.name;
    actx.rankIds = plan_.output.productionOrder.empty()
                       ? std::vector<std::string>{"_S"}
                       : plan_.output.productionOrder;
    ft::Tensor merged;
    bool first_merge = true;
    ExecutionStats agg;
    std::size_t fixup_adds = 0;
    auto absorb = [&](ft::Tensor&& part) {
        if (first_merge) {
            merged = std::move(part);
            first_merge = false;
            return;
        }
        if (part.root() == nullptr)
            return;
        TEAAL_ASSERT(merged.root() != nullptr,
                     "shard output missing a root fiber");
        if (reduce_mode) {
            merged.root()->absorbReduce(std::move(*part.root()),
                                        sr_.add, &actx);
        } else {
            merged.root()->absorbDisjoint(std::move(*part.root()),
                                          &actx);
        }
    };

    // The coordinator walks slices strictly in begin order:
    // live-executing (disjoint depth-0) or capture-executing every
    // slice no worker got to first, and replaying worker captures
    // otherwise (after the in-order fixup pass).
    try {
        for (;;) {
            Slice* s = nullptr;
            bool execute_here = false;
            {
                std::unique_lock<std::mutex> lk(mutex);
                if (abort || replay_idx >= slices.size())
                    break;
                s = slices[replay_idx].get();
                if (!s->running && !s->done) {
                    s->running = true;
                    s->live = live_ok;
                    execute_here = true;
                } else if (!s->done) {
                    cv.wait(lk, [&] { return s->done || abort; });
                    if (abort)
                        break;
                }
            }
            if (execute_here && s->live) {
                for (;;) {
                    std::size_t u;
                    {
                        std::lock_guard<std::mutex> lk(mutex);
                        if (abort || s->cursor >= s->hi)
                            break;
                        u = s->cursor++;
                    }
                    engine_.executeUnit(tw, u);
                }
                {
                    std::lock_guard<std::mutex> lk(mutex);
                    s->done = true;
                }
                cv.notify_all();
            } else if (execute_here) {
                work_slice(s);
            }
            if (!s->live) {
                {
                    std::unique_lock<std::mutex> lk(mutex);
                    if (!s->done)
                        cv.wait(lk,
                                [&] { return s->done || abort; });
                    if (abort)
                        break;
                }
                trace::Observer* fixup_sink =
                    split_model ? opts_.modelHooks.coordinatorSink
                                : nullptr;
                if (s->spillw != nullptr && s->spillw->frames() > 0) {
                    // Spilled slice: stream the on-disk frames back
                    // first (they are a prefix of the slice's stream,
                    // in write order), then fall through to the
                    // residual in-memory tail — which the capture
                    // bus's counter reset left frame-relative, i.e. a
                    // valid stand-alone log.
                    s->spillw->seal();
                    trace::SpillReader reader(s->spillw->path());
                    trace::TraceLog frame;
                    while (reader.next(frame)) {
                        fixup_adds += fixupReplayLog(
                            frame, fixup_state, reduce_mode,
                            fixup_sink);
                        engine_.replayTrace(frame);
                        frame.clear();
                    }
                    s->spillw->discard();
                }
                fixup_adds += fixupReplayLog(
                    s->log, fixup_state, reduce_mode, fixup_sink);
                engine_.replayTrace(s->log);
                s->log.clear();
                agg += s->stats;
                absorb(std::move(s->out));
                s->out = ft::Tensor();
            }
            {
                std::lock_guard<std::mutex> lk(mutex);
                ++replay_idx;
            }
            cv.notify_all();
        }
    } catch (...) {
        record_error();
    }

    // Always drain the workers before unwinding: they reference this
    // frame's state (tw, slices, mutex).
    {
        std::lock_guard<std::mutex> lk(mutex);
        replay_idx = slices.size();
    }
    cv.notify_all();
    if (opts_.pool != nullptr) {
        // wait() rethrows anything a drain job threw outside
        // work_slice's own catch (e.g. an allocation failure in
        // claim_work); fold it into the run's first error rather than
        // letting it preempt an earlier, more specific one.
        try {
            ticket.wait();
        } catch (...) {
            std::lock_guard<std::mutex> lk(mutex);
            if (first_error == nullptr)
                first_error = std::current_exception();
        }
    } else {
        for (std::thread& t : adhoc)
            t.join();
    }
    engine_.setInsertFilter(nullptr);
    if (first_error != nullptr)
        std::rethrow_exception(first_error);

    // The coordinator's live slices accumulated into the delivery
    // engine's own output partial and stats; the reduce adds restored
    // during replay were counted by the serial run but invisible to
    // the slice engines.
    agg += engine_.stats();
    absorb(engine_.takeOutput());
    agg.computeAdds += fixup_adds;

    if (!tw.topSkipped)
        engine_.emitTopSummary(tw);
    stats_ = agg;
    return engine_.finishOutput(std::move(merged));
}

} // namespace teaal::exec
