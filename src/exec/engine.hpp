/**
 * @file
 * The loop-nest execution engine: the recursion, variable-table, and
 * output-materialization core of the interpreter (paper §4.3),
 * extracted from the old monolithic executor.
 *
 * The engine walks one EinsumPlan over real fibertrees. Each loop
 * rank's fibers are co-iterated by the strategy the planner selected
 * (exec/coiter_strategy.hpp), and trace events stream to the observer
 * through the batched trace bus (trace/batch.hpp) instead of one
 * virtual call per coordinate.
 *
 * `exec::Executor` (executor.hpp) is the public façade; use it unless
 * you are extending the execution layer itself.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/coiter_strategy.hpp"
#include "fibertree/coiter.hpp"
#include "ir/plan.hpp"
#include "trace/batch.hpp"
#include "trace/observer.hpp"

namespace teaal::exec
{

/**
 * Per-execution knobs that vary a run without touching the plan (so
 * compiled plans can be shared across runs and ablations).
 */
struct ExecOptions
{
    /**
     * Override the planned co-iteration strategy of specific loop
     * ranks, keyed by rank name (the intersection-ablation knob).
     * Unknown rank names are ignored; an override that does not apply
     * to a loop's driver shape (e.g. Gallop on a 3-driver union) falls
     * back to the two-finger walk, like a plan-time choice would.
     */
    std::map<std::string, ir::CoiterStrategy> coiterOverrides;
};

/** Operator redefinition for Einsum evaluation. */
struct Semiring
{
    using BinOp = double (*)(double, double);

    BinOp multiply;
    BinOp add;
    double multIdentity;
    double addIdentity;

    /** Ordinary (x, +) arithmetic. */
    static Semiring arithmetic();

    /** SSSP: x = addition, + = minimum. */
    static Semiring minPlus();

    /** BFS-style: x = select-right, + = logical or. */
    static Semiring orSelect();

    /** Identity comparison (same operators and identities). */
    bool
    operator==(const Semiring& o) const
    {
        return multiply == o.multiply && add == o.add &&
               multIdentity == o.multIdentity &&
               addIdentity == o.addIdentity;
    }
};

/** Functional statistics of one execution. */
struct ExecutionStats
{
    std::size_t computeMuls = 0;
    std::size_t computeAdds = 0;
    std::size_t leafVisits = 0;
    std::size_t outputWrites = 0;

    bool
    operator==(const ExecutionStats& o) const
    {
        return computeMuls == o.computeMuls &&
               computeAdds == o.computeAdds &&
               leafVisits == o.leafVisits &&
               outputWrites == o.outputWrites;
    }
};

/** Interprets one EinsumPlan (the core behind exec::Executor). */
class Engine
{
  public:
    /**
     * @param plan Built by ir::buildPlan; must outlive the engine.
     * @param obs  Trace sink; must outlive the engine.
     */
    Engine(const ir::EinsumPlan& plan, trace::Observer& obs, Semiring sr,
           const ExecOptions& opts = {});

    /**
     * Run the loop nest. Returns the output tensor in its declared
     * storage rank order (reordered from production order when the
     * mapping requires it, with the swizzle reported to the observer).
     * All buffered trace batches are flushed before returning.
     */
    ft::Tensor run();

    const ExecutionStats& stats() const { return stats_; }

    /** The trace bus (for batching diagnostics: event/batch counts). */
    const trace::BatchBus& bus() const { return bus_; }

  private:
    struct TensorState
    {
        /// view[l] is the fiber window at prepared level l; valid for
        /// l < validDepth.
        std::vector<ft::FiberView> view;
        /// Pending range restrictions set by Slice actions before the
        /// level's view exists ({-1,-1} = none).
        std::vector<std::pair<ft::Coord, ft::Coord>> pending;
        int validDepth = 1;
        double leaf = 0.0;
        bool leafValid = false;
        bool absent = false;
    };

    struct ActionRef
    {
        int input;
        const ir::LevelAction* action;
    };

    struct ViewUndo
    {
        int input;
        int level;
        ft::FiberView view;
        std::pair<ft::Coord, ft::Coord> pending;
    };

    struct StateUndo
    {
        int input;
        int validDepth;
        double leaf;
        bool leafValid;
        bool absent;
    };

    /** Per-loop-level scratch buffers (recursion depth is unique per
     *  loop, so reuse avoids hot-path allocation). */
    struct Scratch
    {
        std::vector<ft::FiberView> views;
        std::vector<std::size_t> pos;
        std::vector<std::size_t> scans;
        std::vector<bool> present;
        std::vector<ViewUndo> viewUndo;
        std::vector<StateUndo> stateUndo;
        std::vector<ft::Coord> savedVars;
        std::vector<int> savedSlots;
    };

    void runLoop(std::size_t loop, std::uint64_t pe);
    void walk(std::size_t loop, std::uint64_t pe);
    void denseDrive(std::size_t loop, std::uint64_t pe);

    /** PE id for coordinate @p c at walk position @p ordinal. */
    std::uint64_t nextPe(const ir::LoopRank& lr, ft::Coord c,
                         std::size_t ordinal, std::uint64_t pe) const;

    /** Range end for upper-partition ranks (kNoRangeEnd otherwise). */
    ft::Coord rangeEnd(const ir::LoopRank& lr, ft::Coord c,
                       const std::vector<ft::FiberView>& views,
                       const std::vector<std::size_t>& pos,
                       const std::vector<bool>& present) const;

    /**
     * Per-coordinate body shared by every walk strategy. @p driver_pos
     * holds each driver's current position (empty for dense drive).
     * Returns false if the point was skipped (lookup miss).
     */
    bool atCoordinate(std::size_t loop, ft::Coord c, ft::Coord range_end,
                      const std::vector<std::size_t>& driver_pos,
                      const std::vector<bool>& driver_present,
                      std::uint64_t pe);

    void leafCompute(std::uint64_t pe);

    void descend(int input, int level, const ft::Payload& payload);
    void descendOutput(std::size_t level, ft::Coord c, std::uint64_t pe);

    ft::Coord evalExpr(const ir::LevelAction& a,
                       const std::vector<int>& slots) const;

    const ir::EinsumPlan& plan_;
    trace::BatchBus bus_;
    Semiring sr_;
    ExecutionStats stats_;

    /// Effective co-iteration strategy per loop: the plan's choice
    /// with any ExecOptions overrides applied at construction.
    std::vector<ir::CoiterStrategy> coiter_;

    // Per-loop action indices (built once). Pre-lookups fire on loop
    // entry (constant/earlier-bound indices whose parent level is
    // already descended); post-lookups fire per coordinate.
    std::vector<std::vector<ActionRef>> driversAt_;
    std::vector<std::vector<ActionRef>> slicesAt_;
    std::vector<std::vector<ActionRef>> lookupsAt_;
    std::vector<std::vector<ActionRef>> preLookupsAt_;
    std::vector<std::vector<std::vector<int>>> preLookupSlots_;
    std::vector<std::vector<std::size_t>> outLevelsAt_;

    // Variable table.
    std::vector<std::string> varNames_;
    std::vector<int> varBase_; // slot of the base variable (or -1)
    std::vector<ft::Coord> varValues_;
    std::vector<std::vector<int>> loopVarSlots_;   // per loop
    /// Pre-resolved variable slots per lookup action, parallel to
    /// lookupsAt_[loop].
    std::vector<std::vector<std::vector<int>>> lookupSlots_;
    std::vector<int> outVarSlots_;                 // per output level

    // Execution state.
    std::vector<TensorState> states_;
    std::vector<Scratch> scratch_;

    // Output production state. Coordinates are only *bound* by
    // descendOutput; the path materializes lazily at the first leaf
    // write so skipped points never create empty fibers (fibertrees
    // omit empty payloads).
    ft::Tensor out_;
    std::vector<ft::Coord> outCoord_;
    std::vector<ft::Coord> outMaterialized_;
    bool outPathValid_ = false;
    ft::Fiber* leafFiber_ = nullptr;
    std::size_t leafPos_ = 0;
    bool leafFresh_ = false;
    ft::Coord leafCoord_ = 0;
    std::uint64_t leafHash_ = 0;
    bool scalarOutput_ = false;

    /** Materialize the bound output path; sets leafFiber_/leafPos_. */
    void materializeOutputPath(std::uint64_t pe);
};

} // namespace teaal::exec
