/**
 * @file
 * The loop-nest execution engine: the recursion, variable-table, and
 * output-materialization core of the interpreter (paper §4.3),
 * extracted from the old monolithic executor.
 *
 * The engine walks one EinsumPlan over real fibertrees. Each loop
 * rank's fibers are co-iterated by the strategy the planner selected
 * (exec/coiter_strategy.hpp), and trace events stream to the observer
 * through the batched trace bus (trace/batch.hpp) instead of one
 * virtual call per coordinate.
 *
 * `exec::Executor` (executor.hpp) is the public façade; use it unless
 * you are extending the execution layer itself.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/coiter_strategy.hpp"
#include "fibertree/coiter.hpp"
#include "ir/plan.hpp"
#include "trace/batch.hpp"
#include "trace/observer.hpp"
#include "util/cancel.hpp"

namespace teaal::util
{
class ThreadPool;
} // namespace teaal::util

namespace teaal::storage
{
class PackedTensor;
} // namespace teaal::storage

namespace teaal::trace
{
class SpillContext;
} // namespace teaal::trace

namespace teaal::exec
{

/**
 * The performance model's hooks into sharded execution: when set (and
 * the run has no extra trace observers needing the full stream), each
 * worker's capture-mode trace bus routes order-independent datapath
 * records straight into a per-shard model accumulator instead of
 * logging them for the coordinator's in-order replay — the model's
 * Amdahl floor moves into the shards. The coordinator's own bus
 * routes its datapath records (live-executed shards, the top-walk
 * summary) to @ref coordinatorSink; only order-dependent storage
 * records still replay serially. Results stay byte-identical: every
 * datapath quantity is an exact (dyadic-rational) sum, and the
 * event/batch diagnostics are accounted as if unfiltered.
 */
struct ShardModelHooks
{
    /// Record classification (borrowed; typically
    /// model::ModelObserver::classifier()).
    const trace::RecordClassifier* classifier = nullptr;

    /// Create the per-shard datapath sinks, [0, shards). Called once
    /// on the coordinating thread before workers start; sink s is
    /// then fed only by the thread executing shard s.
    std::function<std::vector<trace::Observer*>(std::size_t shards)>
        makeShardSinks;

    /// Sink for datapath records the coordinator emits itself.
    trace::Observer* coordinatorSink = nullptr;

    bool
    enabled() const
    {
        return classifier != nullptr && coordinatorSink != nullptr &&
               static_cast<bool>(makeShardSinks);
    }
};

/**
 * Per-execution knobs that vary a run without touching the plan (so
 * compiled plans can be shared across runs and ablations).
 */
struct ExecOptions
{
    /**
     * Override the planned co-iteration strategy of specific loop
     * ranks, keyed by rank name (the intersection-ablation knob).
     * A rank name missing from the plan raises teaal::DiagnosticError
     * (section "exec") naming the unknown rank; an override that does
     * not apply to a loop's driver shape (e.g. Gallop on a 3-driver
     * union) falls back to the two-finger walk, like a plan-time
     * choice would.
     */
    std::map<std::string, ir::CoiterStrategy> coiterOverrides;

    /**
     * Worker threads for sharded execution (exec::Executor): 1 runs
     * the classic serial path, 0 means one per hardware thread, and
     * N >= 2 shards the outermost loop rank across N workers when the
     * plan is shardable (ir::analyzeSharding) — results and delivered
     * trace batches are byte-identical at every thread count.
     */
    unsigned threads = 1;

    /**
     * Worker pool to draw shard workers from (borrowed; must outlive
     * the run). Null makes the executor spawn ad-hoc threads instead
     * — same semantics, slightly higher per-run cost.
     */
    util::ThreadPool* pool = nullptr;

    /**
     * Model split for sharded runs (see ShardModelHooks). Unset —
     * the default, and what non-pipeline callers get — captures and
     * replays the full trace, delivering every record to the
     * observer like PR 3 always has.
     */
    ShardModelHooks modelHooks;

    /**
     * Cooperative cancellation: token + deadline + start point,
     * value-copied into every worker engine of a sharded run. When
     * armed, the engine polls at walk-batch granularity (amortized
     * against the trace-batch flush) and unwinds with
     * util::CancelledError; disarmed (the default) costs one branch
     * per walk end. Polling emits no trace events, so a run that is
     * never cancelled is byte-identical to one with no token.
     */
    util::CancelCheck cancel;

    /**
     * Out-of-core trace capture for sharded runs (borrowed; must
     * outlive the run). When set, every slice's capture log drains to
     * a per-slice segment file under the context's directory whenever
     * it crosses the segment-size threshold, and the coordinator
     * replays the frames back in order — bounding peak resident trace
     * at O(threads x segmentBytes) instead of O(total trace), with
     * results, counters, and delivered streams byte-identical to the
     * resident path. Null (the default) keeps everything resident.
     */
    trace::SpillContext* spill = nullptr;
};

/**
 * The recorded shardable walk of a plan: one entry per schedulable
 * *unit* of work, carrying everything `atCoordinate` needs to process
 * it on any engine clone (driver positions/presence, the bound
 * coordinate range, the PE id with its serial walk ordinal already
 * folded in). The walk-summary counters reproduce the trace events
 * the serial walk would emit after its merge loop.
 *
 * Depth 0 (ShardPlan depth 0, the common case): a unit is one
 * outermost-loop coordinate. Depth 1 (inner-rank sharding, when the
 * top rank itself cannot be sharded): a unit is one *loop-1*
 * coordinate, flattened across all outer coordinates; `outers`
 * records each outer coordinate's enter state and loop-1 walk
 * summary, and ownership of the outer's events is positional — the
 * engine executing the outer's first unit emits its enter events
 * unmuted, the engine executing its last unit emits the loop-1
 * summary. An outer whose loop-1 walk produced nothing still owns one
 * placeholder ("barren") unit so its enter events are scheduled.
 */
struct TopWalk
{
    struct Entry
    {
        ft::Coord c = 0;
        ft::Coord rangeEnd = 0;
        std::uint64_t pe = 0;
    };

    std::vector<Entry> entries;

    /// Per-entry driver cursors/presence, entries.size() x drivers
    /// (row-major; empty for driverless dense drives).
    std::vector<std::size_t> pos;
    std::vector<char> present;

    /// Driver count of the *sharded* loop (loop 0 at depth 0, loop 1
    /// at depth 1).
    std::size_t drivers = 0;

    /// Estimated work per entry: 1 + the present drivers' child-fiber
    /// occupancy scaled by ShardPlan::driverWeight (deeper-occupancy
    /// estimate). Work-weighted shard boundaries split on this.
    std::vector<double> weight;

    /// ShardPlan::depth of the enumeration (0 or 1).
    std::size_t depth = 0;

    /// Depth 1 only: the loop-0 pre-lookups missed — the serial run
    /// executes nothing and emits no top-walk summary.
    bool topSkipped = false;

    // Top-walk summary (the serial walk's end-of-merge trace events);
    // always describes *loop 0*, whose driver count is topDrivers.
    std::size_t steps = 0;
    std::size_t matches = 0;
    std::vector<std::size_t> scans;
    std::size_t topDrivers = 0;

    /// Depth 1 only: per outer coordinate — its entry data, loop-0
    /// driver cursors, whether the serial run entered it (post-lookup
    /// hit) and walked loop 1 (pre-lookup hit), its unit range, and
    /// its recorded loop-1 walk summary.
    struct Outer
    {
        Entry e;
        std::vector<std::size_t> pos;
        std::vector<char> present;
        std::size_t firstUnit = 0;
        std::size_t units = 0;
        bool entered = false;
        bool walked = false;
        bool barren = false;
        std::size_t steps = 0;
        std::size_t matches = 0;
        std::vector<std::size_t> scans;
    };
    std::vector<Outer> outers;

    /// Depth 1 only: owning outer index per entry.
    std::vector<std::size_t> outerOf;
};

/** Operator redefinition for Einsum evaluation. */
struct Semiring
{
    using BinOp = double (*)(double, double);

    BinOp multiply;
    BinOp add;
    double multIdentity;
    double addIdentity;

    /** Ordinary (x, +) arithmetic. */
    static Semiring arithmetic();

    /** SSSP: x = addition, + = minimum. */
    static Semiring minPlus();

    /** BFS-style: x = select-right, + = logical or. */
    static Semiring orSelect();

    /** Identity comparison (same operators and identities). */
    bool
    operator==(const Semiring& o) const
    {
        return multiply == o.multiply && add == o.add &&
               multIdentity == o.multIdentity &&
               addIdentity == o.addIdentity;
    }
};

/** Functional statistics of one execution. */
struct ExecutionStats
{
    std::size_t computeMuls = 0;
    std::size_t computeAdds = 0;
    std::size_t leafVisits = 0;
    std::size_t outputWrites = 0;

    bool
    operator==(const ExecutionStats& o) const
    {
        return computeMuls == o.computeMuls &&
               computeAdds == o.computeAdds &&
               leafVisits == o.leafVisits &&
               outputWrites == o.outputWrites;
    }

    /** Accumulate (per-shard stats sum to the serial run's). */
    ExecutionStats&
    operator+=(const ExecutionStats& o)
    {
        computeMuls += o.computeMuls;
        computeAdds += o.computeAdds;
        leafVisits += o.leafVisits;
        outputWrites += o.outputWrites;
        return *this;
    }
};

/** Interprets one EinsumPlan (the core behind exec::Executor). */
class Engine
{
  public:
    /**
     * @param plan Built by ir::buildPlan; must outlive the engine.
     * @param obs  Trace sink; must outlive the engine.
     */
    Engine(const ir::EinsumPlan& plan, trace::Observer& obs, Semiring sr,
           const ExecOptions& opts = {});

    /**
     * Capture-mode engine: trace events are recorded into @p log
     * (with walk boundaries) instead of being delivered — the
     * per-shard configuration of parallel execution. @p log must
     * outlive the engine.
     */
    Engine(const ir::EinsumPlan& plan, trace::TraceLog& log, Semiring sr,
           const ExecOptions& opts = {});

    /**
     * Run the loop nest. Returns the output tensor in its declared
     * storage rank order (reordered from production order when the
     * mapping requires it, with the swizzle reported to the observer).
     * All buffered trace batches are flushed before returning.
     */
    ft::Tensor run();

    const ExecutionStats& stats() const { return stats_; }

    /** The trace bus (for batching diagnostics: event/batch counts). */
    const trace::BatchBus& bus() const { return bus_; }

    // ----------------------------------------------- sharded execution
    // The pieces exec::Executor composes for the parallel path. Only
    // meaningful on plans ir::analyzeSharding accepts; the serial
    // run() is self-contained and does not use them.

    /**
     * Initialize per-run state (fresh output tensor, tensor cursors,
     * scratch). run() does this implicitly; the parallel path calls it
     * before enumerateTop()/runShard(). When @p announce_swizzles is
     * false the per-input swizzle events are suppressed (the
     * coordinator emits them once via emitSwizzleAnnouncements so the
     * merged stream carries them exactly once, up front, like a serial
     * run).
     */
    void beginRun(bool announce_swizzles);

    /**
     * Enumerate the plan's schedulable units into @p tw — no trace
     * emission except, at shard depth 1, the loop-0 pre-lookup events
     * (which lead the serial stream and are emitted live exactly
     * once, on this engine's bus). Requires beginRun(). At depth 0
     * the outermost walk is recorded match by match; at depth 1 every
     * outer coordinate is entered with the bus muted and its loop-1
     * walk recorded as units (see TopWalk).
     */
    void enumerateTop(TopWalk& tw);

    /**
     * Initialize this engine as a shard body: fresh run state (no
     * swizzle announcements) plus, at shard depth 1, a *muted*
     * re-application of the loop-0 pre-lookups (their state is needed
     * to re-enter outer coordinates; their events were already
     * emitted once by the enumerating engine).
     */
    void beginShard();

    /**
     * Execute unit @p u of a recorded walk. Units given to one engine
     * must be a contiguous ascending range (a work-stealing slice);
     * the partial output accumulates in this engine, retrieved once
     * via takeOutput(). At depth 1 the owning outer coordinate is
     * entered on demand — unmuted exactly when @p u is the outer's
     * first unit — and its loop-1 walk summary is emitted when @p u
     * is its last, so the merged stream is byte-identical to a serial
     * run no matter where slice boundaries (or steals) fall.
     */
    void executeUnit(const TopWalk& tw, std::size_t u);

    /**
     * Close an outer coordinate left open by a slice ending mid-outer
     * (state restore only — the events are owned positionally) and
     * flush the bus: the tail of a shard body.
     */
    void finishShard();

    /**
     * Reduction sharding: mark leaf output writes that were fresh *in
     * this engine* (flagA, with the expression-add count riding in
     * the event's `a` field). The coordinator's replay fixup turns
     * every marked write whose leaf an earlier shard already wrote
     * back into the reduce-add form the serial engine emitted.
     */
    void setReduceCapture(bool on) { markReduce_ = on; }

    /**
     * Shared output-node insert dedup (parallel path). Every shard
     * materializes output paths lazily from scratch, so an output
     * node shared between shards (sharded rank deeper than the
     * output's top rank) would announce its creation once per shard;
     * the serial engine announces it exactly once. With a filter set,
     * a non-leaf insert event is emitted only when its path key enters
     * the set for the first time — the coordinator shares one set
     * between live execution and capture replay (single-threaded, in
     * stream order).
     */
    void
    setInsertFilter(std::unordered_set<std::uint64_t>* filter)
    {
        insertFilter_ = filter;
    }

    /**
     * Route datapath-class records on this engine's trace bus to
     * @p sink per @p cls (see trace::BatchBus::setFilter). Set on
     * worker capture engines (per-shard accumulator) and on the
     * coordinator's delivery engine (coordinator sink) when the model
     * split is active; call before any event is produced.
     */
    void
    setTraceFilter(const trace::RecordClassifier* cls,
                   trace::Observer* sink)
    {
        bus_.setFilter(cls, sink);
    }

    /** Emit the per-input swizzle announcements a serial run makes. */
    void emitSwizzleAnnouncements();

    /** Emit the top walk's end-of-merge events (coIterate, per-driver
     *  coordScans, walkEnd), exactly as the serial walk would. */
    void emitTopSummary(const TopWalk& tw);

    /**
     * Apply the declared-order reorder to the merged production-order
     * output (announcing the online swizzle) and flush the bus: the
     * tail of a serial run(), applied once to the merged result.
     */
    ft::Tensor finishOutput(ft::Tensor produced);

    /** Re-emit a shard's captured trace through this engine's bus. */
    void replayTrace(const trace::TraceLog& log);

    /** Move the (fresh, empty) output tensor out of a begun run — the
     *  zero-top-matches degenerate of the parallel path. */
    ft::Tensor takeOutput() { return std::move(out_); }

  private:
    struct TensorState
    {
        /// Packed backend (null for pointer inputs): views are slices
        /// of this tensor's packed rank buffers and descend goes
        /// through its segment arrays instead of ft::Payload.
        const storage::PackedTensor* packed = nullptr;
        /// view[l] is the fiber window at prepared level l; valid for
        /// l < validDepth.
        std::vector<ft::FiberView> view;
        /// Pending range restrictions set by Slice actions before the
        /// level's view exists ({-1,-1} = none).
        std::vector<std::pair<ft::Coord, ft::Coord>> pending;
        int validDepth = 1;
        double leaf = 0.0;
        bool leafValid = false;
        bool absent = false;
    };

    struct ActionRef
    {
        int input;
        const ir::LevelAction* action;
    };

    struct ViewUndo
    {
        int input;
        int level;
        ft::FiberView view;
        std::pair<ft::Coord, ft::Coord> pending;
    };

    struct StateUndo
    {
        int input;
        int validDepth;
        double leaf;
        bool leafValid;
        bool absent;
    };

    /** Undo record of one loop-entry (pre-)lookup application. */
    struct PreUndo
    {
        int input;
        int validDepth;
        double leaf;
        bool leafValid;
        bool absent;
        ft::FiberView childView;
        bool hadChild;
        int childLevel;
    };

    /** Per-loop-level scratch buffers (recursion depth is unique per
     *  loop, so reuse avoids hot-path allocation). */
    struct Scratch
    {
        std::vector<ft::FiberView> views;
        std::vector<std::size_t> pos;
        std::vector<std::size_t> scans;
        std::vector<bool> present;
        std::vector<ViewUndo> viewUndo;
        std::vector<StateUndo> stateUndo;
        std::vector<ft::Coord> savedVars;
        std::vector<int> savedSlots;
        std::vector<PreUndo> preUndo;
    };

    /** Shared constructor body (action indexing, variable interning,
     *  override validation). */
    void buildIndexes(const ExecOptions& opts);

    void runLoop(std::size_t loop, std::uint64_t pe);
    void walk(std::size_t loop, std::uint64_t pe);
    void denseDrive(std::size_t loop, std::uint64_t pe);

    /**
     * The strategy-dispatched merge loop of walk(), with the
     * per-coordinate action abstracted: @p sink is invoked as
     * sink(c, range_end, ordinal) with scratch_[loop].pos/present
     * describing the drivers at the match, returning false to stop.
     * Emits no trace events; per-driver scans land in
     * scratch_[loop].scans. Serial walks and top-walk enumeration
     * share this body so they cannot diverge.
     */
    template <typename Sink>
    WalkCounts walkCore(std::size_t loop, Sink&& sink);

    /** Driverless counterpart of walkCore (dense coordinate drive). */
    template <typename Sink>
    WalkCounts denseCore(std::size_t loop, Sink&& sink);

    /** PE id for coordinate @p c at walk position @p ordinal. */
    std::uint64_t nextPe(const ir::LoopRank& lr, ft::Coord c,
                         std::size_t ordinal, std::uint64_t pe) const;

    /** Range end for upper-partition ranks (kNoRangeEnd otherwise). */
    ft::Coord rangeEnd(const ir::LoopRank& lr, ft::Coord c,
                       const std::vector<ft::FiberView>& views,
                       const std::vector<std::size_t>& pos,
                       const std::vector<bool>& present) const;

    /**
     * Per-coordinate body shared by every walk strategy. @p driver_pos
     * holds each driver's current position (empty for dense drive).
     * Returns false if the point was skipped (lookup miss).
     * Equivalent to atCoordinateEnter + runLoop(loop+1) + Exit.
     */
    bool atCoordinate(std::size_t loop, ft::Coord c, ft::Coord range_end,
                      const std::vector<std::size_t>& driver_pos,
                      const std::vector<bool>& driver_present,
                      std::uint64_t pe);

    /**
     * The enter half of atCoordinate: bind variables, descend the
     * drivers, apply slices and per-coordinate lookups, descend the
     * output path. Undo state persists in scratch_[loop] until the
     * matching atCoordinateExit — inner-rank sharding holds an outer
     * coordinate open across many units this way. Returns false on a
     * lookup miss (Exit must still be called).
     */
    bool atCoordinateEnter(std::size_t loop, ft::Coord c,
                           ft::Coord range_end,
                           const std::vector<std::size_t>& driver_pos,
                           const std::vector<bool>& driver_present,
                           std::uint64_t pe);

    /** Restore variables, views, and tensor state saved by the
     *  matching atCoordinateEnter (emits no events). */
    void atCoordinateExit(std::size_t loop);

    /**
     * Apply the loop-entry lookups of @p loop, recording undo state in
     * scratch_[loop].preUndo. Returns true when a lookup missed and
     * the loop must be skipped. undoPreLookups reverses it.
     */
    bool applyPreLookups(std::size_t loop, std::uint64_t pe);
    void undoPreLookups(std::size_t loop);

    /** Depth-1 enumeration body of enumerateTop (see TopWalk). */
    void enumerateInner(TopWalk& tw);

    /**
     * Enter outer coordinate @p oi of a depth-1 walk on this engine:
     * atCoordinateEnter(0) plus the loop-1 pre-lookups, muted unless
     * @p own (positional event ownership — only the engine executing
     * the outer's first unit emits its events).
     */
    void openOuter(const TopWalk& tw, std::size_t oi, bool own);

    /** Undo the state applied by openOuter (no events). */
    void closeOuter();

    /** Estimated work of the current walkCore match at @p loop: 1 +
     *  present drivers' child occupancy x ShardPlan::driverWeight. */
    double entryWeight(std::size_t loop) const;

    /**
     * Amortized cancellation poll, called at walk boundaries. The
     * fast path is two loads and a compare; the real check
     * (cancelCheckpoint) runs roughly once per trace batch worth of
     * events and throws util::CancelledError naming the loop rank
     * reached.
     */
    void
    pollCancel(std::size_t loop)
    {
        if (!cancelArmed_ || bus_.eventCount() < nextCancelPoll_)
            return;
        cancelCheckpoint(loop);
    }

    /** Slow path of pollCancel: re-arm the event threshold, then
     *  check token and deadline. */
    void cancelCheckpoint(std::size_t loop);

    void leafCompute(std::uint64_t pe);

    /**
     * Backend-dispatching payload read: reports the tensor access of
     * element @p pos of @p view (at @p reported_c) to the trace bus
     * and descends — through ft::Payload for pointer inputs, through
     * the packed segment arrays for packed ones. Both backends emit
     * the identical event sequence. Callers record their undo state
     * first.
     */
    void readAndDescend(int input, int level, const ft::FiberView& view,
                        std::size_t pos, ft::Coord reported_c,
                        std::uint64_t pe);

    void descend(int input, int level, const ft::Payload& payload);
    /** Packed counterpart of descend(): child view via segment arrays
     *  (interior) or the flat value array (leaf). */
    void descendPacked(int input, int level, std::size_t pos);
    void descendOutput(std::size_t level, ft::Coord c, std::uint64_t pe);

    ft::Coord evalExpr(const ir::LevelAction& a,
                       const std::vector<int>& slots) const;

    const ir::EinsumPlan& plan_;
    trace::BatchBus bus_;
    Semiring sr_;
    ExecutionStats stats_;

    /// Effective co-iteration strategy per loop: the plan's choice
    /// with any ExecOptions overrides applied at construction.
    std::vector<ir::CoiterStrategy> coiter_;

    // Per-loop action indices (built once). Pre-lookups fire on loop
    // entry (constant/earlier-bound indices whose parent level is
    // already descended); post-lookups fire per coordinate.
    std::vector<std::vector<ActionRef>> driversAt_;
    std::vector<std::vector<ActionRef>> slicesAt_;
    std::vector<std::vector<ActionRef>> lookupsAt_;
    std::vector<std::vector<ActionRef>> preLookupsAt_;
    std::vector<std::vector<std::vector<int>>> preLookupSlots_;
    std::vector<std::vector<std::size_t>> outLevelsAt_;

    // Variable table.
    std::vector<std::string> varNames_;
    std::vector<int> varBase_; // slot of the base variable (or -1)
    std::vector<ft::Coord> varValues_;
    std::vector<std::vector<int>> loopVarSlots_;   // per loop
    /// Pre-resolved variable slots per lookup action, parallel to
    /// lookupsAt_[loop].
    std::vector<std::vector<std::vector<int>>> lookupSlots_;
    std::vector<int> outVarSlots_;                 // per output level

    // Execution state.
    std::vector<TensorState> states_;
    std::vector<Scratch> scratch_;

    // Output production state. Coordinates are only *bound* by
    // descendOutput; the path materializes lazily at the first leaf
    // write so skipped points never create empty fibers (fibertrees
    // omit empty payloads).
    ft::Tensor out_;
    std::vector<ft::Coord> outCoord_;
    std::vector<ft::Coord> outMaterialized_;
    /// Fiber of the materialized path at each level (outFiberAt_[0] =
    /// root) and the running path hash *after* folding each level's
    /// coordinate — lets materializeOutputPath resume below the
    /// deepest unchanged prefix instead of re-searching from the root
    /// on every leaf write (Fiber objects are heap-stable, so the
    /// cached pointers survive sibling inserts).
    std::vector<ft::Fiber*> outFiberAt_;
    std::vector<std::uint64_t> outHashAt_;
    bool outPathValid_ = false;
    /// Parallel-path insert dedup (null for serial runs).
    std::unordered_set<std::uint64_t>* insertFilter_ = nullptr;

    ft::Fiber* leafFiber_ = nullptr;
    std::size_t leafPos_ = 0;
    bool leafFresh_ = false;
    ft::Coord leafCoord_ = 0;
    std::uint64_t leafHash_ = 0;
    bool scalarOutput_ = false;

    // Cancellation (see ExecOptions::cancel). nextCancelPoll_ starts
    // at 0 so the first poll always runs the full check — a
    // pre-cancelled token stops a run before any unit executes.
    util::CancelCheck cancel_;
    bool cancelArmed_ = false;
    std::size_t nextCancelPoll_ = 0;

    // Sharded-execution state (see the public shard API).
    static constexpr std::size_t kNoOuter =
        static_cast<std::size_t>(-1);
    bool markReduce_ = false;      // setReduceCapture
    std::size_t unitOuter_ = kNoOuter; // outer held open by executeUnit
    bool outerPre1_ = false;       // loop-1 pre-lookups applied for it
    std::vector<std::size_t> unitPos_;   // executeUnit driver scratch
    std::vector<bool> unitPresent_;

    /** Materialize the bound output path; sets leafFiber_/leafPos_. */
    void materializeOutputPath(std::uint64_t pe);
};

} // namespace teaal::exec
