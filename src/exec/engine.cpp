#include "exec/engine.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "fibertree/transform.hpp"
#include "storage/packed.hpp"
#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace teaal::exec
{

namespace
{

/** Events between full cancellation checks — roughly one trace batch,
 *  so the poll amortizes against the flush the bus already does. */
constexpr std::size_t kCancelPollEvents = 1024;

double
opMul(double a, double b)
{
    return a * b;
}

double
opAdd(double a, double b)
{
    return a + b;
}

double
opMin(double a, double b)
{
    return a < b ? a : b;
}

double
opSelectRight(double a, double b)
{
    (void)a;
    return b;
}

double
opOr(double a, double b)
{
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
}

constexpr std::uint64_t kHashPrime = 1099511628211ULL;
constexpr ft::Coord kNoRange = -1;

/** Occupancy to pre-reserve in freshly materialized output fibers:
 *  enough to skip the first few regrowths without bloating fibers
 *  that stay tiny. */
constexpr std::size_t kOutputFiberReserve = 8;

/**
 * Merger "ways" estimate for swizzling @p t into @p target order: the
 * average occupancy of the shallowest rank that moves deeper (the
 * number of sorted runs merged per output fiber).
 */
std::size_t
estimateMergeWays(const ft::Tensor& t,
                  const std::vector<std::string>& target)
{
    const auto old_ids = t.rankIds();
    for (std::size_t lvl = 0; lvl < old_ids.size(); ++lvl) {
        const auto npos =
            std::find(target.begin(), target.end(), old_ids[lvl]);
        if (npos == target.end())
            continue;
        const auto new_lvl =
            static_cast<std::size_t>(npos - target.begin());
        if (new_lvl > lvl) {
            std::vector<std::size_t> counts;
            if (t.root())
                t.root()->elementCountsByDepth(counts);
            const std::size_t above = lvl == 0
                                          ? 1
                                          : (counts.size() >= lvl
                                                 ? counts[lvl - 1]
                                                 : 1);
            if (above > 0 && counts.size() > lvl)
                return std::max<std::size_t>(2,
                                             counts[lvl] / above + 1);
            return 2;
        }
    }
    return 2;
}

} // namespace

Semiring
Semiring::arithmetic()
{
    return {opMul, opAdd, 1.0, 0.0};
}

Semiring
Semiring::minPlus()
{
    return {opAdd, opMin, 0.0, std::numeric_limits<double>::infinity()};
}

Semiring
Semiring::orSelect()
{
    return {opSelectRight, opOr, 1.0, 0.0};
}

Engine::Engine(const ir::EinsumPlan& plan, trace::Observer& obs,
               Semiring sr, const ExecOptions& opts)
    : plan_(plan), bus_(obs), sr_(sr), out_("_uninit", {"_"}, {1})
{
    buildIndexes(opts);
}

Engine::Engine(const ir::EinsumPlan& plan, trace::TraceLog& log,
               Semiring sr, const ExecOptions& opts)
    : plan_(plan), bus_(log), sr_(sr), out_("_uninit", {"_"}, {1})
{
    buildIndexes(opts);
}

void
Engine::buildIndexes(const ExecOptions& opts)
{
    cancel_ = opts.cancel;
    cancelArmed_ = cancel_.armed();

    // A co-iteration override naming a rank this plan does not loop
    // over would silently do nothing — surface it instead.
    for (const auto& [rank, strategy] : opts.coiterOverrides) {
        (void)strategy;
        const bool known = std::any_of(
            plan_.loops.begin(), plan_.loops.end(),
            [&rank](const ir::LoopRank& lr) { return lr.name == rank; });
        if (!known) {
            diagError("exec", rank,
                      "co-iteration override names rank '", rank,
                      "', which is not a loop rank of Einsum '",
                      plan_.output.name, "'");
        }
    }

    const std::size_t nloops = plan_.loops.size();
    coiter_.reserve(nloops);
    for (const ir::LoopRank& lr : plan_.loops) {
        const auto ov = opts.coiterOverrides.find(lr.name);
        coiter_.push_back(ov != opts.coiterOverrides.end()
                              ? ov->second
                              : lr.coiter);
    }
    driversAt_.resize(nloops);
    slicesAt_.resize(nloops);
    lookupsAt_.resize(nloops);
    outLevelsAt_.resize(nloops);
    loopVarSlots_.resize(nloops);

    auto intern = [this](const std::string& name) {
        for (std::size_t i = 0; i < varNames_.size(); ++i) {
            if (varNames_[i] == name)
                return static_cast<int>(i);
        }
        varNames_.push_back(name);
        varBase_.push_back(-1);
        return static_cast<int>(varNames_.size() - 1);
    };
    auto base_var_of = [](const std::string& var) {
        std::string rank = einsum::rankOfVar(var);
        while (!rank.empty() &&
               std::isdigit(static_cast<unsigned char>(rank.back()))) {
            rank.pop_back();
        }
        return einsum::varOfRank(rank);
    };
    for (std::size_t l = 0; l < nloops; ++l) {
        for (const std::string& v : plan_.loops[l].bindsVars) {
            const int slot = intern(v);
            const std::string base = base_var_of(v);
            if (base != v)
                varBase_[static_cast<std::size_t>(slot)] = intern(base);
            loopVarSlots_[l].push_back(slot);
        }
    }

    preLookupsAt_.resize(nloops);
    for (std::size_t i = 0; i < plan_.inputs.size(); ++i) {
        const auto& actions = plan_.inputs[i].actions;
        for (std::size_t ai = 0; ai < actions.size(); ++ai) {
            const ir::LevelAction& a = actions[ai];
            const auto loop = static_cast<std::size_t>(a.loopIndex);
            TEAAL_ASSERT(loop < nloops, "action loop out of range");
            switch (a.mode) {
              case ir::LevelAction::Mode::CoIterate:
                driversAt_[loop].push_back({static_cast<int>(i), &a});
                break;
              case ir::LevelAction::Mode::Slice:
                slicesAt_[loop].push_back({static_cast<int>(i), &a});
                break;
              case ir::LevelAction::Mode::Lookup: {
                // A lookup can fire on loop *entry* when none of its
                // variables binds at this loop and its parent level
                // was descended at an earlier loop (e.g. the constant
                // plane selectors of the FFT step).
                bool var_binds_here = false;
                for (const std::string& v : a.expr.vars) {
                    const auto it = plan_.varBoundAt.find(v);
                    if (it != plan_.varBoundAt.end() &&
                        it->second == a.loopIndex)
                        var_binds_here = true;
                }
                bool parent_ready = true;
                if (ai > 0 && actions[ai - 1].loopIndex == a.loopIndex)
                    parent_ready = false;
                if (!var_binds_here && parent_ready)
                    preLookupsAt_[loop].push_back(
                        {static_cast<int>(i), &a});
                else
                    lookupsAt_[loop].push_back(
                        {static_cast<int>(i), &a});
                break;
              }
            }
        }
    }
    for (std::size_t lvl = 0; lvl < plan_.output.boundAtLoop.size();
         ++lvl) {
        const auto loop =
            static_cast<std::size_t>(plan_.output.boundAtLoop[lvl]);
        outLevelsAt_[loop].push_back(lvl);
        outVarSlots_.push_back(intern(plan_.output.vars[lvl]));
    }

    // Pre-resolve lookup expression variables to slots.
    lookupSlots_.resize(nloops);
    preLookupSlots_.resize(nloops);
    for (std::size_t l = 0; l < nloops; ++l) {
        for (const ActionRef& ar : lookupsAt_[l]) {
            std::vector<int> slots;
            for (const std::string& v : ar.action->expr.vars)
                slots.push_back(intern(v));
            lookupSlots_[l].push_back(std::move(slots));
        }
        for (const ActionRef& ar : preLookupsAt_[l]) {
            std::vector<int> slots;
            for (const std::string& v : ar.action->expr.vars)
                slots.push_back(intern(v));
            preLookupSlots_[l].push_back(std::move(slots));
        }
    }

    varValues_.assign(varNames_.size(), 0);
}

void
Engine::cancelCheckpoint(std::size_t loop)
{
    nextCancelPoll_ = bus_.eventCount() + kCancelPollEvents;
    const util::CancelReason r = cancel_.state();
    if (r == util::CancelReason::None)
        return;
    std::string position = "einsum '" + plan_.output.name + "'";
    if (loop < plan_.loops.size())
        position += ", loop rank '" + plan_.loops[loop].name + "'";
    cancel_.raise(r, position);
}

ft::Coord
Engine::evalExpr(const ir::LevelAction& a,
                 const std::vector<int>& slots) const
{
    ft::Coord value = a.expr.offset;
    for (const int slot : slots)
        value += varValues_[static_cast<std::size_t>(slot)];
    (void)a;
    return value;
}

void
Engine::beginRun(bool announce_swizzles)
{
    // Fresh output tensor in production order.
    scalarOutput_ = plan_.output.productionOrder.empty();
    if (scalarOutput_) {
        out_ = ft::Tensor(plan_.output.name, {"_S"}, {1});
    } else {
        out_ = ft::Tensor(plan_.output.name, plan_.output.productionOrder,
                          plan_.output.shapes);
    }
    outCoord_.assign(out_.numRanks(), 0);
    outMaterialized_.assign(out_.numRanks(), -1);
    outFiberAt_.assign(out_.numRanks(), nullptr);
    outHashAt_.assign(out_.numRanks(), 0);
    outFiberAt_[0] = out_.root().get();
    outPathValid_ = false;
    leafFiber_ = nullptr;

    // Fresh tensor cursors.
    states_.clear();
    for (const ir::TensorPlan& tp : plan_.inputs) {
        TensorState st;
        st.packed = tp.packed.get();
        const std::size_t nr = tp.prepared.numRanks();
        st.view.assign(nr, ft::FiberView{});
        st.pending.assign(nr, {kNoRange, kNoRange});
        st.view[0] = st.packed != nullptr
                         ? st.packed->rootView()
                         : ft::FiberView::whole(tp.prepared.root().get());
        st.validDepth = 1;
        states_.push_back(std::move(st));
        if (tp.swizzled && announce_swizzles) {
            bus_.swizzle(tp.name, tp.swizzleElements, tp.swizzleWays,
                         tp.swizzleOnline);
        }
    }

    scratch_.assign(plan_.loops.size(), Scratch{});
}

void
Engine::emitSwizzleAnnouncements()
{
    for (const ir::TensorPlan& tp : plan_.inputs) {
        if (tp.swizzled) {
            bus_.swizzle(tp.name, tp.swizzleElements, tp.swizzleWays,
                         tp.swizzleOnline);
        }
    }
}

ft::Tensor
Engine::finishOutput(ft::Tensor produced)
{
    if (!plan_.output.productionOrder.empty() &&
        plan_.output.needsReorder) {
        const std::size_t ways =
            estimateMergeWays(produced, plan_.output.declaredOrder);
        bus_.swizzle(plan_.output.name, produced.nnz(), ways, true);
        produced = ft::swizzle(produced, plan_.output.declaredOrder);
    }
    bus_.flush();
    return produced;
}

void
Engine::replayTrace(const trace::TraceLog& log)
{
    bus_.replay(log);
}

ft::Tensor
Engine::run()
{
    // Whole-tensor copy (P1 = P0) bypasses the loop nest.
    if (plan_.wholeTensorCopy) {
        const ir::TensorPlan& src = plan_.inputs[0];
        ft::Tensor out = src.prepared.clone();
        out.setName(plan_.output.name);
        bus_.tensorCopy(src.name, plan_.output.name, out.nnz());
        bus_.flush();
        stats_.outputWrites += out.nnz();
        return out;
    }

    beginRun(/*announce_swizzles=*/true);

    runLoop(0, 0);

    return finishOutput(std::move(out_));
}

void
Engine::runLoop(std::size_t loop, std::uint64_t pe)
{
    if (loop == plan_.loops.size()) {
        leafCompute(pe);
        return;
    }

    const bool skip = applyPreLookups(loop, pe);

    if (!skip) {
        if (driversAt_[loop].empty())
            denseDrive(loop, pe);
        else
            walk(loop, pe);
    }

    undoPreLookups(loop);
}

bool
Engine::applyPreLookups(std::size_t loop, std::uint64_t pe)
{
    // Loop-entry lookups (constant / already-bound indices).
    std::vector<PreUndo>& undo = scratch_[loop].preUndo;
    undo.clear();
    bool skip = false;
    for (std::size_t li = 0; li < preLookupsAt_[loop].size(); ++li) {
        const ActionRef& ar = preLookupsAt_[loop][li];
        TensorState& st = states_[static_cast<std::size_t>(ar.input)];
        PreUndo u{ar.input, st.validDepth, st.leaf,    st.leafValid,
                  st.absent, {},            false,      -1};
        const int level = ar.action->level;
        if (level + 1 < static_cast<int>(st.view.size())) {
            u.childLevel = level + 1;
            u.childView =
                st.view[static_cast<std::size_t>(level) + 1];
            u.hadChild = true;
        }
        undo.push_back(u);
        if (st.absent)
            continue;
        TEAAL_ASSERT(st.validDepth > level,
                     "pre-lookup into an undescended level");
        const ft::Coord target =
            evalExpr(*ar.action, preLookupSlots_[loop][li]);
        const ft::FiberView view =
            st.view[static_cast<std::size_t>(level)];
        bus_.coordScan(ar.input, static_cast<std::size_t>(level), 1, pe);
        const auto found = view.find(target);
        if (!found) {
            if (plan_.unionCombine) {
                st.absent = true;
                st.leafValid = false;
                continue;
            }
            skip = true;
            break;
        }
        readAndDescend(ar.input, level, view, *found, target, pe);
    }
    return skip;
}

void
Engine::undoPreLookups(std::size_t loop)
{
    std::vector<PreUndo>& undo = scratch_[loop].preUndo;
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        TensorState& st = states_[static_cast<std::size_t>(it->input)];
        st.validDepth = it->validDepth;
        st.leaf = it->leaf;
        st.leafValid = it->leafValid;
        st.absent = it->absent;
        if (it->hadChild) {
            st.view[static_cast<std::size_t>(it->childLevel)] =
                it->childView;
        }
    }
    undo.clear();
}

std::uint64_t
Engine::nextPe(const ir::LoopRank& lr, ft::Coord c, std::size_t ordinal,
               std::uint64_t pe) const
{
    if (!lr.isSpace)
        return pe;
    const std::uint64_t pos =
        lr.coordSpace
            ? static_cast<std::uint64_t>(c) % lr.spaceExtent
            : std::min<std::uint64_t>(ordinal, lr.spaceExtent - 1);
    return pe * lr.spaceExtent + pos;
}

ft::Coord
Engine::rangeEnd(const ir::LoopRank& lr, ft::Coord c,
                 const std::vector<ft::FiberView>& views,
                 const std::vector<std::size_t>& pos,
                 const std::vector<bool>& present) const
{
    if (!lr.isUpperPartition)
        return kNoRange;
    if (lr.rangeTile > 0)
        return c + lr.rangeTile;
    ft::Coord end = std::numeric_limits<ft::Coord>::max();
    for (std::size_t d = 0; d < views.size(); ++d) {
        if (present[d] && pos[d] + 1 < views[d].hi) {
            end = std::min(end, views[d].coordAt(pos[d] + 1));
            break;
        }
    }
    return end;
}

template <typename Sink>
WalkCounts
Engine::denseCore(std::size_t loop, Sink&& sink)
{
    const ir::LoopRank& lr = plan_.loops[loop];
    TEAAL_ASSERT(lr.denseExtent > 0, "rank '", lr.name,
                 "' has neither driver nor dense extent");
    const ft::Coord limit = lr.probeOnly ? 1 : lr.denseExtent;
    std::size_t processed = 0;
    for (ft::Coord c = 0; c < limit; ++c) {
        sink(c, kNoRange, processed);
        ++processed;
    }
    WalkCounts wc;
    wc.steps = static_cast<std::size_t>(limit);
    wc.matches = processed;
    return wc;
}

void
Engine::denseDrive(std::size_t loop, std::uint64_t pe)
{
    const ir::LoopRank& lr = plan_.loops[loop];
    const WalkCounts wc = denseCore(
        loop, [&](ft::Coord c, ft::Coord range_end, std::size_t ordinal) {
            atCoordinate(loop, c, range_end, {}, {},
                         nextPe(lr, c, ordinal, pe));
            return true;
        });
    bus_.coIterate(loop, wc.steps, wc.matches, 0, pe);
    bus_.walkEnd();
    pollCancel(loop);
}

template <typename Sink>
WalkCounts
Engine::walkCore(std::size_t loop, Sink&& sink)
{
    const ir::LoopRank& lr = plan_.loops[loop];
    const auto& drivers = driversAt_[loop];
    const std::size_t nd = drivers.size();

    // Collect the current view of every driver (scratch reuse keeps
    // this allocation-free on the hot path).
    Scratch& scratch = scratch_[loop];
    auto& views = scratch.views;
    auto& pos = scratch.pos;
    views.assign(nd, ft::FiberView{});
    pos.assign(nd, 0);
    for (std::size_t d = 0; d < nd; ++d) {
        const TensorState& st =
            states_[static_cast<std::size_t>(drivers[d].input)];
        const int level = drivers[d].action->level;
        if (st.absent || st.validDepth <= level) {
            // Absent in union mode: empty view.
            TEAAL_ASSERT(plan_.unionCombine || st.absent == false,
                         "driver view missing at rank '", lr.name, "'");
            views[d] = ft::FiberView{};
        } else {
            views[d] = st.view[static_cast<std::size_t>(level)];
        }
        pos[d] = views[d].empty() ? 0 : views[d].lo;
    }

    auto& scans = scratch.scans;
    auto& present = scratch.present;
    scans.assign(nd, 0);
    present.assign(nd, false);

    const bool unite = plan_.unionCombine;
    std::size_t produced = 0;

    // The per-coordinate body shared by every strategy: pos[]/present
    // describe the drivers at coordinate c.
    auto body = [&](ft::Coord c) {
        const ft::Coord range_end = rangeEnd(lr, c, views, pos, present);
        const bool keep_going = sink(c, range_end, produced);
        ++produced;
        return keep_going;
    };

    WalkCounts wc;
    // Plan-time choice (with any ExecOptions override) first;
    // TwoFinger keeps the historical runtime leader-follower escape
    // for heavily skewed fiber pairs.
    const CoiterStrategy strategy = coiter_[loop];
    const bool force_dense =
        strategy == CoiterStrategy::DenseDrive && !unite;
    int lead = -1;
    if (!unite && nd == 2 && !force_dense) {
        if (strategy == CoiterStrategy::Gallop)
            lead = views[0].size() <= views[1].size() ? 0 : 1;
        else if (strategy == CoiterStrategy::TwoFinger)
            lead = gallopLeader(views, unite);
    }

    if (unite) {
        wc = unionMergeN(views, pos, scans, present, body);
    } else if (lead >= 0) {
        const std::size_t lo = static_cast<std::size_t>(lead);
        const std::size_t hi = 1 - lo;
        present.assign(nd, true);
        wc = gallopIntersect(
            views[lo], views[hi], scans[lo], scans[hi],
            [&](ft::Coord c, std::size_t pl, std::size_t pb) {
                pos[lo] = pl;
                pos[hi] = pb;
                // Historical escape semantics: the range end of upper
                // partition ranks comes from the *leader's* next
                // element.
                ft::Coord range_end = kNoRange;
                if (lr.isUpperPartition) {
                    range_end =
                        lr.rangeTile > 0
                            ? c + lr.rangeTile
                            : (pl + 1 < views[lo].hi
                                   ? views[lo].coordAt(pl + 1)
                                   : std::numeric_limits<
                                         ft::Coord>::max());
                }
                const bool keep_going = sink(c, range_end, produced);
                ++produced;
                return keep_going;
            });
    } else if (force_dense) {
        // Dense coordinate drive over co-iterated fibers: probe every
        // driver per coordinate (never the planner's pick for sparse
        // drivers; selectable for dense data, tests, and benches).
        ft::Coord extent = lr.denseExtent;
        for (std::size_t d = 0; d < nd; ++d)
            extent = std::max(extent, views[d].shape());
        wc = denseProbe(views, extent, unite, pos, scans, present, body);
    } else {
        present.assign(nd, true);
        wc = intersectTwoFinger(views, pos, scans, body);
    }
    return wc;
}

void
Engine::walk(std::size_t loop, std::uint64_t pe)
{
    const ir::LoopRank& lr = plan_.loops[loop];
    Scratch& scratch = scratch_[loop];
    const WalkCounts wc = walkCore(
        loop, [&](ft::Coord c, ft::Coord range_end, std::size_t ordinal) {
            atCoordinate(loop, c, range_end, scratch.pos,
                         scratch.present, nextPe(lr, c, ordinal, pe));
            return !lr.probeOnly;
        });
    const auto& drivers = driversAt_[loop];
    bus_.coIterate(loop, wc.steps, wc.matches, drivers.size(), pe);
    for (std::size_t d = 0; d < drivers.size(); ++d) {
        bus_.coordScan(drivers[d].input,
                       static_cast<std::size_t>(
                           drivers[d].action->level),
                       scratch.scans[d], pe);
    }
    bus_.walkEnd();
    TEAAL_FAILPOINT("exec.engine.walk");
    pollCancel(loop);
}

double
Engine::entryWeight(std::size_t loop) const
{
    double w = 1.0;
    const std::vector<double>& factors = plan_.shard.driverWeight;
    if (factors.empty())
        return w;
    const auto& drivers = driversAt_[loop];
    const Scratch& s = scratch_[loop];
    for (std::size_t d = 0; d < drivers.size(); ++d) {
        if (!s.present[d])
            continue;
        const auto input = static_cast<std::size_t>(drivers[d].input);
        const double factor =
            input < factors.size() ? factors[input] : 0.0;
        if (factor <= 0.0)
            continue;
        const TensorState& st = states_[input];
        const int level = drivers[d].action->level;
        double child = 1.0;
        if (static_cast<std::size_t>(level) + 1 < st.view.size()) {
            if (st.packed != nullptr) {
                child = static_cast<double>(
                    st.packed
                        ->childView(static_cast<std::size_t>(level),
                                    s.pos[d])
                        .size());
            } else {
                const ft::Payload& p = s.views[d].payloadAt(s.pos[d]);
                child = p.isFiber() && p.fiber() != nullptr
                            ? static_cast<double>(p.fiber()->size())
                            : 1.0;
            }
        }
        w += child * factor;
    }
    return w;
}

void
Engine::enumerateTop(TopWalk& tw)
{
    TEAAL_ASSERT(!plan_.loops.empty(), "enumerateTop on an empty nest");
    if (plan_.shard.shardable && plan_.shard.depth == 1) {
        enumerateInner(tw);
        return;
    }
    TEAAL_ASSERT(preLookupsAt_[0].empty() && lookupsAt_[0].empty(),
                 "enumerateTop: loop 0 carries lookup actions");
    const ir::LoopRank& lr = plan_.loops[0];
    const std::size_t nd = driversAt_[0].size();
    tw.depth = 0;
    tw.drivers = nd;
    tw.topDrivers = nd;
    Scratch& scratch = scratch_[0];
    auto record = [&](ft::Coord c, ft::Coord range_end,
                      std::size_t ordinal) {
        // Enumeration emits no trace events, so the cancel poll keys
        // off the entry count instead of the bus.
        if (cancelArmed_ && (tw.entries.size() & 0xfff) == 0)
            cancelCheckpoint(0);
        tw.entries.push_back({c, range_end, nextPe(lr, c, ordinal, 0)});
        for (std::size_t d = 0; d < nd; ++d) {
            tw.pos.push_back(scratch.pos[d]);
            tw.present.push_back(scratch.present[d] ? 1 : 0);
        }
        tw.weight.push_back(entryWeight(0));
        return !lr.probeOnly;
    };
    const WalkCounts wc =
        nd == 0 ? denseCore(0, record) : walkCore(0, record);
    tw.steps = wc.steps;
    tw.matches = wc.matches;
    tw.scans.assign(nd, 0);
    for (std::size_t d = 0; d < nd; ++d)
        tw.scans[d] = scratch.scans[d];
}

void
Engine::enumerateInner(TopWalk& tw)
{
    TEAAL_ASSERT(plan_.loops.size() >= 2,
                 "inner-rank sharding needs a second loop");
    const ir::LoopRank& lr0 = plan_.loops[0];
    const ir::LoopRank& lr1 = plan_.loops[1];
    const std::size_t nd0 = driversAt_[0].size();
    const std::size_t nd1 = driversAt_[1].size();
    tw.depth = 1;
    tw.drivers = nd1;
    tw.topDrivers = nd0;

    // The loop-0 pre-lookups fire once per run and their events lead
    // the serial stream — emit them live, here, exactly once (shard
    // engines re-apply them muted in beginShard).
    tw.topSkipped = applyPreLookups(0, 0);
    if (tw.topSkipped) {
        undoPreLookups(0);
        return;
    }

    Scratch& s0 = scratch_[0];
    Scratch& s1 = scratch_[1];
    bus_.setMuted(true);
    auto outerSink = [&](ft::Coord c, ft::Coord range_end,
                         std::size_t ordinal) {
        // Muted enumeration produces no bus events; poll per outer.
        if (cancelArmed_ && (tw.outers.size() & 0x3ff) == 0)
            cancelCheckpoint(0);
        TopWalk::Outer o;
        o.e = {c, range_end, nextPe(lr0, c, ordinal, 0)};
        o.pos.assign(nd0, 0);
        o.present.assign(nd0, 0);
        for (std::size_t d = 0; d < nd0; ++d) {
            o.pos[d] = s0.pos[d];
            o.present[d] = s0.present[d] ? 1 : 0;
        }
        o.firstUnit = tw.entries.size();
        // Re-derive (muted) exactly what a serial walk would do at
        // this outer coordinate, recording loop 1's matches as units.
        o.entered = atCoordinateEnter(0, c, range_end, s0.pos,
                                      s0.present, o.e.pe);
        if (o.entered) {
            const bool skip1 = applyPreLookups(1, o.e.pe);
            if (!skip1) {
                auto unitSink = [&](ft::Coord c1, ft::Coord re1,
                                    std::size_t ord1) {
                    tw.entries.push_back(
                        {c1, re1, nextPe(lr1, c1, ord1, o.e.pe)});
                    for (std::size_t d = 0; d < nd1; ++d) {
                        tw.pos.push_back(s1.pos[d]);
                        tw.present.push_back(s1.present[d] ? 1 : 0);
                    }
                    tw.weight.push_back(entryWeight(1));
                    tw.outerOf.push_back(tw.outers.size());
                    return !lr1.probeOnly;
                };
                const WalkCounts wc1 = nd1 == 0
                                           ? denseCore(1, unitSink)
                                           : walkCore(1, unitSink);
                o.walked = true;
                o.steps = wc1.steps;
                o.matches = wc1.matches;
                o.scans.assign(nd1, 0);
                for (std::size_t d = 0; d < nd1; ++d)
                    o.scans[d] = s1.scans[d];
            }
            undoPreLookups(1);
        }
        atCoordinateExit(0);
        o.units = tw.entries.size() - o.firstUnit;
        if (o.units == 0) {
            // Barren outer (lookup miss or empty loop-1 walk): one
            // placeholder unit keeps its enter events — and, when it
            // walked, its empty-walk summary — schedulable.
            o.barren = true;
            o.units = 1;
            tw.entries.push_back(o.e);
            for (std::size_t d = 0; d < nd1; ++d) {
                tw.pos.push_back(0);
                tw.present.push_back(0);
            }
            tw.weight.push_back(1.0);
            tw.outerOf.push_back(tw.outers.size());
        }
        tw.outers.push_back(std::move(o));
        return !lr0.probeOnly;
    };
    const WalkCounts wc0 =
        nd0 == 0 ? denseCore(0, outerSink) : walkCore(0, outerSink);
    bus_.setMuted(false);
    tw.steps = wc0.steps;
    tw.matches = wc0.matches;
    tw.scans.assign(nd0, 0);
    for (std::size_t d = 0; d < nd0; ++d)
        tw.scans[d] = s0.scans[d];
    undoPreLookups(0);
}

void
Engine::beginShard()
{
    beginRun(/*announce_swizzles=*/false);
    unitOuter_ = kNoOuter;
    outerPre1_ = false;
    if (plan_.shard.shardable && plan_.shard.depth == 1) {
        bus_.setMuted(true);
        const bool skip = applyPreLookups(0, 0);
        bus_.setMuted(false);
        TEAAL_ASSERT(!skip,
                     "beginShard: loop-0 pre-lookups diverged from "
                     "enumeration");
    }
}

void
Engine::openOuter(const TopWalk& tw, std::size_t oi, bool own)
{
    const TopWalk::Outer& o = tw.outers[oi];
    if (!own)
        bus_.setMuted(true);
    const std::size_t nd0 = tw.topDrivers;
    unitPos_.assign(nd0, 0);
    unitPresent_.assign(nd0, false);
    for (std::size_t d = 0; d < nd0; ++d) {
        unitPos_[d] = o.pos[d];
        unitPresent_[d] = o.present[d] != 0;
    }
    const bool entered = atCoordinateEnter(0, o.e.c, o.e.rangeEnd,
                                           unitPos_, unitPresent_,
                                           o.e.pe);
    TEAAL_ASSERT(entered == o.entered,
                 "inner shard diverged from enumeration at outer "
                 "coordinate ", o.e.c);
    outerPre1_ = false;
    if (entered) {
        const bool skip1 = applyPreLookups(1, o.e.pe);
        TEAAL_ASSERT(skip1 != o.walked,
                     "inner shard pre-lookups diverged at outer "
                     "coordinate ", o.e.c);
        outerPre1_ = true;
    }
    if (!own)
        bus_.setMuted(false);
    unitOuter_ = oi;
}

void
Engine::closeOuter()
{
    if (unitOuter_ == kNoOuter)
        return;
    if (outerPre1_) {
        undoPreLookups(1);
        outerPre1_ = false;
    }
    atCoordinateExit(0);
    unitOuter_ = kNoOuter;
}

void
Engine::executeUnit(const TopWalk& tw, std::size_t u)
{
    const std::size_t nd = tw.drivers;
    if (tw.depth == 0) {
        const TopWalk::Entry& e = tw.entries[u];
        unitPos_.assign(nd, 0);
        unitPresent_.assign(nd, false);
        for (std::size_t d = 0; d < nd; ++d) {
            unitPos_[d] = tw.pos[u * nd + d];
            unitPresent_[d] = tw.present[u * nd + d] != 0;
        }
        atCoordinate(0, e.c, e.rangeEnd, unitPos_, unitPresent_, e.pe);
        pollCancel(0);
        return;
    }

    const std::size_t oi = tw.outerOf[u];
    const TopWalk::Outer& o = tw.outers[oi];
    if (unitOuter_ != oi) {
        closeOuter();
        openOuter(tw, oi, /*own=*/u == o.firstUnit);
    }
    if (!o.barren) {
        const TopWalk::Entry& e = tw.entries[u];
        unitPos_.assign(nd, 0);
        unitPresent_.assign(nd, false);
        for (std::size_t d = 0; d < nd; ++d) {
            unitPos_[d] = tw.pos[u * nd + d];
            unitPresent_[d] = tw.present[u * nd + d] != 0;
        }
        atCoordinate(1, e.c, e.rangeEnd, unitPos_, unitPresent_, e.pe);
    }
    if (u + 1 == o.firstUnit + o.units) {
        // Last unit: this engine owns the outer's loop-1 walk summary
        // (emitted by the serial walk after its merge loop) and the
        // state unwind.
        if (o.walked) {
            const auto& drivers = driversAt_[1];
            bus_.coIterate(1, o.steps, o.matches, nd, o.e.pe);
            for (std::size_t d = 0; d < nd; ++d) {
                bus_.coordScan(drivers[d].input,
                               static_cast<std::size_t>(
                                   drivers[d].action->level),
                               o.scans[d], o.e.pe);
            }
            bus_.walkEnd();
        }
        closeOuter();
    }
    pollCancel(1);
}

void
Engine::finishShard()
{
    closeOuter();
    bus_.flush();
}

void
Engine::emitTopSummary(const TopWalk& tw)
{
    bus_.coIterate(0, tw.steps, tw.matches, tw.topDrivers, 0);
    const auto& drivers = driversAt_[0];
    TEAAL_ASSERT(drivers.size() == tw.topDrivers,
                 "top-walk driver count mismatch");
    for (std::size_t d = 0; d < tw.topDrivers; ++d) {
        bus_.coordScan(drivers[d].input,
                       static_cast<std::size_t>(
                           drivers[d].action->level),
                       tw.scans[d], 0);
    }
    bus_.walkEnd();
}

bool
Engine::atCoordinate(std::size_t loop, ft::Coord c, ft::Coord range_end,
                     const std::vector<std::size_t>& driver_pos,
                     const std::vector<bool>& driver_present,
                     std::uint64_t pe)
{
    const bool ok = atCoordinateEnter(loop, c, range_end, driver_pos,
                                      driver_present, pe);
    if (ok)
        runLoop(loop + 1, pe);
    atCoordinateExit(loop);
    return ok;
}

bool
Engine::atCoordinateEnter(std::size_t loop, ft::Coord c,
                          ft::Coord range_end,
                          const std::vector<std::size_t>& driver_pos,
                          const std::vector<bool>& driver_present,
                          std::uint64_t pe)
{
    const ir::LoopRank& lr = plan_.loops[loop];
    bus_.loopEnter(loop, c);

    // ------------------------------------------------- undo records
    Scratch& scratch = scratch_[loop];
    auto& view_undo = scratch.viewUndo;
    auto& state_undo = scratch.stateUndo;
    view_undo.clear();
    state_undo.clear();

    auto save_state = [&](int input) {
        TensorState& st = states_[static_cast<std::size_t>(input)];
        state_undo.push_back(
            {input, st.validDepth, st.leaf, st.leafValid, st.absent});
    };
    auto save_view = [&](int input, int level) {
        TensorState& st = states_[static_cast<std::size_t>(input)];
        view_undo.push_back(
            {input, level, st.view[static_cast<std::size_t>(level)],
             st.pending[static_cast<std::size_t>(level)]});
    };
    // --------------------------------------------------- bind vars
    auto& saved_vars = scratch.savedVars;
    auto& saved_slots = scratch.savedSlots;
    saved_vars.clear();
    saved_slots.clear();
    auto bind_var = [&](int slot, ft::Coord value) {
        saved_slots.push_back(slot);
        saved_vars.push_back(varValues_[static_cast<std::size_t>(slot)]);
        varValues_[static_cast<std::size_t>(slot)] = value;
        const int base = varBase_[static_cast<std::size_t>(slot)];
        if (base >= 0) {
            saved_slots.push_back(base);
            saved_vars.push_back(
                varValues_[static_cast<std::size_t>(base)]);
            varValues_[static_cast<std::size_t>(base)] = value;
        }
    };
    if (!lr.unpackStrides.empty()) {
        for (std::size_t j = 0; j < loopVarSlots_[loop].size(); ++j) {
            const ft::Coord v =
                (c / lr.unpackStrides[j]) % lr.unpackShapes[j];
            bind_var(loopVarSlots_[loop][j], v);
        }
    } else {
        for (int slot : loopVarSlots_[loop])
            bind_var(slot, c);
    }
    // ------------------------------------------- descend the drivers
    const auto& drivers = driversAt_[loop];
    for (std::size_t d = 0; d < drivers.size(); ++d) {
        const int input = drivers[d].input;
        TensorState& st = states_[static_cast<std::size_t>(input)];
        save_state(input);
        if (!driver_present.empty() && !driver_present[d]) {
            st.absent = true;
            st.leafValid = false;
            continue;
        }
        const int level = drivers[d].action->level;
        if (level + 1 < static_cast<int>(st.view.size()))
            save_view(input, level + 1);
        readAndDescend(input, level,
                       st.view[static_cast<std::size_t>(level)],
                       driver_pos[d], c, pe);
    }

    // -------------------------------------------------- apply slices
    for (const ActionRef& ar : slicesAt_[loop]) {
        TensorState& st = states_[static_cast<std::size_t>(ar.input)];
        const int level = ar.action->level;
        const ft::Coord lo = c;
        const ft::Coord hi =
            range_end == kNoRange
                ? std::numeric_limits<ft::Coord>::max()
                : range_end;
        save_view(ar.input, level);
        st.pending[static_cast<std::size_t>(level)] = {lo, hi};
        if (st.validDepth > level) {
            st.view[static_cast<std::size_t>(level)] =
                st.view[static_cast<std::size_t>(level)].range(lo, hi);
        }
    }

    // ------------------------------------------------------ lookups
    bool skip = false;
    for (std::size_t li = 0; li < lookupsAt_[loop].size(); ++li) {
        const ActionRef& ar = lookupsAt_[loop][li];
        const int input = ar.input;
        TensorState& st = states_[static_cast<std::size_t>(input)];
        if (st.absent)
            continue;
        const int level = ar.action->level;
        TEAAL_ASSERT(st.validDepth > level,
                     "lookup into an undescended level of ",
                     plan_.inputs[static_cast<std::size_t>(input)].name);
        const ft::Coord target =
            evalExpr(*ar.action, lookupSlots_[loop][li]);
        const ft::FiberView view =
            st.view[static_cast<std::size_t>(level)];
        bus_.coordScan(input, static_cast<std::size_t>(level), 1, pe);
        const auto found = view.find(target);
        if (!found) {
            if (plan_.unionCombine) {
                save_state(input);
                st.absent = true;
                st.leafValid = false;
                continue;
            }
            skip = true;
            break;
        }
        save_state(input);
        if (level + 1 < static_cast<int>(st.view.size()))
            save_view(input, level + 1);
        readAndDescend(input, level, view, *found, target, pe);
    }

    if (!skip) {
        // ------------------------------------------- output descend
        for (std::size_t lvl : outLevelsAt_[loop]) {
            const ft::Coord oc = varValues_[static_cast<std::size_t>(
                outVarSlots_[lvl])];
            descendOutput(lvl, oc, pe);
        }
    }
    return !skip;
}

void
Engine::atCoordinateExit(std::size_t loop)
{
    Scratch& scratch = scratch_[loop];
    for (std::size_t i = scratch.savedSlots.size(); i-- > 0;) {
        varValues_[static_cast<std::size_t>(scratch.savedSlots[i])] =
            scratch.savedVars[i];
    }
    for (auto it = scratch.viewUndo.rbegin();
         it != scratch.viewUndo.rend(); ++it) {
        TensorState& st = states_[static_cast<std::size_t>(it->input)];
        st.view[static_cast<std::size_t>(it->level)] = it->view;
        st.pending[static_cast<std::size_t>(it->level)] = it->pending;
    }
    for (auto it = scratch.stateUndo.rbegin();
         it != scratch.stateUndo.rend(); ++it) {
        TensorState& st = states_[static_cast<std::size_t>(it->input)];
        st.validDepth = it->validDepth;
        st.leaf = it->leaf;
        st.leafValid = it->leafValid;
        st.absent = it->absent;
    }
}

void
Engine::readAndDescend(int input, int level, const ft::FiberView& view,
                       std::size_t pos, ft::Coord reported_c,
                       std::uint64_t pe)
{
    const TensorState& st = states_[static_cast<std::size_t>(input)];
    const std::string& name =
        plan_.inputs[static_cast<std::size_t>(input)].name;
    if (st.packed != nullptr) {
        bus_.tensorAccessPacked(
            input, name, static_cast<std::size_t>(level), reported_c,
            st.packed->payloadKey(static_cast<std::size_t>(level), pos),
            st.packed, pos, pe);
        descendPacked(input, level, pos);
        return;
    }
    const ft::Payload& payload = view.payloadAt(pos);
    bus_.tensorAccess(input, name, static_cast<std::size_t>(level),
                      reported_c, &payload, &payload, pe);
    descend(input, level, payload);
}

void
Engine::descendPacked(int input, int level, std::size_t pos)
{
    TensorState& st = states_[static_cast<std::size_t>(input)];
    const std::size_t nr = st.view.size();
    if (static_cast<std::size_t>(level) + 1 == nr) {
        st.leaf = st.packed->leafValue(pos);
        st.leafValid = true;
        st.validDepth = level + 1;
        return;
    }
    ft::FiberView view =
        st.packed->childView(static_cast<std::size_t>(level), pos);
    const auto& pending = st.pending[static_cast<std::size_t>(level) + 1];
    if (pending.first != kNoRange)
        view = view.range(pending.first, pending.second);
    st.view[static_cast<std::size_t>(level) + 1] = view;
    st.validDepth = level + 2;
    st.leafValid = false;
}

void
Engine::descend(int input, int level, const ft::Payload& payload)
{
    TensorState& st = states_[static_cast<std::size_t>(input)];
    const std::size_t nr = st.view.size();
    if (static_cast<std::size_t>(level) + 1 == nr) {
        st.leaf = payload.isValue() ? payload.value() : 0.0;
        st.leafValid = true;
        st.validDepth = level + 1;
        return;
    }
    const ft::FiberPtr& child = payload.fiber();
    ft::FiberView view = ft::FiberView::whole(child.get());
    const auto& pending = st.pending[static_cast<std::size_t>(level) + 1];
    if (pending.first != kNoRange)
        view = view.range(pending.first, pending.second);
    st.view[static_cast<std::size_t>(level) + 1] = view;
    st.validDepth = level + 2;
    st.leafValid = false;
}

void
Engine::descendOutput(std::size_t level, ft::Coord c, std::uint64_t pe)
{
    (void)pe;
    TEAAL_ASSERT(level < outCoord_.size(), "output level out of range");
    // Binding only: the path materializes at the first leaf write, so
    // skipped points never create empty output fibers.
    if (outCoord_[level] != c || outMaterialized_[level] != c)
        outPathValid_ = false;
    outCoord_[level] = c;
}

void
Engine::materializeOutputPath(std::uint64_t pe)
{
    std::uint64_t hash = 14695981039346656037ULL;
    const std::size_t depth = out_.numRanks();
    // Resume below the deepest interior prefix whose coordinates are
    // unchanged since the last materialization: repeated writes under
    // the same output row skip the per-level searches entirely.
    std::size_t level = 0;
    while (level + 1 < depth && outMaterialized_[level] == outCoord_[level]
           && outFiberAt_[level + 1] != nullptr) {
        hash = outHashAt_[level];
        ++level;
    }
    ft::Fiber* fiber = outFiberAt_[level];
    for (; level + 1 < depth; ++level) {
        const ft::Coord c = outCoord_[level];
        hash = (hash ^ static_cast<std::uint64_t>(c)) * kHashPrime;
        bool inserted = false;
        const std::size_t pos = fiber->getOrInsertPos(c, inserted);
        ft::Payload& p = fiber->payloadAt(pos);
        if (inserted &&
            (insertFilter_ == nullptr ||
             insertFilter_->insert(hash).second)) {
            bus_.outputWrite(plan_.output.name, level, c, hash, true,
                             false, pe);
        }
        if (!p.isFiber() || p.fiber() == nullptr) {
            auto child = std::make_shared<ft::Fiber>(
                out_.rank(level + 1).shape);
            child->reserve(kOutputFiberReserve);
            p.setFiber(std::move(child));
        }
        outMaterialized_[level] = c;
        outHashAt_[level] = hash;
        fiber = p.fiber().get();
        outFiberAt_[level + 1] = fiber;
        // Deeper memo entries described the previous prefix.
        for (std::size_t l = level + 1; l + 1 < depth; ++l)
            outFiberAt_[l + 1] = nullptr;
    }
    const ft::Coord c = outCoord_[depth - 1];
    hash = (hash ^ static_cast<std::uint64_t>(c)) * kHashPrime;
    bool inserted = false;
    leafPos_ = fiber->getOrInsertPos(c, inserted);
    leafFresh_ = inserted;
    leafFiber_ = fiber;
    leafCoord_ = c;
    leafHash_ = hash;
    outMaterialized_[depth - 1] = c;
    outPathValid_ = true;
}

void
Engine::leafCompute(std::uint64_t pe)
{
    ++stats_.leafVisits;
    const einsum::OpKind kind = plan_.expr.kind;

    double value = 0.0;
    std::size_t muls = 0;
    std::size_t adds = 0;

    switch (kind) {
      case einsum::OpKind::Multiply: {
        value = sr_.multIdentity;
        bool first = true;
        for (const TensorState& st : states_) {
            TEAAL_ASSERT(st.leafValid && !st.absent,
                         "operand not at leaf in product");
            value = first ? st.leaf : sr_.multiply(value, st.leaf);
            if (!first)
                ++muls;
            first = false;
        }
        break;
      }
      case einsum::OpKind::Take: {
        const auto arg = static_cast<std::size_t>(plan_.expr.takeArg);
        TEAAL_ASSERT(states_[arg].leafValid, "take operand not at leaf");
        value = states_[arg].leaf;
        break;
      }
      case einsum::OpKind::Assign: {
        TEAAL_ASSERT(states_[0].leafValid, "operand not at leaf");
        value = states_[0].leaf;
        break;
      }
      case einsum::OpKind::Add: {
        bool negative = false;
        for (int s : plan_.expr.signs)
            negative |= s < 0;
        bool first = true;
        for (std::size_t i = 0; i < states_.size(); ++i) {
            const TensorState& st = states_[i];
            if (st.absent || !st.leafValid)
                continue;
            const double term =
                negative ? plan_.expr.signs[i] * st.leaf : st.leaf;
            if (first) {
                value = term;
                first = false;
            } else {
                value = negative ? value + term : sr_.add(value, term);
                ++adds;
            }
        }
        if (first)
            return; // nothing present
        break;
      }
    }

    // Reduce into the output leaf (materializing the path lazily so
    // skipped points never created empty fibers).
    if (!outPathValid_)
        materializeOutputPath(pe);
    TEAAL_ASSERT(leafFiber_ != nullptr, "output leaf not bound");
    ft::Payload& leaf = leafFiber_->payloadAt(leafPos_);
    bool shard_fresh = false;
    if (kind == einsum::OpKind::Take) {
        leaf.setValue(value); // idempotent copy
    } else if (leafFresh_) {
        leaf.setValue(value);
        leafFresh_ = false;
        // Reduction sharding: an engine-locally fresh write may be a
        // reduce into a leaf another shard already wrote; mark it so
        // the coordinator's in-order replay can tell (and carry the
        // expression-add count the fixup needs).
        shard_fresh = markReduce_;
    } else {
        leaf.setValue(sr_.add(leaf.value(), value));
        ++adds;
    }

    ++stats_.outputWrites;
    stats_.computeMuls += muls;
    stats_.computeAdds += adds;
    if (muls > 0)
        bus_.compute('m', pe, muls);
    if (adds > 0)
        bus_.compute('a', pe, adds);
    bus_.outputWrite(plan_.output.name, out_.numRanks() - 1, leafCoord_,
                     leafHash_, shard_fresh, true, pe,
                     shard_fresh ? adds : 0);
}

} // namespace teaal::exec
