#include "exec/coiter_strategy.hpp"

namespace teaal::exec
{

int
gallopLeader(const std::vector<ft::FiberView>& views, bool unite,
             std::size_t ratio)
{
    if (unite || views.size() != 2)
        return -1;
    if (views[0].size() > ratio * views[1].size())
        return 1;
    if (views[1].size() > ratio * views[0].size())
        return 0;
    return -1;
}

} // namespace teaal::exec
