/**
 * @file
 * The public face of the loop-nest interpreter: executes an EinsumPlan
 * on real fibertrees, producing the output tensor and streaming trace
 * events (paper §4.3).
 *
 * `Executor` is a thin façade over the modular execution layer:
 *
 *   exec/engine.hpp          the recursion / variable-table /
 *                            output-materialization core,
 *   exec/coiter_strategy.hpp per-loop co-iteration strategies
 *                            (two-finger, gallop, dense-drive),
 *   trace/batch.hpp          the batched trace bus feeding observers.
 *
 * The (x, +) operators are semiring-parameterized so vertex-centric
 * graph algorithms can redefine them (paper Figure 12: SSSP uses
 * addition and minimum).
 */
#pragma once

#include "exec/engine.hpp"

namespace teaal::exec
{

/** Interprets one EinsumPlan. */
class Executor
{
  public:
    /**
     * @param plan Built by ir::buildPlan; must outlive the executor.
     * @param obs  Trace sink; must outlive the executor.
     * @param opts Per-run knobs (co-iteration overrides) applied
     *             without mutating the shared plan.
     */
    Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
             Semiring sr = Semiring::arithmetic(),
             const ExecOptions& opts = {});

    /**
     * Run the loop nest. Returns the output tensor in its declared
     * storage rank order (reordered from production order when the
     * mapping requires it, with the swizzle reported to the observer).
     */
    ft::Tensor run();

    const ExecutionStats& stats() const { return engine_.stats(); }

    /** Trace-bus diagnostics (events coalesced, batches delivered). */
    const trace::BatchBus& bus() const { return engine_.bus(); }

  private:
    Engine engine_;
};

} // namespace teaal::exec
