/**
 * @file
 * The public face of the loop-nest interpreter: executes an EinsumPlan
 * on real fibertrees, producing the output tensor and streaming trace
 * events (paper §4.3).
 *
 * `Executor` is a thin façade over the modular execution layer:
 *
 *   exec/engine.hpp          the recursion / variable-table /
 *                            output-materialization core,
 *   exec/coiter_strategy.hpp per-loop co-iteration strategies
 *                            (two-finger, gallop, dense-drive),
 *   trace/batch.hpp          the batched trace bus feeding observers.
 *
 * With `ExecOptions::threads >= 2` and a shardable plan
 * (ir::analyzeSharding: a space rank exists and the outermost loop
 * rank restricts only output variables), the executor shards the
 * outermost rank's coordinate range across a worker pool: a serial
 * enumeration of the top walk fixes every shard's coordinates, driver
 * cursors, and PE ids; engine clones execute shards against the
 * shared inputs with capture-mode trace buses; the coordinator
 * replays captures in canonical shard order (reproducing the serial
 * engine's event sequence *and* batch boundaries byte-for-byte) and
 * merges the partial outputs with Fiber::absorbDisjoint. The shard
 * count depends only on the plan and data — never on the thread
 * count — so results and traces are identical for every N.
 *
 * With ExecOptions::modelHooks set (the pipeline sets them whenever
 * the performance model is the sole trace consumer), the capture
 * buses additionally *split the model*: order-independent datapath
 * records are consumed by per-shard model accumulators inside the
 * workers, and the coordinator replays only the order-dependent
 * storage records — the model is no longer a serial bottleneck, and
 * the assembled counters stay byte-identical (trace/batch.hpp
 * RecordClassifier, model/accumulator.hpp).
 *
 * The (x, +) operators are semiring-parameterized so vertex-centric
 * graph algorithms can redefine them (paper Figure 12: SSSP uses
 * addition and minimum).
 */
#pragma once

#include "exec/engine.hpp"

namespace teaal::exec
{

/** Interprets one EinsumPlan. */
class Executor
{
  public:
    /**
     * @param plan Built by ir::buildPlan; must outlive the executor.
     * @param obs  Trace sink; must outlive the executor.
     * @param opts Per-run knobs (co-iteration overrides, worker
     *             threads) applied without mutating the shared plan.
     */
    Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
             Semiring sr = Semiring::arithmetic(),
             const ExecOptions& opts = {});

    /**
     * Run the loop nest. Returns the output tensor in its declared
     * storage rank order (reordered from production order when the
     * mapping requires it, with the swizzle reported to the observer).
     */
    ft::Tensor run();

    const ExecutionStats& stats() const { return stats_; }

    /** Trace-bus diagnostics (events coalesced, batches delivered).
     *  Counts replayed shard events too, so totals match the serial
     *  path at any thread count. */
    const trace::BatchBus& bus() const { return engine_.bus(); }

  private:
    ft::Tensor runSharded(unsigned threads);

    const ir::EinsumPlan& plan_;
    Semiring sr_;
    ExecOptions opts_;
    Engine engine_;
    ExecutionStats stats_;
};

} // namespace teaal::exec
