/**
 * @file
 * The public face of the loop-nest interpreter: executes an EinsumPlan
 * on real fibertrees, producing the output tensor and streaming trace
 * events (paper §4.3).
 *
 * `Executor` is a thin façade over the modular execution layer:
 *
 *   exec/engine.hpp          the recursion / variable-table /
 *                            output-materialization core,
 *   exec/coiter_strategy.hpp per-loop co-iteration strategies
 *                            (two-finger, gallop, dense-drive),
 *   trace/batch.hpp          the batched trace bus feeding observers.
 *
 * With `ExecOptions::threads >= 2` and a shardable plan
 * (ir::analyzeSharding — nearly every mapping qualifies; see
 * ir::ShardPlan for the three modes and the rare refusals), the
 * executor shards a loop rank's coordinate range across a worker
 * pool: a serial enumeration of the sharded walk fixes every unit's
 * coordinates, driver cursors, and PE ids; engine clones execute
 * contiguous unit slices against the shared inputs with capture-mode
 * trace buses; the coordinator replays captures in slice order
 * (reproducing the serial engine's event sequence *and* batch
 * boundaries byte-for-byte) and merges the partial outputs —
 * Fiber::absorbDisjoint when slice outputs cannot overlap,
 * Fiber::absorbReduce (semiring add on leaf collisions, with the
 * captured streams fixed up to the serial engine's reduce records)
 * when the sharded rank restricts contraction variables. Plans whose
 * top rank cannot shard (lookup-bound, scalar-binding, or too coarse)
 * shard the first viable inner rank instead, with positional
 * ownership of the enclosing outer-loop events.
 *
 * Slice boundaries are placed at work-weighted quantiles of the
 * enumerated units (per-rank occupancy estimates), and idle workers
 * steal the unexecuted upper half of the largest in-flight slice
 * rather than going to sleep. The initial slice count and boundaries
 * depend only on the plan and data — never on the thread count — so
 * counters and traces are identical for every N, and tensor values
 * are too up to floating-point summation grouping in reduce mode
 * (exactly identical when the semiring add is associative; reduce
 * slices are never split by steals, keeping the grouping
 * deterministic).
 *
 * With ExecOptions::modelHooks set (the pipeline sets them whenever
 * the performance model is the sole trace consumer), the capture
 * buses additionally *split the model*: order-independent datapath
 * records are consumed by per-shard model accumulators inside the
 * workers, and the coordinator replays only the order-dependent
 * storage records — the model is no longer a serial bottleneck, and
 * the assembled counters stay byte-identical (trace/batch.hpp
 * RecordClassifier, model/accumulator.hpp).
 *
 * The (x, +) operators are semiring-parameterized so vertex-centric
 * graph algorithms can redefine them (paper Figure 12: SSSP uses
 * addition and minimum).
 */
#pragma once

#include "exec/engine.hpp"

namespace teaal::exec
{

/** Interprets one EinsumPlan. */
class Executor
{
  public:
    /**
     * @param plan Built by ir::buildPlan; must outlive the executor.
     * @param obs  Trace sink; must outlive the executor.
     * @param opts Per-run knobs (co-iteration overrides, worker
     *             threads) applied without mutating the shared plan.
     */
    Executor(const ir::EinsumPlan& plan, trace::Observer& obs,
             Semiring sr = Semiring::arithmetic(),
             const ExecOptions& opts = {});

    /**
     * Run the loop nest. Returns the output tensor in its declared
     * storage rank order (reordered from production order when the
     * mapping requires it, with the swizzle reported to the observer).
     */
    ft::Tensor run();

    const ExecutionStats& stats() const { return stats_; }

    /** Trace-bus diagnostics (events coalesced, batches delivered).
     *  Counts replayed shard events too, so totals match the serial
     *  path at any thread count. */
    const trace::BatchBus& bus() const { return engine_.bus(); }

  private:
    ft::Tensor runSharded(unsigned threads);

    const ir::EinsumPlan& plan_;
    Semiring sr_;
    ExecOptions opts_;
    Engine engine_;
    ExecutionStats stats_;
};

} // namespace teaal::exec
