/**
 * @file
 * Disk-backed packed tensor store: one PackedTensor serialized into a
 * single versioned, checksummed file that is mmap-ed read-only per
 * run. Packing a SuiteSparse-scale matrix is paid once (teaal-pack);
 * every subsequent run — and every concurrent server process mapping
 * the same file — cold-starts in milliseconds and shares the page
 * cache, because the packed buffers are walked in place: the engine's
 * `ft::FiberView`s point straight into the mapping (storage/packed.hpp
 * Buf external mode), identical to heap buffers.
 *
 * File format, version 1 (little-endian, the only host this project
 * targets; all offsets from file start):
 *
 *   [0, 64)  fixed prologue
 *      0  char[8] magic            "TEAALPK1"
 *      8  u32     version          1
 *     12  u32     rankCount
 *     16  u64     headerBytes      prologue + variable header,
 *                                  rounded up to 64
 *     24  u64     fileBytes        total size (truncation check)
 *     32  u64     payloadChecksum  FNV-1a over [headerBytes, fileBytes)
 *     40  u64     headerChecksum   FNV-1a over [0, headerBytes) with
 *                                  this field read as zero
 *     48  u64     nnz              leaf value count
 *     56  u64     reserved         0
 *
 *   [64, headerBytes)  variable header, a flat byte stream
 *     (str = u64 byte length + bytes, no terminator):
 *     str  tensor name
 *     per rank (rankCount times):
 *       str rank id, i64 shape,
 *       u64 flat-id count + that many str,
 *       u64 flat-shape count + that many i64,
 *       u8  level format type (0 = U, 1 = C, 2 = B)
 *     serialized fmt::TensorFormat:
 *       str config, u64 rankOrder count + that many str,
 *       u64 rank-format count + per entry: str rank id, u8 type,
 *       u8 layout, 3 x { u8 present, i32 value } (cbits/pbits/fhbits)
 *     section table, (5 * rankCount + 1) x { u64 offset, u64 count }:
 *       per rank seg/crd/bits/bitBase/bitRank, then vals last
 *
 *   [headerBytes, fileBytes)  payload: the sections in table order,
 *     each 64-byte aligned (gaps zero-filled). Element types: seg,
 *     bits, bitBase, bitRank are u64; crd is i64 (ft::Coord); vals is
 *     f64 (ft::Value).
 *
 * The header checksum is verified on every open — it covers the
 * section table, so a bit flip there cannot misdirect the walk. The
 * payload checksum is verified only on request (`teaal-pack --verify`)
 * to keep mapped cold-start free of a full-file read; a corrupted
 * payload changes results but cannot read out of bounds (section
 * ranges are bounds-checked against fileBytes at open).
 *
 * Failure surface: every open/map/validate error throws a structured
 * DiagnosticError with section "store" and the offending path as the
 * key. Failpoints `storage.store.map` (simulated mmap failure) and
 * `storage.store.corrupt` (simulated checksum mismatch) arm the two
 * branches tests cannot reach portably.
 */
#pragma once

#include <cstdint>
#include <string>

#include "storage/packed.hpp"

namespace teaal::storage
{

/** Store file magic (first 8 bytes). */
inline constexpr char kStoreMagic[8] = {'T', 'E', 'A', 'A',
                                        'L', 'P', 'K', '1'};

/** Current store file version. */
inline constexpr std::uint32_t kStoreVersion = 1;

/**
 * Serialize @p t into the store file @p path (created or truncated).
 * Throws DiagnosticError(section "store") on I/O failure. The tensor
 * may itself be mapped (re-writing a mapped store copies it through).
 */
void writeStore(const std::string& path, const PackedTensor& t);

/**
 * Map the store file @p path read-only and return a PackedTensor
 * whose buffers point into the mapping (kept alive by the returned
 * tensor and every copy of it; the last copy unmaps). Validates
 * magic, version, file size, and the header checksum on every call;
 * @p verifyPayload additionally checksums the payload (a full-file
 * read — tool use, not the serving path). Throws
 * DiagnosticError(section "store") on any validation failure.
 */
PackedTensor mapStore(const std::string& path,
                      bool verifyPayload = false);

/** True iff @p path exists and starts with the store magic (the
 *  serve daemon's cheap dispatch between store files and Matrix
 *  Market text). */
bool isStoreFile(const std::string& path);

} // namespace teaal::storage
