#include "storage/packed.hpp"

#include <algorithm>
#include <bit>
#include <functional>

#include "fibertree/occupancy.hpp"
#include "util/error.hpp"

namespace teaal::storage
{

namespace
{

/** Coordinate span (last - first + 1) of fiber [lo, hi) in @p crd. */
ft::Coord
fiberSpan(const Buf<ft::Coord>& crd, std::uint64_t lo,
          std::uint64_t hi)
{
    return lo >= hi ? 0 : crd[hi - 1] - crd[lo] + 1;
}

} // namespace

std::vector<std::string>
PackedTensor::rankIds() const
{
    std::vector<std::string> ids;
    ids.reserve(ranks_.size());
    for (const ft::RankInfo& r : ranks_)
        ids.push_back(r.id);
    return ids;
}

std::vector<double>
PackedTensor::occupancyHints() const
{
    std::vector<std::size_t> counts;
    counts.reserve(levels_.size());
    for (const PackedLevel& level : levels_)
        counts.push_back(level.crd.size());
    return ft::occupancyHintsFromCounts(counts, ranks_.size());
}

void
PackedTensor::buildAux()
{
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        PackedLevel& L = levels_[l];
        L.bits.clear();
        L.bitBase.clear();
        L.bitRank.clear();
        if (L.type != fmt::RankFormat::Type::B)
            continue;
        const std::size_t nf = L.fiberCount();
        L.bitBase.resize(nf + 1, 0);
        std::uint64_t total = 0;
        for (std::size_t f = 0; f < nf; ++f) {
            L.bitBase[f] = total;
            total += static_cast<std::uint64_t>(
                fiberSpan(L.crd, L.seg[f], L.seg[f + 1]));
        }
        L.bitBase[nf] = total;
        L.bits.assign((total + 63) / 64, 0);
        for (std::size_t f = 0; f < nf; ++f) {
            const std::uint64_t lo = L.seg[f];
            const std::uint64_t hi = L.seg[f + 1];
            if (lo >= hi)
                continue;
            const ft::Coord first = L.crd[lo];
            for (std::uint64_t p = lo; p < hi; ++p) {
                const std::uint64_t idx =
                    L.bitBase[f] +
                    static_cast<std::uint64_t>(L.crd[p] - first);
                L.bits[idx >> 6] |= 1ULL << (idx & 63);
            }
        }
        // Rank directory: bitRank[w] = set bits before word w.
        L.bitRank.assign(L.bits.size() + 1, 0);
        for (std::size_t w = 0; w < L.bits.size(); ++w) {
            L.bitRank[w + 1] =
                L.bitRank[w] +
                static_cast<std::uint64_t>(std::popcount(L.bits[w]));
        }
    }
}

PackedTensor
PackedTensor::fromTensor(const ft::Tensor& t, const fmt::TensorFormat& format)
{
    PackedTensor out;
    out.name_ = t.name();
    out.ranks_ = t.ranks();
    out.format_ = format;
    const std::size_t nr = out.ranks_.size();
    out.levels_.resize(nr);
    for (std::size_t l = 0; l < nr; ++l) {
        out.levels_[l].type = format.rankFormat(out.ranks_[l].id).type;
        out.levels_[l].seg.push_back(0);
    }

    // Depth-first concordant walk, copying the exact skeleton: every
    // element of every fiber (zero leaves and empty children too), so
    // packed walks visit exactly what pointer walks visit.
    std::function<void(const ft::Fiber&, std::size_t)> walk =
        [&](const ft::Fiber& fiber, std::size_t level) {
            PackedLevel& L = out.levels_[level];
            for (std::size_t pos = 0; pos < fiber.size(); ++pos) {
                L.crd.push_back(fiber.coordAt(pos));
                const ft::Payload& p = fiber.payloadAt(pos);
                if (level + 1 == nr) {
                    if (!p.isValue())
                        modelError("packing '", out.name_,
                                   "': fiber payload at the leaf rank");
                    out.vals_.push_back(p.value());
                } else {
                    if (p.isValue())
                        modelError("packing '", out.name_,
                                   "': scalar payload at interior rank '",
                                   out.ranks_[level].id, "'");
                    if (p.fiber() != nullptr)
                        walk(*p.fiber(), level + 1);
                    out.levels_[level + 1].seg.push_back(
                        out.levels_[level + 1].crd.size());
                }
            }
        };
    if (t.root() != nullptr)
        walk(*t.root(), 0);
    // Seal level 0 (one root fiber).
    out.levels_[0].seg.push_back(out.levels_[0].crd.size());
    out.buildAux();
    return out;
}

ft::Tensor
PackedTensor::toTensor() const
{
    ft::Tensor t(name_, ranks_);
    const std::size_t nr = ranks_.size();
    std::function<ft::FiberPtr(std::size_t, std::uint64_t, std::uint64_t)>
        build = [&](std::size_t level, std::uint64_t lo,
                    std::uint64_t hi) -> ft::FiberPtr {
        auto fiber = std::make_shared<ft::Fiber>(ranks_[level].shape);
        fiber->reserve(static_cast<std::size_t>(hi - lo));
        const PackedLevel& L = levels_[level];
        for (std::uint64_t p = lo; p < hi; ++p) {
            if (level + 1 == nr) {
                fiber->append(L.crd[p], ft::Payload(vals_[p]));
            } else {
                const PackedLevel& C = levels_[level + 1];
                fiber->append(L.crd[p],
                              ft::Payload(build(level + 1, C.seg[p],
                                                C.seg[p + 1])));
            }
        }
        return fiber;
    };
    if (!levels_.empty())
        t.root() = build(0, levels_[0].seg.front(), levels_[0].seg.back());
    return t;
}

std::size_t
PackedTensor::leafCountBelow(std::size_t level, std::size_t pos) const
{
    // The subtree below one element spans a contiguous position range
    // at every deeper level; narrow it down to the leaf rank.
    std::uint64_t lo = pos;
    std::uint64_t hi = pos + 1;
    for (std::size_t l = level + 1; l < levels_.size(); ++l) {
        const PackedLevel& L = levels_[l];
        lo = L.seg[lo];
        hi = L.seg[hi];
    }
    return static_cast<std::size_t>(hi - lo);
}

std::uint64_t
PackedTensor::residentBytes() const
{
    if (backing_ != nullptr)
        return mappedBytes_;
    std::uint64_t bytes = vals_.size() * sizeof(ft::Value);
    for (const PackedLevel& L : levels_) {
        bytes += L.seg.size() * sizeof(std::uint64_t);
        bytes += L.crd.size() * sizeof(ft::Coord);
        bytes += L.bits.size() * sizeof(std::uint64_t);
        bytes += L.bitBase.size() * sizeof(std::uint64_t);
        bytes += L.bitRank.size() * sizeof(std::uint64_t);
    }
    return bytes;
}

std::uint64_t
PackedTensor::subtreeBits(const fmt::TensorFormat& format,
                          std::size_t level, std::size_t pos) const
{
    const std::size_t nr = levels_.size();
    if (level + 1 == nr) {
        // Leaf payload: mirrors fmt::subtreeBits on a value payload.
        const fmt::RankFormat& rf = format.rankFormat(ranks_[level].id);
        return static_cast<std::uint64_t>(rf.payloadBits(true));
    }
    // Interior: the child fiber's recursive footprint, mirroring
    // fmt::fiberSubtreeBits fiber by fiber (same occupancy, span, and
    // shape per fiber — same bits).
    std::function<std::uint64_t(std::size_t, std::uint64_t)> fiberSub =
        [&](std::size_t l, std::uint64_t f) -> std::uint64_t {
        const PackedLevel& L = levels_[l];
        const std::uint64_t lo = L.seg[f];
        const std::uint64_t hi = L.seg[f + 1];
        const std::size_t occ = static_cast<std::size_t>(hi - lo);
        std::uint64_t bits = fmt::fiberBits(
            format.rankFormat(ranks_[l].id), occ, ranks_[l].shape,
            l + 1 == nr, fiberSpan(L.crd, lo, hi));
        if (l + 1 < nr) {
            for (std::uint64_t p = lo; p < hi; ++p)
                bits += fiberSub(l + 1, p);
        }
        return bits;
    };
    return fiberSub(level + 1, pos);
}

// --------------------------------------------------------- builder

PackedBuilder::PackedBuilder(std::string name,
                             std::vector<ft::RankInfo> ranks,
                             const fmt::TensorFormat& format)
{
    TEAAL_ASSERT(!ranks.empty(), "packed tensor '", name,
                 "' needs >= 1 rank");
    t_.name_ = std::move(name);
    t_.ranks_ = std::move(ranks);
    t_.format_ = format;
    t_.levels_.resize(t_.ranks_.size());
    for (std::size_t l = 0; l < t_.ranks_.size(); ++l)
        t_.levels_[l].type = format.rankFormat(t_.ranks_[l].id).type;
    // Level 0 has its single root fiber open from the start; interior
    // levels get one start pushed per parent element as appends open
    // their fibers (finish() seals every level with the final end).
    t_.levels_[0].seg.push_back(0);
    last_.assign(t_.ranks_.size(), 0);
}

PackedBuilder::PackedBuilder(std::string name,
                             const std::vector<std::string>& rank_ids,
                             const std::vector<ft::Coord>& shape,
                             const fmt::TensorFormat& format)
    : PackedBuilder(std::move(name),
                    [&] {
                        TEAAL_ASSERT(rank_ids.size() == shape.size(),
                                     "rank ids / shape length mismatch");
                        std::vector<ft::RankInfo> ranks;
                        for (std::size_t i = 0; i < rank_ids.size(); ++i)
                            ranks.push_back(
                                {rank_ids[i], shape[i], {}, {}});
                        return ranks;
                    }(),
                    format)
{
}

void
PackedBuilder::reserve(std::size_t nnz)
{
    for (PackedLevel& L : t_.levels_)
        L.crd.reserve(nnz);
    t_.vals_.reserve(nnz);
}

void
PackedBuilder::append(std::span<const ft::Coord> point, ft::Value v)
{
    const std::size_t nr = t_.ranks_.size();
    TEAAL_ASSERT(point.size() == nr, "packed append arity mismatch for '",
                 t_.name_, "'");
    // Divergence level: the shallowest rank whose coordinate moved.
    std::size_t d = 0;
    if (any_) {
        while (d < nr && point[d] == last_[d])
            ++d;
        if (d == nr || point[d] < last_[d])
            modelError("packed append to '", t_.name_,
                       "' out of order (points must be strictly "
                       "increasing lexicographically)");
    }
    for (std::size_t l = d; l < nr; ++l) {
        t_.levels_[l].crd.push_back(point[l]);
        // A fresh interior element opens a fiber at the level below,
        // starting at that level's current end.
        if (l + 1 < nr)
            t_.levels_[l + 1].seg.push_back(t_.levels_[l + 1].crd.size());
        last_[l] = point[l];
    }
    t_.vals_.push_back(v);
    any_ = true;
}

PackedTensor
PackedBuilder::finish() &&
{
    TEAAL_ASSERT(!finished_, "packed builder for '", t_.name_,
                 "' finished twice");
    finished_ = true;
    // Seal: seg arrays currently hold fiber *starts*; append the final
    // sentinel per level (level 0's single root fiber included).
    for (std::size_t l = 0; l < t_.levels_.size(); ++l)
        t_.levels_[l].seg.push_back(t_.levels_[l].crd.size());
    t_.buildAux();
    return std::move(t_);
}

// ------------------------------------------------------- footprints

std::uint64_t
packedTensorBits(const fmt::TensorFormat& format, const PackedTensor& t)
{
    std::uint64_t total = 0;
    const std::size_t nr = t.numRanks();
    for (std::size_t l = 0; l < nr; ++l) {
        const PackedLevel& L = t.level(l);
        const fmt::RankFormat& rf = format.rankFormat(t.rank(l).id);
        const bool is_leaf = l + 1 == nr;
        const auto pbits =
            static_cast<std::uint64_t>(rf.payloadBits(is_leaf));
        const auto cbits = static_cast<std::uint64_t>(rf.coordBits());
        const auto hbits = static_cast<std::uint64_t>(rf.headerBits());
        const std::uint64_t fibers = L.fiberCount();
        total += hbits * fibers;
        switch (rf.type) {
          case fmt::RankFormat::Type::C:
            // Straight off the buffers: one coordinate + one payload
            // slot per stored element.
            total += (cbits + pbits) * L.crd.size();
            break;
          case fmt::RankFormat::Type::B: {
            // Coordinate structure = the bit pool's actual length;
            // payloads stay compressed (one slot per element).
            std::uint64_t pool = L.bitBase.empty() ? 0 : L.bitBase.back();
            if (L.type != fmt::RankFormat::Type::B) {
                // Packed under a different format: no pool was built;
                // fall back to per-fiber spans (what the pool's length
                // would be).
                pool = 0;
                for (std::uint64_t f = 0; f < fibers; ++f)
                    pool += static_cast<std::uint64_t>(
                        fiberSpan(L.crd, L.seg[f], L.seg[f + 1]));
            }
            total += cbits * pool + pbits * L.crd.size();
            break;
          }
          case fmt::RankFormat::Type::U: {
            // Implicit payload slots cover each fiber's span (capped
            // by the rank shape) — not stored in the walk skeleton,
            // so use the span-capped formula.
            const ft::Coord shape = t.rank(l).shape;
            for (std::uint64_t f = 0; f < fibers; ++f) {
                const ft::Coord extent = std::min(
                    shape, fiberSpan(L.crd, L.seg[f], L.seg[f + 1]));
                total += (cbits + pbits) *
                         static_cast<std::uint64_t>(extent);
            }
            break;
          }
        }
    }
    return total;
}

} // namespace teaal::storage
