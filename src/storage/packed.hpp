/**
 * @file
 * Format-aware physical storage: packed compressed rank stores the
 * execution engine walks directly (paper §4.1.1; the Sparse Abstract
 * Machine and Sparseloop draw the same line between a format-agnostic
 * iteration abstraction and a swappable concrete representation).
 *
 * A `PackedTensor` materializes a fibertree into contiguous per-rank
 * buffers (CSF-style): every rank keeps a segment array delimiting its
 * fibers inside one coordinate array, the leaf rank owns one flat
 * value array, and the declared `fmt::TensorFormat` adds per-rank
 * auxiliaries —
 *
 *   C  nothing extra: the coordinate/payload arrays *are* the stored
 *      representation, so footprints are read off the buffer sizes,
 *   U  implicit coordinates: contiguous fibers take the O(1)
 *      dense-position fast path in `ft::FiberView::find`,
 *   B  a contiguous presence-bit pool (SIGMA's bitmap) with a per-word
 *      rank directory, giving O(1) membership + position probes.
 *
 * The skeleton always records the *exact* fibertree structure
 * (per-fiber occupancy, empty fibers included), so packed execution
 * walks the same elements, emits the same trace events, and produces
 * the same counters as the pointer-fibertree walk — the packed and
 * pointer backends are interchangeable behind `ft::FiberView`.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "fibertree/coiter.hpp"
#include "fibertree/tensor.hpp"
#include "format/format.hpp"

namespace teaal::storage
{

/**
 * A packed rank buffer that is either *owned* (a plain vector filled
 * by the builders) or *bound* to external read-only memory (a section
 * of an mmap-ed store file — storage/store.hpp). Readers see one
 * contiguous [data(), data()+size()) range either way, so the engine
 * walks heap and mapped tensors through identical code; mutators are
 * owned-mode only (binders never mutate, they re-bind or copy).
 */
template <typename T>
class Buf
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "packed buffers hold flat PODs");

  public:
    Buf() = default;

    // ---- owned-mode mutators (vector surface the builders use)
    void push_back(const T& v) { own_.push_back(v); }
    void reserve(std::size_t n) { own_.reserve(n); }
    void resize(std::size_t n, T v = T()) { own_.resize(n, v); }
    void
    assign(std::size_t n, T v)
    {
        ext_ = nullptr;
        extSize_ = 0;
        own_.assign(n, v);
    }
    void
    clear()
    {
        ext_ = nullptr;
        extSize_ = 0;
        own_.clear();
    }
    T& operator[](std::size_t i) { return own_[i]; }

    /** Bind to @p n elements of external memory (drops owned data).
     *  The caller keeps the memory alive (PackedTensor holds the
     *  mapping handle). */
    void
    bindExternal(const T* p, std::size_t n)
    {
        own_.clear();
        own_.shrink_to_fit();
        ext_ = p;
        extSize_ = n;
    }

    /** True when bound to external (mapped) memory. */
    bool external() const { return ext_ != nullptr; }

    // ---- readers (both modes)
    const T*
    data() const
    {
        return ext_ != nullptr ? ext_ : own_.data();
    }
    std::size_t
    size() const
    {
        return ext_ != nullptr ? extSize_ : own_.size();
    }
    bool empty() const { return size() == 0; }
    const T& operator[](std::size_t i) const { return data()[i]; }
    const T& front() const { return data()[0]; }
    const T& back() const { return data()[size() - 1]; }
    const T* begin() const { return data(); }
    const T* end() const { return data() + size(); }

    friend bool
    operator==(const Buf& a, const Buf& b)
    {
        return a.size() == b.size() &&
               std::equal(a.begin(), a.end(), b.begin());
    }

  private:
    std::vector<T> own_;
    const T* ext_ = nullptr;
    std::size_t extSize_ = 0;
};

/**
 * One rank's packed buffers. Fiber @p f of this rank occupies
 * coordinate positions [seg[f], seg[f+1]); positions are global across
 * all fibers of the rank (the position space the execution engine's
 * cursors live in).
 */
struct PackedLevel
{
    /// Charged representation of this rank (from the TensorFormat).
    fmt::RankFormat::Type type = fmt::RankFormat::Type::C;

    /// Fiber boundaries: size fiberCount()+1, seg[0] == 0.
    Buf<std::uint64_t> seg;

    /// Explicit sorted coordinates, all fibers concatenated.
    Buf<ft::Coord> crd;

    // ---- B-format auxiliary: one contiguous bit pool. Fiber f's
    // presence bitmap occupies pool bits [bitBase[f], bitBase[f+1]),
    // bit 0 standing for the fiber's first stored coordinate. Each
    // fiber contributes exactly its occupancy in set bits, so the
    // pool-global rank (popcount prefix) of a set bit *is* the global
    // element position.
    Buf<std::uint64_t> bits;
    Buf<std::uint64_t> bitBase; ///< size fiberCount()+1
    Buf<std::uint64_t> bitRank; ///< set bits before each word

    std::size_t fiberCount() const { return seg.empty() ? 0 : seg.size() - 1; }
};

/**
 * A fibertree materialized into packed rank stores. Immutable after
 * construction; views handed to the engine point into the buffers, so
 * a PackedTensor must outlive any plan bound to it (the pipeline holds
 * plans' packed inputs by shared_ptr).
 */
class PackedTensor
{
  public:
    PackedTensor() = default;

    /**
     * Pack @p t per @p format (rank formats looked up by rank id;
     * defaults are all-compressed). Preserves the exact fibertree
     * structure — zero-valued leaves and empty child fibers included —
     * so toTensor() round-trips structurally.
     */
    static PackedTensor fromTensor(const ft::Tensor& t,
                                   const fmt::TensorFormat& format = {});

    /** Materialize back into a pointer fibertree. */
    ft::Tensor toTensor() const;

    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    std::size_t numRanks() const { return ranks_.size(); }
    const ft::RankInfo& rank(std::size_t level) const
    {
        return ranks_[level];
    }
    const std::vector<ft::RankInfo>& ranks() const { return ranks_; }
    std::vector<std::string> rankIds() const;

    /** Stored leaf count (== leaf coordinate-array length). */
    std::size_t nnz() const { return vals_.size(); }

    const PackedLevel& level(std::size_t l) const { return levels_[l]; }
    const Buf<ft::Value>& values() const { return vals_; }

    /** Charged format type of one rank. */
    fmt::RankFormat::Type levelType(std::size_t l) const
    {
        return levels_[l].type;
    }

    /** The format this tensor was packed under. */
    const fmt::TensorFormat& format() const { return format_; }

    /**
     * Per-level average fiber occupancy, bit-identical to
     * ft::Tensor::occupancyHints on the unpacked tree (counts are the
     * coordinate-array lengths — no traversal needed).
     */
    std::vector<double> occupancyHints() const;

    // ------------------------------------------------- engine views
    // The view/descend accessors are the engine's per-element hot
    // path; they are defined inline here so they fold into the walk.

    /** View of the root fiber (level 0). */
    ft::FiberView
    rootView() const
    {
        if (levels_.empty())
            return {};
        return childViewOf(0, 0);
    }

    /**
     * View of the child fiber below element @p pos of level @p level
     * (valid for level + 1 < numRanks()).
     */
    ft::FiberView
    childView(std::size_t level, std::size_t pos) const
    {
        // Element pos of level l owns fiber #pos of level l+1.
        return childViewOf(level + 1, pos);
    }

    /** Leaf value at global leaf position @p pos. */
    ft::Value leafValue(std::size_t pos) const { return vals_[pos]; }

    /**
     * Stable identity key for the payload of element (@p level,
     * @p pos) — the packed analog of a pointer-walk's &Payload, used
     * by the reuse models (distinct logical payloads get distinct,
     * run-stable addresses).
     */
    const void*
    payloadKey(std::size_t level, std::size_t pos) const
    {
        if (level + 1 == levels_.size())
            return &vals_[pos];
        // Interior payload: the child fiber's segment entry is one
        // stable address per (level, pos).
        return &levels_[level + 1].seg[pos];
    }

    // -------------------------------------------------- footprints
    /**
     * Footprint in bits of the subtree below element (@p level,
     * @p pos) under @p format — the packed analog of
     * fmt::subtreeBits, numerically identical for the same structure.
     */
    std::uint64_t subtreeBits(const fmt::TensorFormat& format,
                              std::size_t level, std::size_t pos) const;

    /** Scalar leaves below element (@p level, @p pos): O(depth). */
    std::size_t leafCountBelow(std::size_t level, std::size_t pos) const;

    /**
     * Actual resident heap bytes of the packed buffers (segment,
     * coordinate, value, and bitmap arrays) — host memory accounting
     * for caches holding packed tensors (serve::Registry's eviction
     * budget), as opposed to packedTensorBits' *charged* format
     * footprint. Mapped tensors (storage/store.hpp) are charged their
     * store file size: that is the page-cache footprint the mapping
     * can pin, and what a registry eviction releases by unmapping.
     */
    std::uint64_t residentBytes() const;

    /** True when the buffers point into an mmap-ed store file. */
    bool mapped() const { return backing_ != nullptr; }

    /** Source file of a mapped tensor (empty for heap tensors). */
    const std::string& storePath() const { return storePath_; }

  private:
    friend class PackedBuilder;
    friend struct StoreAccess; ///< storage/store.cpp (de)serializer

    /** Build the B-format bit pools + rank directories. */
    void buildAux();

    /** View of fiber @p fiber at @p level (position-space window). */
    ft::FiberView
    childViewOf(std::size_t level, std::size_t fiber) const
    {
        const PackedLevel& L = levels_[level];
        ft::FiberView v;
        v.crd = L.crd.data();
        v.lo = static_cast<std::size_t>(L.seg[fiber]);
        v.hi = static_cast<std::size_t>(L.seg[fiber + 1]);
        v.shapeHint = ranks_[level].shape;
        if (!L.bits.empty() && v.hi > v.lo) {
            v.bits = L.bits.data();
            v.bitRank = L.bitRank.data();
            v.bitBase = L.bitBase[fiber];
            v.bitFirst = L.crd[v.lo];
            v.bitExtent = static_cast<ft::Coord>(L.bitBase[fiber + 1] -
                                                 L.bitBase[fiber]);
        }
        return v;
    }

    std::string name_;
    std::vector<ft::RankInfo> ranks_;
    std::vector<PackedLevel> levels_; ///< one per rank
    Buf<ft::Value> vals_;             ///< leaf payloads
    fmt::TensorFormat format_;

    // Mapped-store backing: keeps the mmap alive for the lifetime of
    // every copy of this tensor (Buf copies share the same external
    // pointers, so copies share the mapping — and the pages).
    std::shared_ptr<void> backing_;
    std::uint64_t mappedBytes_ = 0; ///< store file size when mapped
    std::string storePath_;
};

/**
 * Streaming concordant constructor: feed strictly increasing
 * (lexicographic) points and values, get a PackedTensor without ever
 * building a pointer fibertree — the bulk path for sorted external
 * data (Matrix Market CSR streams, COO dumps).
 */
class PackedBuilder
{
  public:
    PackedBuilder(std::string name, std::vector<ft::RankInfo> ranks,
                  const fmt::TensorFormat& format = {});

    PackedBuilder(std::string name,
                  const std::vector<std::string>& rank_ids,
                  const std::vector<ft::Coord>& shape,
                  const fmt::TensorFormat& format = {});

    /** Pre-size every level's buffers for @p nnz leaves. */
    void reserve(std::size_t nnz);

    /**
     * Append one leaf. @p point must be lexicographically greater
     * than the previous point (ModelError otherwise).
     */
    void append(std::span<const ft::Coord> point, ft::Value v);

    /** Finalize (seals segment sentinels, builds bitmap pools). */
    PackedTensor finish() &&;

  private:
    PackedTensor t_;
    std::vector<ft::Coord> last_;
    bool any_ = false;
    bool finished_ = false;
};

/**
 * Total footprint in bits of a packed tensor under @p format. C and B
 * ranks are read off the actual buffer sizes (coordinate-array
 * lengths, bit-pool length); U ranks use the span-capped formula (the
 * walk skeleton stores occupancy, not the implicit payload slots).
 * Numerically identical to fmt::tensorBits on the unpacked tree.
 */
std::uint64_t packedTensorBits(const fmt::TensorFormat& format,
                               const PackedTensor& t);

} // namespace teaal::storage
