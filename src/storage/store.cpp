#include "storage/store.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/diagnostic.hpp"
#include "util/failpoint.hpp"

namespace teaal::storage
{

/** Friend key to PackedTensor's private fields (mapStore assembles a
 *  tensor whose buffers point into the mapping). */
struct StoreAccess
{
    static std::string& name(PackedTensor& t) { return t.name_; }
    static std::vector<ft::RankInfo>&
    ranks(PackedTensor& t)
    {
        return t.ranks_;
    }
    static std::vector<PackedLevel>&
    levels(PackedTensor& t)
    {
        return t.levels_;
    }
    static Buf<ft::Value>& vals(PackedTensor& t) { return t.vals_; }
    static fmt::TensorFormat&
    format(PackedTensor& t)
    {
        return t.format_;
    }
    static void
    bindBacking(PackedTensor& t, std::shared_ptr<void> backing,
                std::uint64_t bytes, std::string path)
    {
        t.backing_ = std::move(backing);
        t.mappedBytes_ = bytes;
        t.storePath_ = std::move(path);
    }
};

namespace
{

constexpr std::uint64_t kAlign = 64;

std::uint64_t
align64(std::uint64_t n)
{
    return (n + kAlign - 1) & ~(kAlign - 1);
}

/** Incremental FNV-1a (64-bit). */
class Fnv
{
  public:
    void
    update(const void* data, std::size_t n)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 1099511628211ULL;
        }
    }

    /** Feed @p n zero bytes (section padding). */
    void
    pad(std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= 0;
            hash_ *= 1099511628211ULL;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ULL;
};

/** The 64-byte fixed prologue (field offsets documented in store.hpp). */
struct Prologue
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t rankCount;
    std::uint64_t headerBytes;
    std::uint64_t fileBytes;
    std::uint64_t payloadChecksum;
    std::uint64_t headerChecksum;
    std::uint64_t nnz;
    std::uint64_t reserved;
};
static_assert(sizeof(Prologue) == 64, "store prologue is 64 bytes");

/** One section table entry: a payload buffer's location. */
struct Section
{
    std::uint64_t offset = 0; ///< from file start, 64-byte aligned
    std::uint64_t count = 0;  ///< element count (not bytes)
};

// ------------------------------------------------- header writing

void
appendBytes(std::string& out, const void* data, std::size_t n)
{
    out.append(static_cast<const char*>(data), n);
}

void
appendU64(std::string& out, std::uint64_t v)
{
    appendBytes(out, &v, sizeof(v));
}

void
appendI64(std::string& out, std::int64_t v)
{
    appendBytes(out, &v, sizeof(v));
}

void
appendU8(std::string& out, std::uint8_t v)
{
    appendBytes(out, &v, sizeof(v));
}

void
appendStr(std::string& out, const std::string& s)
{
    appendU64(out, s.size());
    appendBytes(out, s.data(), s.size());
}

void
appendOptInt(std::string& out, const std::optional<int>& v)
{
    appendU8(out, v.has_value() ? 1 : 0);
    const std::int32_t raw = v.value_or(0);
    appendBytes(out, &raw, sizeof(raw));
}

std::uint8_t
typeCode(fmt::RankFormat::Type t)
{
    switch (t) {
      case fmt::RankFormat::Type::U: return 0;
      case fmt::RankFormat::Type::C: return 1;
      case fmt::RankFormat::Type::B: return 2;
    }
    return 1;
}

// ------------------------------------------------- header reading

/** Bounds-checked little reader over the variable header. */
class ByteReader
{
  public:
    ByteReader(const unsigned char* begin, const unsigned char* end,
               const std::string& path)
        : p_(begin), end_(end), path_(path)
    {
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v;
        take(&v, sizeof(v));
        return v;
    }

    std::int64_t
    i64()
    {
        std::int64_t v;
        take(&v, sizeof(v));
        return v;
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v;
        take(&v, sizeof(v));
        return v;
    }

    std::int32_t
    i32()
    {
        std::int32_t v;
        take(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (n > static_cast<std::uint64_t>(end_ - p_))
            diagError("store", path_,
                      "truncated header (string of ", n,
                      " bytes overruns the header section)");
        std::string s(reinterpret_cast<const char*>(p_),
                      static_cast<std::size_t>(n));
        p_ += n;
        return s;
    }

    std::optional<int>
    optInt()
    {
        const bool present = u8() != 0;
        const std::int32_t raw = i32();
        if (present)
            return static_cast<int>(raw);
        return std::nullopt;
    }

  private:
    void
    take(void* out, std::size_t n)
    {
        if (static_cast<std::size_t>(end_ - p_) < n)
            diagError("store", path_, "truncated header");
        std::memcpy(out, p_, n);
        p_ += n;
    }

    const unsigned char* p_;
    const unsigned char* end_;
    const std::string& path_;
};

fmt::RankFormat::Type
typeFromCode(std::uint8_t code, const std::string& path)
{
    switch (code) {
      case 0: return fmt::RankFormat::Type::U;
      case 1: return fmt::RankFormat::Type::C;
      case 2: return fmt::RankFormat::Type::B;
      default:
        diagError("store", path, "unknown rank format code ",
                  static_cast<int>(code));
    }
}

/** mmap-ed store file; the last PackedTensor copy unmaps. */
struct MappedFile
{
    void* base = MAP_FAILED;
    std::size_t length = 0;
    int fd = -1;

    ~MappedFile()
    {
        if (base != MAP_FAILED)
            ::munmap(base, length);
        if (fd >= 0)
            ::close(fd);
    }
};

/** The per-level payload buffers, in section-table order. */
struct LevelBytes
{
    const void* data;
    std::uint64_t count;
    std::uint64_t elemSize;
};

std::vector<LevelBytes>
sectionBuffers(const PackedTensor& t)
{
    std::vector<LevelBytes> out;
    for (std::size_t l = 0; l < t.numRanks(); ++l) {
        const PackedLevel& L = t.level(l);
        out.push_back({L.seg.data(), L.seg.size(), sizeof(std::uint64_t)});
        out.push_back({L.crd.data(), L.crd.size(), sizeof(ft::Coord)});
        out.push_back(
            {L.bits.data(), L.bits.size(), sizeof(std::uint64_t)});
        out.push_back(
            {L.bitBase.data(), L.bitBase.size(), sizeof(std::uint64_t)});
        out.push_back(
            {L.bitRank.data(), L.bitRank.size(), sizeof(std::uint64_t)});
    }
    out.push_back(
        {t.values().data(), t.values().size(), sizeof(ft::Value)});
    return out;
}

} // namespace

void
writeStore(const std::string& path, const PackedTensor& t)
{
    const std::size_t nr = t.numRanks();
    if (nr == 0)
        diagError("store", path, "cannot write an empty (rankless) "
                                 "packed tensor");

    // Variable header: metadata first, then the section table (its
    // size is known up front, so headerBytes — and with it every
    // section offset — is computable before the table is emitted).
    std::string meta;
    appendStr(meta, t.name());
    for (std::size_t l = 0; l < nr; ++l) {
        const ft::RankInfo& r = t.rank(l);
        appendStr(meta, r.id);
        appendI64(meta, r.shape);
        appendU64(meta, r.flatIds.size());
        for (const std::string& id : r.flatIds)
            appendStr(meta, id);
        appendU64(meta, r.flatShapes.size());
        for (const ft::Coord s : r.flatShapes)
            appendI64(meta, s);
        appendU8(meta, typeCode(t.levelType(l)));
    }
    const fmt::TensorFormat& fmt = t.format();
    appendStr(meta, fmt.config);
    appendU64(meta, fmt.rankOrder.size());
    for (const std::string& id : fmt.rankOrder)
        appendStr(meta, id);
    appendU64(meta, fmt.ranks.size());
    for (const auto& [id, rf] : fmt.ranks) {
        appendStr(meta, id);
        appendU8(meta, typeCode(rf.type));
        appendU8(meta,
                 rf.layout == fmt::RankFormat::Layout::Interleaved ? 1
                                                                   : 0);
        appendOptInt(meta, rf.cbits);
        appendOptInt(meta, rf.pbits);
        appendOptInt(meta, rf.fhbits);
    }

    const std::vector<LevelBytes> buffers = sectionBuffers(t);
    const std::uint64_t tableBytes = buffers.size() * sizeof(Section);
    const std::uint64_t headerBytes =
        align64(sizeof(Prologue) + meta.size() + tableBytes);

    // Lay out the payload and checksum it (including alignment gaps,
    // so the on-disk byte range is covered end to end).
    std::vector<Section> table(buffers.size());
    Fnv payload_sum;
    std::uint64_t cursor = headerBytes;
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        const std::uint64_t aligned = align64(cursor);
        payload_sum.pad(static_cast<std::size_t>(aligned - cursor));
        table[i].offset = aligned;
        table[i].count = buffers[i].count;
        const std::uint64_t bytes = buffers[i].count * buffers[i].elemSize;
        payload_sum.update(buffers[i].data,
                           static_cast<std::size_t>(bytes));
        cursor = aligned + bytes;
    }
    const std::uint64_t fileBytes = cursor;

    Prologue pro{};
    std::memcpy(pro.magic, kStoreMagic, sizeof(pro.magic));
    pro.version = kStoreVersion;
    pro.rankCount = static_cast<std::uint32_t>(nr);
    pro.headerBytes = headerBytes;
    pro.fileBytes = fileBytes;
    pro.payloadChecksum = payload_sum.value();
    pro.headerChecksum = 0; // covered field reads as zero
    pro.nnz = t.nnz();

    Fnv header_sum;
    header_sum.update(&pro, sizeof(pro));
    header_sum.update(meta.data(), meta.size());
    header_sum.update(table.data(), static_cast<std::size_t>(tableBytes));
    header_sum.pad(static_cast<std::size_t>(
        headerBytes - sizeof(Prologue) - meta.size() - tableBytes));
    pro.headerChecksum = header_sum.value();

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        diagError("store", path, "cannot open for writing");
    const std::string zeros(kAlign, '\0');
    auto put = [&](const void* data, std::uint64_t n) {
        out.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(n));
    };
    put(&pro, sizeof(pro));
    put(meta.data(), meta.size());
    put(table.data(), tableBytes);
    put(zeros.data(),
        headerBytes - sizeof(Prologue) - meta.size() - tableBytes);
    cursor = headerBytes;
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        put(zeros.data(), table[i].offset - cursor);
        const std::uint64_t bytes = buffers[i].count * buffers[i].elemSize;
        put(buffers[i].data, bytes);
        cursor = table[i].offset + bytes;
    }
    out.flush();
    if (!out)
        diagError("store", path, "write failed (disk full?)");
}

PackedTensor
mapStore(const std::string& path, bool verifyPayload)
{
    auto map = std::make_shared<MappedFile>();
    map->fd = ::open(path.c_str(), O_RDONLY);
    if (map->fd < 0)
        diagError("store", path, "cannot open");
    struct stat st{};
    if (::fstat(map->fd, &st) != 0)
        diagError("store", path, "cannot stat");
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size < sizeof(Prologue))
        diagError("store", path, "not a packed store file (only ", size,
                  " bytes)");
    map->length = static_cast<std::size_t>(size);

    if (!TEAAL_FAILPOINT_TRIGGERED("storage.store.map"))
        map->base = ::mmap(nullptr, map->length, PROT_READ, MAP_SHARED,
                           map->fd, 0);
    if (map->base == MAP_FAILED)
        diagError("store", path, "mmap failed");
    const auto* bytes = static_cast<const unsigned char*>(map->base);

    Prologue pro{};
    std::memcpy(&pro, bytes, sizeof(pro));
    if (std::memcmp(pro.magic, kStoreMagic, sizeof(pro.magic)) != 0)
        diagError("store", path, "bad magic (not a packed store file)");
    if (pro.version != kStoreVersion)
        diagError("store", path, "unsupported store version ",
                  pro.version, " (this build reads version ",
                  kStoreVersion, ")");
    if (pro.fileBytes != size)
        diagError("store", path, "truncated store: header says ",
                  pro.fileBytes, " bytes, file has ", size);
    if (pro.headerBytes < sizeof(Prologue) || pro.headerBytes > size ||
        pro.headerBytes % kAlign != 0)
        diagError("store", path, "corrupt header geometry");
    if (pro.rankCount == 0 || pro.rankCount > 256)
        diagError("store", path, "corrupt rank count ", pro.rankCount);

    // Header checksum: the stored field reads as zero.
    Prologue zeroed = pro;
    zeroed.headerChecksum = 0;
    Fnv header_sum;
    header_sum.update(&zeroed, sizeof(zeroed));
    header_sum.update(bytes + sizeof(Prologue),
                      static_cast<std::size_t>(pro.headerBytes) -
                          sizeof(Prologue));
    if (header_sum.value() != pro.headerChecksum ||
        TEAAL_FAILPOINT_TRIGGERED("storage.store.corrupt"))
        diagError("store", path,
                  "header checksum mismatch (corrupt store)");

    const std::size_t nr = pro.rankCount;
    ByteReader reader(bytes + sizeof(Prologue), bytes + pro.headerBytes,
                      path);

    PackedTensor t;
    StoreAccess::name(t) = reader.str();
    std::vector<ft::RankInfo>& ranks = StoreAccess::ranks(t);
    std::vector<PackedLevel>& levels = StoreAccess::levels(t);
    ranks.resize(nr);
    levels.resize(nr);
    for (std::size_t l = 0; l < nr; ++l) {
        ranks[l].id = reader.str();
        ranks[l].shape = reader.i64();
        const std::uint64_t nfids = reader.u64();
        if (nfids > 256)
            diagError("store", path, "corrupt flat-id count");
        for (std::uint64_t i = 0; i < nfids; ++i)
            ranks[l].flatIds.push_back(reader.str());
        const std::uint64_t nfsh = reader.u64();
        if (nfsh > 256)
            diagError("store", path, "corrupt flat-shape count");
        for (std::uint64_t i = 0; i < nfsh; ++i)
            ranks[l].flatShapes.push_back(reader.i64());
        levels[l].type = typeFromCode(reader.u8(), path);
    }
    fmt::TensorFormat& format = StoreAccess::format(t);
    format.config = reader.str();
    const std::uint64_t n_order = reader.u64();
    if (n_order > 256)
        diagError("store", path, "corrupt rank-order count");
    for (std::uint64_t i = 0; i < n_order; ++i)
        format.rankOrder.push_back(reader.str());
    const std::uint64_t n_fmt = reader.u64();
    if (n_fmt > 256)
        diagError("store", path, "corrupt rank-format count");
    for (std::uint64_t i = 0; i < n_fmt; ++i) {
        const std::string id = reader.str();
        fmt::RankFormat rf;
        rf.type = typeFromCode(reader.u8(), path);
        rf.layout = reader.u8() != 0
                        ? fmt::RankFormat::Layout::Interleaved
                        : fmt::RankFormat::Layout::Contiguous;
        rf.cbits = reader.optInt();
        rf.pbits = reader.optInt();
        rf.fhbits = reader.optInt();
        format.ranks.emplace(id, rf);
    }

    // Section table: bounds-check every range against the file before
    // any buffer is bound.
    auto section = [&]() {
        Section s;
        s.offset = reader.u64();
        s.count = reader.u64();
        return s;
    };
    auto bind = [&]<typename T>(Buf<T>& buf, const Section& s) {
        const std::uint64_t end = s.offset + s.count * sizeof(T);
        if (s.offset % kAlign != 0 || s.offset < pro.headerBytes ||
            end > pro.fileBytes || end < s.offset)
            diagError("store", path,
                      "corrupt section table (range [", s.offset, ", ",
                      end, ") outside the file)");
        buf.bindExternal(reinterpret_cast<const T*>(bytes + s.offset),
                         static_cast<std::size_t>(s.count));
    };
    for (std::size_t l = 0; l < nr; ++l) {
        bind(levels[l].seg, section());
        bind(levels[l].crd, section());
        bind(levels[l].bits, section());
        bind(levels[l].bitBase, section());
        bind(levels[l].bitRank, section());
        // A well-formed level always persists segment sentinels (an
        // empty interior level still has its single closing entry).
        if (levels[l].seg.empty())
            diagError("store", path, "corrupt store: rank '",
                      ranks[l].id, "' has no segment sentinels");
    }
    bind(StoreAccess::vals(t), section());
    if (StoreAccess::vals(t).size() != pro.nnz)
        diagError("store", path, "corrupt store: prologue nnz ",
                  pro.nnz, " != value section count ",
                  StoreAccess::vals(t).size());

    if (verifyPayload) {
        Fnv payload_sum;
        payload_sum.update(bytes + pro.headerBytes,
                           static_cast<std::size_t>(pro.fileBytes -
                                                    pro.headerBytes));
        if (payload_sum.value() != pro.payloadChecksum)
            diagError("store", path,
                      "payload checksum mismatch (corrupt store)");
    }

    StoreAccess::bindBacking(t, std::move(map), pro.fileBytes, path);
    return t;
}

bool
isStoreFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, kStoreMagic, sizeof(magic)) == 0;
}

} // namespace teaal::storage
