/**
 * @file
 * The imperative-style IR the simulator generator produces (paper
 * §4.3, Figure 6): one executable loop-nest plan per Einsum.
 *
 * A plan records, per loop rank, how each tensor participates:
 *
 *   CoIterate  the tensor owns a fiber at this rank and is walked by
 *              the rank's co-iterator (intersection for products,
 *              union for sums),
 *   Slice      a dynamic occupancy-partitioning follower restricts its
 *              fiber to the leader's current chunk range (§3.2.1),
 *   Lookup     the tensor is indexed by an already-bound expression: a
 *              component of a flattened rank, an affine expression
 *              (conv), or a constant (FFT).
 *
 * Upper partition ranks bind coordinate ranges; leaf ranks bind the
 * Einsum's index variables (unpacking flattened tuples). The plan also
 * records the inferred rank swizzles needed for concordant traversal
 * (§3.2.2) and whether each was online (charged) or offline.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "einsum/parser.hpp"
#include "fibertree/tensor.hpp"
#include "mapping/mapping.hpp"

namespace teaal::storage
{
class PackedTensor;
} // namespace teaal::storage

namespace teaal::ir
{

/**
 * How a loop rank's co-iterated fibers are walked. Chosen per loop at
 * plan time from driver occupancy hints; the execution engine
 * dispatches on the enum (no virtual call per element).
 *
 *   TwoFinger   the classic sorted merge over all drivers (with a
 *               runtime leader-follower escape for skewed fibers),
 *   Gallop      leader-follower with binary-search leaps through the
 *               denser driver — wins when one driver is much sparser,
 *   DenseDrive  iterate the coordinate space [0, extent) and probe
 *               the drivers (also the path for driverless ranks).
 */
enum class CoiterStrategy
{
    TwoFinger,
    Gallop,
    DenseDrive,
};

/**
 * How a loop rank's packed drivers are accessed when the plan binds
 * packed inputs (storage/packed.hpp) — recorded at instantiation from
 * the drivers' declared rank formats, for introspection (toString,
 * tests, tools). The actual dispatch is *structural*: each
 * ft::FiberView picks its find/walk path from the packed auxiliaries
 * it carries, so this field describes what instantiation selected
 * rather than steering execution. It is the host-side access variant,
 * orthogonal to `coiter` (which fixes the modeled hardware walk and
 * its charged counts): packed variants accelerate the walk without
 * changing a single emitted event. A loop with mixed-format packed
 * drivers records the strongest variant (BitmapProbe > DenseImplicit
 * > Coords).
 *
 *   None           no packed driver at this rank,
 *   Coords         gallop / two-finger over the raw coordinate array
 *                  (C-format ranks),
 *   DenseImplicit  O(1) implicit-coordinate probes on contiguous
 *                  fibers (U-format ranks),
 *   BitmapProbe    O(1) presence-bit + rank-directory probes (B-format
 *                  ranks, SIGMA's bitmap intersection).
 */
enum class PackedWalk
{
    None,
    Coords,
    DenseImplicit,
    BitmapProbe,
};

/** How a tensor level is advanced at some loop rank. */
struct LevelAction
{
    enum class Mode { CoIterate, Slice, Lookup };

    Mode mode = Mode::CoIterate;

    /// Which loop rank triggers this action.
    int loopIndex = 0;

    /// Which prepared-tensor level it advances (Slice re-restricts the
    /// same level that a later CoIterate consumes).
    int level = 0;

    /// For Lookup: the index expression to evaluate.
    einsum::IndexExpr expr;
};

/** One input tensor, prepared (partitioned/swizzled) for this Einsum. */
struct TensorPlan
{
    std::string name;

    /// Slot in Expression::inputs.
    int exprInput = -1;

    /// The materialized, concordantly-ordered fibertree. When the
    /// source tensor was already concordant and the caller allowed
    /// sharing (instantiatePlan's share_unprepared), this is a shallow
    /// copy whose fibers are shared with the caller's tensor (fibers
    /// are shared_ptrs); execution never mutates input trees, so the
    /// share is safe and costs no deep copy. When `packed` is set this
    /// is an empty rank-skeleton placeholder (the model reads rank
    /// metadata off it; no fiber data exists).
    ft::Tensor prepared;

    /// Bound packed rank store (storage/packed.hpp): set when the
    /// workload supplied this input packed, no preparation (partition/
    /// flatten/swizzle) applies, and the packed rank order is already
    /// concordant. The engine then walks the packed buffers directly —
    /// no pointer fiber is ever built or cloned for this input.
    std::shared_ptr<const storage::PackedTensor> packed;

    /// Actions in execution order (sorted by loopIndex, then level).
    std::vector<LevelAction> actions;

    /// Swizzle inferred to reach concordant order. Online swizzles
    /// (on intermediates) are charged to the merger model.
    bool swizzled = false;
    bool swizzleOnline = false;
    std::size_t swizzleElements = 0;
    std::size_t swizzleWays = 1;
};

/** One rank of the loop nest. */
struct LoopRank
{
    std::string name;

    /// Index variables bound when a coordinate here is fixed (empty
    /// for upper partition ranks, multiple for flattened ranks).
    std::vector<std::string> bindsVars;

    /// For flattened ranks: strides to unpack the packed coordinate,
    /// parallel to bindsVars (value_i = (c / stride_i) % shape_i).
    std::vector<ft::Coord> unpackStrides;
    std::vector<ft::Coord> unpackShapes;

    /// Upper partition ranks narrow a coordinate range instead of
    /// binding variables.
    bool isUpperPartition = false;

    /// Static tile extent for shape-partition upper ranks (range end =
    /// coord + rangeTile); 0 means take the range from the driver.
    ft::Coord rangeTile = 0;

    /// Spacetime: spatial ranks contribute to the PE index.
    bool isSpace = false;
    bool coordSpace = false;

    /// Mixed-radix extent used when folding positions into a PE id.
    std::size_t spaceExtent = 1;

    /// Extent for dense (shape-range) iteration when nothing
    /// co-iterates here; 0 if a driver exists.
    ft::Coord denseExtent = 0;

    /// Take Einsums probe ranks private to the non-copied operand
    /// instead of fully iterating them (a bitmap check in hardware).
    bool probeOnly = false;

    /// Co-iteration strategy, selected at plan time from the drivers'
    /// occupancy hints (DenseDrive for driverless ranks).
    CoiterStrategy coiter = CoiterStrategy::TwoFinger;

    /// Packed-driver access variant (None unless a packed input
    /// co-iterates here); see PackedWalk.
    PackedWalk packedWalk = PackedWalk::None;

    /// Occupancy skew between the densest and sparsest driver at this
    /// rank (1 when uniform or fewer than two drivers); diagnostic for
    /// the strategy choice.
    double driverSkew = 1.0;
};

/** Output production plan. */
struct OutputPlan
{
    std::string name;

    /// Rank ids in production order (projection of the loop order).
    std::vector<std::string> productionOrder;

    /// Shape of each production rank.
    std::vector<ft::Coord> shapes;

    /// Index variable of each production rank.
    std::vector<std::string> vars;

    /// Loop index at which each production level's variable binds.
    std::vector<int> boundAtLoop;

    /// Declared storage order (mapping rank-order or declaration).
    std::vector<std::string> declaredOrder;

    /// True if production order differs from declared order: the
    /// result is swizzled after production (online, charged).
    bool needsReorder = false;
};

/**
 * How (and whether) one Einsum's execution can be sharded across a
 * worker pool (the parallel path of `exec::Executor`) — see the
 * long-form rationale on `analyzeSharding` below.
 */
struct ShardPlan
{
    /**
     * How shard partial outputs relate, which picks the merge:
     *  - Disjoint: the sharded prefix binds only output variables,
     *    so shards write disjoint output subtrees; merged with
     *    `Fiber::absorbDisjoint` (leaf collisions are hard errors —
     *    the debug check of this mode).
     *  - Reduce: the sharded prefix restricts a contraction variable
     *    (or the output is a scalar), so shards hold private partial
     *    outputs that legitimately overlap; merged with
     *    `Fiber::absorbReduce` (semiring-add on leaf collisions),
     *    and the replayed trace stream is patched so the reduce adds
     *    land exactly where the serial run put them.
     *  - Inner: the outermost rank itself is unshardable (lookup
     *    actions, binds no variable) or too thin to feed a pool, so
     *    the walk *below* each top coordinate is sharded instead
     *    (`depth == 1`); partials merge per Disjoint/Reduce rules via
     *    `reduceMerge`.
     */
    enum class Mode { Disjoint, Reduce, Inner };

    bool shardable = false;

    Mode mode = Mode::Disjoint;

    /// Loop index whose walk is partitioned into contiguous shards:
    /// 0 for Disjoint/Reduce, 1 for Inner.
    std::size_t depth = 0;

    /// True when partial outputs may overlap and must merge with
    /// absorbReduce (Mode::Reduce, or Mode::Inner over a
    /// contraction-restricting prefix).
    bool reduceMerge = false;

    /// The sharded loop rank (loop `depth`'s rank id).
    std::string rank;

    /// The (outermost) space rank, when the mapping declares one.
    /// Informational since PR 6: host-side sharding no longer
    /// requires declared spatial parallelism.
    std::string spaceRank;

    /// Why the plan is not shardable (empty when it is).
    std::string reason;

    /// Work-weighting factors, one per input slot (plan overload
    /// only): expected leaves below one child of that input's driver
    /// fiber at the sharded loop, from occupancy hints. The engine
    /// scores each top-walk entry as 1 + sum over present drivers of
    /// child-occupancy x factor, and the executor places shard
    /// boundaries at weighted quantiles instead of equal counts.
    std::vector<double> driverWeight;
};

/** A fully lowered Einsum: the unit the executor interprets. */
struct EinsumPlan
{
    einsum::Expression expr;

    std::vector<LoopRank> loops;
    std::vector<TensorPlan> inputs;
    OutputPlan output;

    /// Loop index of each variable's binding (for lookups).
    std::map<std::string, int> varBoundAt;

    /// True when shared ranks co-iterate by union (Add) rather than
    /// intersection (Multiply/Take/Assign).
    bool unionCombine = false;

    /// Whole-tensor copy (P1 = P0) bypasses the loop nest.
    bool wholeTensorCopy = false;

    /// Authoritative shardability, filled once by instantiatePlan so
    /// run-many never re-derives it (default: not shardable, which is
    /// the safe answer for hand-assembled plans).
    ShardPlan shard;

    std::string toString() const;
};

/** Short human-readable strategy name ("2finger", "gallop", "dense"). */
const char* coiterStrategyName(CoiterStrategy s);

/** Short packed-walk name ("", "coords", "implicit", "bitmap"). */
const char* packedWalkName(PackedWalk w);

/**
 * One partitioning group of a recipe: a value-owning copy of the
 * mapping's RankPartitioning analysis, so recipes stay valid without
 * referencing the MappingSpec they came from.
 */
struct RecipeGroup
{
    /// The group key's ranks (several for a flatten like `(K, M)`).
    std::vector<std::string> sourceRanks;

    /// Rank the split directives apply to (post-flatten).
    std::string base;

    /// Derived rank names, top-down (K -> {K1, K0}).
    std::vector<std::string> results;

    /// Split directives in application order (flattens excluded).
    std::vector<mapping::PartitionDirective> splits;

    bool hasFlatten = false;

    /// At least one occupancy split; `leader` names its leader tensor.
    bool occupancy = false;
    std::string leader;
};

/**
 * The spec-only lowering of one Einsum (paper §4.2): everything the
 * simulator generator can derive from the specification alone, before
 * any workload data exists. `compiler::compile` produces one recipe
 * per Einsum; `instantiatePlan` binds a recipe to real tensors.
 */
struct EinsumRecipe
{
    einsum::Expression expr;

    bool unionCombine = false;
    bool wholeTensorCopy = false;

    std::vector<RecipeGroup> groups;

    /// Resolved loop order (declared, or derived from Einsum order
    /// with partition groups expanded).
    std::vector<std::string> loopOrder;

    /// Take-Einsum probe variables (private to the non-copied operand).
    std::vector<std::string> probeVars;

    /// Spacetime entries, validated against the loop order.
    std::vector<mapping::SpaceTimeEntry> space;

    /// Declared storage order of the output (mapping rank-order when
    /// present, else the declaration).
    std::vector<std::string> outputDeclaredOrder;
};

/**
 * Decide shardability (the parallel path of `exec::Executor`).
 *
 * Sharding splits one loop rank's walk into contiguous coordinate
 * windows: each shard executes the loop nest below its window against
 * the shared (immutable, fiber-shared) inputs, producing a private
 * partial output and a private trace capture that a finalize step
 * merges in canonical shard order. Since PR 6 every loop nest that
 * actually walks its inputs shards — the analysis picks *how*:
 *
 *   - The sharded rank defaults to the outermost loop (`depth` 0).
 *     When every variable that rank binds or restricts (its own
 *     `bindsVars`, plus those of the leaf rank of the same partition
 *     group, e.g. M1 restricting m via M0) appears in the output,
 *     shards write disjoint output subtrees: Mode::Disjoint, merged
 *     with absorbDisjoint.
 *   - When the prefix restricts a contraction variable (SIGMA's K1)
 *     or the output is a scalar, shards legitimately write the same
 *     output points: Mode::Reduce, merged with absorbReduce
 *     (semiring-add on leaf collisions) plus a replay-time patch
 *     that keeps counters and trace streams serial-identical.
 *   - When the top rank is unshardable — it carries Lookup actions
 *     (loop-entry lookups would re-fire per shard), binds no index
 *     variable, or its walk is too thin to feed a pool (estimated
 *     from driver root occupancy) — the analysis falls through to
 *     the loop below it: Mode::Inner (`depth` 1), where shards split
 *     the flattened inner walk and replicate the outer entry/exit
 *     state machine (muted except for the owning shard).
 *
 * Plans that still run serially (`shardable == false`, `reason` says
 * why): whole-tensor copies, empty loop nests, single-loop nests
 * whose only rank is unshardable, and take-Einsums whose sharded
 * prefix restricts the probe variable (a take reduce-merge would
 * double-count the idempotent writes).
 *
 * The recipe overload is what `compile` can precompute before any
 * workload exists (it cannot see lookup actions or occupancy, so it
 * reports depth-0 modes only); the plan overload is authoritative
 * (instantiation adds lookup actions, occupancy hints, and the
 * work-weighting table) and its result is stored in EinsumPlan::shard
 * by instantiatePlan, so the run path never re-derives it.
 */
ShardPlan analyzeSharding(const EinsumRecipe& recipe);
ShardPlan analyzeSharding(const EinsumPlan& plan);

/** Live tensors by name, borrowed from the caller. */
using TensorRefMap = std::map<std::string, const ft::Tensor*>;

/**
 * Live packed tensors by name. Borrowed entries use a non-owning
 * shared_ptr (empty control block); owned entries keep the packed
 * buffers alive for as long as any cached plan binds them.
 */
using PackedRefMap =
    std::map<std::string, std::shared_ptr<const storage::PackedTensor>>;

/**
 * Stage 1 — analyze: derive the spec-only recipe for @p expr.
 * Surfaces loop-order / partitioning / spacetime inconsistencies as
 * SpecError without needing any tensor data, so `compile` can reject
 * bad specifications before the first run.
 */
EinsumRecipe analyzeEinsum(const einsum::Expression& expr,
                           const einsum::EinsumSpec& spec,
                           const mapping::MappingSpec& map);

/**
 * Stage 2 — instantiate: bind @p recipe to real tensors, producing the
 * executable plan (prepared fibertrees, dense extents, co-iteration
 * strategies from occupancy hints).
 *
 * @param tensors  Live tensors by name (workload inputs in their
 *                 mapping rank-order plus intermediates built by
 *                 earlier Einsums). Borrowed for the duration of the
 *                 call only.
 * @param intermediates Names of tensors produced by earlier Einsums
 *                 (their swizzles are online and charged).
 * @param share_unprepared When true, an input needing no preparation
 *                 is shallow-copied (fiber trees shared) instead of
 *                 deep-cloned — the compile-once/run-many path.
 * @param packed   Inputs supplied as packed rank stores. A packed
 *                 input needing no preparation whose rank order is
 *                 already concordant binds directly (TensorPlan::
 *                 packed — zero fibertree construction); otherwise it
 *                 is unpacked and prepared through the legacy path. A
 *                 name present here must not also be in @p tensors.
 * @param unpack_cache Optional caller-owned memo of unpacked packed
 *                 inputs, keyed by name: a packed tensor taking the
 *                 legacy path is materialized once into the cache and
 *                 reused by later slots and Einsums (the pipeline
 *                 passes its per-workload state). Null falls back to
 *                 a per-slot unpack.
 */
EinsumPlan instantiatePlan(const EinsumRecipe& recipe,
                           const einsum::EinsumSpec& spec,
                           const TensorRefMap& tensors,
                           const std::vector<std::string>& intermediates,
                           bool share_unprepared = false,
                           const PackedRefMap& packed = {},
                           std::map<std::string, ft::Tensor>* unpack_cache =
                               nullptr);

/**
 * Build the plan for @p expr: analyzeEinsum + instantiatePlan in one
 * call, with every prepared tensor owned (no aliasing). Kept for
 * white-box tests and tools; pipeline callers go through
 * `compiler::CompiledModel`, which caches the two stages separately.
 *
 * @param spec     The cascade (for declarations).
 * @param map      The mapping specification.
 * @param tensors  Live tensors by name (inputs and intermediates built
 *                 by earlier Einsums), stored in their declared
 *                 rank-order.
 * @param intermediates Names of tensors produced by earlier Einsums
 *                 (their swizzles are online and charged).
 */
EinsumPlan buildPlan(const einsum::Expression& expr,
                     const einsum::EinsumSpec& spec,
                     const mapping::MappingSpec& map,
                     const std::map<std::string, ft::Tensor>& tensors,
                     const std::vector<std::string>& intermediates);

} // namespace teaal::ir
