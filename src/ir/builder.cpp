/**
 * @file
 * The simulator generator, split into the two stages of the
 * compile-once / run-many pipeline (paper §4.2-§4.3):
 *
 *   analyzeEinsum    spec-only: resolve the loop order, partitioning
 *                    groups, probe ranks, spacetime, and the output's
 *                    declared storage order; surface specification
 *                    inconsistencies before any data exists.
 *   instantiatePlan  bind a recipe to real tensors: prepare
 *                    (partition/flatten/swizzle) each input, derive
 *                    rank shapes and dense extents, and select
 *                    co-iteration strategies from occupancy hints.
 *
 * buildPlan composes the two for white-box tests and tools; the
 * pipeline (compiler::CompiledModel) caches recipes at compile time
 * and instantiated plans per workload.
 */
#include <algorithm>
#include <cctype>
#include <functional>
#include <limits>
#include <set>
#include <sstream>

#include "ir/plan.hpp"

#include "fibertree/transform.hpp"
#include "storage/packed.hpp"
#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::ir
{

namespace
{

using einsum::IndexExpr;
using einsum::TensorRef;
using mapping::PartitionDirective;
using mapping::RankPartitioning;

/** Strip trailing digits: K0 -> K, KM2 -> KM, MK01 -> MK0. */
std::string
baseOfDerived(const std::string& rank)
{
    std::string base = rank;
    while (!base.empty() &&
           std::isdigit(static_cast<unsigned char>(base.back()))) {
        base.pop_back();
    }
    return base;
}

std::vector<RecipeGroup>
analyzeGroups(const mapping::EinsumMapping& em, const std::string& text)
{
    std::vector<RecipeGroup> out;
    for (const RankPartitioning& g : em.partitioning) {
        RecipeGroup info;
        info.sourceRanks = g.sourceRanks;
        info.base = g.baseRank();
        info.results = g.resultRanks();
        for (const PartitionDirective& d : g.directives) {
            if (d.kind == PartitionDirective::Kind::Flatten) {
                info.hasFlatten = true;
            } else {
                info.splits.push_back(d);
                if (d.kind == PartitionDirective::Kind::UniformOccupancy) {
                    info.occupancy = true;
                    if (!info.leader.empty() && info.leader != d.leader)
                        specError("einsum '", text, "': partitioning of '",
                                  info.base, "': conflicting leaders '",
                                  info.leader, "' and '", d.leader, "'");
                    info.leader = d.leader;
                }
            }
        }
        out.push_back(std::move(info));
    }
    return out;
}

/** Declared-rank position of @p rank_id in @p decl (SpecError if absent). */
std::size_t
declPosition(const std::vector<std::string>& decl,
             const std::string& rank_id, const std::string& tensor)
{
    for (std::size_t i = 0; i < decl.size(); ++i) {
        if (decl[i] == rank_id)
            return i;
    }
    specError("tensor '", tensor, "' has no declared rank '", rank_id,
              "'");
}

/** Find a loop index by rank name; -1 if absent. */
int
loopIndexOf(const std::vector<std::string>& loop_order,
            const std::string& rank)
{
    for (std::size_t i = 0; i < loop_order.size(); ++i) {
        if (loop_order[i] == rank)
            return static_cast<int>(i);
    }
    return -1;
}

/**
 * Occupancy skew above which a 2-driver intersection plans the
 * galloping strategy: the sparse driver leads and binary-search leaps
 * skip runs of the dense driver, so the walk stops paying for the
 * dense fiber's length.
 */
constexpr double kGallopSkewThreshold = 32.0;

/**
 * Target rank order that makes @p components adjacent, in order, at
 * the position of their first occurrence; other ranks keep their
 * relative order. Needed before flattening.
 */
std::vector<std::string>
adjacentOrder(const std::vector<std::string>& ids,
              const std::vector<std::string>& components)
{
    std::size_t first = ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (std::find(components.begin(), components.end(), ids[i]) !=
            components.end()) {
            first = std::min(first, i);
        }
    }
    std::vector<std::string> target;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i == first) {
            for (const std::string& c : components)
                target.push_back(c);
        }
        if (std::find(components.begin(), components.end(), ids[i]) ==
            components.end()) {
            target.push_back(ids[i]);
        }
    }
    return target;
}

/**
 * One input tensor being prepared: starts as a borrowed source and
 * becomes owned at the first transform, so inputs that need no
 * preparation are never deep-copied.
 */
class Preparing
{
  public:
    explicit Preparing(const ft::Tensor* src) : src_(src) {}

    const ft::Tensor& get() const { return owned_ ? work_ : *src_; }

    void
    replace(ft::Tensor t)
    {
        work_ = std::move(t);
        owned_ = true;
    }

    bool owned() const { return owned_; }

    /** Surrender ownership; deep-clones or fiber-shares if borrowed. */
    ft::Tensor
    take(bool share_unprepared)
    {
        if (owned_)
            return std::move(work_);
        // A plain Tensor copy shares the fiber tree (fibers are
        // shared_ptrs); execution never mutates input trees.
        return share_unprepared ? *src_ : src_->clone();
    }

  private:
    const ft::Tensor* src_;
    ft::Tensor work_;
    bool owned_ = false;
};

/**
 * What a partitioning group does to one tensor: transforms it
 * (flatten/split applied in place), dynamically follows it (occupancy
 * non-leader: Slice actions, no transform), or leaves it alone. The
 * single source of truth for group applicability — the packed
 * fast-path eligibility scan and the legacy preparation loop both
 * dispatch on it, so they cannot diverge.
 */
enum class GroupEffect
{
    None,
    Transform,
    Follow,
};

template <typename HasRank>
GroupEffect
groupEffect(const RecipeGroup& g, HasRank&& has_rank,
            const std::string& tensor_name)
{
    if (g.hasFlatten) {
        // All constituents present: the tensor is swizzled-adjacent,
        // flattened, and split. Partial constituents use lookups at
        // the flattened rank instead (no transform).
        return std::all_of(g.sourceRanks.begin(), g.sourceRanks.end(),
                           has_rank)
                   ? GroupEffect::Transform
                   : GroupEffect::None;
    }
    if (!has_rank(g.base))
        return GroupEffect::None;
    if (!g.occupancy || g.leader == tensor_name)
        return GroupEffect::Transform;
    return GroupEffect::Follow;
}

/**
 * Apply the split directives of @p info to @p t (rank @p info.base),
 * producing ranks named info.results top-down.
 */
void
applySplits(Preparing& t, const RecipeGroup& info)
{
    const std::size_t k = info.splits.size();
    for (std::size_t i = 0; i < k; ++i) {
        const std::string upper = info.results[i];
        const std::string lower =
            i + 1 == k ? info.results[k] : info.base;
        const PartitionDirective& d = info.splits[i];
        if (d.kind == PartitionDirective::Kind::UniformShape) {
            t.replace(ft::splitRankByShape(t.get(), info.base, d.tile,
                                           upper, lower));
        } else {
            t.replace(ft::splitRankByOccupancy(t.get(), info.base,
                                               d.chunk, upper, lower));
        }
    }
}

} // namespace

const char*
coiterStrategyName(CoiterStrategy s)
{
    switch (s) {
      case CoiterStrategy::TwoFinger:
        return "2finger";
      case CoiterStrategy::Gallop:
        return "gallop";
      case CoiterStrategy::DenseDrive:
        return "dense";
    }
    return "?";
}

const char*
packedWalkName(PackedWalk w)
{
    switch (w) {
      case PackedWalk::None:
        return "";
      case PackedWalk::Coords:
        return "coords";
      case PackedWalk::DenseImplicit:
        return "implicit";
      case PackedWalk::BitmapProbe:
        return "bitmap";
    }
    return "?";
}

std::string
EinsumPlan::toString() const
{
    std::ostringstream oss;
    oss << "plan for: " << expr.toString() << "\n";
    oss << "  loops:";
    for (const LoopRank& l : loops) {
        oss << " " << l.name;
        if (l.isSpace)
            oss << "(space)";
        if (l.isUpperPartition)
            oss << "(range)";
        if (l.coiter != CoiterStrategy::TwoFinger)
            oss << "(" << coiterStrategyName(l.coiter) << ")";
        if (l.packedWalk != PackedWalk::None)
            oss << "(" << packedWalkName(l.packedWalk) << ")";
    }
    oss << "\n";
    for (const TensorPlan& tp : inputs) {
        oss << "  " << tp.name << " [" << join(tp.prepared.rankIds(), ", ")
            << "]";
        if (tp.packed != nullptr)
            oss << " packed";
        if (tp.swizzled)
            oss << (tp.swizzleOnline ? " online-swizzle" : " swizzled");
        oss << ":";
        for (const LevelAction& a : tp.actions) {
            const char* mode = a.mode == LevelAction::Mode::CoIterate
                                   ? "co"
                                   : (a.mode == LevelAction::Mode::Slice
                                          ? "slice"
                                          : "lookup");
            oss << " L" << a.loopIndex << ":" << mode << "@" << a.level;
        }
        oss << "\n";
    }
    oss << "  output " << output.name << " produces ["
        << join(output.productionOrder, ", ") << "] stored ["
        << join(output.declaredOrder, ", ") << "]"
        << (output.needsReorder ? " (reorder)" : "") << "\n";
    return oss.str();
}

EinsumRecipe
analyzeEinsum(const einsum::Expression& expr,
              const einsum::EinsumSpec& spec,
              const mapping::MappingSpec& map)
{
    EinsumRecipe recipe;
    recipe.expr = expr;
    recipe.unionCombine = expr.kind == einsum::OpKind::Add;

    // Whole-tensor copy (P1 = P0) bypasses the loop nest entirely.
    if (expr.kind == einsum::OpKind::Assign && expr.output.indices.empty()) {
        recipe.wholeTensorCopy = true;
        return recipe;
    }

    const mapping::EinsumMapping& em = map.einsum(expr.output.name);
    recipe.groups = analyzeGroups(em, expr.text);

    // ------------------------------------------------------ loop order
    recipe.loopOrder = em.loopOrder;
    if (recipe.loopOrder.empty()) {
        // Default: iteration variables in Einsum order, expanding
        // partition groups at their first constituent.
        std::vector<const RecipeGroup*> emitted;
        for (const std::string& var : expr.iterationVars()) {
            const std::string rank = einsum::rankOfVar(var);
            const RecipeGroup* owner = nullptr;
            for (const RecipeGroup& g : recipe.groups) {
                const auto& src = g.sourceRanks;
                if (std::find(src.begin(), src.end(), rank) != src.end() ||
                    g.base == rank) {
                    owner = &g;
                    break;
                }
            }
            if (owner == nullptr) {
                recipe.loopOrder.push_back(rank);
            } else if (std::find(emitted.begin(), emitted.end(), owner) ==
                       emitted.end()) {
                for (const std::string& r : owner->results)
                    recipe.loopOrder.push_back(r);
                emitted.push_back(owner);
            }
        }
    }

    // -------------------------------------------- probe ranks (take)
    // Take ranks private to the non-copied operand become probes.
    if (expr.kind == einsum::OpKind::Take) {
        const TensorRef& other = expr.inputs[1 - expr.takeArg];
        const TensorRef& copied = expr.inputs[expr.takeArg];
        const auto copied_vars = copied.varNames();
        const auto out_vars = expr.outputVars();
        for (const std::string& v : other.varNames()) {
            const bool in_copied =
                std::find(copied_vars.begin(), copied_vars.end(), v) !=
                copied_vars.end();
            const bool in_out =
                std::find(out_vars.begin(), out_vars.end(), v) !=
                out_vars.end();
            if (!in_copied && !in_out)
                recipe.probeVars.push_back(v);
        }
    }

    // ------------------------------------------------------ spacetime
    for (const mapping::SpaceTimeEntry& e : em.space) {
        if (loopIndexOf(recipe.loopOrder, e.rank) < 0)
            specError("einsum '", expr.text, "': space rank '", e.rank,
                      "' is not in the loop order");
        recipe.space.push_back(e);
    }

    // ------------------------------------------ output storage order
    const auto odecl_it = spec.declaration.find(expr.output.name);
    if (odecl_it == spec.declaration.end())
        diagError("einsum", expr.output.name, "einsum '", expr.text,
                  "': undeclared output '", expr.output.name, "'");
    recipe.outputDeclaredOrder = map.hasRankOrder(expr.output.name)
                                     ? map.rankOrder(expr.output.name)
                                     : odecl_it->second;

    return recipe;
}

EinsumPlan
instantiatePlan(const EinsumRecipe& recipe, const einsum::EinsumSpec& spec,
                const TensorRefMap& tensors,
                const std::vector<std::string>& intermediates,
                bool share_unprepared, const PackedRefMap& packed,
                std::map<std::string, ft::Tensor>* unpack_cache)
{
    // Materialize a packed input for the legacy path — through the
    // caller's memo when one is provided, so a tensor is unpacked at
    // most once per workload, not once per slot and Einsum.
    auto unpack = [&](const std::string& name,
                      const storage::PackedTensor& pk,
                      ft::Tensor& local) -> const ft::Tensor* {
        if (unpack_cache == nullptr) {
            local = pk.toTensor();
            return &local;
        }
        auto it = unpack_cache->find(name);
        if (it == unpack_cache->end())
            it = unpack_cache->emplace(name, pk.toTensor()).first;
        return &it->second;
    };
    const einsum::Expression& expr = recipe.expr;

    EinsumPlan plan;
    plan.expr = expr;
    plan.unionCombine = recipe.unionCombine;

    if (recipe.wholeTensorCopy) {
        plan.wholeTensorCopy = true;
        TensorPlan tp;
        tp.name = expr.inputs[0].name;
        tp.exprInput = 0;
        const auto it = tensors.find(tp.name);
        const auto pit = packed.find(tp.name);
        if (it == tensors.end() && pit == packed.end())
            specError("einsum '", expr.text, "': tensor '", tp.name,
                      "' has no data");
        if (it != tensors.end()) {
            Preparing prep(it->second);
            tp.prepared = prep.take(share_unprepared);
        } else {
            // Whole-tensor copies clone the source; unpack it.
            ft::Tensor local;
            Preparing prep(unpack(tp.name, *pit->second, local));
            tp.prepared = prep.take(share_unprepared);
        }
        plan.inputs.push_back(std::move(tp));
        plan.output.name = expr.output.name;
        plan.shard = analyzeSharding(plan);
        return plan;
    }

    const std::vector<RecipeGroup>& groups = recipe.groups;
    const std::vector<std::string>& loop_order = recipe.loopOrder;

    // ---------------------------------------------------- rank shapes
    // Shape of each base rank, taken from every live declared tensor
    // (a rank's shape may only be discoverable from a tensor used by
    // a *different* Einsum of the cascade, e.g. Toeplitz S from F).
    std::map<std::string, ft::Coord> rank_shape;
    auto note_shapes = [&](const std::string& name,
                           const std::vector<ft::RankInfo>& ranks) {
        const auto decl_it = spec.declaration.find(name);
        if (decl_it == spec.declaration.end())
            return;
        const auto& decl = decl_it->second;
        for (const ft::RankInfo& ri : ranks) {
            if (std::find(decl.begin(), decl.end(), ri.id) != decl.end())
                rank_shape[ri.id] =
                    std::max(rank_shape[ri.id], ri.shape);
        }
    };
    for (const auto& [name, tensor] : tensors)
        note_shapes(name, tensor->ranks());
    for (const auto& [name, pk] : packed)
        note_shapes(name, pk->ranks());

    // Shape of each iteration variable's rank. The visiting set guards
    // against mutually-underconstrained affine shapes (T[q,s]=I[q+s]
    // with neither Q nor S known elsewhere).
    std::set<std::string> shape_visiting;
    std::function<ft::Coord(const std::string&)> var_shape =
        [&](const std::string& var) -> ft::Coord {
        if (!shape_visiting.insert(var).second)
            specError("einsum '", expr.text, "': the shapes of '", var,
                      "' and its affine partners are underconstrained");
        struct Eraser
        {
            std::set<std::string>& set;
            const std::string& var;
            ~Eraser() { set.erase(var); }
        } eraser{shape_visiting, var};
        std::string rank = einsum::rankOfVar(var);
        auto it = rank_shape.find(rank);
        if (it != rank_shape.end())
            return it->second;
        // Derived ranks (K0) inherit the base rank's shape.
        while (!rank.empty() &&
               std::isdigit(static_cast<unsigned char>(rank.back()))) {
            rank.pop_back();
            it = rank_shape.find(rank);
            if (it != rank_shape.end())
                return it->second;
        }
        // Affine derivation (e.g. conv Q): find an input slot whose
        // expression mentions var together with others.
        for (const TensorRef& in : expr.inputs) {
            const auto decl_it = spec.declaration.find(in.name);
            if (decl_it == spec.declaration.end())
                continue;
            for (std::size_t slot = 0; slot < in.indices.size(); ++slot) {
                const IndexExpr& ie = in.indices[slot];
                const auto found =
                    std::find(ie.vars.begin(), ie.vars.end(), var);
                if (found == ie.vars.end() || ie.vars.size() < 2)
                    continue;
                const auto sit =
                    rank_shape.find(decl_it->second[slot]);
                if (sit == rank_shape.end())
                    continue;
                ft::Coord shape = sit->second;
                for (const std::string& other : ie.vars) {
                    if (other != var)
                        shape -= var_shape(other) - 1;
                }
                return std::max<ft::Coord>(shape, 0);
            }
        }
        specError("einsum '", expr.text, "': cannot derive the shape of '",
                  var, "'");
    };

    // -------------------------------------------- loop rank metadata
    for (const std::string& name : loop_order) {
        LoopRank lr;
        lr.name = name;

        // Owning partition group, if any.
        const RecipeGroup* owner = nullptr;
        std::size_t pos_in_results = 0;
        for (const RecipeGroup& g : groups) {
            const auto it =
                std::find(g.results.begin(), g.results.end(), name);
            if (it != g.results.end()) {
                owner = &g;
                pos_in_results =
                    static_cast<std::size_t>(it - g.results.begin());
                break;
            }
        }

        auto bind_rank_vars = [&](const std::string& rank) {
            // A rank binds its base variable; flattened ranks bind one
            // variable per constituent with unpack strides. The rank
            // may have been produced by a *different* group's flatten
            // (SIGMA: occupancy on MK0, flattened by its own group).
            const RecipeGroup* g = nullptr;
            for (const RecipeGroup& cand : groups) {
                if (cand.hasFlatten && cand.base == rank)
                    g = &cand;
            }
            if (g != nullptr) {
                ft::Coord stride = 1;
                std::vector<ft::Coord> strides, shapes;
                std::vector<std::string> vars;
                const auto& src = g->sourceRanks;
                for (auto it = src.rbegin(); it != src.rend(); ++it) {
                    const std::string comp_base = baseOfDerived(*it);
                    const ft::Coord shape =
                        var_shape(einsum::varOfRank(comp_base));
                    strides.push_back(stride);
                    shapes.push_back(shape);
                    vars.push_back(einsum::varOfRank(comp_base));
                    stride *= shape;
                }
                std::reverse(strides.begin(), strides.end());
                std::reverse(shapes.begin(), shapes.end());
                std::reverse(vars.begin(), vars.end());
                lr.bindsVars = vars;
                lr.unpackStrides = strides;
                lr.unpackShapes = shapes;
            } else {
                lr.bindsVars = {einsum::varOfRank(rank)};
            }
        };

        if (owner == nullptr) {
            // Plain base rank.
            bind_rank_vars(name);
            lr.spaceExtent = static_cast<std::size_t>(
                std::max<ft::Coord>(var_shape(lr.bindsVars[0]), 1));
        } else if (pos_in_results + 1 == owner->results.size()) {
            // Group leaf: binds the base variables.
            bind_rank_vars(owner->base);
            if (!owner->splits.empty()) {
                const PartitionDirective& last = owner->splits.back();
                lr.spaceExtent =
                    last.kind == PartitionDirective::Kind::UniformShape
                        ? static_cast<std::size_t>(last.tile)
                        : last.chunk;
            } else {
                lr.spaceExtent = 1u << 20;
            }
        } else {
            // Upper partition rank: binds a coordinate range.
            lr.isUpperPartition = true;
            const PartitionDirective& d = owner->splits[pos_in_results];
            if (d.kind == PartitionDirective::Kind::UniformShape)
                lr.rangeTile = d.tile;
            // Extent = positions this rank can take inside its parent
            // tile: size(parent split) / size(this split). The topmost
            // rank's partition count is data-dependent (large cap).
            auto size_of = [](const PartitionDirective& dd) {
                return dd.kind == PartitionDirective::Kind::UniformShape
                           ? static_cast<std::size_t>(dd.tile)
                           : dd.chunk;
            };
            if (pos_in_results == 0) {
                lr.spaceExtent = 1u << 20;
            } else {
                const std::size_t above =
                    size_of(owner->splits[pos_in_results - 1]);
                const std::size_t mine = size_of(d);
                lr.spaceExtent =
                    mine > 0 ? std::max<std::size_t>(above / mine, 1)
                             : 1;
            }
        }

        // Probe-only ranks (take).
        for (const std::string& v : lr.bindsVars) {
            if (std::find(recipe.probeVars.begin(),
                          recipe.probeVars.end(),
                          v) != recipe.probeVars.end())
                lr.probeOnly = true;
        }

        plan.loops.push_back(std::move(lr));
    }

    // Variable binding points.
    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        for (const std::string& v : plan.loops[i].bindsVars) {
            plan.varBoundAt[v] = static_cast<int>(i);
            // Derived leaf ranks also bind their base variable (the
            // coordinates are absolute), e.g. K0 binds both k0 and k.
            const std::string base_var = einsum::varOfRank(
                baseOfDerived(einsum::rankOfVar(v)));
            if (base_var != v && !plan.varBoundAt.count(base_var))
                plan.varBoundAt[base_var] = static_cast<int>(i);
        }
    }
    // Leaf split ranks named e.g. K0 bind variable "k0"; expression
    // slots use "k". Register the base var for every group leaf.
    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        const LoopRank& lr = plan.loops[i];
        if (lr.isUpperPartition)
            continue;
        for (const std::string& v : lr.bindsVars) {
            const std::string base =
                einsum::varOfRank(baseOfDerived(einsum::rankOfVar(v)));
            if (!plan.varBoundAt.count(base))
                plan.varBoundAt[base] = static_cast<int>(i);
        }
    }

    // Spacetime flags (validated at analysis time).
    for (const mapping::SpaceTimeEntry& e : recipe.space) {
        const int idx = loopIndexOf(loop_order, e.rank);
        TEAAL_ASSERT(idx >= 0, "space rank '", e.rank,
                     "' vanished from the loop order");
        plan.loops[static_cast<std::size_t>(idx)].isSpace = true;
        plan.loops[static_cast<std::size_t>(idx)].coordSpace =
            e.coordSpace;
    }

    // ------------------------------------------------ input tensors
    /// An action to assign to one tensor level, keyed by rank id first
    /// (levels shift after the concordance swizzle).
    struct PendingAction
    {
        std::string rankId;
        LevelAction::Mode mode;
        int loopIndex;
        IndexExpr expr;
    };

    for (std::size_t slot = 0; slot < expr.inputs.size(); ++slot) {
        const TensorRef& ref = expr.inputs[slot];
        const auto tit = tensors.find(ref.name);
        const auto pit = packed.find(ref.name);
        const bool have_packed = pit != packed.end();
        if (tit == tensors.end() && !have_packed)
            specError("einsum '", expr.text, "': tensor '", ref.name,
                      "' has no data");
        const auto decl_it = spec.declaration.find(ref.name);
        if (decl_it == spec.declaration.end())
            specError("einsum '", expr.text, "': undeclared tensor '",
                      ref.name, "'");
        const std::vector<std::string>& decl = decl_it->second;

        TensorPlan tp;
        tp.name = ref.name;
        tp.exprInput = static_cast<int>(slot);

        // Assign an action to every level of @p ranks_in, given the
        // dynamic-follower groups of this tensor. Shared between the
        // packed fast path (original rank order, no transforms) and
        // the prepared pointer path (post-transform rank order).
        auto compute_pending =
            [&](const std::vector<ft::RankInfo>& ranks_in,
                const std::vector<const RecipeGroup*>& follower_of)
            -> std::vector<PendingAction> {
            std::vector<PendingAction> pending;
            for (const ft::RankInfo& ri : ranks_in) {
                const std::string& rid = ri.id;
                const int direct = loopIndexOf(loop_order, rid);
                if (direct >= 0) {
                    pending.push_back({rid, LevelAction::Mode::CoIterate,
                                       direct, {}});
                    continue;
                }
                // Dynamic follower base rank?
                const RecipeGroup* follow = nullptr;
                for (const RecipeGroup* g : follower_of) {
                    if (g->base == rid)
                        follow = g;
                }
                if (follow != nullptr) {
                    for (std::size_t i = 0;
                         i + 1 < follow->results.size(); ++i) {
                        const int idx =
                            loopIndexOf(loop_order, follow->results[i]);
                        if (idx < 0)
                            specError("einsum '", expr.text, "': rank '",
                                      follow->results[i],
                                      "' missing from the loop order");
                        pending.push_back(
                            {rid, LevelAction::Mode::Slice, idx, {}});
                    }
                    const int leaf =
                        loopIndexOf(loop_order, follow->results.back());
                    if (leaf < 0)
                        specError("einsum '", expr.text, "': rank '",
                                  follow->results.back(),
                                  "' missing from the loop order");
                    pending.push_back(
                        {rid, LevelAction::Mode::CoIterate, leaf, {}});
                    continue;
                }
                // Lookup: resolve the expression slot via the declared
                // rank — exact id first (real rank names may end in
                // digits, e.g. the FFT's N1), then the digit-stripped
                // base of partition-derived names.
                std::size_t dpos;
                if (std::find(decl.begin(), decl.end(), rid) !=
                    decl.end()) {
                    dpos = declPosition(decl, rid, ref.name);
                } else {
                    dpos =
                        declPosition(decl, baseOfDerived(rid), ref.name);
                }
                IndexExpr ie = ref.indices.empty()
                                   ? IndexExpr{}
                                   : ref.indices[dpos];
                int trigger = 0;
                for (const std::string& v : ie.vars) {
                    const auto bit = plan.varBoundAt.find(v);
                    if (bit == plan.varBoundAt.end())
                        specError("einsum '", expr.text,
                                  "': variable '", v, "' used by ",
                                  ref.name,
                                  " is never bound by the loop order");
                    trigger = std::max(trigger, bit->second);
                }
                pending.push_back({rid, LevelAction::Mode::Lookup,
                                   trigger, std::move(ie)});
            }
            // Lookups cannot fire before their tree parents are
            // descended, so clamp them to the running maximum in
            // level order. CoIterate loop indices come from the loop
            // order and are never clamped: the concordance swizzle
            // reorders the tree instead (e.g. MTTKRP's B[j,r]
            // traversed [R, J]).
            int running = -1;
            for (PendingAction& pa : pending) {
                if (pa.mode == LevelAction::Mode::Slice)
                    continue;
                if (pa.mode == LevelAction::Mode::Lookup)
                    pa.loopIndex = std::max(pa.loopIndex, running);
                running = std::max(running, pa.loopIndex);
            }
            return pending;
        };

        // Concordant order: non-slice actions sorted by (loopIndex,
        // original level) — the rank order the walked tree must have
        // (§3.2.2). Stable sort keeps ties in tree order.
        auto required_of =
            [](const std::vector<PendingAction>& pending) {
                std::vector<const PendingAction*> nav;
                for (const PendingAction& pa : pending) {
                    if (pa.mode != LevelAction::Mode::Slice)
                        nav.push_back(&pa);
                }
                std::stable_sort(nav.begin(), nav.end(),
                                 [](const PendingAction* a,
                                    const PendingAction* b) {
                                     return a->loopIndex < b->loopIndex;
                                 });
                std::vector<std::string> required;
                for (const PendingAction* pa : nav)
                    required.push_back(pa->rankId);
                return required;
            };

        std::vector<PendingAction> pending;

        // ---- packed fast path: bind the packed rank store directly
        // when no partitioning transform touches this tensor and its
        // rank order is already concordant — zero fibertree
        // construction, the engine walks the packed buffers.
        if (have_packed && tp.packed == nullptr) {
            const std::shared_ptr<const storage::PackedTensor>& pk =
                pit->second;
            const auto pk_ids = pk->rankIds();
            const auto pk_has = [&](const std::string& r) {
                return std::find(pk_ids.begin(), pk_ids.end(), r) !=
                       pk_ids.end();
            };
            bool transforms = false;
            std::vector<const RecipeGroup*> pk_followers;
            for (const RecipeGroup& g : groups) {
                switch (groupEffect(g, pk_has, ref.name)) {
                  case GroupEffect::Transform:
                    transforms = true;
                    break;
                  case GroupEffect::Follow:
                    pk_followers.push_back(&g);
                    break;
                  case GroupEffect::None:
                    break;
                }
            }
            if (!transforms) {
                pending = compute_pending(pk->ranks(), pk_followers);
                if (required_of(pending) == pk_ids) {
                    tp.packed = pk;
                    // Rank-skeleton placeholder: the model reads rank
                    // metadata off `prepared`; no fiber data exists.
                    tp.prepared = ft::Tensor(ref.name, pk->ranks());
                } else {
                    pending.clear();
                }
            }
        }

        // ---- legacy pointer path (packed inputs that need
        // preparation are unpacked here, memoized per workload).
        ft::Tensor unpacked;
        if (tp.packed == nullptr) {
            const ft::Tensor* src;
            if (tit != tensors.end()) {
                src = tit->second;
            } else {
                src = unpack(ref.name, *pit->second, unpacked);
            }
            Preparing prep(src);

            // Dynamic-follower groups for this tensor.
            std::vector<const RecipeGroup*> follower_of;

            // Apply partitioning groups in order (same applicability
            // predicate the packed eligibility scan used).
            for (const RecipeGroup& g : groups) {
                const auto has_rank = [&](const std::string& r) {
                    return prep.get().rankLevel(r) >= 0;
                };
                switch (groupEffect(g, has_rank, ref.name)) {
                  case GroupEffect::Transform:
                    if (g.hasFlatten) {
                        const auto& src_ranks = g.sourceRanks;
                        const auto target = adjacentOrder(
                            prep.get().rankIds(), src_ranks);
                        if (target != prep.get().rankIds())
                            prep.replace(ft::swizzle(prep.get(), target));
                        // Flatten pairwise left-to-right.
                        std::string upper = src_ranks[0];
                        for (std::size_t i = 1; i < src_ranks.size();
                             ++i) {
                            prep.replace(ft::flattenRanks(
                                prep.get(), upper, src_ranks[i]));
                            upper += src_ranks[i];
                        }
                        TEAAL_ASSERT(upper == g.base, "flatten naming");
                    }
                    applySplits(prep, g);
                    break;
                  case GroupEffect::Follow:
                    follower_of.push_back(&g);
                    break;
                  case GroupEffect::None:
                    // Flatten groups with only some constituents use
                    // lookups at the flattened rank (handled below).
                    break;
                }
            }

            pending = compute_pending(prep.get().ranks(), follower_of);
            const std::vector<std::string> required =
                required_of(pending);
            if (required != prep.get().rankIds()) {
                // Estimate merger "ways" before destroying the old
                // order: occupancy of the shallowest rank moving deeper.
                std::size_t ways = 2;
                const auto old_ids = prep.get().rankIds();
                for (std::size_t lvl = 0; lvl < old_ids.size(); ++lvl) {
                    const auto npos =
                        std::find(required.begin(), required.end(),
                                  old_ids[lvl]);
                    const std::size_t new_lvl = static_cast<std::size_t>(
                        npos - required.begin());
                    if (new_lvl > lvl) {
                        std::vector<std::size_t> counts;
                        prep.get().root()->elementCountsByDepth(counts);
                        std::size_t fibers_above =
                            lvl == 0 ? 1 : counts[lvl - 1];
                        if (fibers_above > 0 && counts.size() > lvl)
                            ways = std::max<std::size_t>(
                                2, counts[lvl] / fibers_above + 1);
                        break;
                    }
                }
                tp.swizzled = true;
                tp.swizzleOnline =
                    std::find(intermediates.begin(), intermediates.end(),
                              ref.name) != intermediates.end();
                tp.swizzleElements = prep.get().nnz();
                tp.swizzleWays = ways;
                prep.replace(ft::swizzle(prep.get(), required));
            }

            tp.prepared = prep.take(share_unprepared);
        }

        // Materialize final actions with post-swizzle levels.
        for (const PendingAction& pa : pending) {
            LevelAction a;
            a.mode = pa.mode;
            a.loopIndex = pa.loopIndex;
            a.expr = pa.expr;
            const int lvl = tp.prepared.rankLevel(pa.rankId);
            TEAAL_ASSERT(lvl >= 0, "rank '", pa.rankId,
                         "' lost during preparation of ", ref.name);
            a.level = lvl;
            tp.actions.push_back(std::move(a));
        }
        std::sort(tp.actions.begin(), tp.actions.end(),
                  [](const LevelAction& a, const LevelAction& b) {
                      if (a.loopIndex != b.loopIndex)
                          return a.loopIndex < b.loopIndex;
                      if (a.level != b.level)
                          return a.level < b.level;
                      // Slice before CoIterate at the same level.
                      return static_cast<int>(a.mode) >
                             static_cast<int>(b.mode);
                  });

        plan.inputs.push_back(std::move(tp));
    }

    // Dense extents and co-iteration strategies: ranks binding
    // variables with no co-iterating driver iterate the variable's
    // shape range (DenseDrive); intersections of two drivers with
    // strongly skewed occupancy hints plan the galloping walk.
    // Occupancy hints are gathered once per input (one O(nnz)
    // traversal each); every per-level occupancy below indexes them.
    std::vector<std::vector<double>> input_hints;
    input_hints.reserve(plan.inputs.size());
    for (const TensorPlan& tp : plan.inputs) {
        // Packed inputs report hints off their buffer lengths —
        // bit-identical to the unpacked tree's, so strategy selection
        // (and therefore every modeled count) is backend-independent.
        input_hints.push_back(tp.packed != nullptr
                                  ? tp.packed->occupancyHints()
                                  : tp.prepared.occupancyHints());
    }
    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        LoopRank& lr = plan.loops[i];
        std::vector<double> occupancies;
        for (std::size_t t = 0; t < plan.inputs.size(); ++t) {
            for (const LevelAction& a : plan.inputs[t].actions) {
                if (a.loopIndex == static_cast<int>(i) &&
                    a.mode == LevelAction::Mode::CoIterate) {
                    const auto lvl = static_cast<std::size_t>(a.level);
                    occupancies.push_back(
                        lvl < input_hints[t].size()
                            ? input_hints[t][lvl]
                            : 0.0);
                }
            }
        }
        if (occupancies.empty()) {
            if (lr.isUpperPartition)
                specError("einsum '", expr.text, "': partition rank '",
                          lr.name, "' has no driving tensor");
            TEAAL_ASSERT(!lr.bindsVars.empty(), "rank ", lr.name,
                         " binds nothing and drives nothing");
            lr.denseExtent = var_shape(lr.bindsVars[0]);
            lr.coiter = CoiterStrategy::DenseDrive;
            continue;
        }
        const double densest =
            *std::max_element(occupancies.begin(), occupancies.end());
        const double sparsest =
            *std::min_element(occupancies.begin(), occupancies.end());
        lr.driverSkew = sparsest > 0 ? densest / sparsest
                                     : (densest > 0 ? densest : 1.0);
        // Galloping only pays off for intersections (union must visit
        // every element of every driver anyway). Upper partition
        // ranks stay on two-finger: their range ends come from the
        // first driver's next coordinate, and gallop's leader-based
        // range end is not equivalent when the leader differs.
        if (!plan.unionCombine && occupancies.size() == 2 &&
            !lr.isUpperPartition &&
            lr.driverSkew >= kGallopSkewThreshold) {
            lr.coiter = CoiterStrategy::Gallop;
        }
    }

    // Packed-walk variants: for every loop rank with a packed driver,
    // record how its packed buffers are accessed, from the driver
    // level's declared format — gallop/two-finger over the raw
    // coordinate array (C), implicit-coordinate probes (U), bitmap
    // probes (B). Purely a host-side access note: `coiter` and the
    // charged counts are unchanged.
    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        LoopRank& lr = plan.loops[i];
        for (const TensorPlan& tp : plan.inputs) {
            if (tp.packed == nullptr)
                continue;
            for (const LevelAction& a : tp.actions) {
                if (a.loopIndex != static_cast<int>(i) ||
                    a.mode != LevelAction::Mode::CoIterate)
                    continue;
                PackedWalk w = PackedWalk::Coords;
                switch (tp.packed->levelType(
                    static_cast<std::size_t>(a.level))) {
                  case fmt::RankFormat::Type::U:
                    w = PackedWalk::DenseImplicit;
                    break;
                  case fmt::RankFormat::Type::B:
                    w = PackedWalk::BitmapProbe;
                    break;
                  case fmt::RankFormat::Type::C:
                    w = PackedWalk::Coords;
                    break;
                }
                if (static_cast<int>(w) >
                    static_cast<int>(lr.packedWalk))
                    lr.packedWalk = w;
            }
        }
    }

    // ------------------------------------------------------- output
    OutputPlan& out = plan.output;
    out.name = expr.output.name;
    const auto odecl_it = spec.declaration.find(out.name);
    TEAAL_ASSERT(odecl_it != spec.declaration.end(),
                 "undeclared output '", out.name, "'");
    const std::vector<std::string>& odecl = odecl_it->second;

    struct OutLevel
    {
        std::string rank;
        std::string var;
        int boundAt;
        int tieBreak;
    };
    std::vector<OutLevel> levels;
    for (std::size_t slot = 0; slot < expr.output.indices.size(); ++slot) {
        const std::string var = expr.output.indices[slot].vars[0];
        const auto bit = plan.varBoundAt.find(var);
        if (bit == plan.varBoundAt.end())
            specError("einsum '", expr.text, "': output variable '", var,
                      "' is never bound");
        const LoopRank& lr =
            plan.loops[static_cast<std::size_t>(bit->second)];
        int tie = 0;
        for (std::size_t i = 0; i < lr.bindsVars.size(); ++i) {
            if (lr.bindsVars[i] == var ||
                einsum::varOfRank(baseOfDerived(
                    einsum::rankOfVar(lr.bindsVars[i]))) == var)
                tie = static_cast<int>(i);
        }
        levels.push_back(
            {odecl[slot], var, bit->second, tie});
    }
    std::stable_sort(levels.begin(), levels.end(),
                     [](const OutLevel& a, const OutLevel& b) {
                         if (a.boundAt != b.boundAt)
                             return a.boundAt < b.boundAt;
                         return a.tieBreak < b.tieBreak;
                     });
    for (const OutLevel& l : levels) {
        out.productionOrder.push_back(l.rank);
        out.vars.push_back(l.var);
        out.boundAtLoop.push_back(l.boundAt);
        out.shapes.push_back(var_shape(l.var));
    }
    out.declaredOrder = recipe.outputDeclaredOrder;
    out.needsReorder = out.productionOrder != out.declaredOrder;

    plan.shard = analyzeSharding(plan);
    return plan;
}

namespace
{

constexpr std::size_t kInnerMinTopEntries = 4;

bool
inOutput(const std::vector<std::string>& out_vars, const std::string& v)
{
    return std::find(out_vars.begin(), out_vars.end(), v) !=
           out_vars.end();
}

/**
 * Finish a ShardPlan for sharding loop @p depth (rank @p rank) given
 * the variables the loops 0..depth bind or restrict: pick the merge
 * (Disjoint vs Reduce) from whether any of those variables is a
 * contraction (partial outputs then overlap), and reject the one
 * unmergeable combination — a take whose sharded prefix restricts the
 * probe variable, since its idempotent leaf writes would double-count
 * under a semiring-add merge.
 */
ShardPlan
classifyShard(ShardPlan sp, const einsum::Expression& expr,
              std::size_t depth, const std::string& rank,
              const std::vector<std::string>& prefix_vars)
{
    const std::vector<std::string> out_vars = expr.outputVars();
    // A scalar output is the degenerate reduction: every shard writes
    // the single output point.
    bool reduce = out_vars.empty();
    std::string contraction;
    for (const std::string& v : prefix_vars) {
        if (!inOutput(out_vars, v)) {
            reduce = true;
            contraction = v;
        }
    }
    if (reduce && expr.kind == einsum::OpKind::Take) {
        sp.shardable = false;
        sp.reason = "rank '" + rank + "' restricts variable '" +
                    contraction +
                    "' of a take (idempotent writes cannot "
                    "reduce-merge)";
        return sp;
    }
    sp.shardable = true;
    sp.rank = rank;
    sp.depth = depth;
    sp.reduceMerge = reduce;
    sp.mode = depth > 0 ? ShardPlan::Mode::Inner
                        : (reduce ? ShardPlan::Mode::Reduce
                                  : ShardPlan::Mode::Disjoint);
    return sp;
}

/**
 * The variables loop @p idx of @p plan binds or — via the other loops
 * of its partition group (M1 restricts m, bound at M0) — restricts,
 * as base variables.
 */
std::vector<std::string>
loopGroupVars(const EinsumPlan& plan, std::size_t idx)
{
    const std::string base = baseOfDerived(plan.loops[idx].name);
    std::vector<std::string> vars;
    for (const LoopRank& lr : plan.loops) {
        if (baseOfDerived(lr.name) != base)
            continue;
        for (const std::string& v : lr.bindsVars) {
            const std::string bv = einsum::varOfRank(
                baseOfDerived(einsum::rankOfVar(v)));
            if (std::find(vars.begin(), vars.end(), bv) == vars.end())
                vars.push_back(bv);
        }
    }
    return vars;
}

/** True when any input carries a Lookup action at loop @p idx. */
bool
loopHasLookup(const EinsumPlan& plan, std::size_t idx)
{
    for (const TensorPlan& tp : plan.inputs) {
        for (const LevelAction& a : tp.actions) {
            if (a.loopIndex == static_cast<int>(idx) &&
                a.mode == LevelAction::Mode::Lookup)
                return true;
        }
    }
    return false;
}

/**
 * Estimated entry count of the top walk: the smallest driver root
 * occupancy (the walk is an intersection), the dense extent when no
 * driver co-iterates, 1 for a probe-only top.
 */
std::size_t
estimateTopEntries(const EinsumPlan& plan)
{
    if (plan.loops[0].probeOnly)
        return 1;
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (const TensorPlan& tp : plan.inputs) {
        for (const LevelAction& a : tp.actions) {
            if (a.loopIndex != 0 ||
                a.mode != LevelAction::Mode::CoIterate)
                continue;
            const std::size_t occ =
                tp.packed != nullptr
                    ? tp.packed->rootView().size()
                    : (tp.prepared.root() ? tp.prepared.root()->size()
                                          : 0);
            best = std::min(best, occ);
        }
    }
    if (best == std::numeric_limits<std::size_t>::max())
        best = static_cast<std::size_t>(
            std::max<ft::Coord>(plan.loops[0].denseExtent, 0));
    return best;
}

/**
 * Per-input work-weighting factors for sharding loop @p depth:
 * expected leaves below one *child* of that input's driver fiber,
 * i.e. the product of the input's occupancy hints strictly below the
 * child level (a leaf-level driver scores 1 per element). Inputs
 * without a driver at @p depth get 0 and contribute nothing.
 */
std::vector<double>
driverWeightsAt(const EinsumPlan& plan, std::size_t depth)
{
    std::vector<double> w(plan.inputs.size(), 0.0);
    for (std::size_t t = 0; t < plan.inputs.size(); ++t) {
        const TensorPlan& tp = plan.inputs[t];
        int level = -1;
        for (const LevelAction& a : tp.actions) {
            if (a.loopIndex == static_cast<int>(depth) &&
                a.mode == LevelAction::Mode::CoIterate)
                level = a.level;
        }
        if (level < 0)
            continue;
        const std::vector<double> hints =
            tp.packed != nullptr ? tp.packed->occupancyHints()
                                 : tp.prepared.occupancyHints();
        double factor = 1.0;
        for (std::size_t l = static_cast<std::size_t>(level) + 2;
             l < hints.size(); ++l)
            factor *= std::max(hints[l], 1.0);
        w[t] = factor;
    }
    return w;
}

} // namespace

ShardPlan
analyzeSharding(const EinsumRecipe& recipe)
{
    ShardPlan sp;
    if (!recipe.space.empty())
        sp.spaceRank = recipe.space.front().rank;
    auto reject = [&sp](std::string why) {
        sp.shardable = false;
        sp.reason = std::move(why);
        return sp;
    };
    if (recipe.wholeTensorCopy)
        return reject("whole-tensor copy bypasses the loop nest");
    if (recipe.loopOrder.empty())
        return reject("no loop ranks");
    const std::string top = recipe.loopOrder[0];
    const std::string base = baseOfDerived(top);
    // Variables the top rank binds or (via its partition group's leaf
    // rank) range-restricts: a flattened base contributes one variable
    // per constituent rank.
    std::vector<std::string> vars;
    const RecipeGroup* flat = nullptr;
    for (const RecipeGroup& g : recipe.groups) {
        if (g.hasFlatten && g.base == base)
            flat = &g;
    }
    if (flat != nullptr) {
        for (const std::string& src : flat->sourceRanks)
            vars.push_back(einsum::varOfRank(baseOfDerived(src)));
    } else {
        vars.push_back(einsum::varOfRank(base));
    }
    // Lookup actions and occupancy only exist on instantiated plans,
    // so the precomputed answer reports the depth-0 modes; the
    // plan-level overload may still fall through to Mode::Inner.
    return classifyShard(std::move(sp), recipe.expr, 0, top, vars);
}

ShardPlan
analyzeSharding(const EinsumPlan& plan)
{
    ShardPlan sp;
    for (const LoopRank& lr : plan.loops) {
        if (lr.isSpace) {
            sp.spaceRank = lr.name;
            break;
        }
    }
    auto reject = [&sp](std::string why) {
        sp.shardable = false;
        sp.reason = std::move(why);
        return sp;
    };
    if (plan.wholeTensorCopy)
        return reject("whole-tensor copy bypasses the loop nest");
    if (plan.loops.empty())
        return reject("no loop ranks");

    const std::string top = plan.loops[0].name;
    std::vector<std::string> vars = loopGroupVars(plan, 0);

    // Depth 0 — the outermost rank — unless it is unshardable:
    // loop-entry lookups would re-fire per shard, a rank binding no
    // variable partitions nothing, and a walk thinner than a few
    // entries cannot feed a pool. Those fall through to the loop
    // below (Mode::Inner) instead of rejecting the plan.
    std::string why_inner;
    if (loopHasLookup(plan, 0))
        why_inner = "rank '" + top + "' carries lookup actions";
    else if (vars.empty())
        why_inner = "rank '" + top + "' binds no index variable";
    else if (estimateTopEntries(plan) < kInnerMinTopEntries)
        why_inner = "rank '" + top + "' walks too few entries";

    if (why_inner.empty()) {
        sp = classifyShard(std::move(sp), plan.expr, 0, top, vars);
        if (sp.shardable)
            sp.driverWeight = driverWeightsAt(plan, 0);
        return sp;
    }
    if (plan.loops.size() < 2)
        return reject(why_inner + " and no inner loop exists");

    // Inner fall-through: shard loop 1's walk below each top
    // coordinate. The merge classifies over everything loops 0 and 1
    // bind or restrict (partials span both).
    for (const std::string& v : loopGroupVars(plan, 1)) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end())
            vars.push_back(v);
    }
    sp = classifyShard(std::move(sp), plan.expr, 1, plan.loops[1].name,
                       vars);
    if (sp.shardable)
        sp.driverWeight = driverWeightsAt(plan, 1);
    return sp;
}

EinsumPlan
buildPlan(const einsum::Expression& expr, const einsum::EinsumSpec& spec,
          const mapping::MappingSpec& map,
          const std::map<std::string, ft::Tensor>& tensors,
          const std::vector<std::string>& intermediates)
{
    TensorRefMap refs;
    for (const auto& [name, tensor] : tensors)
        refs.emplace(name, &tensor);
    return instantiatePlan(analyzeEinsum(expr, spec, map), spec, refs,
                           intermediates, /*share_unprepared=*/false);
}

} // namespace teaal::ir
