/**
 * @file
 * Error types shared by all teaal subsystems.
 *
 * Following the gem5 fatal()/panic() distinction:
 *  - SpecError is the "fatal" class: the user's specification (Einsum,
 *    mapping, format, architecture, binding, or workload description) is
 *    malformed or inconsistent. These carry enough context to fix the
 *    spec.
 *  - ModelError is the "panic" class: an internal invariant of the
 *    simulator generator or performance model was violated; it indicates
 *    a bug in teaal itself, not in the user's input.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace teaal
{

/** Base class for all teaal exceptions. */
class TeaalError : public std::runtime_error
{
  public:
    explicit TeaalError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** The user-provided specification is invalid (gem5 "fatal"). */
class SpecError : public TeaalError
{
  public:
    explicit SpecError(const std::string& what_arg)
        : TeaalError("spec error: " + what_arg)
    {
    }
};

/** An internal invariant was violated (gem5 "panic"). */
class ModelError : public TeaalError
{
  public:
    explicit ModelError(const std::string& what_arg)
        : TeaalError("model error: " + what_arg)
    {
    }
};

namespace detail
{

/** Builds a message from streamable parts; used by the throw helpers. */
template <typename... Args>
std::string
concatMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Throw a SpecError built from streamable parts. */
template <typename... Args>
[[noreturn]] void
specError(Args&&... args)
{
    throw SpecError(detail::concatMessage(std::forward<Args>(args)...));
}

/** Throw a ModelError built from streamable parts. */
template <typename... Args>
[[noreturn]] void
modelError(Args&&... args)
{
    throw ModelError(detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Assert an internal invariant; throws ModelError on failure.
 * Active in all build types: model correctness matters more than the
 * nanoseconds saved by compiling the checks out.
 */
#define TEAAL_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::teaal::modelError("assertion failed: " #cond " ",           \
                                ##__VA_ARGS__);                            \
        }                                                                  \
    } while (0)

} // namespace teaal
