/**
 * @file
 * Structured diagnostics for user-facing specification errors.
 *
 * A Diagnostic pins an error to the specification section
 * ("einsum", "mapping", "format", "architecture", "binding",
 * "workload") and the offending key (a tensor, rank, or attribute
 * name) so tools can surface "fix this line" messages instead of a
 * bare abort. `compiler::Specification::parse` and `compiler::compile`
 * throw DiagnosticError — which is-a SpecError, so exception-based
 * callers keep working — instead of tripping internal assertions on
 * malformed input.
 */
#pragma once

#include <string>

#include "util/error.hpp"

namespace teaal
{

/** One structured specification error. */
struct Diagnostic
{
    /// Top-level specification section the error belongs to.
    std::string section;

    /// Offending key within the section (tensor, rank, attribute);
    /// empty when the whole section is at fault.
    std::string key;

    /// Human-readable description of what is wrong.
    std::string message;

    /** "section 'einsum', key 'A': message". */
    std::string
    toString() const
    {
        std::string out = "section '" + section + "'";
        if (!key.empty())
            out += ", key '" + key + "'";
        out += ": " + message;
        return out;
    }
};

/** A SpecError carrying a structured Diagnostic. */
class DiagnosticError : public SpecError
{
  public:
    explicit DiagnosticError(Diagnostic d)
        : SpecError(d.toString()), diagnostic_(std::move(d))
    {
    }

    const Diagnostic& diagnostic() const { return diagnostic_; }

  private:
    Diagnostic diagnostic_;
};

/** Throw a DiagnosticError built from streamable message parts. */
template <typename... Args>
[[noreturn]] void
diagError(std::string section, std::string key, Args&&... args)
{
    throw DiagnosticError(Diagnostic{
        std::move(section), std::move(key),
        detail::concatMessage(std::forward<Args>(args)...)});
}

namespace detail
{

/** Strip the SpecError ctor prefix when re-wrapping a message. */
inline std::string
stripSpecPrefix(const std::string& what)
{
    const std::string prefix = "spec error: ";
    if (what.rfind(prefix, 0) == 0)
        return what.substr(prefix.size());
    return what;
}

} // namespace detail

/**
 * Re-throw the in-flight SpecError as a DiagnosticError pinned to
 * @p section (DiagnosticErrors pass through untouched, keeping the
 * most specific context).
 */
[[noreturn]] inline void
rethrowAsDiagnostic(const std::string& section, const std::string& key,
                    const SpecError& e)
{
    if (const auto* d = dynamic_cast<const DiagnosticError*>(&e))
        throw *d;
    throw DiagnosticError(
        Diagnostic{section, key, detail::stripSpecPrefix(e.what())});
}

} // namespace teaal
