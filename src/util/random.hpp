/**
 * @file
 * Deterministic pseudo-random generation for workload synthesis.
 *
 * SplitMix64 for seeding and Xoshiro256** as the main generator: both
 * are tiny, fast, and give bit-identical streams on every platform,
 * which the benches rely on for reproducible figures.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace teaal
{

/** SplitMix64 step; used to expand one seed into generator state. */
inline std::uint64_t
splitMix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Xoshiro256** generator (satisfies UniformRandomBitGenerator). */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x5eed5eedULL)
    {
        std::uint64_t sm = seed;
        for (auto& word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free multiply-shift (Lemire); bias is negligible for
        // the bounds used in workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace teaal
