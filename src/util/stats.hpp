/**
 * @file
 * Small statistics helpers for benches and EXPERIMENTS reporting.
 *
 * The paper reports averages as arithmetic means (citing Jacob & Mudge),
 * so arithMean is the default aggregator throughout.
 */
#pragma once

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace teaal
{

/** Arithmetic mean; throws on empty input. */
inline double
arithMean(const std::vector<double>& xs)
{
    TEAAL_ASSERT(!xs.empty(), "arithMean of empty vector");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Geometric mean of positive values; throws on empty input. */
inline double
geoMean(const std::vector<double>& xs)
{
    TEAAL_ASSERT(!xs.empty(), "geoMean of empty vector");
    double log_sum = 0.0;
    for (double x : xs) {
        TEAAL_ASSERT(x > 0.0, "geoMean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Mean absolute relative error of model vs. reference, in percent. */
inline double
meanAbsRelErrorPct(const std::vector<double>& model,
                   const std::vector<double>& reference)
{
    TEAAL_ASSERT(model.size() == reference.size(),
                 "error vectors differ in length");
    std::vector<double> errs;
    errs.reserve(model.size());
    for (std::size_t i = 0; i < model.size(); ++i) {
        TEAAL_ASSERT(reference[i] != 0.0, "reference value is zero");
        errs.push_back(std::abs(model[i] - reference[i]) /
                       std::abs(reference[i]) * 100.0);
    }
    return arithMean(errs);
}

} // namespace teaal
