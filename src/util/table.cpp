#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace teaal
{

namespace
{
/// Sentinel row meaning "draw a separator here".
const std::string kSeparator = "\x01--";
} // namespace

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparator});
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return std::string(buf);
}

std::string
TextTable::render() const
{
    // Column widths over header and all non-separator rows.
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_) {
        if (!(row.size() == 1 && row[0] == kSeparator))
            widen(row);
    }

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 3;

    std::ostringstream oss;
    oss << "== " << title_ << " ==\n";
    auto emit = [&oss, &widths](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            oss << row[i];
            if (i + 1 < row.size()) {
                for (std::size_t p = row[i].size(); p < widths[i]; ++p)
                    oss << ' ';
                oss << " | ";
            }
        }
        oss << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        oss << std::string(total > 3 ? total - 3 : total, '-') << "\n";
    }
    for (const auto& row : rows_) {
        if (row.size() == 1 && row[0] == kSeparator)
            oss << std::string(total > 3 ? total - 3 : total, '-') << "\n";
        else
            emit(row);
    }
    return oss.str();
}

void
TextTable::print() const
{
    std::cout << render() << std::flush;
}

} // namespace teaal
