/**
 * @file
 * Minimal leveled logging to stderr (inform/warn in gem5 terms).
 */
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace teaal
{

/** Log severity, lowest to highest. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

/** Global log configuration. */
class Logger
{
  public:
    /** Returns the process-wide logger. */
    static Logger&
    instance()
    {
        static Logger logger;
        return logger;
    }

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }

    /** Emit a message if @p level is at or above the configured level. */
    void
    log(LogLevel level, const std::string& msg)
    {
        if (static_cast<int>(level) >= static_cast<int>(level_)) {
            const char* tag = level == LogLevel::Warn
                                  ? "warn: "
                                  : (level == LogLevel::Debug ? "debug: "
                                                              : "info: ");
            std::cerr << "[teaal] " << tag << msg << "\n";
        }
    }

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::Warn;
};

/** Stream-style helpers. */
template <typename... Args>
void
logInfo(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    Logger::instance().log(LogLevel::Info, oss.str());
}

template <typename... Args>
void
logWarn(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    Logger::instance().log(LogLevel::Warn, oss.str());
}

template <typename... Args>
void
logDebug(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    Logger::instance().log(LogLevel::Debug, oss.str());
}

} // namespace teaal
