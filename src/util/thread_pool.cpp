#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace teaal::util
{

struct ThreadPool::Ticket::Job
{
    std::function<void(unsigned)> fn;
    unsigned slots = 0;
    unsigned claimed = 0;
    unsigned finished = 0;
    /// First exception thrown by any slot's fn; rethrown at wait().
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable done;
};

void
ThreadPool::Ticket::wait()
{
    if (job_ == nullptr)
        return;
    std::exception_ptr error;
    {
        // The lock must be released before dropping job_: if this is
        // the last reference, reset() destroys the Job — mutex
        // included — and the unlock would touch freed memory.
        std::unique_lock<std::mutex> lk(job_->mutex);
        job_->done.wait(
            lk, [this] { return job_->finished == job_->slots; });
        error = job_->error;
    }
    job_.reset();
    if (error != nullptr)
        std::rethrow_exception(error);
}

ThreadPool::ThreadPool(unsigned max_workers) : maxWorkers_(max_workers)
{
    if (maxWorkers_ == 0) {
        maxWorkers_ =
            std::max(2u, std::thread::hardware_concurrency());
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

unsigned
ThreadPool::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return static_cast<unsigned>(workers_.size());
}

void
ThreadPool::ensureWorkers(unsigned wanted)
{
    std::lock_guard<std::mutex> lk(mutex_);
    const unsigned target = std::min(wanted, maxWorkers_);
    while (workers_.size() < target)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::Ticket
ThreadPool::launch(unsigned slots, std::function<void(unsigned)> fn)
{
    Ticket ticket;
    ticket.job_ = std::make_shared<Ticket::Job>();
    ticket.job_->fn = std::move(fn);
    ticket.job_->slots = slots;
    if (slots == 0) {
        ticket.job_->finished = 0;
        ticket.job_.reset();
        return ticket;
    }
    ensureWorkers(slots);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        jobs_.push_back(ticket.job_);
    }
    cv_.notify_all();
    return ticket;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Ticket::Job> job;
        unsigned slot = 0;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_.wait(lk,
                     [this] { return stopping_ || !jobs_.empty(); });
            if (stopping_ && jobs_.empty())
                return;
            job = jobs_.front();
            {
                std::lock_guard<std::mutex> jl(job->mutex);
                slot = job->claimed++;
                if (job->claimed == job->slots)
                    jobs_.pop_front();
            }
        }
        std::exception_ptr error;
        try {
            job->fn(slot);
        } catch (...) {
            // A throwing job must not take down the worker (and the
            // whole process): capture the first failure and surface
            // it where the launcher waits.
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> jl(job->mutex);
            if (error != nullptr && job->error == nullptr)
                job->error = error;
            ++job->finished;
        }
        job->done.notify_all();
    }
}

} // namespace teaal::util
