#include "util/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/diagnostic.hpp"

namespace teaal::util::failpoint
{

namespace
{

struct Point
{
    Program program;
    std::size_t hits = 0;
};

struct RegistryState
{
    std::mutex mutex;
    std::map<std::string, Point> points;
    /// Armed-point count, readable without the mutex (the site fast
    /// path). Relaxed is fine: a site racing an arm/disarm either
    /// sees the old world or the new one, both valid.
    std::atomic<std::size_t> active{0};
};

RegistryState&
registry()
{
    static RegistryState state;
    return state;
}

[[noreturn]] void
specError(const std::string& name, const std::string& spec,
          const std::string& why)
{
    diagError("failpoint", name, "bad failpoint spec '", spec, "': ",
              why);
}

/** Parse `action{+skip(N)|*M}` (grammar in the header). */
Program
parseSpec(const std::string& name, const std::string& spec)
{
    Program p;
    std::size_t pos = 0;
    auto parenArg = [&](const char* what) -> std::string {
        if (pos >= spec.size() || spec[pos] != '(')
            specError(name, spec,
                      std::string("expected '(' after ") + what);
        const std::size_t close = spec.find(')', pos);
        if (close == std::string::npos)
            specError(name, spec, "missing ')'");
        std::string arg = spec.substr(pos + 1, close - pos - 1);
        pos = close + 1;
        return arg;
    };
    auto number = [&](const std::string& arg,
                      const char* what) -> double {
        char* end = nullptr;
        const double v = std::strtod(arg.c_str(), &end);
        if (arg.empty() || end != arg.c_str() + arg.size() || v < 0)
            specError(name, spec,
                      std::string("bad numeric argument for ") + what +
                          ": '" + arg + "'");
        return v;
    };

    if (spec.rfind("error", 0) == 0) {
        p.action = Program::Action::Error;
        pos = 5;
        p.message = parenArg("error");
        if (p.message.empty())
            p.message = "injected failure";
    } else if (spec.rfind("delay", 0) == 0) {
        p.action = Program::Action::Delay;
        pos = 5;
        p.delayMs = number(parenArg("delay"), "delay");
    } else if (spec.rfind("trig", 0) == 0) {
        p.action = Program::Action::Trigger;
        pos = 4;
    } else if (spec == "off") {
        p.action = Program::Action::Off;
        pos = 3;
    } else {
        specError(name, spec,
                  "unknown action (want error(msg) | delay(ms) | trig "
                  "| off)");
    }

    while (pos < spec.size()) {
        if (spec.compare(pos, 6, "+skip(") == 0) {
            pos += 5;
            p.after = static_cast<std::size_t>(
                number(parenArg("+skip"), "+skip"));
        } else if (spec[pos] == '*') {
            const std::size_t start = ++pos;
            while (pos < spec.size() && spec[pos] >= '0' &&
                   spec[pos] <= '9')
                ++pos;
            if (pos == start)
                specError(name, spec, "expected a count after '*'");
            p.limit = static_cast<std::size_t>(
                number(spec.substr(start, pos - start), "*"));
        } else {
            specError(name, spec,
                      "trailing garbage at '" + spec.substr(pos) + "'");
        }
    }
    return p;
}

} // namespace

void
set(const std::string& name, Program program)
{
    RegistryState& st = registry();
    std::lock_guard<std::mutex> lk(st.mutex);
    auto it = st.points.find(name);
    const bool was_armed =
        it != st.points.end() &&
        it->second.program.action != Program::Action::Off;
    const bool armed = program.action != Program::Action::Off;
    if (it == st.points.end()) {
        if (!armed)
            return;
        it = st.points.emplace(name, Point{}).first;
    }
    it->second.program = std::move(program);
    it->second.hits = 0;
    if (armed && !was_armed)
        st.active.fetch_add(1, std::memory_order_relaxed);
    else if (!armed && was_armed)
        st.active.fetch_sub(1, std::memory_order_relaxed);
}

void
setFromSpec(const std::string& name, const std::string& spec)
{
    set(name, parseSpec(name, spec));
}

void
clear(const std::string& name)
{
    set(name, Program{});
}

void
clearAll()
{
    RegistryState& st = registry();
    std::lock_guard<std::mutex> lk(st.mutex);
    for (auto& [name, point] : st.points) {
        point.program = Program{};
        point.hits = 0;
    }
    st.active.store(0, std::memory_order_relaxed);
}

std::size_t
hitCount(const std::string& name)
{
    RegistryState& st = registry();
    std::lock_guard<std::mutex> lk(st.mutex);
    const auto it = st.points.find(name);
    return it == st.points.end() ? 0 : it->second.hits;
}

std::vector<std::string>
activeNames()
{
    RegistryState& st = registry();
    std::lock_guard<std::mutex> lk(st.mutex);
    std::vector<std::string> out;
    for (const auto& [name, point] : st.points) {
        if (point.program.action != Program::Action::Off)
            out.push_back(name);
    }
    return out;
}

std::size_t
configureFromEnv(const char* var)
{
    const char* raw = std::getenv(var);
    if (raw == nullptr || *raw == '\0')
        return 0;
    std::size_t armed = 0;
    const std::string all(raw);
    std::size_t begin = 0;
    while (begin <= all.size()) {
        std::size_t end = all.find(';', begin);
        if (end == std::string::npos)
            end = all.size();
        const std::string item = all.substr(begin, end - begin);
        begin = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            diagError("failpoint", var, "bad ", var, " entry '", item,
                      "' (want name=spec)");
        setFromSpec(item.substr(0, eq), item.substr(eq + 1));
        ++armed;
    }
    return armed;
}

namespace detail
{

bool
anyActive()
{
    return registry().active.load(std::memory_order_relaxed) != 0;
}

bool
evaluate(const char* name)
{
    Program fire;
    {
        RegistryState& st = registry();
        std::lock_guard<std::mutex> lk(st.mutex);
        const auto it = st.points.find(name);
        if (it == st.points.end() ||
            it->second.program.action == Program::Action::Off)
            return false;
        Point& pt = it->second;
        const std::size_t hit_index = pt.hits++;
        if (hit_index < pt.program.after)
            return false;
        if (pt.program.limit != 0 &&
            hit_index >= pt.program.after + pt.program.limit)
            return false;
        fire = pt.program;
    }
    switch (fire.action) {
    case Program::Action::Error:
        diagError("failpoint", name, fire.message);
    case Program::Action::Delay:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(fire.delayMs));
        return true;
    case Program::Action::Trigger: return true;
    case Program::Action::Off: break;
    }
    return false;
}

} // namespace detail

} // namespace teaal::util::failpoint
