#include "util/cancel.hpp"

#include <limits>

namespace teaal::util
{

const char*
cancelReasonName(CancelReason r)
{
    switch (r) {
    case CancelReason::User: return "user";
    case CancelReason::Deadline: return "deadline";
    case CancelReason::Shutdown: return "shutdown";
    case CancelReason::None: break;
    }
    return "none";
}

Deadline
Deadline::in(double ms)
{
    Deadline d;
    d.set_ = true;
    d.when_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
    return d;
}

Deadline
Deadline::at(std::chrono::steady_clock::time_point when)
{
    Deadline d;
    d.set_ = true;
    d.when_ = when;
    return d;
}

bool
Deadline::expired() const
{
    return set_ && std::chrono::steady_clock::now() >= when_;
}

double
Deadline::remainingMs() const
{
    if (!set_)
        return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(
               when_ - std::chrono::steady_clock::now())
        .count();
}

void
CancelToken::cancel(CancelReason reason)
{
    if (reason == CancelReason::None)
        return;
    std::uint8_t expected =
        static_cast<std::uint8_t>(CancelReason::None);
    state_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel, std::memory_order_acquire);
}

namespace
{

Diagnostic
cancelDiagnostic(CancelReason reason, double elapsed_ms,
                 const std::string& position)
{
    Diagnostic d;
    d.section = "cancelled";
    d.key = cancelReasonName(reason);
    d.message = reason == CancelReason::Deadline
                    ? "deadline exceeded"
                    : std::string("run cancelled (") +
                          cancelReasonName(reason) + ")";
    d.message += " after " +
                 std::to_string(static_cast<long long>(elapsed_ms)) +
                 " ms";
    if (!position.empty())
        d.message += " at " + position;
    return d;
}

} // namespace

CancelledError::CancelledError(CancelReason reason, double elapsed_ms,
                               std::string position)
    : DiagnosticError(cancelDiagnostic(reason, elapsed_ms, position)),
      reason_(reason), elapsedMs_(elapsed_ms),
      position_(std::move(position))
{
}

double
CancelCheck::elapsedMs() const
{
    if (start == std::chrono::steady_clock::time_point{})
        return 0.0;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
CancelCheck::raise(CancelReason reason,
                   const std::string& position) const
{
    throw CancelledError(reason, elapsedMs(), position);
}

} // namespace teaal::util
