/**
 * @file
 * Small string helpers used by the YAML and Einsum parsers.
 */
#pragma once

#include <string>
#include <vector>

namespace teaal
{

/** Remove leading and trailing whitespace. */
std::string trim(const std::string& s);

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string& s, const std::string& prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string& s, const std::string& suffix);

/** Split on a single character delimiter; keeps empty fields. */
std::vector<std::string> split(const std::string& s, char delim);

/**
 * Split on @p delim at paren/bracket depth zero only, so
 * "uniform_occupancy(A.256), flatten()" splits into two fields.
 * Fields are trimmed.
 */
std::vector<std::string> splitTopLevel(const std::string& s, char delim);

/** Join fields with a separator. */
std::string join(const std::vector<std::string>& fields,
                 const std::string& sep);

/** Lower-case copy (ASCII). */
std::string toLower(const std::string& s);

/** Parse a long; throws SpecError with @p context on failure. */
long parseLong(const std::string& s, const std::string& context);

/** Parse a double; throws SpecError with @p context on failure. */
double parseDouble(const std::string& s, const std::string& context);

/** True if the string parses fully as a (possibly signed) integer. */
bool isInteger(const std::string& s);

} // namespace teaal
