/**
 * @file
 * Cooperative cancellation and deadlines for long-running simulations.
 *
 * A `CancelToken` is a thread-safe, reason-carrying flag: any thread
 * may call cancel() (user request, deadline enforcement, server
 * shutdown) and the executing engine polls it at walk-batch
 * granularity, unwinding with a `CancelledError` — a structured
 * `DiagnosticError` (section "cancelled") that records why, how long
 * the run had been going, and the loop position reached. A `Deadline`
 * is a steady-clock time point the poller checks alongside the token;
 * the token's explicit reason wins over deadline expiry when both
 * fire, so a user cancel is never misreported as a timeout.
 *
 * `CancelCheck` bundles the two plus the run's start time; it is what
 * flows through ExecOptions/RunOptions so every layer shares one
 * elapsed-time base. Polling is cheap but not free — callers amortize
 * it (the engine checks once per trace-batch flush, ~1000 events).
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/diagnostic.hpp"

namespace teaal::util
{

/** Why a run was asked to stop. Ordered only for storage; the first
 *  reason stored in a token wins. */
enum class CancelReason : std::uint8_t
{
    None = 0,
    User = 1,     ///< explicit cancel (serve `cancel` op, test)
    Deadline = 2, ///< the run's deadline expired
    Shutdown = 3, ///< the owning daemon is draining for exit
};

/** "user" / "deadline" / "shutdown" / "none". */
const char* cancelReasonName(CancelReason r);

/** An optional steady-clock expiry point. Default-constructed ⇒ unset
 *  (never expires). Copyable and cheap; not a synchronization object. */
class Deadline
{
  public:
    Deadline() = default;

    /** A deadline @p ms milliseconds from now. Non-positive values
     *  produce an already-expired deadline. */
    static Deadline in(double ms);

    /** A deadline at an absolute steady-clock point. */
    static Deadline at(std::chrono::steady_clock::time_point when);

    bool set() const { return set_; }
    bool expired() const;

    /** Milliseconds until expiry (negative if past); +inf when unset. */
    double remainingMs() const;

  private:
    std::chrono::steady_clock::time_point when_{};
    bool set_ = false;
};

/**
 * Thread-safe cancellation flag. cancel() may be called from any
 * thread, any number of times — the first reason sticks. cancelled()
 * is a single relaxed atomic load, cheap enough for hot-loop polling.
 */
class CancelToken
{
  public:
    /** Request cancellation. The first caller's reason is kept. */
    void cancel(CancelReason reason = CancelReason::User);

    bool cancelled() const
    {
        return state_.load(std::memory_order_relaxed) !=
               static_cast<std::uint8_t>(CancelReason::None);
    }

    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            state_.load(std::memory_order_acquire));
    }

    /** Re-arm for reuse (tests; serve request tables make fresh ones). */
    void reset()
    {
        state_.store(static_cast<std::uint8_t>(CancelReason::None),
                     std::memory_order_release);
    }

  private:
    std::atomic<std::uint8_t> state_{
        static_cast<std::uint8_t>(CancelReason::None)};
};

/**
 * The structured error a cancelled run unwinds with. Is-a
 * DiagnosticError with section "cancelled" and key = reason name, so
 * existing catch sites surface it like any other diagnostic while
 * aware callers (the serve layer) read the typed fields.
 */
class CancelledError : public DiagnosticError
{
  public:
    CancelledError(CancelReason reason, double elapsed_ms,
                   std::string position);

    CancelReason reason() const { return reason_; }

    /** Wall time from the run's start to the poll that fired. */
    double elapsedMs() const { return elapsedMs_; }

    /** Loop position reached, e.g. "einsum 'Z', loop rank 'k'". */
    const std::string& position() const { return position_; }

  private:
    CancelReason reason_;
    double elapsedMs_;
    std::string position_;
};

/**
 * Poll bundle threaded through exec::ExecOptions. Value-copied into
 * every worker engine, so all shards of a run share the token, the
 * deadline, and the start point.
 */
struct CancelCheck
{
    const CancelToken* token = nullptr;
    Deadline deadline;
    std::chrono::steady_clock::time_point start{};

    /** Anything to poll at all? Checked once at engine construction. */
    bool armed() const { return token != nullptr || deadline.set(); }

    /** Current stop request: the token's explicit reason first, then
     *  deadline expiry; None when the run may continue. */
    CancelReason state() const
    {
        if (token != nullptr && token->cancelled())
            return token->reason();
        if (deadline.expired())
            return CancelReason::Deadline;
        return CancelReason::None;
    }

    double elapsedMs() const;

    /** Throw CancelledError for @p reason at @p position. */
    [[noreturn]] void raise(CancelReason reason,
                            const std::string& position) const;

    /** Poll-and-throw in one step (slow path; call after a cheap
     *  amortization gate). */
    void
    throwIfCancelled(const std::string& position) const
    {
        const CancelReason r = state();
        if (r != CancelReason::None)
            raise(r, position);
    }
};

} // namespace teaal::util
