/**
 * @file
 * A small shared worker pool for sharded execution.
 *
 * The pool grows on demand up to a hard cap and hands out *slot-style*
 * jobs: launch(n, fn) asks for fn(0..n-1) to run concurrently, and any
 * free worker claims the next unclaimed slot. Workers never block on
 * other workers (each slot's fn drains an external work queue
 * independently), so a pool smaller than the requested slot count
 * degrades parallelism but can never deadlock. launch() is safe to
 * call from multiple host threads at once — jobs queue FIFO — which is
 * what lets several CompiledModel::run calls share one pool.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace teaal::util
{

class ThreadPool
{
  public:
    /** @param max_workers Growth cap; 0 means one per hardware
     *  thread (at least 2). No threads are spawned until needed. */
    explicit ThreadPool(unsigned max_workers = 0);

    /** Joins all workers (pending jobs are completed first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Handle to an in-flight launch(); wait() blocks until every
     *  slot's fn has returned, then rethrows the first exception any
     *  slot threw (workers themselves never die from a throwing
     *  job). */
    class Ticket
    {
      public:
        Ticket() = default;

        void wait();

      private:
        friend class ThreadPool;
        struct Job;
        std::shared_ptr<Job> job_;
    };

    /**
     * Run @p fn(slot) for slot in [0, slots) on pool workers,
     * returning immediately. Grows the pool toward min(slots,
     * max_workers) first. The caller must keep @p fn's captures alive
     * until Ticket::wait() returns.
     */
    Ticket launch(unsigned slots, std::function<void(unsigned)> fn);

    /** Workers currently spawned. */
    unsigned size() const;

  private:
    void workerLoop();
    void ensureWorkers(unsigned wanted);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::thread> workers_;
    std::deque<std::shared_ptr<Ticket::Job>> jobs_;
    unsigned maxWorkers_;
    bool stopping_ = false;
};

} // namespace teaal::util
