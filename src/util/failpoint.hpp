/**
 * @file
 * Named failpoints for deterministic fault injection.
 *
 * A failpoint is a named hook compiled into a failure path ("what if
 * the registry evicts this model mid-request?", "what if reading the
 * matrix file errors?"). Tests and the CI smoke job arm a point with a
 * *program* — inject an error, sleep, or just report "triggered" so
 * the site runs its own failure branch — optionally skipping the
 * first N hits and firing at most M times.
 *
 * Build gating: the registry (set/clear/spec parsing) is always
 * compiled so tests link in every configuration, but the *sites* are
 * the `TEAAL_FAILPOINT*` macros below, which compile to nothing unless
 * CMake is configured with `-DTEAAL_FAILPOINTS=ON` (which defines
 * `TEAAL_FAILPOINTS_ENABLED`). With failpoints compiled in but none
 * armed, a site costs one relaxed atomic load of a global counter.
 *
 * Program spec grammar (used by setFromSpec and the
 * `TEAAL_FAILPOINTS` environment variable, parsed by
 * configureFromEnv):
 *
 *     spec      := action modifiers
 *     action    := "error(" message ")" | "delay(" millis ")" | "trig"
 *     modifiers := { "+skip(" N ")" | "*" M }
 *     env var   := name "=" spec { ";" name "=" spec }
 *
 * e.g. `TEAAL_FAILPOINTS='serve.registry.evict_inflight=trig*1'`
 * makes the daemon evict the touched model exactly once.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace teaal::util::failpoint
{

/** What an armed failpoint does when hit. */
struct Program
{
    enum class Action
    {
        Off,     ///< disarmed
        Error,   ///< hit() throws DiagnosticError(section "failpoint")
        Delay,   ///< hit() sleeps delayMs
        Trigger, ///< triggered() returns true; hit() is a no-op
    };

    Action action = Action::Off;
    /// Skip the first `after` hits before firing.
    std::size_t after = 0;
    /// Fire at most `limit` times (0 = unlimited).
    std::size_t limit = 0;
    double delayMs = 0.0;
    std::string message;
};

/** Arm @p name with @p program (replacing any existing program and
 *  resetting its hit count). An Off program disarms. */
void set(const std::string& name, Program program);

/** Arm @p name from a spec string (grammar above). Throws
 *  DiagnosticError(section "failpoint") on a malformed spec. */
void setFromSpec(const std::string& name, const std::string& spec);

/** Disarm @p name. */
void clear(const std::string& name);

/** Disarm everything (test fixtures call this in TearDown). */
void clearAll();

/** Times @p name was evaluated while armed (including skipped and
 *  limit-exhausted hits); 0 when never armed. */
std::size_t hitCount(const std::string& name);

/** Names currently armed, sorted. */
std::vector<std::string> activeNames();

/**
 * Arm failpoints from the `TEAAL_FAILPOINTS` environment variable
 * (`name=spec;name=spec`). Called by daemon/tool mains so the CI
 * smoke job can inject faults into the shipped binary. Returns the
 * number of points armed; throws on malformed specs.
 */
std::size_t configureFromEnv(const char* var = "TEAAL_FAILPOINTS");

namespace detail
{

/** Fast gate: true iff any failpoint is armed (relaxed load). */
bool anyActive();

/** Full evaluation of site @p name: counts the hit, applies
 *  after/limit, throws or sleeps per the program. Returns true when
 *  the program fired as Trigger or Error-already-thrown is
 *  unreachable — i.e. the site's custom branch should run. */
bool evaluate(const char* name);

} // namespace detail

/** Site check without side effects beyond counting: true when the
 *  armed program fires this hit (Trigger action). */
inline bool
triggered(const char* name)
{
    if (!detail::anyActive())
        return false;
    return detail::evaluate(name);
}

/** Plain site: error programs throw out of here, delay programs
 *  sleep here, trigger programs are counted but do nothing. */
inline void
hit(const char* name)
{
    if (!detail::anyActive())
        return;
    (void)detail::evaluate(name);
}

} // namespace teaal::util::failpoint

/**
 * Failpoint site macros — the only thing the build option gates.
 * `TEAAL_FAILPOINT(name)` marks a plain site; use
 * `TEAAL_FAILPOINT_TRIGGERED(name)` in a condition to guard a
 * site-specific failure branch.
 */
#ifdef TEAAL_FAILPOINTS_ENABLED
#define TEAAL_FAILPOINT(name) ::teaal::util::failpoint::hit(name)
#define TEAAL_FAILPOINT_TRIGGERED(name)                                \
    ::teaal::util::failpoint::triggered(name)
#else
#define TEAAL_FAILPOINT(name) ((void)0)
#define TEAAL_FAILPOINT_TRIGGERED(name) false
#endif
