#include "util/string_utils.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace teaal
{

std::string
trim(const std::string& s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string>
split(const std::string& s, char delim)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : s) {
        if (c == delim) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::vector<std::string>
splitTopLevel(const std::string& s, char delim)
{
    std::vector<std::string> fields;
    std::string current;
    int depth = 0;
    for (char c : s) {
        if (c == '(' || c == '[')
            ++depth;
        else if (c == ')' || c == ']')
            --depth;
        if (c == delim && depth == 0) {
            fields.push_back(trim(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(trim(current));
    return fields;
}

std::string
join(const std::vector<std::string>& fields, const std::string& sep)
{
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += sep;
        out += fields[i];
    }
    return out;
}

std::string
toLower(const std::string& s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

long
parseLong(const std::string& s, const std::string& context)
{
    const std::string t = trim(s);
    char* end = nullptr;
    errno = 0;
    long value = std::strtol(t.c_str(), &end, 10);
    if (t.empty() || end != t.c_str() + t.size() || errno == ERANGE)
        specError("expected integer, got '", s, "' (", context, ")");
    return value;
}

double
parseDouble(const std::string& s, const std::string& context)
{
    const std::string t = trim(s);
    char* end = nullptr;
    errno = 0;
    double value = std::strtod(t.c_str(), &end);
    if (t.empty() || end != t.c_str() + t.size() || errno == ERANGE)
        specError("expected number, got '", s, "' (", context, ")");
    return value;
}

bool
isInteger(const std::string& s)
{
    const std::string t = trim(s);
    if (t.empty())
        return false;
    std::size_t i = (t[0] == '-' || t[0] == '+') ? 1 : 0;
    if (i == t.size())
        return false;
    for (; i < t.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(t[i])))
            return false;
    }
    return true;
}

} // namespace teaal
