/**
 * @file
 * Fixed-width ASCII table printer used by every bench binary so the
 * regenerated tables/figures print with a uniform, diff-friendly layout.
 */
#pragma once

#include <string>
#include <vector>

namespace teaal
{

/** Accumulates rows of strings and prints them column-aligned. */
class TextTable
{
  public:
    /** @param title Caption printed above the table. */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row; width need not match the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the full table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with @p precision significant decimals. */
    static std::string num(double value, int precision = 3);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace teaal
