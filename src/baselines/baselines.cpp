#include "baselines/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace teaal::baselines
{

SpmspmWork
countSpmspmWork(const ft::Tensor& a_km, const ft::Tensor& b_kn)
{
    TEAAL_ASSERT(a_km.numRanks() == 2 && b_kn.numRanks() == 2,
                 "SpMSpM expects matrices");
    SpmspmWork work;
    work.aNnz = a_km.nnz();
    work.bNnz = b_kn.nnz();

    // Occupancy of each K fiber on both sides.
    const ft::Fiber& a_root = *a_km.root();
    const ft::Fiber& b_root = *b_kn.root();
    std::size_t ia = 0, ib = 0;
    // Count multiplies: sum over matching k of |A_k| * |B_k|.
    while (ia < a_root.size() && ib < b_root.size()) {
        const ft::Coord ka = a_root.coordAt(ia);
        const ft::Coord kb = b_root.coordAt(ib);
        if (ka == kb) {
            work.mults += a_root.payloadAt(ia).fiber()->size() *
                          b_root.payloadAt(ib).fiber()->size();
            ++ia;
            ++ib;
        } else if (ka < kb) {
            ++ia;
        } else {
            ++ib;
        }
    }

    // Z nnz via a row-wise (Gustavson) sweep with a hash accumulator,
    // matching gustavsonSpmspm but without storing values.
    // Swizzle-free: walk A by k and accumulate per-m column sets is
    // costly; instead reuse gustavsonSpmspm's structure on demand.
    const ft::Tensor z = gustavsonSpmspm(a_km, b_kn);
    work.zNnz = z.nnz();
    return work;
}

ft::Tensor
gustavsonSpmspm(const ft::Tensor& a_km, const ft::Tensor& b_kn)
{
    const ft::Coord m_shape = a_km.rank(1).shape;
    const ft::Coord n_shape = b_kn.rank(1).shape;
    // Gustavson iterates rows of A ([M, K] order); build the M-major
    // view of A first.
    std::unordered_map<ft::Coord,
                       std::vector<std::pair<ft::Coord, double>>>
        rows_of_a; // m -> (k, value)
    a_km.forEachLeaf([&](std::span<const ft::Coord> p, double v) {
        rows_of_a[p[1]].emplace_back(p[0], v);
    });

    ft::Tensor z("Z", {"M", "N"}, {m_shape, n_shape});
    const ft::Fiber& b_root = *b_kn.root();
    std::unordered_map<ft::Coord, double> acc;
    std::vector<ft::Coord> ms;
    ms.reserve(rows_of_a.size());
    for (const auto& [m, row] : rows_of_a)
        ms.push_back(m);
    std::sort(ms.begin(), ms.end());
    for (const ft::Coord m : ms) {
        acc.clear();
        for (const auto& [k, va] : rows_of_a[m]) {
            const auto pos = b_root.find(k);
            if (!pos)
                continue;
            const ft::Fiber& b_row = *b_root.payloadAt(*pos).fiber();
            for (std::size_t i = 0; i < b_row.size(); ++i) {
                acc[b_row.coordAt(i)] +=
                    va * b_row.payloadAt(i).value();
            }
        }
        if (acc.empty())
            continue;
        std::vector<std::pair<ft::Coord, ft::Payload>> elems;
        elems.reserve(acc.size());
        for (const auto& [n, v] : acc)
            elems.emplace_back(n, ft::Payload(v));
        z.root()->getOrInsert(m).setFiber(
            ft::Fiber::fromUnsorted(std::move(elems), n_shape));
    }
    return z;
}

double
cpuSpmspmSeconds(const SpmspmWork& work, const CpuConfig& cfg)
{
    // Roofline: multiply-adds vs. streaming A once, gathering a B row
    // element per multiply, and writing Z.
    const double flops = 2.0 * static_cast<double>(work.mults);
    const double bytes =
        12.0 * (static_cast<double>(work.aNnz) +
                static_cast<double>(work.mults) +
                2.0 * static_cast<double>(work.zNnz));
    return std::max(flops / (cfg.effectiveGflops * 1e9),
                    bytes / (cfg.memGBs * 1e9));
}

double
tpuGemmSeconds(ft::Coord m, ft::Coord n, ft::Coord k,
               const TpuConfig& cfg)
{
    // Output-stationary systolic: each MxN macro-tile takes K cycles
    // (plus drain), and partial tiles still occupy the full array.
    const double tiles =
        std::ceil(static_cast<double>(m) / cfg.arrayRows) *
        std::ceil(static_cast<double>(n) / cfg.arrayCols);
    const double cycles =
        tiles * (static_cast<double>(k) +
                 static_cast<double>(cfg.arrayRows));
    const double compute_s = cycles / cfg.clock;
    const double bytes =
        2.0 * (static_cast<double>(m) * static_cast<double>(k) +
               static_cast<double>(k) * static_cast<double>(n)) +
        4.0 * static_cast<double>(m) * static_cast<double>(n);
    return std::max(compute_s, bytes / (cfg.memGBs * 1e9));
}

AnalyticalEstimate
sparseloopExtensor(const accel::ExTensorConfig& cfg, ft::Coord k,
                   ft::Coord m, ft::Coord n, double density_a,
                   double density_b)
{
    AnalyticalEstimate est;
    const double dk = static_cast<double>(k);
    const double dm = static_cast<double>(m);
    const double dn = static_cast<double>(n);

    // Expected effectual multiplies under independent uniformity.
    est.mults = dk * dm * dn * density_a * density_b;

    // Expected Z density: a (m, n) pair is nonzero if any of the K
    // products hits.
    const double pz = 1.0 - std::pow(1.0 - density_a * density_b, dk);
    const double z_nnz = dm * dn * pz;

    // Traffic per the ExTensor mapping: A re-read once per N2 tile,
    // B once per M2 tile, Z partials once per K2 tile (12B/elem).
    const double n2 = std::ceil(dn / static_cast<double>(cfg.tileN1));
    const double m2 = std::ceil(dm / static_cast<double>(cfg.tileM1));
    const double k2 = std::ceil(dk / static_cast<double>(cfg.tileK1));
    const double a_bytes = dk * dm * density_a * 12.0 * n2;
    const double b_bytes = dk * dn * density_b * 12.0 * m2;
    const double z_bytes = z_nnz * 12.0 * (2.0 * k2 - 1.0);
    est.trafficBytes = a_bytes + b_bytes + z_bytes;

    const double compute_s =
        est.mults / (static_cast<double>(cfg.pes) * cfg.clock);
    const double dram_s = est.trafficBytes / (cfg.dramGBs * 1e9);
    est.seconds = std::max(compute_s, dram_s);
    return est;
}

} // namespace teaal::baselines
