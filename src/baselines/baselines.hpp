/**
 * @file
 * Baselines used by the evaluation (paper §6):
 *
 *  - Gustavson-algorithm SpMSpM: the functional oracle every
 *    accelerator model is checked against, and the work counter
 *    (effectual multiplies, output nnz) feeding the rooflines.
 *  - An MKL-like CPU roofline: the normalization denominator of
 *    Figures 10a/10b ("speedup over MKL").
 *  - A TPU-like systolic roofline: the denominator of Figure 10d.
 *  - A Sparseloop-like analytical model with uniform (hypergeometric)
 *    sparsity for ExTensor: the lower-fidelity comparison point of
 *    Figure 10a. Its error versus the data-driven model on skewed
 *    matrices reproduces the paper's methodological contrast.
 */
#pragma once

#include <cstdint>

#include "accelerators/accelerators.hpp"
#include "fibertree/tensor.hpp"

namespace teaal::baselines
{

/** Work counts of Z[m,n] = A[k,m] * B[k,n] (SpMSpM). */
struct SpmspmWork
{
    std::size_t mults = 0; ///< effectual multiply ops
    std::size_t zNnz = 0;
    std::size_t aNnz = 0;
    std::size_t bNnz = 0;
};

/** Count effectual work without materializing Z (fast). */
SpmspmWork countSpmspmWork(const ft::Tensor& a_km,
                           const ft::Tensor& b_kn);

/** Reference Gustavson SpMSpM producing Z [M, N]. */
ft::Tensor gustavsonSpmspm(const ft::Tensor& a_km,
                           const ft::Tensor& b_kn);

/** MKL-class CPU parameters (effective sparse-kernel rates). */
struct CpuConfig
{
    /// Effective multiply-add throughput on sparse kernels (SpGEMM on
    /// a server Xeon achieves a small fraction of peak).
    double effectiveGflops = 0.35;
    double memGBs = 40.0;
};

/** Seconds an MKL-like SpMSpM takes for @p work. */
double cpuSpmspmSeconds(const SpmspmWork& work, const CpuConfig& cfg = {});

/** TPU-like 128x128 systolic array (Figure 10d's baseline). */
struct TpuConfig
{
    double clock = 700e6;
    int arrayRows = 128;
    int arrayCols = 128;
    double memGBs = 700.0;
};

/**
 * Seconds a dense M x N x K GEMM takes on the systolic baseline
 * (dense: it cannot skip zeros; skewed shapes underutilize the array).
 */
double tpuGemmSeconds(ft::Coord m, ft::Coord n, ft::Coord k,
                      const TpuConfig& cfg = {});

/** Sparseloop-style analytical estimate for ExTensor. */
struct AnalyticalEstimate
{
    double seconds = 0;
    double mults = 0;
    double trafficBytes = 0;
};

/**
 * Analytical ExTensor model assuming uniform (hypergeometric)
 * sparsity at the given densities — no real-tensor information.
 */
AnalyticalEstimate sparseloopExtensor(const accel::ExTensorConfig& cfg,
                                      ft::Coord k, ft::Coord m,
                                      ft::Coord n, double density_a,
                                      double density_b);

} // namespace teaal::baselines
