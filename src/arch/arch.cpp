#include "arch/arch.hpp"

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::arch
{

ComponentClass
componentClassFromString(const std::string& s)
{
    const std::string t = toLower(s);
    if (t == "dram")
        return ComponentClass::DRAM;
    if (t == "buffer")
        return ComponentClass::Buffer;
    if (t == "intersection")
        return ComponentClass::Intersection;
    if (t == "merger")
        return ComponentClass::Merger;
    if (t == "sequencer")
        return ComponentClass::Sequencer;
    if (t == "compute")
        return ComponentClass::Compute;
    specError("unknown component class '", s, "'");
}

std::string
componentClassName(ComponentClass c)
{
    switch (c) {
      case ComponentClass::DRAM:
        return "DRAM";
      case ComponentClass::Buffer:
        return "Buffer";
      case ComponentClass::Intersection:
        return "Intersection";
      case ComponentClass::Merger:
        return "Merger";
      case ComponentClass::Sequencer:
        return "Sequencer";
      case ComponentClass::Compute:
        return "Compute";
    }
    return "?";
}

double
Component::attrDouble(const std::string& key, double fallback) const
{
    const auto it = attributes.find(key);
    if (it == attributes.end())
        return fallback;
    return parseDouble(it->second, "component " + name + "." + key);
}

long
Component::attrLong(const std::string& key, long fallback) const
{
    const auto it = attributes.find(key);
    if (it == attributes.end())
        return fallback;
    return parseLong(it->second, "component " + name + "." + key);
}

std::string
Component::attrString(const std::string& key,
                      const std::string& fallback) const
{
    const auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second;
}

double
Component::requireDouble(const std::string& key) const
{
    const auto it = attributes.find(key);
    if (it == attributes.end())
        specError("component '", name, "' missing attribute '", key, "'");
    return parseDouble(it->second, "component " + name + "." + key);
}

namespace
{

const Component*
findInLevel(const Level& level, const std::string& name, long factor,
            long* instances_out)
{
    for (const Component& c : level.local) {
        if (c.name == name) {
            if (instances_out)
                *instances_out = factor;
            return &c;
        }
    }
    for (const Level& sub : level.subtrees) {
        const Component* found =
            findInLevel(sub, name, factor * sub.num, instances_out);
        if (found)
            return found;
    }
    return nullptr;
}

void
collectComponents(const Level& level, long factor,
                  std::vector<std::pair<const Component*, long>>& out)
{
    for (const Component& c : level.local)
        out.emplace_back(&c, factor);
    for (const Level& sub : level.subtrees)
        collectComponents(sub, factor * sub.num, out);
}

Level
parseLevel(const yaml::Node& node)
{
    Level level;
    for (const auto& [key, value] : node.mapping()) {
        if (key == "name") {
            level.name = value.scalar();
        } else if (key == "num") {
            level.num = static_cast<int>(value.asLong());
            if (level.num <= 0)
                specError("level '", level.name,
                          "': num must be positive");
        } else if (key == "local") {
            for (const yaml::Node& comp : value.sequence()) {
                Component c;
                for (const auto& [ck, cv] : comp.mapping()) {
                    if (ck == "name") {
                        c.name = cv.scalar();
                    } else if (ck == "class") {
                        c.cls = componentClassFromString(cv.scalar());
                    } else if (ck == "attributes") {
                        for (const auto& [ak, av] : cv.mapping())
                            c.attributes[ak] = av.scalar();
                    } else {
                        specError("component '", c.name,
                                  "': unknown key '", ck, "'");
                    }
                }
                if (c.name.empty())
                    specError("component without a name in level '",
                              level.name, "'");
                level.local.push_back(std::move(c));
            }
        } else if (key == "subtree") {
            for (const yaml::Node& sub : value.sequence())
                level.subtrees.push_back(parseLevel(sub));
        } else {
            specError("level '", level.name, "': unknown key '", key,
                      "'");
        }
    }
    if (level.name.empty())
        specError("architecture level missing 'name'");
    return level;
}

} // namespace

const Component*
Topology::findComponent(const std::string& name, long* instances_out) const
{
    return findInLevel(root, name, root.num, instances_out);
}

std::vector<std::pair<const Component*, long>>
Topology::allComponents() const
{
    std::vector<std::pair<const Component*, long>> out;
    collectComponents(root, root.num, out);
    return out;
}

ArchSpec
ArchSpec::parse(const yaml::Node& node)
{
    ArchSpec spec;
    if (node.isNull())
        return spec;
    for (const auto& [name, body] : node.mapping()) {
        Topology topo;
        topo.name = name;
        if (const yaml::Node* clock = body.find("clock"))
            topo.clock = clock->asDouble();
        const yaml::Node& subtree = body.at("subtree");
        const auto& seq = subtree.sequence();
        if (seq.size() != 1)
            specError("topology '", name,
                      "' must have exactly one root level");
        topo.root = parseLevel(seq[0]);
        spec.add(std::move(topo));
    }
    return spec;
}

const Topology&
ArchSpec::topology(const std::string& name) const
{
    if (name.empty()) {
        if (topologies_.size() != 1)
            specError("architecture has ", topologies_.size(),
                      " topologies; binding must name one");
        return topologies_.begin()->second;
    }
    const auto it = topologies_.find(name);
    if (it == topologies_.end())
        specError("unknown architecture topology '", name, "'");
    return it->second;
}

std::vector<std::string>
ArchSpec::topologyNames() const
{
    return order_;
}

void
ArchSpec::add(Topology t)
{
    if (topologies_.count(t.name))
        specError("duplicate topology '", t.name, "'");
    order_.push_back(t.name);
    topologies_[t.name] = std::move(t);
}

} // namespace teaal::arch
