/**
 * @file
 * Architecture specification (paper §4.1.2, Figure 5f, Table 3):
 * the accelerator topology as a tree of levels, each with local
 * components and replicated subtrees. Component classes and their
 * attributes follow Table 3:
 *
 *   DRAM         bandwidth (GB/s)
 *   Buffer       type (buffet|cache), width (bits), depth (entries),
 *                bandwidth (GB/s)
 *   Intersection type (two-finger|leader-follower|skip-ahead), leader
 *   Merger       inputs, comparator_radix, outputs, order (fifo|opt),
 *                reduce (0|1)
 *   Sequencer    num_ranks
 *   Compute      type (mul|add)
 *
 * An accelerator may reorganize itself between Einsums (OuterSPACE's
 * multiply vs. merge phases), so a specification can define multiple
 * named topologies.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "yaml/yaml.hpp"

namespace teaal::arch
{

/** Component classes of Table 3. */
enum class ComponentClass
{
    DRAM,
    Buffer,
    Intersection,
    Merger,
    Sequencer,
    Compute
};

/** Parse a class name ("DRAM", "Buffer", ...). */
ComponentClass componentClassFromString(const std::string& s);
std::string componentClassName(ComponentClass c);

/** One hardware component with free-form, typed-on-access attributes. */
struct Component
{
    std::string name;
    ComponentClass cls = ComponentClass::Compute;
    std::map<std::string, std::string> attributes;

    /** Typed attribute access with defaults. */
    double attrDouble(const std::string& key, double fallback) const;
    long attrLong(const std::string& key, long fallback) const;
    std::string attrString(const std::string& key,
                           const std::string& fallback) const;

    /** Required attribute; SpecError when missing. */
    double requireDouble(const std::string& key) const;
};

/** One level of the topology tree. */
struct Level
{
    std::string name;
    /// Replication factor of this level below its parent (x16 etc.).
    int num = 1;
    std::vector<Component> local;
    std::vector<Level> subtrees;
};

/** A complete named topology. */
struct Topology
{
    std::string name;
    /// Clock frequency in Hz (attribute `clock` on the root; 1GHz
    /// default).
    double clock = 1e9;
    Level root;

    /**
     * Find a component by name anywhere in the tree.
     * @param instances_out Receives the product of `num` factors on
     *        the path from the root (how many instances exist).
     * @return nullptr if not found.
     */
    const Component* findComponent(const std::string& name,
                                   long* instances_out = nullptr) const;

    /** All components, paired with their instance counts. */
    std::vector<std::pair<const Component*, long>> allComponents() const;
};

/** The full `architecture:` section: one or more named topologies. */
class ArchSpec
{
  public:
    ArchSpec() = default;

    static ArchSpec parse(const yaml::Node& node);

    /**
     * Topology lookup. An empty @p name selects the only topology
     * (SpecError if ambiguous or absent).
     */
    const Topology& topology(const std::string& name = "") const;

    std::vector<std::string> topologyNames() const;

    void add(Topology t);

  private:
    std::map<std::string, Topology> topologies_;
    std::vector<std::string> order_;
};

} // namespace teaal::arch
