/**
 * @file
 * The order-dependent tier of the performance model: buffet
 * occupancy, shared LRU cache contention, DRAM fill/drain traffic,
 * and partial-output accounting. Whether an access hits, when a
 * partial result is evicted and re-fetched, and which cache lines
 * survive all depend on the *serial order* of the trace — so this
 * tier consumes records only on the coordinator, during the in-order
 * capture replay that sharded execution already performs (or inline,
 * on the serial path). Everything order-free lives in the
 * ShardAccumulator tier instead (model/accumulator.hpp), which the
 * capture filter feeds inside each shard.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/buffer_sim.hpp"
#include "model/flat_hash.hpp"
#include "model/tables.hpp"
#include "trace/batch.hpp"

namespace teaal::storage
{
class PackedTensor;
} // namespace teaal::storage

namespace teaal::model
{

/** Order-dependent storage simulation for one Einsum. */
class StorageReplay
{
  public:
    explicit StorageReplay(const ModelTables& t);

    /** Per-record entry for stateful-class records (the façade's
     *  internal routing; datapath-class records belong to the
     *  accumulator tier). */
    void
    consume(const trace::Event& e)
    {
        using trace::Event;
        switch (e.kind) {
          case Event::Kind::LoopEnter:
            loopEnter(e.loop);
            break;
          case Event::Kind::TensorAccess:
            tensorAccess(e.input, e.level, e.ptr, e.payload, e.packed,
                         e.a);
            break;
          case Event::Kind::OutputWrite:
            outputWrite(e.key, e.flagB);
            break;
          case Event::Kind::Swizzle:
            swizzle(e.a, e.b, e.flagA);
            break;
          case Event::Kind::TensorCopy:
            tensorCopy(*e.name, *e.name2, e.a);
            break;
          default:
            break; // datapath kinds: not ours
        }
    }

    /** Entering @p loop drains every buffet bound to evict on it. */
    void loopEnter(std::size_t loop);

    /** A unit-routed, non-absorbed payload read: buffet/cache access
     *  with fills charged to DRAM. Exactly one of @p payload /
     *  @p packed is set for eager subtree sizing. */
    void tensorAccess(int input, std::size_t level, const void* key,
                      const ft::Payload* payload, const void* packed,
                      std::size_t pos);

    /** Output leaf write: buffet partial accounting or streaming
     *  read-modify-write. Non-leaf writes are ignored. */
    void outputWrite(std::uint64_t path_key, bool at_leaf);

    void swizzle(std::size_t elements, std::size_t ways, bool online);

    void tensorCopy(const std::string& from, const std::string& to,
                    std::size_t elements);

    /** Drain every remaining buffet and apply all accumulated
     *  counters and traffic to @p record. */
    void finalizeInto(EinsumRecord& record);

  private:
    struct UnitState
    {
        Buffet buffet;
        /// Shared per component: all tensors bound to one cache
        /// contend for its capacity. Null for buffets.
        LruCache* cache = nullptr;
        Slot access;
        Slot fill;
        Slot drain;
    };

    void chargeDram(const std::string& tensor, double bytes, bool write,
                    bool partial = false);
    void chargeDramTo(TensorTraffic* tt, double bytes, bool write,
                      bool partial = false);

    double subtreeBytes(const ModelTables::UnitInfo& unit,
                        const ft::Payload* payload, std::size_t level,
                        const std::vector<std::string>& rank_ids);
    double packedSubtreeBytes(const ModelTables::UnitInfo& unit,
                              const storage::PackedTensor* packed,
                              std::size_t level, std::size_t pos,
                              const void* key);

    const ModelTables& t_;

    std::vector<UnitState> units_;
    std::map<std::string, std::unique_ptr<LruCache>> componentCaches_;

    /// Traffic accumulated by this tier (rows for the plan's tensors
    /// are pre-resolved; tensorCopy may add arbitrary names).
    std::map<std::string, TensorTraffic> traffic_;
    std::vector<TensorTraffic*> inputTrafficOrNull_; // per input slot
    std::vector<TensorTraffic*> unitTrafficOrNull_;  // per unit
    TensorTraffic* outTrafficOrNull_ = nullptr;

    Slot dramRead_;
    Slot dramWrite_;

    // Merger / sequencer swizzle charges.
    Slot mergeElems_;
    Slot mergeSwizzles_;
    Slot seqSwizzleElems_;

    // Streaming-output partial accounting.
    FlatMap64<int> outWritten_;

    // Subtree footprint memoization (bytes incl. any transaction
    // granularity penalty for interleaved layouts).
    std::unordered_map<const void*, double> subtreeBytesCache_;
};

} // namespace teaal::model
