#include "model/tables.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace teaal::model
{

namespace
{

/** Strip trailing digits: K0 -> K. */
std::string
stripDigits(const std::string& rank)
{
    std::string base = rank;
    while (!base.empty() &&
           std::isdigit(static_cast<unsigned char>(base.back()))) {
        base.pop_back();
    }
    return base;
}

/**
 * Tolerant binding-rank resolution against a list of (possibly
 * partitioned/flattened) rank ids. Exact match wins, then base match,
 * then flattened-constituent match.
 */
int
resolveRankLevel(const std::vector<ft::RankInfo>& ranks,
                 const std::string& rank)
{
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        if (ranks[i].id == rank)
            return static_cast<int>(i);
    }
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        if (stripDigits(ranks[i].id) == rank ||
            ranks[i].id == stripDigits(rank))
            return static_cast<int>(i);
    }
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        const auto& flat = ranks[i].flatIds;
        if (std::find(flat.begin(), flat.end(), rank) != flat.end())
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace

ModelTables
ModelTables::build(const ir::EinsumPlan& plan, const arch::Topology& topo,
                   const binding::EinsumBinding& eb,
                   const fmt::FormatSpec& formats,
                   const std::set<std::string>& on_chip)
{
    ModelTables t;
    t.plan = &plan;
    t.topo = &topo;
    t.formats = &formats;
    t.onChip = on_chip;
    t.unionCombine = plan.unionCombine;

    EinsumRecord& record = t.skeleton;
    record.output = plan.expr.output.name;
    record.topologyName = topo.name;
    record.clock = topo.clock;
    for (const ir::LoopRank& lr : plan.loops) {
        record.loopOrder.push_back(lr.name);
        if (lr.isSpace)
            break;
        record.temporalPrefix.push_back(lr.name);
    }

    // ------------------------- resolve the functional components
    for (const auto& [comp, instances] : topo.allComponents()) {
        switch (comp->cls) {
          case arch::ComponentClass::DRAM:
            if (t.dramName.empty())
                t.dramName = comp->name;
            break;
          case arch::ComponentClass::Sequencer:
            if (t.seqName.empty())
                t.seqName = comp->name;
            break;
          case arch::ComponentClass::Intersection:
            if (t.isectName.empty()) {
                t.isectName = comp->name;
                t.isectType = comp->attrString("type", "two-finger");
            }
            break;
          case arch::ComponentClass::Merger:
            if (t.mergerName.empty()) {
                t.mergerName = comp->name;
                t.mergerRadix =
                    std::max(2L, comp->attrLong("comparator_radix", 2));
            }
            break;
          case arch::ComponentClass::Compute: {
            const std::string type = comp->attrString("type", "mul");
            if (type == "mul" && t.mulName.empty())
                t.mulName = comp->name;
            if (type == "add" && t.addName.empty())
                t.addName = comp->name;
            break;
          }
          case arch::ComponentClass::Buffer:
            break;
        }
        (void)instances;
    }
    // Compute fallbacks: a mul-only datapath still executes adds.
    if (t.mulName.empty())
        t.mulName = t.addName;
    if (t.addName.empty())
        t.addName = t.mulName;

    // Op bindings override the defaults.
    for (const binding::ComponentBinding& cb : eb.components) {
        for (const binding::OpBinding& op : cb.ops) {
            if (op.op == "mul")
                t.mulName = cb.component;
            else if (op.op == "add")
                t.addName = cb.component;
            else if (op.op == "intersect")
                t.isectName = cb.component;
            else if (op.op == "merge" || op.op == "sort")
                t.mergerName = cb.component;
            else if (op.op == "seq")
                t.seqName = cb.component;
            record.nonStorageComponents.insert(cb.component);
        }
    }

    // Pre-create component records with instance counts.
    auto ensure = [&](const std::string& name, long* instances_out) {
        if (name.empty())
            return;
        long instances = 1;
        const arch::Component* comp =
            topo.findComponent(name, &instances);
        ComponentActions& ca = record.components[name];
        ca.name = name;
        ca.instances = instances;
        if (comp != nullptr)
            ca.cls = comp->cls;
        if (instances_out != nullptr)
            *instances_out = instances;
    };
    ensure(t.dramName, nullptr);
    ensure(t.seqName, &t.seqInstances);
    ensure(t.isectName, &t.isectInstances);
    ensure(t.mergerName, nullptr);
    ensure(t.mulName, &t.mulInstances);
    ensure(t.addName, &t.addInstances);
    for (const ir::TensorPlan& tp : plan.inputs)
        record.traffic[tp.name];
    record.traffic[plan.output.name];
    // Pre-populating the traffic map inserts zero rows; they are
    // harmless (the benches skip zero-traffic tensors).

    // ------------------------------------ storage units and routes
    for (const binding::ComponentBinding& cb : eb.components) {
        long instances = 1;
        const arch::Component* comp =
            topo.findComponent(cb.component, &instances);
        if (comp == nullptr) {
            if (!cb.storage.empty())
                specError("binding references unknown component '",
                          cb.component, "'");
            continue;
        }
        if (comp->cls != arch::ComponentClass::Buffer)
            continue;
        ComponentActions& ca = record.components[cb.component];
        ca.name = cb.component;
        ca.instances = instances;
        ca.cls = comp->cls;

        for (const binding::StorageBinding& sb : cb.storage) {
            UnitInfo unit;
            unit.component = cb.component;
            unit.tensor = sb.tensor;
            unit.eager = sb.style == binding::Style::Eager;
            unit.isCache = comp->attrString("type", "buffet") == "cache";
            // Output partials always use buffet (drain) semantics,
            // even when held in a cache-type component: eviction of a
            // partial result writes it back.
            if (sb.tensor == plan.output.name)
                unit.isCache = false;
            if (unit.isCache) {
                double bytes = comp->attrDouble("size", 0);
                if (bytes == 0) {
                    bytes = comp->attrDouble("width", 64) *
                            comp->attrDouble("depth", 1024) / 8.0;
                }
                // Replicated caches are simulated as one pool of the
                // aggregate capacity, shared per component.
                unit.cacheBytes =
                    bytes * static_cast<double>(instances);
            }
            unit.format = sb.config.empty()
                              ? &formats.getLenient(sb.tensor)
                              : &formats.get(sb.tensor, sb.config);

            // Locate the tensor.
            if (sb.tensor == plan.output.name) {
                unit.input = -1;
                if (!plan.output.productionOrder.empty() &&
                    !sb.rank.empty()) {
                    std::vector<ft::RankInfo> ranks;
                    for (std::size_t i = 0;
                         i < plan.output.productionOrder.size(); ++i) {
                        ranks.push_back(
                            {plan.output.productionOrder[i],
                             plan.output.shapes[i],
                             {},
                             {}});
                    }
                    unit.boundLevel = resolveRankLevel(ranks, sb.rank);
                }
            } else {
                for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
                    if (plan.inputs[i].name == sb.tensor)
                        unit.input = static_cast<int>(i);
                }
                if (unit.input < 0)
                    continue; // tensor not used by this Einsum
                if (!sb.rank.empty()) {
                    unit.boundLevel = resolveRankLevel(
                        plan.inputs[static_cast<std::size_t>(unit.input)]
                            .prepared.ranks(),
                        sb.rank);
                }
                if (unit.boundLevel < 0)
                    unit.boundLevel = 0;
            }
            if (!sb.evictOn.empty()) {
                for (std::size_t l = 0; l < plan.loops.size(); ++l) {
                    if (plan.loops[l].name == sb.evictOn ||
                        stripDigits(plan.loops[l].name) == sb.evictOn)
                        unit.evictLoop = static_cast<int>(l);
                }
            }
            if (unit.input < 0 && sb.tensor == plan.output.name)
                t.outUnit = static_cast<int>(t.units.size());
            // Linked-list style layouts pay DRAM transaction
            // granularity per element when chased.
            for (const auto& [rid, rf] : unit.format->ranks) {
                (void)rid;
                if (rf.layout == fmt::RankFormat::Layout::Interleaved)
                    unit.interleaved = true;
            }
            unit.onChipTensor = on_chip.count(sb.tensor) != 0;
            t.units.push_back(std::move(unit));
        }
    }

    // Routes: per input, per level, pick the deepest covering unit.
    t.routes.resize(plan.inputs.size());
    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        const ir::TensorPlan& tp = plan.inputs[i];
        const fmt::TensorFormat& tf = formats.getLenient(tp.name);
        const std::size_t nr = tp.prepared.numRanks();
        t.routes[i].resize(nr);
        for (std::size_t lvl = 0; lvl < nr; ++lvl) {
            LevelRoute& r = t.routes[i][lvl];
            const fmt::RankFormat& rf =
                tf.rankFormat(tp.prepared.rank(lvl).id);
            r.coordBytes = rf.coordBits() / 8.0;
            r.payloadBytes = rf.payloadBits(lvl + 1 == nr) / 8.0;
            int best = -1;
            for (std::size_t u = 0; u < t.units.size(); ++u) {
                const UnitInfo& unit = t.units[u];
                if (unit.input != static_cast<int>(i))
                    continue;
                if (unit.boundLevel <= static_cast<int>(lvl) &&
                    (best < 0 ||
                     unit.boundLevel >
                         t.units[static_cast<std::size_t>(best)]
                             .boundLevel)) {
                    best = static_cast<int>(u);
                }
            }
            r.unit = best;
            if (best >= 0) {
                const UnitInfo& unit =
                    t.units[static_cast<std::size_t>(best)];
                r.absorbed = unit.eager &&
                             unit.boundLevel < static_cast<int>(lvl);
                r.unitIsCache = unit.isCache;
                r.unitEager = unit.eager;
                r.unitBoundLevel = unit.boundLevel;
            }
        }
    }

    // On-chip flags per consumer slot.
    for (const ir::TensorPlan& tp : plan.inputs)
        t.inputOnChip.push_back(on_chip.count(tp.name) != 0 ? 1 : 0);
    t.outputOnChip = on_chip.count(plan.output.name) != 0;

    // Output leaf element size.
    {
        const fmt::TensorFormat& tf =
            formats.getLenient(plan.output.name);
        const std::string leaf_rank =
            plan.output.productionOrder.empty()
                ? std::string("_S")
                : plan.output.productionOrder.back();
        const fmt::RankFormat& rf = tf.rankFormat(leaf_rank);
        t.outLeafBytes = (rf.coordBits() + rf.payloadBits(true) +
                          rf.headerBits()) /
                         8.0;
        if (rf.layout == fmt::RankFormat::Layout::Interleaved) {
            // Each linked-list append is its own DRAM transaction.
            t.outLineBytes =
                std::max(t.outLeafBytes, kInterleavedTransactionBytes);
        }
    }

    // ------------------------------------------- record classifier
    // A LoopEnter is order-dependent exactly when a buffet is drained
    // by that loop; a TensorAccess exactly when it routes to live
    // buffet/cache state (neither absorbed by an eager fill above nor
    // streamed past every unit).
    t.classifier.statefulLoopEnter.assign(plan.loops.size(), 0);
    for (const UnitInfo& unit : t.units) {
        if (!unit.isCache && unit.evictLoop >= 0 &&
            unit.evictLoop < static_cast<int>(plan.loops.size()))
            t.classifier.statefulLoopEnter[static_cast<std::size_t>(
                unit.evictLoop)] = 1;
    }
    t.classifier.statefulAccess.resize(plan.inputs.size());
    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        const auto& lvls = t.routes[i];
        t.classifier.statefulAccess[i].assign(lvls.size(), 0);
        for (std::size_t lvl = 0; lvl < lvls.size(); ++lvl) {
            if (lvls[lvl].unit >= 0 && !lvls[lvl].absorbed)
                t.classifier.statefulAccess[i][lvl] = 1;
        }
    }

    return t;
}

} // namespace teaal::model
