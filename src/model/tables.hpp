/**
 * @file
 * The per-Einsum model tables: everything the performance model
 * resolves once from the plan, topology, binding, and format spec —
 * functional-component identities, storage-unit configuration,
 * per-(input, level) access routes, the output leaf layout, the
 * trace-record classifier, and the pre-populated EinsumRecord
 * skeleton (component rows with instance counts, zero traffic rows,
 * fusion facts).
 *
 * Both model tiers reference one immutable ModelTables: the
 * order-independent ShardAccumulator (model/accumulator.hpp), which
 * runs inside every shard, and the order-dependent StorageReplay
 * (model/storage_replay.hpp), which only the coordinator feeds. The
 * split boundary IS the classifier: a record is order-dependent
 * exactly when consuming it touches buffet/cache/partial-output
 * state.
 */
#pragma once

#include <set>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "format/format.hpp"
#include "ir/plan.hpp"
#include "model/record.hpp"
#include "trace/batch.hpp"
#include "util/random.hpp"

namespace teaal::model
{

/**
 * One additive counter with event-occurrence tracking: a counter row
 * appears in the record exactly when some trace event touched it —
 * even with a zero value — matching the lazily-created rows of the
 * streaming model, so records merged from shard pieces are
 * byte-identical to a serial run's.
 */
struct Slot
{
    double value = 0;
    bool touched = false;

    void
    add(double v)
    {
        value += v;
        touched = true;
    }

    void
    merge(const Slot& o)
    {
        value += o.value;
        touched = touched || o.touched;
    }

    /** Apply to @p ca's @p key row (created on first touch). */
    void
    mergeInto(ComponentActions& ca, const char* key) const
    {
        if (touched)
            ca.counts[key] += value;
    }
};

/**
 * Map a (possibly sparse, mixed-radix) logical PE id onto a physical
 * instance. When the id already fits the instance count this is the
 * identity (static placement); larger/sparse id spaces are spread by
 * a mixing hash, modeling the dynamic work distribution real designs
 * use to balance irregular task sizes.
 */
inline std::uint64_t
peSlot(long instances, std::uint64_t pe)
{
    const auto n = static_cast<std::uint64_t>(instances);
    if (n == 0)
        return pe;
    if (pe < n)
        return pe;
    std::uint64_t state = pe;
    return splitMix64(state) % n;
}

/// DRAM transaction granularity paid per element when chasing
/// interleaved (array-of-structs / linked-list) layouts; partial
/// write-combining makes this less than a full 64B line. Shared by
/// the output-leaf sizing (tables.cpp) and the input subtree charges
/// (storage_replay.cpp) so the two cannot diverge.
constexpr double kInterleavedTransactionBytes = 32.0;

/** Immutable per-Einsum model configuration (see file comment). */
struct ModelTables
{
    const ir::EinsumPlan* plan = nullptr;
    const arch::Topology* topo = nullptr;
    const fmt::FormatSpec* formats = nullptr;
    std::set<std::string> onChip;

    // Resolved functional components (empty name = absent).
    std::string dramName;
    std::string seqName;
    std::string isectName;
    std::string isectType;
    std::string mergerName;
    long mergerRadix = 2;
    std::string mulName;
    std::string addName;
    long seqInstances = 1;
    long isectInstances = 1;
    long mulInstances = 1;
    long addInstances = 1;

    bool unionCombine = false;

    /** Static configuration of one bound storage unit (the simulator
     *  state itself lives in StorageReplay). */
    struct UnitInfo
    {
        std::string component;
        std::string tensor;
        bool isCache = false;
        /// Shared pool capacity of the component's cache (aggregate
        /// over replicated instances); 0 for buffets.
        double cacheBytes = 0;
        const fmt::TensorFormat* format = nullptr;
        int input = -1;      // -1 for the output tensor
        int boundLevel = -1; // prepared/production level
        int evictLoop = -1;  // loop index that drains the buffet
        bool eager = false;
        /// Interleaved (linked-list) layout: DRAM transaction
        /// granularity is paid per chased element.
        bool interleaved = false;
        /// Tensor stays on chip (fused intermediate): no DRAM charge.
        bool onChipTensor = false;
    };
    std::vector<UnitInfo> units;
    int outUnit = -1;
    double outLeafBytes = 8;
    /// DRAM transaction bytes for interleaved (linked-list) output
    /// layouts: pointer chasing pays line granularity per element.
    double outLineBytes = 0;

    /** Per-level routing for one input tensor. */
    struct LevelRoute
    {
        double coordBytes = 4;
        double payloadBytes = 4;
        int unit = -1;         // UnitInfo index handling this level
        bool absorbed = false; // covered by an eager unit above
        // Unit facts denormalized onto the route so the hot path pays
        // one read instead of a units[] indirection.
        bool unitIsCache = false;
        bool unitEager = false;
        int unitBoundLevel = -1;
    };
    std::vector<std::vector<LevelRoute>> routes; // per input, per level
    std::vector<char> inputOnChip;               // per input slot
    bool outputOnChip = false;

    /// Record classification derived from the routes: what the shard
    /// accumulators may consume vs. what must replay in order.
    trace::RecordClassifier classifier;

    /// Pre-populated record: metadata, component rows (instances,
    /// classes), zero traffic rows. finalize() copies this and merges
    /// the tiers' counters in.
    EinsumRecord skeleton;

    /**
     * Resolve the tables for one Einsum. All references are borrowed
     * and must outlive the tables (the plan, topology, and format
     * spec already outlive every run using them).
     */
    static ModelTables build(const ir::EinsumPlan& plan,
                             const arch::Topology& topo,
                             const binding::EinsumBinding& eb,
                             const fmt::FormatSpec& formats,
                             const std::set<std::string>& on_chip);
};

} // namespace teaal::model
