#include "model/accumulator.hpp"

namespace teaal::model
{

ShardAccumulator::ShardAccumulator(const ModelTables& t)
    : t_(t), unitAccess_(t.units.size()),
      inputRead_(t.plan->inputs.size(), 0.0)
{
}

void
ShardAccumulator::onEventBatch(const trace::EventBatch& batch)
{
    for (const trace::Event& e : batch.events)
        consume(e);
}

void
ShardAccumulator::coIterate(std::size_t steps, std::size_t matches,
                            std::size_t drivers, std::uint64_t pe)
{
    if (!t_.seqName.empty()) {
        // The sequencer walks fibers at one element per cycle.
        seqSteps_.add(static_cast<double>(steps));
        seqPerPe_[peSlot(t_.seqInstances, pe)] +=
            static_cast<double>(steps);
    }
    if (drivers >= 2 && !t_.unionCombine && !t_.isectName.empty()) {
        isectSteps_.add(static_cast<double>(steps));
        isectMatches_.add(static_cast<double>(matches));
        const double skips = static_cast<double>(steps - matches);
        double cycles;
        if (t_.isectType == "skip-ahead") {
            // Hegde et al.'s unit fast-forwards through non-matching
            // runs at ~2 elements/cycle.
            cycles = static_cast<double>(matches) + skips / 2.0;
        } else if (t_.isectType == "leader-follower") {
            // Only the leader's elements are examined.
            cycles = static_cast<double>(steps) / 2.0 +
                     static_cast<double>(matches) / 2.0;
        } else { // two-finger
            cycles = static_cast<double>(steps);
        }
        isectCycles_.add(cycles);
        isectPerPe_[peSlot(t_.isectInstances, pe)] += cycles;
    }
}

void
ShardAccumulator::coordScan(int input, std::size_t level,
                            std::size_t count)
{
    if (input < 0 || count == 0)
        return;
    const std::size_t i = static_cast<std::size_t>(input);
    const ModelTables::LevelRoute& r = t_.routes[i][level];
    const double bytes = r.coordBytes * static_cast<double>(count);
    if (bytes <= 0)
        return;
    if (r.unit >= 0) {
        if (r.unitIsCache || !r.absorbed)
            unitAccess_[static_cast<std::size_t>(r.unit)].add(bytes);
        if (!r.absorbed && !r.unitEager && t_.inputOnChip[i] == 0) {
            // Lazily bound coordinates stream through the buffer.
            inputRead_[i] += bytes;
            dramRead_.add(bytes);
        }
    } else if (t_.inputOnChip[i] == 0) {
        inputRead_[i] += bytes;
        dramRead_.add(bytes);
    }
}

void
ShardAccumulator::compute(char op, std::uint64_t pe, std::size_t count)
{
    if (op == 'm') {
        if (t_.mulName.empty())
            return;
        mulOps_.add(static_cast<double>(count));
        mulPerPe_[peSlot(t_.mulInstances, pe)] +=
            static_cast<double>(count);
    } else {
        if (t_.addName.empty())
            return;
        addOps_.add(static_cast<double>(count));
        addPerPe_[peSlot(t_.addInstances, pe)] +=
            static_cast<double>(count);
    }
}

void
ShardAccumulator::tensorAccess(int input, std::size_t level)
{
    if (input < 0)
        return;
    const std::size_t i = static_cast<std::size_t>(input);
    const ModelTables::LevelRoute& r = t_.routes[i][level];
    if (r.unit < 0) {
        if (t_.inputOnChip[i] == 0) {
            inputRead_[i] += r.payloadBytes;
            dramRead_.add(r.payloadBytes);
        }
        return;
    }
    // Absorbed by an eager fill above: on-chip hit. Caches pay a port
    // access per use; explicitly orchestrated buffets feed
    // registers/multicast networks, so re-uses are free. (The
    // non-absorbed unit-routed case is order-dependent and never
    // reaches this tier — the classifier sends it to StorageReplay.)
    if (r.absorbed && r.unitIsCache)
        unitAccess_[static_cast<std::size_t>(r.unit)].add(
            r.payloadBytes);
}

void
ShardAccumulator::merge(const ShardAccumulator& o)
{
    seqSteps_.merge(o.seqSteps_);
    seqPerPe_.merge(o.seqPerPe_);
    isectSteps_.merge(o.isectSteps_);
    isectMatches_.merge(o.isectMatches_);
    isectCycles_.merge(o.isectCycles_);
    isectPerPe_.merge(o.isectPerPe_);
    mulOps_.merge(o.mulOps_);
    mulPerPe_.merge(o.mulPerPe_);
    addOps_.merge(o.addOps_);
    addPerPe_.merge(o.addPerPe_);
    for (std::size_t u = 0; u < unitAccess_.size(); ++u)
        unitAccess_[u].merge(o.unitAccess_[u]);
    for (std::size_t i = 0; i < inputRead_.size(); ++i)
        inputRead_[i] += o.inputRead_[i];
    dramRead_.merge(o.dramRead_);
}

void
ShardAccumulator::mergeInto(EinsumRecord& record) const
{
    if (!t_.seqName.empty()) {
        ComponentActions& seq = record.components[t_.seqName];
        seqSteps_.mergeInto(seq, "steps");
        seq.perPe.merge(seqPerPe_);
    }
    if (!t_.isectName.empty()) {
        ComponentActions& isect = record.components[t_.isectName];
        isectSteps_.mergeInto(isect, "steps");
        isectMatches_.mergeInto(isect, "matches");
        isectCycles_.mergeInto(isect, "cycles");
        isect.perPe.merge(isectPerPe_);
    }
    if (!t_.mulName.empty()) {
        ComponentActions& mul = record.components[t_.mulName];
        mulOps_.mergeInto(mul, "mul_ops");
        mul.perPe.merge(mulPerPe_);
    }
    if (!t_.addName.empty()) {
        ComponentActions& add = record.components[t_.addName];
        addOps_.mergeInto(add, "add_ops");
        add.perPe.merge(addPerPe_);
    }
    for (std::size_t u = 0; u < unitAccess_.size(); ++u) {
        if (!unitAccess_[u].touched)
            continue;
        unitAccess_[u].mergeInto(
            record.components[t_.units[u].component], "access_bytes");
    }
    for (std::size_t i = 0; i < inputRead_.size(); ++i) {
        if (inputRead_[i] != 0)
            record.traffic[t_.plan->inputs[i].name].readBytes +=
                inputRead_[i];
    }
    if (!t_.dramName.empty())
        dramRead_.mergeInto(record.components[t_.dramName],
                            "read_bytes");
}

} // namespace teaal::model
