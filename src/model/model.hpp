/**
 * @file
 * The per-Einsum performance model: consumes the executor's trace
 * events and produces per-component action counts and per-tensor DRAM
 * traffic (paper §4.3 "trace consumption").
 *
 * The model is split into two tiers along the order-dependence
 * boundary (see model/tables.hpp):
 *
 *   model/accumulator.hpp    ShardAccumulator — order-independent
 *                            datapath counters (compute, sequencer,
 *                            intersection, coordinate scans, streamed
 *                            accesses, per-PE loads). Mergeable;
 *                            sharded runs execute one per shard,
 *                            inside the shard, off the capture-mode
 *                            trace bus.
 *   model/storage_replay.hpp StorageReplay — order-dependent storage
 *                            simulation (buffets, shared LRU caches,
 *                            DRAM fills/drains, partial outputs).
 *                            Fed only in serial event order.
 *
 * ModelObserver is the thin façade composing both over one shared
 * ModelTables: on the serial path it routes every record to its tier
 * inline; on the sharded path the executor's capture filter consumes
 * the datapath records in-shard (ModelObserver::makeShardSinks) and
 * only the stateful remainder flows through the coordinator's
 * in-order replay into this observer. finalize() merges the shard
 * accumulators in shard-index order and assembles an EinsumRecord
 * byte-identical at every thread count (all model sums are dyadic
 * rationals — integers, halves, bits/8 — so accumulation order cannot
 * perturb them; only the storage tier's state genuinely needs the
 * serial order).
 *
 * Storage bindings route tensor accesses through buffet/cache
 * simulators; misses and drains charge the DRAM. Unbound tensors
 * stream: every logical access pays DRAM traffic (no on-chip reuse).
 * Datapath events (compute, co-iteration, merges) accumulate on the
 * bound functional components with per-PE counters so load imbalance
 * is captured.
 */
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "exec/executor.hpp"
#include "format/format.hpp"
#include "ir/plan.hpp"
#include "model/accumulator.hpp"
#include "model/record.hpp"
#include "model/storage_replay.hpp"
#include "model/tables.hpp"
#include "trace/observer.hpp"

namespace teaal::model
{

/**
 * Streaming trace consumer for one Einsum.
 *
 * Construct, pass to the Executor as the observer, run, then call
 * finalize() to harvest the EinsumRecord. For sharded runs, also hand
 * the executor the model hooks (classifier / coordinatorSink /
 * makeShardSinks) via exec::ExecOptions::modelHooks so the datapath
 * tier runs inside the shards.
 */
class ModelObserver : public trace::Observer
{
  public:
    /**
     * @param plan      The lowered Einsum (must outlive the observer).
     * @param topo      The architecture topology bound to this Einsum.
     * @param eb        Its binding.
     * @param formats   Format specification (concrete representations).
     * @param on_chip   Tensors that stay on chip (intermediates of a
     *                  fused block): their DRAM charges are skipped.
     */
    ModelObserver(const ir::EinsumPlan& plan, const arch::Topology& topo,
                  const binding::EinsumBinding& eb,
                  const fmt::FormatSpec& formats,
                  const std::set<std::string>& on_chip);

    /**
     * Batch entry point: consumes the engine's trace batches directly
     * (one virtual call per batch, non-virtual dispatch per record),
     * routing each record to its tier. Produces action counts
     * bit-identical to the per-event path.
     */
    void onEventBatch(const trace::EventBatch& batch) override;

    void onLoopEnter(std::size_t loop, ft::Coord c) override;
    void onCoIterate(std::size_t loop, std::size_t steps,
                     std::size_t matches, std::size_t drivers,
                     std::uint64_t pe) override;
    void onCoordScan(int input, std::size_t level, std::size_t count,
                     std::uint64_t pe) override;
    void onTensorAccess(int input, const std::string& tensor,
                        std::size_t level, ft::Coord c, const void* key,
                        const ft::Payload* payload,
                        std::uint64_t pe) override;
    void onOutputWrite(const std::string& tensor, std::size_t level,
                       ft::Coord c, std::uint64_t path_key, bool inserted,
                       bool at_leaf, std::uint64_t pe) override;
    void onCompute(char op, std::uint64_t pe, std::size_t count) override;
    void onSwizzle(const std::string& tensor, std::size_t elements,
                   std::size_t ways, bool online) override;
    void onTensorCopy(const std::string& from, const std::string& to,
                      std::size_t elements) override;

    /**
     * Drain remaining buffers, merge the shard accumulators (in
     * shard-index order, after the coordinator's own), and produce
     * the record.
     */
    EinsumRecord finalize(const exec::ExecutionStats& stats);

    // ------------------------------------------- sharded-model hooks
    // What exec::ExecOptions::modelHooks carries for a parallel run
    // with no extra trace observers attached.

    /** The record classifier for capture-filter routing. */
    const trace::RecordClassifier& classifier() const
    {
        return tables_.classifier;
    }

    /** Datapath sink for records the coordinator emits itself
     *  (live-executed shards, the top-walk summary). */
    trace::Observer& coordinatorSink() { return accum_; }

    /**
     * Create @p n per-shard accumulators (one per shard, addresses
     * stable) and return them as capture-filter sinks. Called once,
     * on the coordinating thread, before workers start; each sink is
     * then used by at most one thread.
     */
    std::vector<trace::Observer*> makeShardSinks(std::size_t n);

    /** The shared resolved tables (tests / tooling). */
    const ModelTables& tables() const { return tables_; }

  private:
    ModelTables tables_;
    ShardAccumulator accum_;
    StorageReplay replay_;
    std::deque<ShardAccumulator> shardAccums_;

    std::size_t traceEvents_ = 0;
    std::size_t traceBatches_ = 0;
};

} // namespace teaal::model
