/**
 * @file
 * The per-Einsum performance model: consumes the executor's trace
 * events and produces per-component action counts and per-tensor DRAM
 * traffic (paper §4.3 "trace consumption").
 *
 * Storage bindings route tensor accesses through buffet/cache
 * simulators; misses and drains charge the DRAM. Unbound tensors
 * stream: every logical access pays DRAM traffic (no on-chip reuse).
 * Datapath events (compute, co-iteration, merges) accumulate on the
 * bound functional components with per-PE counters so load imbalance
 * is captured.
 */
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "exec/executor.hpp"
#include "format/format.hpp"
#include "ir/plan.hpp"
#include "model/buffer_sim.hpp"
#include "trace/observer.hpp"

namespace teaal::storage
{
class PackedTensor;
} // namespace teaal::storage

namespace teaal::model
{

/** Action counts of one component during one Einsum. */
struct ComponentActions
{
    std::string name;
    arch::ComponentClass cls = arch::ComponentClass::Compute;
    long instances = 1;
    /// Named action counters (bytes, ops, steps, ...).
    std::map<std::string, double> counts;
    /// Per-PE cycle-equivalent load (datapath components).
    std::unordered_map<std::uint64_t, double> perPe;

    double maxPerPe() const;
    double count(const std::string& key) const;
    void add(const std::string& key, double v) { counts[key] += v; }
};

/** DRAM traffic attributed to one tensor. */
struct TensorTraffic
{
    double readBytes = 0;
    double writeBytes = 0;
    /// Partial-output traffic: re-reads + re-writes of evicted partial
    /// results (the "PO" bars of paper Figure 9).
    double poBytes = 0;

    double total() const { return readBytes + writeBytes; }
};

/** Everything the model learned about one Einsum's execution. */
struct EinsumRecord
{
    std::string output;
    std::string topologyName;
    double clock = 1e9;

    std::map<std::string, ComponentActions> components;
    std::map<std::string, TensorTraffic> traffic;

    exec::ExecutionStats execStats;

    /// Trace-bus diagnostics: logical events consumed and the batches
    /// that delivered them (events/batches = virtual-call reduction).
    std::size_t traceEvents = 0;
    std::size_t traceBatches = 0;

    // Fusion-relevant facts (paper §4.3).
    std::vector<std::string> loopOrder;
    std::vector<std::string> temporalPrefix;
    std::set<std::string> nonStorageComponents;
};

/**
 * Streaming trace consumer for one Einsum.
 *
 * Construct, pass to the Executor as the observer, run, then call
 * finalize() to harvest the EinsumRecord.
 */
class ModelObserver : public trace::Observer
{
  public:
    /**
     * @param plan      The lowered Einsum (must outlive the observer).
     * @param topo      The architecture topology bound to this Einsum.
     * @param eb        Its binding.
     * @param formats   Format specification (concrete representations).
     * @param on_chip   Tensors that stay on chip (intermediates of a
     *                  fused block): their DRAM charges are skipped.
     */
    ModelObserver(const ir::EinsumPlan& plan, const arch::Topology& topo,
                  const binding::EinsumBinding& eb,
                  const fmt::FormatSpec& formats,
                  const std::set<std::string>& on_chip);

    /**
     * Batch entry point: consumes the engine's trace batches directly
     * (one virtual call per batch, non-virtual dispatch per record),
     * producing action counts bit-identical to the per-event path.
     */
    void onEventBatch(const trace::EventBatch& batch) override;

    void onLoopEnter(std::size_t loop, ft::Coord c) override;
    void onCoIterate(std::size_t loop, std::size_t steps,
                     std::size_t matches, std::size_t drivers,
                     std::uint64_t pe) override;
    void onCoordScan(int input, std::size_t level, std::size_t count,
                     std::uint64_t pe) override;
    void onTensorAccess(int input, const std::string& tensor,
                        std::size_t level, ft::Coord c, const void* key,
                        const ft::Payload* payload,
                        std::uint64_t pe) override;
    void onOutputWrite(const std::string& tensor, std::size_t level,
                       ft::Coord c, std::uint64_t path_key, bool inserted,
                       bool at_leaf, std::uint64_t pe) override;
    void onCompute(char op, std::uint64_t pe, std::size_t count) override;
    void onSwizzle(const std::string& tensor, std::size_t elements,
                   std::size_t ways, bool online) override;
    void onTensorCopy(const std::string& from, const std::string& to,
                      std::size_t elements) override;

    /** Drain remaining buffers and produce the record. */
    EinsumRecord finalize(const exec::ExecutionStats& stats);

  private:
    /** One bound storage simulator. */
    struct StorageUnit
    {
        std::string component;
        bool isCache = false;
        /// Caches are shared per component: all tensors bound to one
        /// cache contend for its capacity.
        LruCache* cache = nullptr;
        Buffet buffet;
        binding::StorageBinding sb;
        const fmt::TensorFormat* format = nullptr;
        int input = -1;          // -1 for the output tensor
        int boundLevel = -1;     // prepared/production level
        int evictLoop = -1;      // loop index that drains the buffet
        bool eager = false;
        std::string tensor;
    };

    /** Per-level routing for one input tensor. */
    struct LevelRoute
    {
        double coordBytes = 4;
        double payloadBytes = 4;
        int unit = -1;       // StorageUnit index handling this level
        bool absorbed = false; // covered by an eager unit above
    };

    ComponentActions& component(const std::string& name);
    void chargeDram(const std::string& tensor, double bytes, bool write,
                    bool partial = false);
    double subtreeBytes(const StorageUnit& unit, bool interleaved,
                        const ft::Payload* payload, std::size_t level,
                        const std::vector<std::string>& rank_ids);

    /** Packed-input analog of subtreeBytes: same bytes, computed off
     *  the packed segment arrays (storage/packed.hpp). */
    double packedSubtreeBytes(const StorageUnit& unit, bool interleaved,
                              const storage::PackedTensor* packed,
                              std::size_t level, std::size_t pos,
                              const void* key);

    /** Shared body of the streaming and batch TensorAccess paths;
     *  exactly one of @p payload / @p packed is set. */
    void onTensorAccessImpl(int input, std::size_t level, ft::Coord c,
                            const void* key, const ft::Payload* payload,
                            const void* packed, std::size_t pos,
                            std::uint64_t pe);

    const ir::EinsumPlan& plan_;
    const arch::Topology& topo_;
    const fmt::FormatSpec& formats_;
    std::set<std::string> onChip_;

    EinsumRecord record_;

    std::vector<StorageUnit> storage_;
    std::map<std::string, std::unique_ptr<LruCache>> componentCaches_;
    std::vector<std::vector<LevelRoute>> routes_; // per input, per level
    std::vector<std::vector<const void*>> pathKey_;
    // Output routing.
    int outUnit_ = -1;
    double outLeafBytes_ = 8;
    /// DRAM transaction bytes for interleaved (linked-list) layouts:
    /// pointer chasing pays line granularity per element.
    double outLineBytes_ = 0;
    FlatMap64<int> outWritten_;

    // Functional component names (resolved once).
    std::string dramName_;
    std::string seqName_;
    std::string isectName_;
    std::string isectType_;
    std::string mergerName_;
    long mergerRadix_ = 2;
    std::string mulName_;
    std::string addName_;

    // Hot-path caches (stable: record_.components is pre-populated and
    // std::map nodes never move).
    ComponentActions* dramComp_ = nullptr;
    ComponentActions* seqComp_ = nullptr;
    ComponentActions* isectComp_ = nullptr;
    ComponentActions* mulComp_ = nullptr;
    ComponentActions* addComp_ = nullptr;
    std::vector<TensorTraffic*> inputTraffic_; // per input slot
    TensorTraffic* outTraffic_ = nullptr;

    /**
     * Per-event counter slots, resolved lazily on first add (so no
     * zero-valued counter rows appear that the streaming path would
     * not have created): one string-keyed map lookup total per
     * counter instead of one per trace event. std::map nodes are
     * address-stable, so the cached pointers stay valid.
     */
    void
    addCount(double*& slot, ComponentActions* ca, const char* key,
             double v)
    {
        if (slot == nullptr) {
            if (ca == nullptr)
                return;
            slot = &ca->counts[key];
        }
        *slot += v;
    }

    double* dramReadBytes_ = nullptr;
    double* dramWriteBytes_ = nullptr;
    double* seqSteps_ = nullptr;
    double* isectSteps_ = nullptr;
    double* isectMatches_ = nullptr;
    double* isectCycles_ = nullptr;
    double* mulOps_ = nullptr;
    double* addOps_ = nullptr;
    std::vector<double*> unitAccessBytes_; // parallel to storage_
    std::vector<double*> unitFillBytes_;
    std::vector<double*> unitDrainBytes_;
    std::vector<ComponentActions*> unitComp_;
    /// DRAM traffic rows per consumer, nullptr when the tensor stays
    /// on chip (fused intermediates) — replaces the per-event
    /// onChip_.count + traffic map lookup.
    std::vector<TensorTraffic*> inputTrafficOrNull_;
    std::vector<TensorTraffic*> unitTrafficOrNull_;
    TensorTraffic* outTrafficOrNull_ = nullptr;

    /** chargeDram with the traffic row pre-resolved (null = on-chip:
     *  no DRAM charge at all, matching the name-based overload). */
    void
    chargeDramTo(TensorTraffic* tt, double bytes, bool write,
                 bool partial = false)
    {
        if (tt == nullptr)
            return;
        if (write) {
            tt->writeBytes += bytes;
            addCount(dramWriteBytes_, dramComp_, "write_bytes", bytes);
        } else {
            tt->readBytes += bytes;
            addCount(dramReadBytes_, dramComp_, "read_bytes", bytes);
        }
        if (partial)
            tt->poBytes += bytes;
    }

    // Subtree footprint memoization (bytes incl. any transaction
    // granularity penalty for interleaved layouts).
    std::unordered_map<const void*, double> subtreeBytesCache_;
    std::vector<bool> unitInterleaved_; // parallel to storage_
};

} // namespace teaal::model
