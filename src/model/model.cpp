#include "model/model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "storage/packed.hpp"
#include "trace/batch.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace teaal::model
{

namespace
{

/** Strip trailing digits: K0 -> K. */
std::string
stripDigits(const std::string& rank)
{
    std::string base = rank;
    while (!base.empty() &&
           std::isdigit(static_cast<unsigned char>(base.back()))) {
        base.pop_back();
    }
    return base;
}

/**
 * Tolerant binding-rank resolution against a list of (possibly
 * partitioned/flattened) rank ids. Exact match wins, then base match,
 * then flattened-constituent match.
 */
int
resolveRankLevel(const std::vector<ft::RankInfo>& ranks,
                 const std::string& rank)
{
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        if (ranks[i].id == rank)
            return static_cast<int>(i);
    }
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        if (stripDigits(ranks[i].id) == rank ||
            ranks[i].id == stripDigits(rank))
            return static_cast<int>(i);
    }
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        const auto& flat = ranks[i].flatIds;
        if (std::find(flat.begin(), flat.end(), rank) != flat.end())
            return static_cast<int>(i);
    }
    return -1;
}

std::uint64_t
keyHash(const void* key)
{
    return reinterpret_cast<std::uint64_t>(key);
}

/**
 * Map a (possibly sparse, mixed-radix) logical PE id onto a physical
 * instance. When the id already fits the instance count this is the
 * identity (static placement); larger/sparse id spaces are spread by
 * a mixing hash, modeling the dynamic work distribution real designs
 * use to balance irregular task sizes.
 */
std::uint64_t
peSlot(const ComponentActions& ca, std::uint64_t pe)
{
    const auto n = static_cast<std::uint64_t>(ca.instances);
    if (n == 0)
        return pe;
    if (pe < n)
        return pe;
    std::uint64_t state = pe;
    return splitMix64(state) % n;
}

/// DRAM transaction granularity paid per element when chasing
/// interleaved (array-of-structs / linked-list) layouts; partial
/// write-combining makes this less than a full 64B line.
constexpr double kInterleavedTransactionBytes = 32.0;

} // namespace

double
ComponentActions::maxPerPe() const
{
    double best = 0;
    for (const auto& [pe, v] : perPe)
        best = std::max(best, v);
    return best;
}

double
ComponentActions::count(const std::string& key) const
{
    const auto it = counts.find(key);
    return it == counts.end() ? 0.0 : it->second;
}

ModelObserver::ModelObserver(const ir::EinsumPlan& plan,
                             const arch::Topology& topo,
                             const binding::EinsumBinding& eb,
                             const fmt::FormatSpec& formats,
                             const std::set<std::string>& on_chip)
    : plan_(plan), topo_(topo), formats_(formats), onChip_(on_chip)
{
    record_.output = plan.expr.output.name;
    record_.topologyName = topo.name;
    record_.clock = topo.clock;
    for (const ir::LoopRank& lr : plan.loops) {
        record_.loopOrder.push_back(lr.name);
        if (lr.isSpace)
            break;
        record_.temporalPrefix.push_back(lr.name);
    }

    // ------------------------- resolve the functional components
    for (const auto& [comp, instances] : topo.allComponents()) {
        switch (comp->cls) {
          case arch::ComponentClass::DRAM:
            if (dramName_.empty())
                dramName_ = comp->name;
            break;
          case arch::ComponentClass::Sequencer:
            if (seqName_.empty())
                seqName_ = comp->name;
            break;
          case arch::ComponentClass::Intersection:
            if (isectName_.empty()) {
                isectName_ = comp->name;
                isectType_ = comp->attrString("type", "two-finger");
            }
            break;
          case arch::ComponentClass::Merger:
            if (mergerName_.empty()) {
                mergerName_ = comp->name;
                mergerRadix_ =
                    std::max(2L, comp->attrLong("comparator_radix", 2));
            }
            break;
          case arch::ComponentClass::Compute: {
            const std::string type = comp->attrString("type", "mul");
            if (type == "mul" && mulName_.empty())
                mulName_ = comp->name;
            if (type == "add" && addName_.empty())
                addName_ = comp->name;
            break;
          }
          case arch::ComponentClass::Buffer:
            break;
        }
        (void)instances;
    }
    // Compute fallbacks: a mul-only datapath still executes adds.
    if (mulName_.empty())
        mulName_ = addName_;
    if (addName_.empty())
        addName_ = mulName_;

    // Op bindings override the defaults.
    for (const binding::ComponentBinding& cb : eb.components) {
        for (const binding::OpBinding& op : cb.ops) {
            if (op.op == "mul")
                mulName_ = cb.component;
            else if (op.op == "add")
                addName_ = cb.component;
            else if (op.op == "intersect")
                isectName_ = cb.component;
            else if (op.op == "merge" || op.op == "sort")
                mergerName_ = cb.component;
            else if (op.op == "seq")
                seqName_ = cb.component;
            record_.nonStorageComponents.insert(cb.component);
        }
    }

    // Pre-create component records with instance counts.
    auto ensure = [this](const std::string& name) {
        if (name.empty())
            return;
        long instances = 1;
        const arch::Component* comp =
            topo_.findComponent(name, &instances);
        ComponentActions& ca = record_.components[name];
        ca.name = name;
        ca.instances = instances;
        if (comp != nullptr)
            ca.cls = comp->cls;
    };
    ensure(dramName_);
    ensure(seqName_);
    ensure(isectName_);
    ensure(mergerName_);
    ensure(mulName_);
    ensure(addName_);
    auto comp_ptr = [this](const std::string& name) {
        return name.empty() ? nullptr : &record_.components[name];
    };
    dramComp_ = comp_ptr(dramName_);
    seqComp_ = comp_ptr(seqName_);
    isectComp_ = comp_ptr(isectName_);
    mulComp_ = comp_ptr(mulName_);
    addComp_ = comp_ptr(addName_);
    for (const ir::TensorPlan& tp : plan.inputs)
        inputTraffic_.push_back(&record_.traffic[tp.name]);
    outTraffic_ = &record_.traffic[plan.output.name];
    // Pre-populating the traffic map inserts zero rows; they are
    // harmless (the benches skip zero-traffic tensors).

    // ------------------------------------ storage units and routes
    routes_.resize(plan.inputs.size());
    pathKey_.resize(plan.inputs.size());

    for (const binding::ComponentBinding& cb : eb.components) {
        long instances = 1;
        const arch::Component* comp =
            topo.findComponent(cb.component, &instances);
        if (comp == nullptr) {
            if (!cb.storage.empty())
                specError("binding references unknown component '",
                          cb.component, "'");
            continue;
        }
        if (comp->cls != arch::ComponentClass::Buffer)
            continue;
        ComponentActions& ca = record_.components[cb.component];
        ca.name = cb.component;
        ca.instances = instances;
        ca.cls = comp->cls;

        for (const binding::StorageBinding& sb : cb.storage) {
            StorageUnit unit;
            unit.component = cb.component;
            unit.sb = sb;
            unit.tensor = sb.tensor;
            unit.eager = sb.style == binding::Style::Eager;
            unit.isCache = comp->attrString("type", "buffet") == "cache";
            // Output partials always use buffet (drain) semantics,
            // even when held in a cache-type component: eviction of a
            // partial result writes it back.
            if (sb.tensor == plan.output.name)
                unit.isCache = false;
            if (unit.isCache) {
                auto& shared = componentCaches_[cb.component];
                if (shared == nullptr) {
                    double bytes = comp->attrDouble("size", 0);
                    if (bytes == 0) {
                        bytes = comp->attrDouble("width", 64) *
                                comp->attrDouble("depth", 1024) / 8.0;
                    }
                    // Replicated caches are simulated as one pool of
                    // the aggregate capacity.
                    shared = std::make_unique<LruCache>(
                        bytes * static_cast<double>(instances));
                }
                unit.cache = shared.get();
            }
            unit.format = sb.config.empty()
                              ? &formats_.getLenient(sb.tensor)
                              : &formats_.get(sb.tensor, sb.config);

            // Locate the tensor.
            if (sb.tensor == plan.output.name) {
                unit.input = -1;
                if (!plan.output.productionOrder.empty() &&
                    !sb.rank.empty()) {
                    std::vector<ft::RankInfo> ranks;
                    for (std::size_t i = 0;
                         i < plan.output.productionOrder.size(); ++i) {
                        ranks.push_back(
                            {plan.output.productionOrder[i],
                             plan.output.shapes[i],
                             {},
                             {}});
                    }
                    unit.boundLevel =
                        resolveRankLevel(ranks, sb.rank);
                }
            } else {
                for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
                    if (plan.inputs[i].name == sb.tensor)
                        unit.input = static_cast<int>(i);
                }
                if (unit.input < 0)
                    continue; // tensor not used by this Einsum
                if (!sb.rank.empty()) {
                    unit.boundLevel = resolveRankLevel(
                        plan.inputs[static_cast<std::size_t>(unit.input)]
                            .prepared.ranks(),
                        sb.rank);
                }
                if (unit.boundLevel < 0)
                    unit.boundLevel = 0;
            }
            if (!sb.evictOn.empty()) {
                for (std::size_t l = 0; l < plan.loops.size(); ++l) {
                    if (plan.loops[l].name == sb.evictOn ||
                        stripDigits(plan.loops[l].name) == sb.evictOn)
                        unit.evictLoop = static_cast<int>(l);
                }
            }
            if (unit.input < 0 && sb.tensor == plan.output.name)
                outUnit_ = static_cast<int>(storage_.size());
            // Linked-list style layouts pay DRAM transaction
            // granularity per element when chased.
            bool interleaved = false;
            for (const auto& [rid, rf] : unit.format->ranks) {
                (void)rid;
                if (rf.layout == fmt::RankFormat::Layout::Interleaved)
                    interleaved = true;
            }
            unitInterleaved_.push_back(interleaved);
            storage_.push_back(std::move(unit));
        }
    }

    // Routes: per input, per level, pick the deepest covering unit.
    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        const ir::TensorPlan& tp = plan.inputs[i];
        const fmt::TensorFormat& tf = formats_.getLenient(tp.name);
        const std::size_t nr = tp.prepared.numRanks();
        routes_[i].resize(nr);
        pathKey_[i].assign(nr, nullptr);
        for (std::size_t lvl = 0; lvl < nr; ++lvl) {
            LevelRoute& r = routes_[i][lvl];
            const fmt::RankFormat& rf =
                tf.rankFormat(tp.prepared.rank(lvl).id);
            r.coordBytes = rf.coordBits() / 8.0;
            r.payloadBytes =
                rf.payloadBits(lvl + 1 == nr) / 8.0;
            int best = -1;
            for (std::size_t u = 0; u < storage_.size(); ++u) {
                const StorageUnit& unit = storage_[u];
                if (unit.input != static_cast<int>(i))
                    continue;
                if (unit.boundLevel <= static_cast<int>(lvl) &&
                    (best < 0 ||
                     unit.boundLevel > storage_[static_cast<std::size_t>(
                                           best)].boundLevel)) {
                    best = static_cast<int>(u);
                }
            }
            r.unit = best;
            r.absorbed =
                best >= 0 &&
                storage_[static_cast<std::size_t>(best)].eager &&
                storage_[static_cast<std::size_t>(best)].boundLevel <
                    static_cast<int>(lvl);
        }
    }

    // Output leaf element size.
    {
        const fmt::TensorFormat& tf =
            formats_.getLenient(plan.output.name);
        const std::string leaf_rank =
            plan.output.productionOrder.empty()
                ? std::string("_S")
                : plan.output.productionOrder.back();
        const fmt::RankFormat& rf = tf.rankFormat(leaf_rank);
        outLeafBytes_ = (rf.coordBits() + rf.payloadBits(true) +
                         rf.headerBits()) /
                        8.0;
        if (rf.layout == fmt::RankFormat::Layout::Interleaved) {
            // Each linked-list append is its own DRAM transaction.
            outLineBytes_ =
                std::max(outLeafBytes_, kInterleavedTransactionBytes);
        }
    }

    // --------------------------------------- per-event slot caches
    // Traffic rows for inputs/output/units were pre-created above, so
    // resolving them here adds no new (zero) rows; counter slots stay
    // null until first use (addCount) for the same reason.
    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        inputTrafficOrNull_.push_back(
            onChip_.count(plan.inputs[i].name) ? nullptr
                                               : inputTraffic_[i]);
    }
    outTrafficOrNull_ =
        onChip_.count(plan.output.name) ? nullptr : outTraffic_;
    for (const StorageUnit& unit : storage_) {
        unitComp_.push_back(&record_.components[unit.component]);
        unitAccessBytes_.push_back(nullptr);
        unitFillBytes_.push_back(nullptr);
        unitDrainBytes_.push_back(nullptr);
        unitTrafficOrNull_.push_back(
            onChip_.count(unit.tensor)
                ? nullptr
                : &record_.traffic[unit.tensor]);
    }
}

ComponentActions&
ModelObserver::component(const std::string& name)
{
    ComponentActions& ca = record_.components[name];
    if (ca.name.empty()) {
        ca.name = name;
        long instances = 1;
        const arch::Component* comp =
            topo_.findComponent(name, &instances);
        ca.instances = instances;
        if (comp)
            ca.cls = comp->cls;
    }
    return ca;
}

void
ModelObserver::chargeDram(const std::string& tensor, double bytes,
                          bool write, bool partial)
{
    if (onChip_.count(tensor))
        return;
    chargeDramTo(&record_.traffic[tensor], bytes, write, partial);
}

double
ModelObserver::subtreeBytes(const StorageUnit& unit, bool interleaved,
                            const ft::Payload* payload, std::size_t level,
                            const std::vector<std::string>& rank_ids)
{
    const void* key = payload;
    const auto it = subtreeBytesCache_.find(key);
    if (it != subtreeBytesCache_.end())
        return it->second;
    double bytes =
        static_cast<double>(fmt::subtreeBits(*unit.format, rank_ids,
                                             *payload, level + 1)) /
        8.0;
    // Interleaved (array-of-structs / linked-list) layouts are chased
    // element by element: each leaf pays a 64B DRAM transaction.
    if (interleaved && payload->isFiber() && payload->fiber()) {
        bytes = std::max(bytes,
                         kInterleavedTransactionBytes *
                             static_cast<double>(
                                 payload->fiber()->leafCount()));
    }
    subtreeBytesCache_[key] = bytes;
    return bytes;
}

double
ModelObserver::packedSubtreeBytes(const StorageUnit& unit,
                                  bool interleaved,
                                  const storage::PackedTensor* packed,
                                  std::size_t level, std::size_t pos,
                                  const void* key)
{
    const auto it = subtreeBytesCache_.find(key);
    if (it != subtreeBytesCache_.end())
        return it->second;
    double bytes =
        static_cast<double>(packed->subtreeBits(*unit.format, level,
                                                pos)) /
        8.0;
    if (interleaved && level + 1 < packed->numRanks()) {
        bytes = std::max(bytes,
                         kInterleavedTransactionBytes *
                             static_cast<double>(
                                 packed->leafCountBelow(level, pos)));
    }
    subtreeBytesCache_[key] = bytes;
    return bytes;
}

void
ModelObserver::onEventBatch(const trace::EventBatch& batch)
{
    // One virtual call per batch; per-record dispatch below is
    // statically qualified, so the hot path pays no per-event virtual
    // calls. Record order is preserved, making every count (cache
    // hits included) bit-identical to the streaming path.
    ++record_.traceBatches;
    record_.traceEvents += batch.events.size();
    using trace::Event;
    for (const Event& e : batch.events) {
        switch (e.kind) {
          case Event::Kind::LoopEnter:
            ModelObserver::onLoopEnter(e.loop, e.coord);
            break;
          case Event::Kind::CoIterate:
            ModelObserver::onCoIterate(e.loop, e.a, e.b, e.c, e.pe);
            break;
          case Event::Kind::CoordScan:
            ModelObserver::onCoordScan(e.input, e.level, e.a, e.pe);
            break;
          case Event::Kind::TensorAccess:
            onTensorAccessImpl(e.input, e.level, e.coord, e.ptr,
                               e.payload, e.packed, e.a, e.pe);
            break;
          case Event::Kind::OutputWrite:
            ModelObserver::onOutputWrite(*e.name, e.level, e.coord,
                                         e.key, e.flagA, e.flagB, e.pe);
            break;
          case Event::Kind::Compute:
            ModelObserver::onCompute(e.op, e.pe, e.a);
            break;
          case Event::Kind::Swizzle:
            ModelObserver::onSwizzle(*e.name, e.a, e.b, e.flagA);
            break;
          case Event::Kind::TensorCopy:
            ModelObserver::onTensorCopy(*e.name, *e.name2, e.a);
            break;
        }
    }
}

void
ModelObserver::onLoopEnter(std::size_t loop, ft::Coord c)
{
    (void)c;
    for (std::size_t u = 0; u < storage_.size(); ++u) {
        StorageUnit& unit = storage_[u];
        if (unit.evictLoop != static_cast<int>(loop) || unit.isCache)
            continue;
        const Buffet::DrainResult drained = unit.buffet.evictAll();
        const double total = drained.firstBytes + drained.againBytes;
        if (total > 0) {
            chargeDramTo(unitTrafficOrNull_[u], drained.firstBytes,
                         true, false);
            chargeDramTo(unitTrafficOrNull_[u], drained.againBytes,
                         true, true);
            addCount(unitDrainBytes_[u], unitComp_[u], "drain_bytes",
                     total);
        }
    }
}

void
ModelObserver::onCoIterate(std::size_t loop, std::size_t steps,
                           std::size_t matches, std::size_t drivers,
                           std::uint64_t pe)
{
    (void)loop;
    if (seqComp_ != nullptr) {
        // The sequencer walks fibers at one element per cycle.
        ComponentActions& seq = *seqComp_;
        addCount(seqSteps_, seqComp_, "steps",
                 static_cast<double>(steps));
        seq.perPe[peSlot(seq, pe)] += static_cast<double>(steps);
    }
    if (drivers >= 2 && !plan_.unionCombine && isectComp_ != nullptr) {
        ComponentActions& isect = *isectComp_;
        addCount(isectSteps_, isectComp_, "steps",
                 static_cast<double>(steps));
        addCount(isectMatches_, isectComp_, "matches",
                 static_cast<double>(matches));
        const double skips = static_cast<double>(steps - matches);
        double cycles;
        if (isectType_ == "skip-ahead") {
            // Hegde et al.'s unit fast-forwards through non-matching
            // runs at ~2 elements/cycle.
            cycles = static_cast<double>(matches) + skips / 2.0;
        } else if (isectType_ == "leader-follower") {
            // Only the leader's elements are examined.
            cycles = static_cast<double>(steps) / 2.0 +
                     static_cast<double>(matches) / 2.0;
        } else { // two-finger
            cycles = static_cast<double>(steps);
        }
        addCount(isectCycles_, isectComp_, "cycles", cycles);
        isect.perPe[peSlot(isect, pe)] += cycles;
    }
}

void
ModelObserver::onCoordScan(int input, std::size_t level,
                           std::size_t count, std::uint64_t pe)
{
    (void)pe;
    if (input < 0 || count == 0)
        return;
    const LevelRoute& r = routes_[static_cast<std::size_t>(input)][level];
    const double bytes = r.coordBytes * static_cast<double>(count);
    if (bytes <= 0)
        return;
    if (r.unit >= 0) {
        const std::size_t u = static_cast<std::size_t>(r.unit);
        const StorageUnit& unit = storage_[u];
        if (unit.isCache || !r.absorbed)
            addCount(unitAccessBytes_[u], unitComp_[u], "access_bytes",
                     bytes);
        if (!r.absorbed && !unit.eager) {
            // Lazily bound coordinates stream through the buffer.
            chargeDramTo(
                inputTrafficOrNull_[static_cast<std::size_t>(input)],
                bytes, false);
        }
    } else {
        chargeDramTo(
            inputTrafficOrNull_[static_cast<std::size_t>(input)],
            bytes, false);
    }
}

void
ModelObserver::onTensorAccess(int input, const std::string& tensor,
                              std::size_t level, ft::Coord c,
                              const void* key, const ft::Payload* payload,
                              std::uint64_t pe)
{
    (void)tensor;
    onTensorAccessImpl(input, level, c, key, payload, nullptr, 0, pe);
}

void
ModelObserver::onTensorAccessImpl(int input, std::size_t level,
                                  ft::Coord c, const void* key,
                                  const ft::Payload* payload,
                                  const void* packed, std::size_t pos,
                                  std::uint64_t pe)
{
    (void)c;
    (void)pe;
    if (input < 0)
        return;
    pathKey_[static_cast<std::size_t>(input)][level] = key;
    const LevelRoute& r = routes_[static_cast<std::size_t>(input)][level];
    if (r.unit < 0) {
        chargeDramTo(
            inputTrafficOrNull_[static_cast<std::size_t>(input)],
            r.payloadBytes, false);
        return;
    }
    const std::size_t u = static_cast<std::size_t>(r.unit);
    StorageUnit& unit = storage_[u];
    if (r.absorbed) {
        // Covered by an eager fill above: on-chip hit. Caches pay a
        // port access per use; explicitly orchestrated buffets feed
        // registers/multicast networks, so re-uses are free.
        if (unit.isCache)
            addCount(unitAccessBytes_[u], unitComp_[u], "access_bytes",
                     r.payloadBytes);
        return;
    }
    double bytes = r.payloadBytes;
    if (unit.eager && unit.boundLevel == static_cast<int>(level)) {
        const bool interleaved = unitInterleaved_[u];
        if (payload != nullptr) {
            const ir::TensorPlan& tp =
                plan_.inputs[static_cast<std::size_t>(input)];
            bytes = subtreeBytes(unit, interleaved, payload, level,
                                 tp.prepared.rankIds());
        } else if (packed != nullptr) {
            bytes = packedSubtreeBytes(
                unit, interleaved,
                static_cast<const storage::PackedTensor*>(packed),
                level, pos, key);
        }
        // Neither set (a packed access replayed through the bare
        // streaming interface): fall back to the per-payload width —
        // batch delivery, which the pipeline always uses, carries the
        // packed context and charges the exact subtree.
    }
    bool hit;
    if (unit.isCache)
        hit = unit.cache->access(key, bytes);
    else
        hit = unit.buffet.read(keyHash(key), bytes);
    addCount(unitAccessBytes_[u], unitComp_[u], "access_bytes", bytes);
    if (!hit) {
        addCount(unitFillBytes_[u], unitComp_[u], "fill_bytes", bytes);
        chargeDramTo(
            inputTrafficOrNull_[static_cast<std::size_t>(input)],
            bytes, false);
    }
}

void
ModelObserver::onOutputWrite(const std::string& tensor, std::size_t level,
                             ft::Coord c, std::uint64_t path_key,
                             bool inserted, bool at_leaf, std::uint64_t pe)
{
    (void)level;
    (void)c;
    (void)inserted;
    (void)pe;
    if (!at_leaf)
        return;
    (void)tensor;
    const double bytes = outLeafBytes_;
    if (outUnit_ >= 0) {
        const std::size_t u = static_cast<std::size_t>(outUnit_);
        StorageUnit& unit = storage_[u];
        const double resident_before = unit.buffet.residentBytes();
        const bool revisit = unit.buffet.write(path_key, bytes);
        // Repeat writes to a resident partial accumulate in
        // registers/adder trees; the buffer port is paid on
        // allocation (and again at drain).
        if (unit.buffet.residentBytes() != resident_before)
            addCount(unitAccessBytes_[u], unitComp_[u], "access_bytes",
                     bytes);
        if (revisit) {
            // Partial result re-fetched from DRAM.
            chargeDramTo(outTrafficOrNull_, bytes, false, true);
        }
        return;
    }
    // Streaming output: every write goes to memory; revisits are
    // partial-output read-modify-writes.
    const double dram_bytes =
        outLineBytes_ > 0 ? outLineBytes_ : bytes;
    auto [count, first] = outWritten_.tryEmplace(path_key, 0);
    ++*count;
    if (first) {
        chargeDramTo(outTrafficOrNull_, dram_bytes, true, false);
    } else {
        chargeDramTo(outTrafficOrNull_, dram_bytes, false, true);
        chargeDramTo(outTrafficOrNull_, dram_bytes, true, true);
    }
}

void
ModelObserver::onCompute(char op, std::uint64_t pe, std::size_t count)
{
    ComponentActions* ca = op == 'm' ? mulComp_ : addComp_;
    if (ca == nullptr)
        return;
    if (op == 'm')
        addCount(mulOps_, ca, "mul_ops", static_cast<double>(count));
    else
        addCount(addOps_, ca, "add_ops", static_cast<double>(count));
    ca->perPe[peSlot(*ca, pe)] += static_cast<double>(count);
}

void
ModelObserver::onSwizzle(const std::string& tensor, std::size_t elements,
                         std::size_t ways, bool online)
{
    if (!online)
        return;
    if (mergerName_.empty()) {
        // No merger hardware: the swizzle still happens (e.g. via
        // memory round trips); charge the sequencer.
        if (!seqName_.empty())
            component(seqName_).add("swizzle_elems",
                                    static_cast<double>(elements));
        return;
    }
    const double passes = std::max(
        1.0, std::ceil(std::log(static_cast<double>(std::max<std::size_t>(
                           ways, 2))) /
                       std::log(static_cast<double>(mergerRadix_))));
    ComponentActions& merger = component(mergerName_);
    merger.add("merge_elems", static_cast<double>(elements) * passes);
    merger.add("swizzles", 1);
    (void)tensor;
}

void
ModelObserver::onTensorCopy(const std::string& from, const std::string& to,
                            std::size_t elements)
{
    const fmt::TensorFormat& tf = formats_.getLenient(from);
    fmt::RankFormat leaf; // default compressed
    const double bytes =
        static_cast<double>(elements) *
        (tf.rankFormat("_leaf").coordBits() + leaf.payloadBits(true)) /
        8.0;
    chargeDram(from, bytes, false);
    chargeDram(to, bytes, true);
}

EinsumRecord
ModelObserver::finalize(const exec::ExecutionStats& stats)
{
    // Drain every output buffet.
    for (StorageUnit& unit : storage_) {
        if (unit.isCache)
            continue;
        const Buffet::DrainResult drained = unit.buffet.evictAll();
        const double total = drained.firstBytes + drained.againBytes;
        if (total > 0) {
            chargeDram(unit.tensor, drained.firstBytes, true, false);
            chargeDram(unit.tensor, drained.againBytes, true, true);
            component(unit.component).add("drain_bytes", total);
        }
    }
    record_.execStats = stats;
    return std::move(record_);
}

} // namespace teaal::model
