#include "model/model.hpp"

#include "trace/batch.hpp"

namespace teaal::model
{

ModelObserver::ModelObserver(const ir::EinsumPlan& plan,
                             const arch::Topology& topo,
                             const binding::EinsumBinding& eb,
                             const fmt::FormatSpec& formats,
                             const std::set<std::string>& on_chip)
    : tables_(ModelTables::build(plan, topo, eb, formats, on_chip)),
      accum_(tables_), replay_(tables_)
{
}

void
ModelObserver::onEventBatch(const trace::EventBatch& batch)
{
    // One virtual call per batch; per-record routing below is
    // non-virtual. Record order is preserved within each tier, and
    // the datapath tier is order-free, so every count (cache hits
    // included) is bit-identical to the streaming path.
    ++traceBatches_;
    traceEvents_ += batch.events.size();
    using trace::Event;
    const trace::RecordClassifier& cls = tables_.classifier;
    for (const Event& e : batch.events) {
        switch (e.kind) {
          case Event::Kind::LoopEnter:
            if (cls.loopStateful(e.loop))
                replay_.loopEnter(e.loop);
            break;
          case Event::Kind::CoIterate:
            accum_.coIterate(e.a, e.b, e.c, e.pe);
            break;
          case Event::Kind::CoordScan:
            accum_.coordScan(e.input, e.level, e.a);
            break;
          case Event::Kind::TensorAccess:
            if (cls.accessStateful(e.input, e.level))
                replay_.tensorAccess(e.input, e.level, e.ptr,
                                     e.payload, e.packed, e.a);
            else
                accum_.tensorAccess(e.input, e.level);
            break;
          case Event::Kind::OutputWrite:
            replay_.outputWrite(e.key, e.flagB);
            break;
          case Event::Kind::Compute:
            accum_.compute(e.op, e.pe, e.a);
            break;
          case Event::Kind::Swizzle:
            replay_.swizzle(e.a, e.b, e.flagA);
            break;
          case Event::Kind::TensorCopy:
            replay_.tensorCopy(*e.name, *e.name2, e.a);
            break;
        }
    }
}

void
ModelObserver::onLoopEnter(std::size_t loop, ft::Coord c)
{
    (void)c;
    if (tables_.classifier.loopStateful(loop))
        replay_.loopEnter(loop);
}

void
ModelObserver::onCoIterate(std::size_t loop, std::size_t steps,
                           std::size_t matches, std::size_t drivers,
                           std::uint64_t pe)
{
    (void)loop;
    accum_.coIterate(steps, matches, drivers, pe);
}

void
ModelObserver::onCoordScan(int input, std::size_t level,
                           std::size_t count, std::uint64_t pe)
{
    (void)pe;
    accum_.coordScan(input, level, count);
}

void
ModelObserver::onTensorAccess(int input, const std::string& tensor,
                              std::size_t level, ft::Coord c,
                              const void* key, const ft::Payload* payload,
                              std::uint64_t pe)
{
    (void)tensor;
    (void)c;
    (void)pe;
    if (tables_.classifier.accessStateful(input, level))
        replay_.tensorAccess(input, level, key, payload, nullptr, 0);
    else
        accum_.tensorAccess(input, level);
}

void
ModelObserver::onOutputWrite(const std::string& tensor, std::size_t level,
                             ft::Coord c, std::uint64_t path_key,
                             bool inserted, bool at_leaf, std::uint64_t pe)
{
    (void)tensor;
    (void)level;
    (void)c;
    (void)inserted;
    (void)pe;
    replay_.outputWrite(path_key, at_leaf);
}

void
ModelObserver::onCompute(char op, std::uint64_t pe, std::size_t count)
{
    accum_.compute(op, pe, count);
}

void
ModelObserver::onSwizzle(const std::string& tensor, std::size_t elements,
                         std::size_t ways, bool online)
{
    (void)tensor;
    replay_.swizzle(elements, ways, online);
}

void
ModelObserver::onTensorCopy(const std::string& from, const std::string& to,
                            std::size_t elements)
{
    replay_.tensorCopy(from, to, elements);
}

std::vector<trace::Observer*>
ModelObserver::makeShardSinks(std::size_t n)
{
    shardAccums_.clear();
    std::vector<trace::Observer*> sinks;
    sinks.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        shardAccums_.emplace_back(tables_);
        sinks.push_back(&shardAccums_.back());
    }
    return sinks;
}

EinsumRecord
ModelObserver::finalize(const exec::ExecutionStats& stats)
{
    EinsumRecord record = tables_.skeleton;

    // Deterministic merge: the coordinator's own accumulator first,
    // then the shard accumulators in shard-index order. (The sums are
    // exact regardless — see the file comment — the fixed order makes
    // that property unnecessary rather than load-bearing.)
    for (const ShardAccumulator& sa : shardAccums_)
        accum_.merge(sa);
    accum_.mergeInto(record);
    replay_.finalizeInto(record);

    record.execStats = stats;
    // Standalone (non-pipeline) use: what this observer received. The
    // pipeline overwrites these with the executor bus's counts, which
    // also account for shard-consumed records at threads >= 2.
    record.traceEvents = traceEvents_;
    record.traceBatches = traceBatches_;
    return record;
}

} // namespace teaal::model
