/**
 * @file
 * Execution-time analysis (paper §4.3 "action count consumption"):
 * fusion-block inference and per-block bottleneck analysis.
 *
 * Einsums fuse into one block when (1) they use the same accelerator
 * topology, (2) the temporal ranks before the first spatial rank of
 * their loop orders match, and (3) disjoint subsets of the non-storage
 * components are exclusively used by each Einsum. A block's execution
 * time is its slowest component's; the cascade's is the sum over
 * blocks.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "einsum/parser.hpp"
#include "mapping/mapping.hpp"
#include "model/model.hpp"

namespace teaal::model
{

/** Per-Einsum timing. */
struct EinsumPerf
{
    std::string output;
    std::map<std::string, double> componentSeconds;
    double seconds = 0;
    std::string bottleneck;
};

/** One fused block. */
struct BlockPerf
{
    std::vector<std::size_t> einsums;
    double seconds = 0;
    std::string bottleneck;
};

/** Whole-cascade timing. */
struct CascadePerf
{
    std::vector<EinsumPerf> einsums;
    std::vector<BlockPerf> blocks;
    double totalSeconds = 0;

    /// Trace-bus diagnostics aggregated over the cascade: logical
    /// events consumed and the batches that delivered them.
    std::size_t traceEvents = 0;
    std::size_t traceBatches = 0;

    /** Events per observer call — the virtual-call reduction of the
     *  batched trace bus (1.0 when nothing was batched). */
    double
    traceBatchingFactor() const
    {
        return traceBatches == 0
                   ? 1.0
                   : static_cast<double>(traceEvents) /
                         static_cast<double>(traceBatches);
    }
};

/**
 * Static fusion inference from the specification alone (it must run
 * before execution so fused intermediates skip DRAM).
 * @return Blocks as lists of expression indices, in order.
 */
std::vector<std::vector<std::size_t>> inferBlocks(
    const einsum::EinsumSpec& spec, const mapping::MappingSpec& map,
    const binding::BindingSpec& bindings);

/** Seconds consumed by each component of @p record. */
std::map<std::string, double> componentTimes(const EinsumRecord& record,
                                             const arch::Topology& topo);

/**
 * Bottleneck analysis over all records, using the supplied block
 * structure (from inferBlocks).
 */
CascadePerf analyze(const std::vector<EinsumRecord>& records,
                    const arch::ArchSpec& arch,
                    const std::vector<std::vector<std::size_t>>& blocks);

} // namespace teaal::model
