/**
 * @file
 * The performance model's public result types: per-component action
 * counts, per-tensor DRAM traffic, and the per-Einsum record the
 * pipeline hands to perf/energy analysis (paper §4.3).
 *
 * These are pure data; the machinery that fills them lives in the
 * two-tier model split (model/accumulator.hpp for order-independent
 * datapath counters, model/storage_replay.hpp for order-dependent
 * storage simulation) behind the model/model.hpp façade.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "arch/arch.hpp"
#include "exec/engine.hpp"

namespace teaal::model
{

/**
 * Per-PE cycle-equivalent loads as a sorted flat vector of
 * (pe, load) pairs. PE slot ids are small and dense (peSlot folds
 * sparse logical ids into [0, instances)), so a flat vector beats a
 * hash map on every operation the model performs — O(log n) find,
 * linear max/merge — and its iteration order is deterministic by
 * construction (no hash-order dependence anywhere downstream).
 */
class PeLoadVector
{
  public:
    /** Load of @p pe, inserting a zero entry if absent (map-like). */
    double&
    operator[](std::uint64_t pe)
    {
        const auto it = lowerBound(pe);
        if (it != v_.end() && it->first == pe)
            return it->second;
        return v_.insert(it, {pe, 0.0})->second;
    }

    void add(std::uint64_t pe, double load) { (*this)[pe] += load; }

    /** The most-loaded PE's load (0 when empty). */
    double
    maxLoad() const
    {
        double best = 0;
        for (const auto& [pe, load] : v_)
            best = std::max(best, load);
        return best;
    }

    /** Element-wise sum with @p o (union of PE ids). */
    void
    merge(const PeLoadVector& o)
    {
        for (const auto& [pe, load] : o.v_)
            (*this)[pe] += load;
    }

    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    auto begin() const { return v_.begin(); }
    auto end() const { return v_.end(); }

    bool operator==(const PeLoadVector& o) const { return v_ == o.v_; }

  private:
    std::vector<std::pair<std::uint64_t, double>>::iterator
    lowerBound(std::uint64_t pe)
    {
        return std::lower_bound(
            v_.begin(), v_.end(), pe,
            [](const auto& e, std::uint64_t key) { return e.first < key; });
    }

    /// Sorted by PE id.
    std::vector<std::pair<std::uint64_t, double>> v_;
};

/** Action counts of one component during one Einsum. */
struct ComponentActions
{
    std::string name;
    arch::ComponentClass cls = arch::ComponentClass::Compute;
    long instances = 1;
    /// Named action counters (bytes, ops, steps, ...).
    std::map<std::string, double> counts;
    /// Per-PE cycle-equivalent load (datapath components).
    PeLoadVector perPe;

    double maxPerPe() const { return perPe.maxLoad(); }
    double
    count(const std::string& key) const
    {
        const auto it = counts.find(key);
        return it == counts.end() ? 0.0 : it->second;
    }
    void add(const std::string& key, double v) { counts[key] += v; }
};

/** DRAM traffic attributed to one tensor. */
struct TensorTraffic
{
    double readBytes = 0;
    double writeBytes = 0;
    /// Partial-output traffic: re-reads + re-writes of evicted partial
    /// results (the "PO" bars of paper Figure 9).
    double poBytes = 0;

    double total() const { return readBytes + writeBytes; }
};

/** Everything the model learned about one Einsum's execution. */
struct EinsumRecord
{
    std::string output;
    std::string topologyName;
    double clock = 1e9;

    std::map<std::string, ComponentActions> components;
    std::map<std::string, TensorTraffic> traffic;

    exec::ExecutionStats execStats;

    /// Trace-bus diagnostics: logical events consumed and the batches
    /// that delivered them (events/batches = virtual-call reduction).
    /// Sharded runs sum shard-consumed and replayed records so these
    /// equal the serial run's totals at every thread count.
    std::size_t traceEvents = 0;
    std::size_t traceBatches = 0;

    // Fusion-relevant facts (paper §4.3).
    std::vector<std::string> loopOrder;
    std::vector<std::string> temporalPrefix;
    std::set<std::string> nonStorageComponents;
};

} // namespace teaal::model
