#include "model/buffer_sim.hpp"

namespace teaal::model
{

bool
LruCache::access(const void* key, double bytes)
{
    counters_.accessBytes += bytes;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Hit: move to the front.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++counters_.hits;
        return true;
    }
    ++counters_.misses;
    counters_.fillBytes += bytes;
    if (capacity_ > 0) {
        while (occupied_ + bytes > capacity_ && !lru_.empty()) {
            const Entry& victim = lru_.back();
            occupied_ -= victim.bytes;
            index_.erase(victim.key);
            lru_.pop_back();
        }
    }
    lru_.push_front({key, bytes});
    index_[key] = lru_.begin();
    occupied_ += bytes;
    return false;
}

void
LruCache::reset()
{
    lru_.clear();
    index_.clear();
    occupied_ = 0;
}

bool
Buffet::read(std::uint64_t key, double bytes)
{
    counters_.accessBytes += bytes;
    const auto [entry, inserted] =
        resident_.tryEmplace(key, Entry{bytes, false});
    (void)entry;
    if (!inserted) {
        ++counters_.hits;
        return true;
    }
    ++counters_.misses;
    counters_.fillBytes += bytes;
    resident_bytes_ += bytes;
    return false;
}

bool
Buffet::write(std::uint64_t key, double bytes)
{
    counters_.accessBytes += bytes;
    const auto [entry, inserted] =
        resident_.tryEmplace(key, Entry{bytes, true});
    bool revisit = false;
    if (inserted) {
        resident_bytes_ += bytes;
        revisit = everDrained_.contains(key);
        if (revisit) {
            // Partial output re-fetched from the parent level.
            counters_.fillBytes += bytes;
            ++counters_.misses;
        }
    } else {
        entry->written = true;
        ++counters_.hits;
    }
    return revisit;
}

Buffet::DrainResult
Buffet::evictAll()
{
    DrainResult result;
    for (const auto& e : resident_.entries()) {
        if (e.value.written) {
            counters_.drainBytes += e.value.bytes;
            if (everDrained_.insert(e.key))
                result.firstBytes += e.value.bytes;
            else
                result.againBytes += e.value.bytes;
        }
    }
    resident_.clear();
    resident_bytes_ = 0;
    return result;
}

void
Buffet::reset()
{
    resident_.clear();
    everDrained_.clear();
    resident_bytes_ = 0;
}

} // namespace teaal::model
