/**
 * @file
 * Minimal open-addressing hash containers for the performance model's
 * hot path (buffer simulators touch one per trace event; the node
 * allocations and pointer chasing of std::unordered_map dominated
 * profiles).
 *
 * Design: power-of-two slot array of (generation, index) tags over a
 * dense entry vector. Linear probing, no per-entry deletion — the
 * buffet's working set is dropped wholesale at eviction, which here
 * is an O(1) generation bump. Iteration walks the dense vector in
 * insertion order, which is deterministic (and all byte quantities
 * the model sums are multiples of 1/8, so floating-point accumulation
 * order cannot change results anyway).
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace teaal::model
{

namespace detail
{

/** splitMix64 finalizer: cheap, well-distributed 64-bit mixing. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace detail

/** Open-addressing map from 64-bit keys to V, with O(1) clear(). */
template <typename V>
class FlatMap64
{
  public:
    struct Entry
    {
        std::uint64_t key;
        V value;
    };

    /** Pointer to the value for @p key, or nullptr. */
    V*
    find(std::uint64_t key)
    {
        if (entries_.empty())
            return nullptr;
        for (std::size_t s = detail::mix64(key) & mask_;;
             s = (s + 1) & mask_) {
            const std::uint64_t tag = slots_[s];
            if ((tag >> 32) != gen_)
                return nullptr;
            Entry& e = entries_[(tag & 0xffffffffULL)];
            if (e.key == key)
                return &e.value;
        }
    }

    /** Insert @p key with @p value unless present; returns the value
     *  slot and whether it was inserted. */
    std::pair<V*, bool>
    tryEmplace(std::uint64_t key, V value)
    {
        if (entries_.size() + 1 > (slots_.size() * 3) / 4)
            grow();
        for (std::size_t s = detail::mix64(key) & mask_;;
             s = (s + 1) & mask_) {
            const std::uint64_t tag = slots_[s];
            if ((tag >> 32) != gen_) {
                slots_[s] = (static_cast<std::uint64_t>(gen_) << 32) |
                            entries_.size();
                entries_.push_back(Entry{key, std::move(value)});
                return {&entries_.back().value, true};
            }
            Entry& e = entries_[(tag & 0xffffffffULL)];
            if (e.key == key)
                return {&e.value, false};
        }
    }

    /** Live entries in insertion order. */
    const std::vector<Entry>& entries() const { return entries_; }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Drop everything; capacity (and the slot array) is kept. */
    void
    clear()
    {
        entries_.clear();
        ++gen_;
    }

  private:
    void
    grow()
    {
        const std::size_t cap =
            slots_.empty() ? 64 : slots_.size() * 2;
        slots_.assign(cap, 0);
        mask_ = cap - 1;
        gen_ = 1;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            for (std::size_t s = detail::mix64(entries_[i].key) & mask_;;
                 s = (s + 1) & mask_) {
                if ((slots_[s] >> 32) != gen_) {
                    slots_[s] =
                        (static_cast<std::uint64_t>(gen_) << 32) | i;
                    break;
                }
            }
        }
    }

    std::vector<Entry> entries_;
    std::vector<std::uint64_t> slots_; // (generation << 32) | index
    std::size_t mask_ = 0;
    std::uint32_t gen_ = 1;
};

/** Open-addressing set of 64-bit keys (no clear-per-use pattern). */
class FlatSet64
{
  public:
    /** Insert @p key; returns true if it was not present. */
    bool
    insert(std::uint64_t key)
    {
        return map_.tryEmplace(key, Unit{}).second;
    }

    bool contains(std::uint64_t key) { return map_.find(key) != nullptr; }

    std::size_t size() const { return map_.size(); }

    void clear() { map_.clear(); }

  private:
    struct Unit
    {
    };
    FlatMap64<Unit> map_;
};

} // namespace teaal::model
