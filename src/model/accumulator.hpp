/**
 * @file
 * The order-independent tier of the performance model: compute ops,
 * sequencer steps, intersection tallies, per-PE datapath loads,
 * coordinate scans, and streamed (unit-less or eager-absorbed) tensor
 * accesses. Consuming these records is pure accumulation — every
 * quantity is an exact sum of dyadic rationals (integers, halves,
 * bits/8), so addition order cannot perturb the totals — which is
 * what lets shard workers consume them *inside* the shard, off the
 * capture-mode trace bus, instead of serializing through the
 * coordinator's in-order replay.
 *
 * One accumulator runs per shard (plus one on the coordinator for the
 * records it emits itself); ModelObserver::finalize merges them in
 * shard-index order — deterministic by construction — and folds the
 * result into the EinsumRecord next to the StorageReplay tier's
 * counters.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "model/tables.hpp"
#include "trace/batch.hpp"
#include "trace/observer.hpp"

namespace teaal::model
{

/** Order-independent datapath counters for one shard (or one serial
 *  run). Also a trace::Observer so a filtering BatchBus can feed it
 *  coalesced datapath batches directly. */
class ShardAccumulator : public trace::Observer
{
  public:
    explicit ShardAccumulator(const ModelTables& t);

    /** Consume a batch of datapath-class records (the capture
     *  filter's side channel). Stateful-class records are ignored —
     *  they belong to the replay tier. */
    void onEventBatch(const trace::EventBatch& batch) override;

    /** Per-record entry (the façade's internal routing). */
    void
    consume(const trace::Event& e)
    {
        using trace::Event;
        switch (e.kind) {
          case Event::Kind::CoIterate:
            coIterate(e.a, e.b, e.c, e.pe);
            break;
          case Event::Kind::CoordScan:
            coordScan(e.input, e.level, e.a);
            break;
          case Event::Kind::Compute:
            compute(e.op, e.pe, e.a);
            break;
          case Event::Kind::TensorAccess:
            tensorAccess(e.input, e.level);
            break;
          case Event::Kind::LoopEnter:
            break; // order-free LoopEnter drains nothing
          default:
            break; // stateful kinds: not ours
        }
    }

    void coIterate(std::size_t steps, std::size_t matches,
                   std::size_t drivers, std::uint64_t pe);
    void coordScan(int input, std::size_t level, std::size_t count);
    void compute(char op, std::uint64_t pe, std::size_t count);
    /** The order-free TensorAccess cases: no covering unit (streamed)
     *  or absorbed by an eager fill above (cache port charge only). */
    void tensorAccess(int input, std::size_t level);

    /** Fold @p o into this accumulator (exact element-wise sums). */
    void merge(const ShardAccumulator& o);

    /** Apply the accumulated counters to @p record (component counts,
     *  per-PE loads, streamed read traffic, DRAM read bytes). */
    void mergeInto(EinsumRecord& record) const;

  private:
    const ModelTables& t_;

    Slot seqSteps_;
    PeLoadVector seqPerPe_;

    Slot isectSteps_;
    Slot isectMatches_;
    Slot isectCycles_;
    PeLoadVector isectPerPe_;

    Slot mulOps_;
    PeLoadVector mulPerPe_;
    Slot addOps_;
    PeLoadVector addPerPe_;

    /// Per storage unit: datapath access bytes (coordinate streams
    /// and absorbed cache-port charges).
    std::vector<Slot> unitAccess_;

    /// Per input slot: streamed DRAM read bytes (rows pre-exist in
    /// the skeleton, so a plain double suffices).
    std::vector<double> inputRead_;
    /// DRAM component "read_bytes" share of the streamed reads.
    Slot dramRead_;
};

} // namespace teaal::model
