#include "model/storage_replay.hpp"

#include <algorithm>
#include <cmath>

#include "storage/packed.hpp"

namespace teaal::model
{

namespace
{

std::uint64_t
keyHash(const void* key)
{
    return reinterpret_cast<std::uint64_t>(key);
}

} // namespace

StorageReplay::StorageReplay(const ModelTables& t) : t_(t)
{
    units_.resize(t.units.size());
    for (std::size_t u = 0; u < t.units.size(); ++u) {
        const ModelTables::UnitInfo& info = t.units[u];
        if (info.isCache) {
            auto& shared = componentCaches_[info.component];
            if (shared == nullptr)
                shared = std::make_unique<LruCache>(info.cacheBytes);
            units_[u].cache = shared.get();
        }
    }

    // Pre-resolve traffic rows (map nodes are address-stable). Rows
    // stay local to this tier until finalizeInto folds them into the
    // record next to the accumulator tier's charges.
    const ir::EinsumPlan& plan = *t.plan;
    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        inputTrafficOrNull_.push_back(
            t.inputOnChip[i] != 0 ? nullptr
                                  : &traffic_[plan.inputs[i].name]);
    }
    outTrafficOrNull_ =
        t.outputOnChip ? nullptr : &traffic_[plan.output.name];
    for (const ModelTables::UnitInfo& info : t.units) {
        unitTrafficOrNull_.push_back(
            info.onChipTensor ? nullptr : &traffic_[info.tensor]);
    }
}

void
StorageReplay::chargeDramTo(TensorTraffic* tt, double bytes, bool write,
                            bool partial)
{
    if (tt == nullptr)
        return;
    if (write) {
        tt->writeBytes += bytes;
        dramWrite_.add(bytes);
    } else {
        tt->readBytes += bytes;
        dramRead_.add(bytes);
    }
    if (partial)
        tt->poBytes += bytes;
}

void
StorageReplay::chargeDram(const std::string& tensor, double bytes,
                          bool write, bool partial)
{
    if (t_.onChip.count(tensor))
        return;
    chargeDramTo(&traffic_[tensor], bytes, write, partial);
}

double
StorageReplay::subtreeBytes(const ModelTables::UnitInfo& unit,
                            const ft::Payload* payload, std::size_t level,
                            const std::vector<std::string>& rank_ids)
{
    const void* key = payload;
    const auto it = subtreeBytesCache_.find(key);
    if (it != subtreeBytesCache_.end())
        return it->second;
    double bytes =
        static_cast<double>(fmt::subtreeBits(*unit.format, rank_ids,
                                             *payload, level + 1)) /
        8.0;
    // Interleaved (array-of-structs / linked-list) layouts are chased
    // element by element: each leaf pays a 64B DRAM transaction.
    if (unit.interleaved && payload->isFiber() && payload->fiber()) {
        bytes = std::max(bytes,
                         kInterleavedTransactionBytes *
                             static_cast<double>(
                                 payload->fiber()->leafCount()));
    }
    subtreeBytesCache_[key] = bytes;
    return bytes;
}

double
StorageReplay::packedSubtreeBytes(const ModelTables::UnitInfo& unit,
                                  const storage::PackedTensor* packed,
                                  std::size_t level, std::size_t pos,
                                  const void* key)
{
    const auto it = subtreeBytesCache_.find(key);
    if (it != subtreeBytesCache_.end())
        return it->second;
    double bytes =
        static_cast<double>(packed->subtreeBits(*unit.format, level,
                                                pos)) /
        8.0;
    if (unit.interleaved && level + 1 < packed->numRanks()) {
        bytes = std::max(bytes,
                         kInterleavedTransactionBytes *
                             static_cast<double>(
                                 packed->leafCountBelow(level, pos)));
    }
    subtreeBytesCache_[key] = bytes;
    return bytes;
}

void
StorageReplay::loopEnter(std::size_t loop)
{
    for (std::size_t u = 0; u < units_.size(); ++u) {
        const ModelTables::UnitInfo& info = t_.units[u];
        if (info.evictLoop != static_cast<int>(loop) || info.isCache)
            continue;
        const Buffet::DrainResult drained = units_[u].buffet.evictAll();
        const double total = drained.firstBytes + drained.againBytes;
        if (total > 0) {
            chargeDramTo(unitTrafficOrNull_[u], drained.firstBytes,
                         true, false);
            chargeDramTo(unitTrafficOrNull_[u], drained.againBytes,
                         true, true);
            units_[u].drain.add(total);
        }
    }
}

void
StorageReplay::tensorAccess(int input, std::size_t level, const void* key,
                            const ft::Payload* payload, const void* packed,
                            std::size_t pos)
{
    if (input < 0)
        return;
    const std::size_t i = static_cast<std::size_t>(input);
    const ModelTables::LevelRoute& r = t_.routes[i][level];
    if (r.unit < 0 || r.absorbed)
        return; // order-free: the accumulator tier's case
    const std::size_t u = static_cast<std::size_t>(r.unit);
    const ModelTables::UnitInfo& info = t_.units[u];
    UnitState& state = units_[u];
    double bytes = r.payloadBytes;
    if (info.eager && info.boundLevel == static_cast<int>(level)) {
        if (payload != nullptr) {
            const ir::TensorPlan& tp = t_.plan->inputs[i];
            bytes = subtreeBytes(info, payload, level,
                                 tp.prepared.rankIds());
        } else if (packed != nullptr) {
            bytes = packedSubtreeBytes(
                info, static_cast<const storage::PackedTensor*>(packed),
                level, pos, key);
        }
        // Neither set (a packed access replayed through the bare
        // streaming interface): fall back to the per-payload width —
        // batch delivery, which the pipeline always uses, carries the
        // packed context and charges the exact subtree.
    }
    bool hit;
    if (info.isCache)
        hit = state.cache->access(key, bytes);
    else
        hit = state.buffet.read(keyHash(key), bytes);
    state.access.add(bytes);
    if (!hit) {
        state.fill.add(bytes);
        chargeDramTo(inputTrafficOrNull_[i], bytes, false);
    }
}

void
StorageReplay::outputWrite(std::uint64_t path_key, bool at_leaf)
{
    if (!at_leaf)
        return;
    const double bytes = t_.outLeafBytes;
    if (t_.outUnit >= 0) {
        const std::size_t u = static_cast<std::size_t>(t_.outUnit);
        UnitState& state = units_[u];
        const double resident_before = state.buffet.residentBytes();
        const bool revisit = state.buffet.write(path_key, bytes);
        // Repeat writes to a resident partial accumulate in
        // registers/adder trees; the buffer port is paid on
        // allocation (and again at drain).
        if (state.buffet.residentBytes() != resident_before)
            state.access.add(bytes);
        if (revisit) {
            // Partial result re-fetched from DRAM.
            chargeDramTo(outTrafficOrNull_, bytes, false, true);
        }
        return;
    }
    // Streaming output: every write goes to memory; revisits are
    // partial-output read-modify-writes.
    const double dram_bytes =
        t_.outLineBytes > 0 ? t_.outLineBytes : bytes;
    auto [count, first] = outWritten_.tryEmplace(path_key, 0);
    ++*count;
    if (first) {
        chargeDramTo(outTrafficOrNull_, dram_bytes, true, false);
    } else {
        chargeDramTo(outTrafficOrNull_, dram_bytes, false, true);
        chargeDramTo(outTrafficOrNull_, dram_bytes, true, true);
    }
}

void
StorageReplay::swizzle(std::size_t elements, std::size_t ways, bool online)
{
    if (!online)
        return;
    if (t_.mergerName.empty()) {
        // No merger hardware: the swizzle still happens (e.g. via
        // memory round trips); charge the sequencer.
        if (!t_.seqName.empty())
            seqSwizzleElems_.add(static_cast<double>(elements));
        return;
    }
    const double passes = std::max(
        1.0, std::ceil(std::log(static_cast<double>(std::max<std::size_t>(
                           ways, 2))) /
                       std::log(static_cast<double>(t_.mergerRadix))));
    mergeElems_.add(static_cast<double>(elements) * passes);
    mergeSwizzles_.add(1);
}

void
StorageReplay::tensorCopy(const std::string& from, const std::string& to,
                          std::size_t elements)
{
    const fmt::TensorFormat& tf = t_.formats->getLenient(from);
    fmt::RankFormat leaf; // default compressed
    const double bytes =
        static_cast<double>(elements) *
        (tf.rankFormat("_leaf").coordBits() + leaf.payloadBits(true)) /
        8.0;
    chargeDram(from, bytes, false);
    chargeDram(to, bytes, true);
}

void
StorageReplay::finalizeInto(EinsumRecord& record)
{
    // Drain every output buffet.
    for (std::size_t u = 0; u < units_.size(); ++u) {
        const ModelTables::UnitInfo& info = t_.units[u];
        if (info.isCache)
            continue;
        const Buffet::DrainResult drained = units_[u].buffet.evictAll();
        const double total = drained.firstBytes + drained.againBytes;
        if (total > 0) {
            chargeDram(info.tensor, drained.firstBytes, true, false);
            chargeDram(info.tensor, drained.againBytes, true, true);
            units_[u].drain.add(total);
        }
    }

    for (std::size_t u = 0; u < units_.size(); ++u) {
        ComponentActions& ca =
            record.components[t_.units[u].component];
        units_[u].access.mergeInto(ca, "access_bytes");
        units_[u].fill.mergeInto(ca, "fill_bytes");
        units_[u].drain.mergeInto(ca, "drain_bytes");
    }

    if (!t_.mergerName.empty()) {
        // The skeleton pre-created the merger row (identity,
        // instances, class) — only the counters land here.
        ComponentActions& merger = record.components[t_.mergerName];
        mergeElems_.mergeInto(merger, "merge_elems");
        mergeSwizzles_.mergeInto(merger, "swizzles");
    }
    if (!t_.seqName.empty())
        seqSwizzleElems_.mergeInto(record.components[t_.seqName],
                                   "swizzle_elems");

    for (const auto& [tensor, tt] : traffic_) {
        TensorTraffic& row = record.traffic[tensor];
        row.readBytes += tt.readBytes;
        row.writeBytes += tt.writeBytes;
        row.poBytes += tt.poBytes;
    }
    if (!t_.dramName.empty()) {
        ComponentActions& dram = record.components[t_.dramName];
        dramRead_.mergeInto(dram, "read_bytes");
        dramWrite_.mergeInto(dram, "write_bytes");
    }
}

} // namespace teaal::model
