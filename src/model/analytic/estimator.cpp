#include "model/analytic/estimator.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "format/format.hpp"
#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace teaal::model::analytic
{

namespace
{

using einsum::IndexExpr;
using einsum::TensorRef;
using mapping::PartitionDirective;

/** Strip trailing digits: K0 -> K, KM2 -> KM (as ir/builder.cpp). */
std::string
baseOfDerived(const std::string& rank)
{
    std::string base = rank;
    while (!base.empty() &&
           std::isdigit(static_cast<unsigned char>(base.back()))) {
        base.pop_back();
    }
    return base;
}

int
loopIndexOf(const std::vector<std::string>& loop_order,
            const std::string& rank)
{
    for (std::size_t i = 0; i < loop_order.size(); ++i) {
        if (loop_order[i] == rank)
            return static_cast<int>(i);
    }
    return -1;
}

constexpr double kGallopSkewThreshold = 32.0;
/// Runtime size ratio at which the two-finger walk escapes to
/// galloping for 2-way intersections (exec/coiter_strategy.hpp).
constexpr double kRuntimeGallopRatio = 8.0;

std::vector<std::string>
adjacentOrder(const std::vector<std::string>& ids,
              const std::vector<std::string>& components)
{
    std::size_t first = ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (std::find(components.begin(), components.end(), ids[i]) !=
            components.end()) {
            first = std::min(first, i);
        }
    }
    std::vector<std::string> target;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i == first) {
            for (const std::string& c : components)
                target.push_back(c);
        }
        if (std::find(components.begin(), components.end(), ids[i]) ==
            components.end()) {
            target.push_back(ids[i]);
        }
    }
    return target;
}

enum class GroupEffect
{
    None,
    Transform,
    Follow,
};

template <typename HasRank>
GroupEffect
groupEffect(const ir::RecipeGroup& g, HasRank&& has_rank,
            const std::string& tensor_name)
{
    if (g.hasFlatten) {
        return std::all_of(g.sourceRanks.begin(), g.sourceRanks.end(),
                           has_rank)
                   ? GroupEffect::Transform
                   : GroupEffect::None;
    }
    if (!has_rank(g.base))
        return GroupEffect::None;
    if (!g.occupancy || g.leader == tensor_name)
        return GroupEffect::Transform;
    return GroupEffect::Follow;
}

/** Symbolic counterpart of builder applySplits. */
SymbolicTensor
applySplitsSym(SymbolicTensor t, const ir::RecipeGroup& info)
{
    const std::size_t k = info.splits.size();
    for (std::size_t i = 0; i < k; ++i) {
        const std::string upper = info.results[i];
        const std::string lower =
            i + 1 == k ? info.results[k] : info.base;
        const PartitionDirective& d = info.splits[i];
        if (d.kind == PartitionDirective::Kind::UniformShape) {
            t = splitRankByShape(t, info.base, d.tile, upper, lower);
        } else {
            t = splitRankByOccupancy(t, info.base, d.chunk, upper, lower);
        }
    }
    return t;
}

double
clamp01(double x)
{
    return std::min(1.0, std::max(0.0, x));
}

} // namespace

SymbolicPlan
symbolicInstantiate(const ir::EinsumRecipe& recipe,
                    const einsum::EinsumSpec& spec,
                    const std::map<std::string, SymbolicTensor>& stats)
{
    const einsum::Expression& expr = recipe.expr;

    auto stats_of = [&](const std::string& name) -> const SymbolicTensor& {
        const auto it = stats.find(name);
        if (it == stats.end())
            diagError("analytic", name, "einsum '", expr.text,
                      "': no statistics for tensor '", name, "'");
        return it->second;
    };

    SymbolicPlan sp;
    ir::EinsumPlan& plan = sp.plan;
    plan.expr = expr;
    plan.unionCombine = recipe.unionCombine;

    if (recipe.wholeTensorCopy) {
        plan.wholeTensorCopy = true;
        ir::TensorPlan tp;
        tp.name = expr.inputs[0].name;
        tp.exprInput = 0;
        const SymbolicTensor& st = stats_of(tp.name);
        tp.prepared = ft::Tensor(tp.name, st.ranks);
        plan.inputs.push_back(std::move(tp));
        sp.inputs.push_back(st);
        plan.output.name = expr.output.name;
        plan.shard = ir::analyzeSharding(recipe);
        return sp;
    }

    const std::vector<ir::RecipeGroup>& groups = recipe.groups;
    const std::vector<std::string>& loop_order = recipe.loopOrder;

    // ---------------------------------------------------- rank shapes
    // (Mirrors ir/builder.cpp: every tensor with statistics
    // contributes its declared ranks' shapes.)
    std::map<std::string, ft::Coord> rank_shape;
    for (const auto& [name, st] : stats) {
        const auto decl_it = spec.declaration.find(name);
        if (decl_it == spec.declaration.end())
            continue;
        const auto& decl = decl_it->second;
        for (const ft::RankInfo& ri : st.ranks) {
            if (std::find(decl.begin(), decl.end(), ri.id) != decl.end())
                rank_shape[ri.id] = std::max(rank_shape[ri.id], ri.shape);
        }
    }

    std::set<std::string> shape_visiting;
    std::function<ft::Coord(const std::string&)> var_shape =
        [&](const std::string& var) -> ft::Coord {
        if (!shape_visiting.insert(var).second)
            specError("einsum '", expr.text, "': the shapes of '", var,
                      "' and its affine partners are underconstrained");
        struct Eraser
        {
            std::set<std::string>& set;
            const std::string& var;
            ~Eraser() { set.erase(var); }
        } eraser{shape_visiting, var};
        std::string rank = einsum::rankOfVar(var);
        auto it = rank_shape.find(rank);
        if (it != rank_shape.end())
            return it->second;
        while (!rank.empty() &&
               std::isdigit(static_cast<unsigned char>(rank.back()))) {
            rank.pop_back();
            it = rank_shape.find(rank);
            if (it != rank_shape.end())
                return it->second;
        }
        for (const TensorRef& in : expr.inputs) {
            const auto decl_it = spec.declaration.find(in.name);
            if (decl_it == spec.declaration.end())
                continue;
            for (std::size_t slot = 0; slot < in.indices.size(); ++slot) {
                const IndexExpr& ie = in.indices[slot];
                const auto found =
                    std::find(ie.vars.begin(), ie.vars.end(), var);
                if (found == ie.vars.end() || ie.vars.size() < 2)
                    continue;
                const auto sit = rank_shape.find(decl_it->second[slot]);
                if (sit == rank_shape.end())
                    continue;
                ft::Coord shape = sit->second;
                for (const std::string& other : ie.vars) {
                    if (other != var)
                        shape -= var_shape(other) - 1;
                }
                return std::max<ft::Coord>(shape, 0);
            }
        }
        specError("einsum '", expr.text,
                  "': cannot derive the shape of '", var, "'");
    };

    // -------------------------------------------- loop rank metadata
    for (const std::string& name : loop_order) {
        ir::LoopRank lr;
        lr.name = name;

        const ir::RecipeGroup* owner = nullptr;
        std::size_t pos_in_results = 0;
        for (const ir::RecipeGroup& g : groups) {
            const auto it =
                std::find(g.results.begin(), g.results.end(), name);
            if (it != g.results.end()) {
                owner = &g;
                pos_in_results =
                    static_cast<std::size_t>(it - g.results.begin());
                break;
            }
        }

        auto bind_rank_vars = [&](const std::string& rank) {
            const ir::RecipeGroup* g = nullptr;
            for (const ir::RecipeGroup& cand : groups) {
                if (cand.hasFlatten && cand.base == rank)
                    g = &cand;
            }
            if (g != nullptr) {
                ft::Coord stride = 1;
                std::vector<ft::Coord> strides, shapes;
                std::vector<std::string> vars;
                const auto& src = g->sourceRanks;
                for (auto it = src.rbegin(); it != src.rend(); ++it) {
                    const std::string comp_base = baseOfDerived(*it);
                    const ft::Coord shape =
                        var_shape(einsum::varOfRank(comp_base));
                    strides.push_back(stride);
                    shapes.push_back(shape);
                    vars.push_back(einsum::varOfRank(comp_base));
                    stride *= shape;
                }
                std::reverse(strides.begin(), strides.end());
                std::reverse(shapes.begin(), shapes.end());
                std::reverse(vars.begin(), vars.end());
                lr.bindsVars = vars;
                lr.unpackStrides = strides;
                lr.unpackShapes = shapes;
            } else {
                lr.bindsVars = {einsum::varOfRank(rank)};
            }
        };

        if (owner == nullptr) {
            bind_rank_vars(name);
            lr.spaceExtent = static_cast<std::size_t>(
                std::max<ft::Coord>(var_shape(lr.bindsVars[0]), 1));
        } else if (pos_in_results + 1 == owner->results.size()) {
            bind_rank_vars(owner->base);
            if (!owner->splits.empty()) {
                const PartitionDirective& last = owner->splits.back();
                lr.spaceExtent =
                    last.kind == PartitionDirective::Kind::UniformShape
                        ? static_cast<std::size_t>(last.tile)
                        : last.chunk;
            } else {
                lr.spaceExtent = 1u << 20;
            }
        } else {
            lr.isUpperPartition = true;
            const PartitionDirective& d = owner->splits[pos_in_results];
            if (d.kind == PartitionDirective::Kind::UniformShape)
                lr.rangeTile = d.tile;
            auto size_of = [](const PartitionDirective& dd) {
                return dd.kind == PartitionDirective::Kind::UniformShape
                           ? static_cast<std::size_t>(dd.tile)
                           : dd.chunk;
            };
            if (pos_in_results == 0) {
                lr.spaceExtent = 1u << 20;
            } else {
                const std::size_t above =
                    size_of(owner->splits[pos_in_results - 1]);
                const std::size_t mine = size_of(d);
                lr.spaceExtent =
                    mine > 0 ? std::max<std::size_t>(above / mine, 1) : 1;
            }
        }

        for (const std::string& v : lr.bindsVars) {
            if (std::find(recipe.probeVars.begin(), recipe.probeVars.end(),
                          v) != recipe.probeVars.end())
                lr.probeOnly = true;
        }

        plan.loops.push_back(std::move(lr));
    }

    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        for (const std::string& v : plan.loops[i].bindsVars) {
            plan.varBoundAt[v] = static_cast<int>(i);
            const std::string base_var =
                einsum::varOfRank(baseOfDerived(einsum::rankOfVar(v)));
            if (base_var != v && !plan.varBoundAt.count(base_var))
                plan.varBoundAt[base_var] = static_cast<int>(i);
        }
    }
    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        const ir::LoopRank& lr = plan.loops[i];
        if (lr.isUpperPartition)
            continue;
        for (const std::string& v : lr.bindsVars) {
            const std::string base =
                einsum::varOfRank(baseOfDerived(einsum::rankOfVar(v)));
            if (!plan.varBoundAt.count(base))
                plan.varBoundAt[base] = static_cast<int>(i);
        }
    }

    for (const mapping::SpaceTimeEntry& e : recipe.space) {
        const int idx = loopIndexOf(loop_order, e.rank);
        TEAAL_ASSERT(idx >= 0, "space rank '", e.rank,
                     "' vanished from the loop order");
        plan.loops[static_cast<std::size_t>(idx)].isSpace = true;
        plan.loops[static_cast<std::size_t>(idx)].coordSpace =
            e.coordSpace;
    }

    // ------------------------------------------------ input tensors
    struct PendingAction
    {
        std::string rankId;
        ir::LevelAction::Mode mode;
        int loopIndex;
        IndexExpr expr;
    };

    for (std::size_t slot = 0; slot < expr.inputs.size(); ++slot) {
        const TensorRef& ref = expr.inputs[slot];
        const auto decl_it = spec.declaration.find(ref.name);
        if (decl_it == spec.declaration.end())
            specError("einsum '", expr.text, "': undeclared tensor '",
                      ref.name, "'");
        const std::vector<std::string>& decl = decl_it->second;

        SymbolicTensor sym = stats_of(ref.name);
        sym.name = ref.name;

        ir::TensorPlan tp;
        tp.name = ref.name;
        tp.exprInput = static_cast<int>(slot);

        auto compute_pending =
            [&](const std::vector<ft::RankInfo>& ranks_in,
                const std::vector<const ir::RecipeGroup*>& follower_of)
            -> std::vector<PendingAction> {
            std::vector<PendingAction> pending;
            for (const ft::RankInfo& ri : ranks_in) {
                const std::string& rid = ri.id;
                const int direct = loopIndexOf(loop_order, rid);
                if (direct >= 0) {
                    pending.push_back(
                        {rid, ir::LevelAction::Mode::CoIterate, direct,
                         {}});
                    continue;
                }
                const ir::RecipeGroup* follow = nullptr;
                for (const ir::RecipeGroup* g : follower_of) {
                    if (g->base == rid)
                        follow = g;
                }
                if (follow != nullptr) {
                    for (std::size_t i = 0;
                         i + 1 < follow->results.size(); ++i) {
                        const int idx =
                            loopIndexOf(loop_order, follow->results[i]);
                        if (idx < 0)
                            specError("einsum '", expr.text, "': rank '",
                                      follow->results[i],
                                      "' missing from the loop order");
                        pending.push_back(
                            {rid, ir::LevelAction::Mode::Slice, idx, {}});
                    }
                    const int leaf =
                        loopIndexOf(loop_order, follow->results.back());
                    if (leaf < 0)
                        specError("einsum '", expr.text, "': rank '",
                                  follow->results.back(),
                                  "' missing from the loop order");
                    pending.push_back(
                        {rid, ir::LevelAction::Mode::CoIterate, leaf, {}});
                    continue;
                }
                std::size_t dpos = decl.size();
                const std::string lookup_id =
                    std::find(decl.begin(), decl.end(), rid) != decl.end()
                        ? rid
                        : baseOfDerived(rid);
                for (std::size_t i = 0; i < decl.size(); ++i) {
                    if (decl[i] == lookup_id) {
                        dpos = i;
                        break;
                    }
                }
                if (dpos == decl.size())
                    specError("tensor '", ref.name,
                              "' has no declared rank '", lookup_id, "'");
                IndexExpr ie = ref.indices.empty() ? IndexExpr{}
                                                   : ref.indices[dpos];
                int trigger = 0;
                for (const std::string& v : ie.vars) {
                    const auto bit = plan.varBoundAt.find(v);
                    if (bit == plan.varBoundAt.end())
                        specError("einsum '", expr.text, "': variable '",
                                  v, "' used by ", ref.name,
                                  " is never bound by the loop order");
                    trigger = std::max(trigger, bit->second);
                }
                pending.push_back({rid, ir::LevelAction::Mode::Lookup,
                                   trigger, std::move(ie)});
            }
            int running = -1;
            for (PendingAction& pa : pending) {
                if (pa.mode == ir::LevelAction::Mode::Slice)
                    continue;
                if (pa.mode == ir::LevelAction::Mode::Lookup)
                    pa.loopIndex = std::max(pa.loopIndex, running);
                running = std::max(running, pa.loopIndex);
            }
            return pending;
        };

        auto required_of = [](const std::vector<PendingAction>& pending) {
            std::vector<const PendingAction*> nav;
            for (const PendingAction& pa : pending) {
                if (pa.mode != ir::LevelAction::Mode::Slice)
                    nav.push_back(&pa);
            }
            std::stable_sort(nav.begin(), nav.end(),
                             [](const PendingAction* a,
                                const PendingAction* b) {
                                 return a->loopIndex < b->loopIndex;
                             });
            std::vector<std::string> required;
            for (const PendingAction* pa : nav)
                required.push_back(pa->rankId);
            return required;
        };

        std::vector<PendingAction> pending;
        bool fast_path = false;

        // Packed fast path (engine walks the packed buffers directly):
        // no transforms touch the tensor and its order is concordant.
        if (sym.packed) {
            const auto ids = sym.rankIds();
            const auto has = [&](const std::string& r) {
                return std::find(ids.begin(), ids.end(), r) != ids.end();
            };
            bool transforms = false;
            std::vector<const ir::RecipeGroup*> pk_followers;
            for (const ir::RecipeGroup& g : groups) {
                switch (groupEffect(g, has, ref.name)) {
                  case GroupEffect::Transform:
                    transforms = true;
                    break;
                  case GroupEffect::Follow:
                    pk_followers.push_back(&g);
                    break;
                  case GroupEffect::None:
                    break;
                }
            }
            if (!transforms) {
                pending = compute_pending(sym.ranks, pk_followers);
                if (required_of(pending) == ids) {
                    fast_path = true;
                } else {
                    pending.clear();
                }
            }
        }

        if (!fast_path) {
            std::vector<const ir::RecipeGroup*> follower_of;
            for (const ir::RecipeGroup& g : groups) {
                const auto has_rank = [&](const std::string& r) {
                    return sym.rankLevel(r) >= 0;
                };
                switch (groupEffect(g, has_rank, ref.name)) {
                  case GroupEffect::Transform:
                    if (g.hasFlatten) {
                        const auto& src_ranks = g.sourceRanks;
                        const auto target =
                            adjacentOrder(sym.rankIds(), src_ranks);
                        if (target != sym.rankIds())
                            sym = swizzle(sym, target);
                        std::string upper = src_ranks[0];
                        for (std::size_t i = 1; i < src_ranks.size();
                             ++i) {
                            sym = flattenRanks(sym, upper, src_ranks[i]);
                            upper += src_ranks[i];
                        }
                        TEAAL_ASSERT(upper == g.base, "flatten naming");
                    }
                    sym = applySplitsSym(std::move(sym), g);
                    break;
                  case GroupEffect::Follow:
                    follower_of.push_back(&g);
                    break;
                  case GroupEffect::None:
                    break;
                }
            }

            pending = compute_pending(sym.ranks, follower_of);
            const std::vector<std::string> required = required_of(pending);
            if (required != sym.rankIds()) {
                // Merger "ways": occupancy of the shallowest rank
                // moving deeper (as the trace builder estimates it).
                std::size_t ways = 2;
                const auto old_ids = sym.rankIds();
                for (std::size_t lvl = 0; lvl < old_ids.size(); ++lvl) {
                    const auto npos = std::find(
                        required.begin(), required.end(), old_ids[lvl]);
                    const std::size_t new_lvl =
                        static_cast<std::size_t>(npos - required.begin());
                    if (new_lvl > lvl) {
                        const double fibers_above =
                            lvl == 0 ? 1.0 : sym.counts[lvl - 1];
                        if (fibers_above > 0)
                            ways = std::max<std::size_t>(
                                2, static_cast<std::size_t>(
                                       sym.counts[lvl] / fibers_above) +
                                       1);
                        break;
                    }
                }
                tp.swizzled = true;
                tp.swizzleOnline = false; // set from intermediates below
                tp.swizzleElements =
                    static_cast<std::size_t>(std::llround(sym.nnz()));
                tp.swizzleWays = ways;
                sym = swizzle(sym, required);
            }
        }

        tp.prepared = ft::Tensor(ref.name, sym.ranks);

        for (const PendingAction& pa : pending) {
            ir::LevelAction a;
            a.mode = pa.mode;
            a.loopIndex = pa.loopIndex;
            a.expr = pa.expr;
            const int lvl = sym.rankLevel(pa.rankId);
            TEAAL_ASSERT(lvl >= 0, "rank '", pa.rankId,
                         "' lost during symbolic preparation of ",
                         ref.name);
            a.level = lvl;
            tp.actions.push_back(std::move(a));
        }
        std::sort(tp.actions.begin(), tp.actions.end(),
                  [](const ir::LevelAction& a, const ir::LevelAction& b) {
                      if (a.loopIndex != b.loopIndex)
                          return a.loopIndex < b.loopIndex;
                      if (a.level != b.level)
                          return a.level < b.level;
                      return static_cast<int>(a.mode) >
                             static_cast<int>(b.mode);
                  });

        plan.inputs.push_back(std::move(tp));
        sp.inputs.push_back(std::move(sym));
    }

    // Dense extents and co-iteration strategies from symbolic hints.
    for (std::size_t i = 0; i < plan.loops.size(); ++i) {
        ir::LoopRank& lr = plan.loops[i];
        std::vector<double> occupancies;
        for (std::size_t t = 0; t < plan.inputs.size(); ++t) {
            const auto hints = sp.inputs[t].occupancyHints();
            for (const ir::LevelAction& a : plan.inputs[t].actions) {
                if (a.loopIndex == static_cast<int>(i) &&
                    a.mode == ir::LevelAction::Mode::CoIterate) {
                    const auto lvl = static_cast<std::size_t>(a.level);
                    occupancies.push_back(
                        lvl < hints.size() ? hints[lvl] : 0.0);
                }
            }
        }
        if (occupancies.empty()) {
            if (lr.isUpperPartition)
                specError("einsum '", expr.text, "': partition rank '",
                          lr.name, "' has no driving tensor");
            TEAAL_ASSERT(!lr.bindsVars.empty(), "rank ", lr.name,
                         " binds nothing and drives nothing");
            lr.denseExtent = var_shape(lr.bindsVars[0]);
            lr.coiter = ir::CoiterStrategy::DenseDrive;
            continue;
        }
        const double densest =
            *std::max_element(occupancies.begin(), occupancies.end());
        const double sparsest =
            *std::min_element(occupancies.begin(), occupancies.end());
        lr.driverSkew = sparsest > 0 ? densest / sparsest
                                     : (densest > 0 ? densest : 1.0);
        if (!plan.unionCombine && occupancies.size() == 2 &&
            !lr.isUpperPartition &&
            lr.driverSkew >= kGallopSkewThreshold) {
            lr.coiter = ir::CoiterStrategy::Gallop;
        }
    }

    // ------------------------------------------------------- output
    ir::OutputPlan& out = plan.output;
    out.name = expr.output.name;
    const auto odecl_it = spec.declaration.find(out.name);
    if (odecl_it == spec.declaration.end())
        specError("einsum '", expr.text, "': undeclared output '",
                  out.name, "'");
    const std::vector<std::string>& odecl = odecl_it->second;

    struct OutLevel
    {
        std::string rank;
        std::string var;
        int boundAt;
        int tieBreak;
    };
    std::vector<OutLevel> levels;
    for (std::size_t slot = 0; slot < expr.output.indices.size();
         ++slot) {
        const std::string var = expr.output.indices[slot].vars[0];
        const auto bit = plan.varBoundAt.find(var);
        if (bit == plan.varBoundAt.end())
            specError("einsum '", expr.text, "': output variable '", var,
                      "' is never bound");
        const ir::LoopRank& lr =
            plan.loops[static_cast<std::size_t>(bit->second)];
        int tie = 0;
        for (std::size_t i = 0; i < lr.bindsVars.size(); ++i) {
            if (lr.bindsVars[i] == var ||
                einsum::varOfRank(baseOfDerived(
                    einsum::rankOfVar(lr.bindsVars[i]))) == var)
                tie = static_cast<int>(i);
        }
        levels.push_back({odecl[slot], var, bit->second, tie});
    }
    std::stable_sort(levels.begin(), levels.end(),
                     [](const OutLevel& a, const OutLevel& b) {
                         if (a.boundAt != b.boundAt)
                             return a.boundAt < b.boundAt;
                         return a.tieBreak < b.tieBreak;
                     });
    for (const OutLevel& l : levels) {
        out.productionOrder.push_back(l.rank);
        out.vars.push_back(l.var);
        out.boundAtLoop.push_back(l.boundAt);
        out.shapes.push_back(var_shape(l.var));
    }
    out.declaredOrder = recipe.outputDeclaredOrder;
    out.needsReorder = out.productionOrder != out.declaredOrder;

    plan.shard = ir::analyzeSharding(recipe);
    return sp;
}

namespace
{

/** Everything the symbolic walk accumulates for one loop. */
struct LoopStat
{
    double entries = 0;   ///< loop entries (walks attempted)
    double walkRuns = 0;  ///< walks that run (after pre-lookup misses)
    double iters = 0;     ///< coordinates entered (loopEnter events)
    double bodyIters = 0; ///< body executions (after lookup misses)
    /// Body executions per entry — the "multiplicity" a loop adds.
    double perEntryBody = 0;
};

} // namespace

EinsumEstimate
estimateEinsum(const SymbolicPlan& sp, const ModelTables& tables)
{
    const ir::EinsumPlan& plan = sp.plan;
    const std::vector<SymbolicTensor>& inputs = sp.inputs;

    EinsumEstimate est;
    model::EinsumRecord& rec = est.record;
    rec = tables.skeleton;

    auto comp = [&](const std::string& name) -> ComponentActions* {
        if (name.empty())
            return nullptr;
        return &rec.components[name];
    };
    // DRAM charge mirroring StorageReplay::chargeDramTo + the DRAM
    // component counters.
    auto chargeDram = [&](const std::string& tensor, double bytes,
                          bool write, bool partial = false) {
        if (bytes <= 0)
            return;
        TensorTraffic& tt = rec.traffic[tensor];
        if (write)
            tt.writeBytes += bytes;
        else
            tt.readBytes += bytes;
        if (partial)
            tt.poBytes += bytes;
        if (ComponentActions* dram = comp(tables.dramName))
            dram->add(write ? "write_bytes" : "read_bytes", bytes);
    };

    // ---------------------------------------------- whole-tensor copy
    if (plan.wholeTensorCopy) {
        const SymbolicTensor& src = inputs.at(0);
        const std::size_t elements =
            static_cast<std::size_t>(std::llround(src.nnz()));
        const fmt::TensorFormat& tf =
            tables.formats->getLenient(src.name);
        fmt::RankFormat leaf;
        const double bytes =
            static_cast<double>(elements) *
            (tf.rankFormat("_leaf").coordBits() +
             leaf.payloadBits(true)) /
            8.0;
        if (!tables.onChip.count(src.name))
            chargeDram(src.name, bytes, false);
        if (!tables.onChip.count(plan.output.name))
            chargeDram(plan.output.name, bytes, true);
        est.produced = src;
        est.produced.name = plan.output.name;
        est.produced.supersets.insert(src.name);
        return est;
    }

    const std::size_t nloops = plan.loops.size();
    const std::size_t ninputs = plan.inputs.size();
    const bool uni = plan.unionCombine;

    // Per-input per-level accumulators and slice divide factors.
    std::vector<std::vector<double>> scans(ninputs), accesses(ninputs),
        divide(ninputs);
    for (std::size_t t = 0; t < ninputs; ++t) {
        scans[t].assign(inputs[t].ranks.size(), 0.0);
        accesses[t].assign(inputs[t].ranks.size(), 0.0);
        divide[t].assign(inputs[t].ranks.size(), 1.0);
    }

    struct ActionRef
    {
        std::size_t input;
        std::size_t level;
        bool pre = false; // lookups only: fires on loop entry
    };
    std::vector<std::vector<ActionRef>> drivers(nloops), slices(nloops),
        lookups(nloops);
    for (std::size_t t = 0; t < ninputs; ++t) {
        const auto& actions = plan.inputs[t].actions;
        for (std::size_t ai = 0; ai < actions.size(); ++ai) {
            const ir::LevelAction& a = actions[ai];
            const auto loop = static_cast<std::size_t>(a.loopIndex);
            const auto lvl = static_cast<std::size_t>(a.level);
            switch (a.mode) {
              case ir::LevelAction::Mode::CoIterate:
                drivers[loop].push_back({t, lvl});
                break;
              case ir::LevelAction::Mode::Slice:
                slices[loop].push_back({t, lvl});
                break;
              case ir::LevelAction::Mode::Lookup: {
                // Pre-lookups fire on loop entry: no variable of the
                // index expression binds at this loop and the parent
                // level was descended earlier (exec/engine.cpp).
                bool binds_here = false;
                for (const std::string& v : a.expr.vars) {
                    const auto bit = plan.varBoundAt.find(v);
                    if (bit != plan.varBoundAt.end() &&
                        bit->second == a.loopIndex)
                        binds_here = true;
                }
                bool parent_ready = true;
                if (ai > 0 && actions[ai - 1].loopIndex == a.loopIndex)
                    parent_ready = false;
                lookups[loop].push_back(
                    {t, lvl, !binds_here && parent_ready});
                break;
              }
            }
        }
    }

    // Density of one (input, level) within its current window: the
    // probability a probed coordinate is present.
    auto rho = [&](std::size_t t, std::size_t lvl) -> double {
        const double d = divide[t][lvl];
        const double occ = inputs[t].occupancy(lvl) / d;
        const double win =
            std::max(inputs[t].windows[lvl] / d, 1.0);
        return clamp01(occ / win);
    };

    std::vector<LoopStat> ls(nloops);
    double entries = 1.0;
    double spatialPes = 1.0;
    double seqSteps = 0, isectSteps = 0, isectMatches = 0,
           isectCycles = 0;
    // Per-PE load of the walk components. A loop's scans run at the PE
    // chosen by the space loops strictly ABOVE it — a space loop's own
    // fiber is enumerated sequentially before the PE id advances — so
    // each loop's work divides only by the parallelism accumulated so
    // far (spatialPes at that point in the walk), capped by physical
    // instances. The busiest PE sits on every serial path, so its load
    // is the sum of the per-loop shares.
    double seqLoad = 0, isectLoad = 0;
    const double capSeq =
        static_cast<double>(std::max(tables.seqInstances, 1L));
    const double capIsect =
        static_cast<double>(std::max(tables.isectInstances, 1L));

    for (std::size_t i = 0; i < nloops; ++i) {
        const ir::LoopRank& lr = plan.loops[i];
        LoopStat& s = ls[i];
        s.entries = entries;

        // Pre-lookups: one coordinate scan per entry; a miss skips the
        // whole entry (non-union).
        double preP = 1.0;
        for (const ActionRef& lk : lookups[i]) {
            if (!lk.pre)
                continue;
            scans[lk.input][lk.level] += entries;
            const double p = rho(lk.input, lk.level);
            accesses[lk.input][lk.level] += entries * preP * p;
            if (!uni)
                preP *= p;
        }
        const double walkRuns = entries * preP;
        s.walkRuns = walkRuns;

        double m = 0;     // matches per walk
        double steps = 0; // walk steps per walk

        if (drivers[i].empty()) {
            const double limit =
                lr.probeOnly
                    ? 1.0
                    : std::max<double>(
                          static_cast<double>(lr.denseExtent), 1.0);
            steps = limit;
            m = limit;
        } else {
            const std::size_t nd = drivers[i].size();
            std::vector<double> occ(nd), win(nd), dens(nd);
            for (std::size_t d = 0; d < nd; ++d) {
                const ActionRef& dr = drivers[i][d];
                const double div = divide[dr.input][dr.level];
                win[d] = std::max(
                    inputs[dr.input].windows[dr.level] / div, 1.0);
                occ[d] = std::min(
                    std::max(inputs[dr.input].occupancy(dr.level) / div,
                             0.0),
                    win[d]);
                dens[d] = clamp01(occ[d] / win[d]);
            }
            const double W =
                *std::min_element(win.begin(), win.end());
            if (!uni) {
                // Expected intersection size; a driver whose support
                // contains another driver's contributes no independent
                // density factor (e.g. take() outputs vs their source).
                double prod = W;
                for (std::size_t d = 0; d < nd; ++d) {
                    bool superset_of_codriver = false;
                    for (std::size_t e = 0; e < nd && nd > 1; ++e) {
                        if (e == d)
                            continue;
                        if (inputs[drivers[i][e].input].supersets.count(
                                inputs[drivers[i][d].input].name))
                            superset_of_codriver = true;
                    }
                    if (!superset_of_codriver)
                        prod *= dens[d];
                }
                m = std::min(prod,
                             *std::min_element(occ.begin(), occ.end()));
            } else {
                double q = 1.0;
                for (std::size_t d = 0; d < nd; ++d)
                    q *= 1.0 - dens[d];
                m = W * (1.0 - q);
                m = std::max(m,
                             *std::max_element(occ.begin(), occ.end()));
                double total = 0;
                for (double c : occ)
                    total += c;
                m = std::min(m, total);
            }

            // Early exit for probe-only ranks: the walk stops at the
            // first match, paying roughly 1/matches of its work.
            double scale = 1.0;
            double mEff = m;
            if (lr.probeOnly) {
                mEff = std::min(m, 1.0);
                scale = m > 1.0 ? 1.0 / m : 1.0;
            }

            const double cmax =
                *std::max_element(occ.begin(), occ.end());
            const double cmin =
                *std::min_element(occ.begin(), occ.end());
            const bool gallop =
                !uni && nd == 2 &&
                (lr.coiter == ir::CoiterStrategy::Gallop ||
                 (cmin > 0 && cmax / cmin >= kRuntimeGallopRatio));
            if (lr.coiter == ir::CoiterStrategy::DenseDrive) {
                // Forced dense probe: every coordinate of the extent
                // probes every driver.
                const double extent = std::max<double>(
                    static_cast<double>(lr.denseExtent), 1.0);
                steps = extent * static_cast<double>(nd) * scale;
                for (std::size_t d = 0; d < nd; ++d)
                    scans[drivers[i][d].input][drivers[i][d].level] +=
                        walkRuns * extent * scale;
                double prod = extent;
                for (std::size_t d = 0; d < nd; ++d)
                    prod *= occ[d] / extent < 1.0 ? occ[d] / extent
                                                  : 1.0;
                m = uni ? m : std::min(m, prod);
                mEff = lr.probeOnly ? std::min(m, 1.0) : m;
            } else if (gallop) {
                const std::size_t lead =
                    occ[0] <= occ[1] ? std::size_t{0} : std::size_t{1};
                const std::size_t big = 1 - lead;
                steps = 2.0 * occ[lead] * scale;
                scans[drivers[i][lead].input][drivers[i][lead].level] +=
                    walkRuns * occ[lead] * scale;
                scans[drivers[i][big].input][drivers[i][big].level] +=
                    walkRuns * mEff;
            } else {
                double total = 0;
                for (std::size_t d = 0; d < nd; ++d) {
                    total += occ[d];
                    scans[drivers[i][d].input][drivers[i][d].level] +=
                        walkRuns * occ[d] * scale;
                }
                steps = total * scale;
            }

            if (nd >= 2 && !uni && !tables.isectName.empty()) {
                const double st = walkRuns * steps;
                const double ma = walkRuns * mEff;
                isectSteps += st;
                isectMatches += ma;
                double cycles = st;
                if (tables.isectType == "skip-ahead")
                    cycles = ma + (st - ma) / 2.0;
                else if (tables.isectType == "leader-follower")
                    cycles = st / 2.0 + ma / 2.0;
                isectCycles += cycles;
                isectLoad += cycles /
                             std::max(1.0, std::min(capIsect, spatialPes));
            }

            // Descend into each present driver per match.
            for (std::size_t d = 0; d < nd; ++d) {
                const ActionRef& dr = drivers[i][d];
                const double presence =
                    uni ? occ[d] * scale : mEff;
                accesses[dr.input][dr.level] += walkRuns * presence;
            }
            m = mEff;
        }

        seqSteps += walkRuns * steps;
        seqLoad += walkRuns * steps /
                   std::max(1.0, std::min(capSeq, spatialPes));
        s.iters = walkRuns * m;

        // Slices narrow follower windows by the matches of this loop.
        for (const ActionRef& sl : slices[i])
            divide[sl.input][sl.level] *= std::max(1.0, m);

        // Per-coordinate lookups filter body executions (non-union).
        double postP = 1.0;
        for (const ActionRef& lk : lookups[i]) {
            if (lk.pre)
                continue;
            scans[lk.input][lk.level] += s.iters;
            const double p = rho(lk.input, lk.level);
            accesses[lk.input][lk.level] += s.iters * postP * p;
            if (!uni)
                postP *= p;
        }
        s.bodyIters = s.iters * postP;
        logDebug("analytic walk ", plan.expr.text, " loop ", lr.name,
                 ": entries=", s.entries, " walkRuns=", s.walkRuns,
                 " m=", m, " iters=", s.iters,
                 " bodyIters=", s.bodyIters, " drivers=",
                 drivers[i].size(), " strategy=",
                 ir::coiterStrategyName(lr.coiter));
        s.perEntryBody = entries > 0 ? s.bodyIters / entries : 0.0;

        if (lr.isSpace)
            spatialPes *= std::max(
                1.0, std::min(m, static_cast<double>(std::max<
                                     std::size_t>(lr.spaceExtent, 1))));

        entries = s.bodyIters;
    }

    const double leafIters = nloops == 0 ? 0.0 : ls[nloops - 1].bodyIters;
    est.leafIters = leafIters;

    // ------------------------------------------------ output distinct
    // Distinct output prefixes per production level. The visits a
    // production loop makes are NOT independent random draws: within
    // one fiber walk every coordinate is distinct, and upper
    // partitions of the same rank cover disjoint ranges. Random
    // collision (expectedDistinct) applies only when an intermediate
    // contraction loop re-parents the production loop's drivers —
    // then each re-entry walks a *different* fiber and coordinates
    // genuinely collide. An intermediate loop that does not re-parent
    // the drivers replays the very same fiber: its multiplicity is
    // pure repetition and divides out.
    const ir::OutputPlan& out = plan.output;
    auto baseVarOf = [](const std::string& v) {
        return einsum::varOfRank(baseOfDerived(einsum::rankOfVar(v)));
    };
    std::vector<double> outCounts;
    double dOut = std::min(leafIters, 1.0);
    for (std::size_t lvl = 0; lvl < out.productionOrder.size(); ++lvl) {
        const int j = out.boundAtLoop[lvl];
        const int jprev = lvl == 0 ? -1 : out.boundAtLoop[lvl - 1];
        const auto bl = static_cast<std::size_t>(j);
        const double shape =
            std::max(static_cast<double>(out.shapes[lvl]), 1.0);
        const double prev = lvl == 0 ? 1.0 : outCounts[lvl - 1];
        const double draws =
            prev > 0 ? ls[bl].bodyIters / prev : 0.0;

        double repeat = 1.0;
        bool independent = false;
        for (int k = jprev + 1; k < j; ++k) {
            const auto kk = static_cast<std::size_t>(k);
            bool reparent = false;
            for (const ActionRef& dr : drivers[bl]) {
                for (const ir::LevelAction& a :
                     plan.inputs[dr.input].actions) {
                    if (static_cast<std::size_t>(a.level) < dr.level &&
                        a.loopIndex == k)
                        reparent = true;
                }
            }
            bool same_rank = false;
            for (const std::string& v : plan.loops[kk].bindsVars) {
                if (baseVarOf(v) == out.vars[lvl])
                    same_rank = true;
            }
            // Upper partitions bind no vars but cover disjoint
            // ranges of their base rank.
            if (plan.loops[kk].isUpperPartition &&
                einsum::varOfRank(baseOfDerived(plan.loops[kk].name)) ==
                    out.vars[lvl])
                same_rank = true;
            if (reparent && !same_rank)
                independent = true; // fresh fibers: true random draws
            else if (!reparent)
                repeat *= std::max(1.0, ls[kk].perEntryBody);
            // reparent && same_rank: disjoint ranges of this very
            // rank — distinct by construction, keep in draws.
        }
        const double eff = draws / repeat;
        const double per = independent ? expectedDistinct(eff, shape)
                                       : std::min(eff, shape);
        double d = prev * per;
        d = std::min(d, ls[bl].bodyIters);
        d = std::max(d, std::min(prev, ls[bl].bodyIters));
        outCounts.push_back(d);
    }
    // The chain sees only loops between consecutive production levels;
    // when a contraction loop sits *below* the innermost production
    // loop (e.g. a reduced rank tiled above and intersected below), its
    // body iterations count candidate visits that never produce a leaf
    // and its tile revisits collide invisibly. The joint projection of
    // the actual leaf productions onto the output universe is exact in
    // that regime and a no-op otherwise — cap the chain with it,
    // keeping the counts monotone.
    double outUniverse = 1.0;
    for (std::size_t lvl = 0; lvl < out.productionOrder.size(); ++lvl)
        outUniverse *= std::max(static_cast<double>(out.shapes[lvl]), 1.0);
    double cap = expectedDistinct(leafIters, outUniverse);
    for (std::size_t lvl = outCounts.size(); lvl-- > 0;) {
        outCounts[lvl] = std::min(outCounts[lvl], cap);
        cap = outCounts[lvl];
    }
    if (!outCounts.empty())
        dOut = outCounts.back();

    // ------------------------------------------------------- compute
    double mulOps = 0, addOps = 0;
    switch (plan.expr.kind) {
      case einsum::OpKind::Multiply:
        mulOps = leafIters *
                 std::max<double>(static_cast<double>(ninputs) - 1, 0);
        addOps = std::max(0.0, leafIters - dOut);
        break;
      case einsum::OpKind::Add: {
        double presence = 0;
        for (std::size_t t = 0; t < ninputs; ++t) {
            // Deepest action's access count = leaf presence.
            int best_loop = -1;
            std::size_t best_lvl = 0;
            for (const ir::LevelAction& a : plan.inputs[t].actions) {
                if (a.mode == ir::LevelAction::Mode::Slice)
                    continue;
                if (a.loopIndex >= best_loop) {
                    best_loop = a.loopIndex;
                    best_lvl = static_cast<std::size_t>(a.level);
                }
            }
            if (best_loop >= 0)
                presence += accesses[t][best_lvl];
        }
        addOps = std::max(0.0, presence - dOut);
        break;
      }
      case einsum::OpKind::Assign:
        addOps = std::max(0.0, leafIters - dOut);
        break;
      case einsum::OpKind::Take:
        break;
    }

    const auto addPerPe = [&](ComponentActions* ca, double total,
                              long instances) {
        if (ca == nullptr)
            return;
        const double cap = static_cast<double>(std::max(instances, 1L));
        ca->perPe.add(0, total / std::max(1.0, std::min(cap, spatialPes)));
    };

    if (ComponentActions* seq = comp(tables.seqName)) {
        seq->add("steps", seqSteps);
        if (seqLoad > 0)
            seq->perPe.add(0, seqLoad);
    }
    if (isectSteps > 0 || isectMatches > 0) {
        if (ComponentActions* is = comp(tables.isectName)) {
            is->add("steps", isectSteps);
            is->add("matches", isectMatches);
            is->add("cycles", isectCycles);
            if (isectLoad > 0)
                is->perPe.add(0, isectLoad);
        }
    }
    if (mulOps > 0) {
        if (ComponentActions* mul = comp(tables.mulName)) {
            mul->add("mul_ops", mulOps);
            addPerPe(mul, mulOps, tables.mulInstances);
        }
    }
    if (addOps > 0) {
        if (ComponentActions* add = comp(tables.addName)) {
            add->add("add_ops", addOps);
            addPerPe(add, addOps, tables.addInstances);
        }
    }

    // --------------------------------------------- storage & traffic
    // Expected subtree bytes below one element at an eager unit's
    // bound level (the replay's subtreeBytes, in expectation).
    auto eagerBytes = [&](std::size_t t, std::size_t lvl,
                          const ModelTables::UnitInfo& u) -> double {
        const SymbolicTensor& st = inputs[t];
        const double at = std::max(st.counts[lvl], 1e-300);
        double bits = 0;
        const std::size_t last = st.ranks.size() - 1;
        for (std::size_t k = lvl + 1; k <= last; ++k) {
            const double fibers = st.counts[k - 1] / at;
            const double occ = st.occupancy(k);
            const auto occ_i = static_cast<std::size_t>(std::llround(
                std::max(occ, st.counts[k] > 0 ? 1.0 : 0.0)));
            bits += fibers * static_cast<double>(fmt::fiberBits(
                                 u.format->rankFormat(st.ranks[k].id),
                                 occ_i, st.ranks[k].shape, k == last));
        }
        double bytes = bits / 8.0;
        if (u.interleaved) {
            const double leaves = st.counts[last] / at;
            bytes = std::max(bytes,
                             kInterleavedTransactionBytes * leaves);
        }
        return bytes;
    };

    // Revisit factor: the multiplicity of every loop above the evict
    // loop that does not index this tensor — each of its iterations
    // re-touches the same elements after they were drained.
    auto revisitFactor = [&](const std::set<int>& idx_loops,
                             int evict_loop) -> double {
        if (evict_loop < 0)
            return 1.0;
        double f = 1.0;
        for (int j = 0; j < evict_loop &&
                        j < static_cast<int>(nloops);
             ++j) {
            if (!idx_loops.count(j))
                f *= std::max(1.0, ls[static_cast<std::size_t>(j)]
                                       .perEntryBody);
        }
        return f;
    };

    // Cache working sets accumulate per component before resolving the
    // fit-vs-thrash regime.
    struct CachePending
    {
        std::size_t unit;
        std::size_t input;
        double touched;
        double accessCount;
        double bytesPer;
    };
    std::vector<CachePending> cachePending;
    std::map<std::string, double> cacheFootprint;

    for (std::size_t t = 0; t < ninputs; ++t) {
        const SymbolicTensor& st = inputs[t];
        std::set<int> idxLoopsRunning;
        for (std::size_t lvl = 0; lvl < st.ranks.size(); ++lvl) {
            for (const ir::LevelAction& a : plan.inputs[t].actions) {
                if (static_cast<std::size_t>(a.level) <= lvl)
                    idxLoopsRunning.insert(a.loopIndex);
            }
            const ModelTables::LevelRoute& r = tables.routes[t][lvl];
            const bool onChip = tables.inputOnChip[t] != 0;

            // Coordinate scans (the accumulator tier's charge).
            const double scanBytes = r.coordBytes * scans[t][lvl];
            if (scanBytes > 0) {
                if (r.unit >= 0) {
                    if (r.unitIsCache || !r.absorbed) {
                        if (ComponentActions* ca = comp(
                                tables.units[static_cast<std::size_t>(
                                                 r.unit)]
                                    .component))
                            ca->add("access_bytes", scanBytes);
                    }
                    if (!r.absorbed && !r.unitEager && !onChip)
                        chargeDram(st.name, scanBytes, false);
                } else if (!onChip) {
                    chargeDram(st.name, scanBytes, false);
                }
            }

            const double A = accesses[t][lvl];
            if (A <= 0)
                continue;
            if (r.unit < 0) {
                if (!onChip)
                    chargeDram(st.name, A * r.payloadBytes, false);
                continue;
            }
            const auto u = static_cast<std::size_t>(r.unit);
            const ModelTables::UnitInfo& info = tables.units[u];
            if (r.absorbed) {
                // Order-free accumulator case: caches still pay the
                // port; buffets absorbed it in the eager fill.
                if (r.unitIsCache) {
                    if (ComponentActions* ca = comp(info.component))
                        ca->add("access_bytes", A * r.payloadBytes);
                }
                continue;
            }

            // Stateful storage-replay case.
            const double b =
                info.eager &&
                        info.boundLevel == static_cast<int>(lvl)
                    ? eagerBytes(t, lvl, info)
                    : r.payloadBytes;
            const double distinct =
                std::min(A, std::max(st.counts[lvl], 0.0));
            if (info.isCache) {
                cachePending.push_back({u, t, distinct, A, b});
                cacheFootprint[info.component] += distinct * b;
            } else {
                const double fills = std::min(
                    A, std::max(distinct,
                                distinct *
                                    revisitFactor(idxLoopsRunning,
                                                  info.evictLoop)));
                if (ComponentActions* ca = comp(info.component)) {
                    ca->add("access_bytes", A * b);
                    ca->add("fill_bytes", fills * b);
                }
                if (!info.onChipTensor)
                    chargeDram(st.name, fills * b, false);
                // Input buffets drop unwritten entries on drain: no
                // write-back traffic ("drop reads, drain writes").
            }
        }
    }

    for (const CachePending& cp : cachePending) {
        const ModelTables::UnitInfo& info = tables.units[cp.unit];
        const double fit = cacheFootprint[info.component];
        const double misses =
            fit <= info.cacheBytes ? cp.touched : cp.accessCount;
        if (ComponentActions* ca = comp(info.component)) {
            ca->add("access_bytes", cp.accessCount * cp.bytesPer);
            ca->add("fill_bytes", misses * cp.bytesPer);
        }
        if (!info.onChipTensor)
            chargeDram(inputs[cp.input].name, misses * cp.bytesPer,
                       false);
    }

    // -------------------------------------------------------- output
    {
        // Loops that partition the output key space: those binding an
        // output variable (directly or through their partition group).
        std::set<std::string> outVars(out.vars.begin(), out.vars.end());
        auto partitionsOutput = [&](const ir::LoopRank& lr) {
            for (const std::string& v : lr.bindsVars) {
                const std::string base = einsum::varOfRank(
                    baseOfDerived(einsum::rankOfVar(v)));
                if (outVars.count(v) || outVars.count(base))
                    return true;
            }
            // Upper partition ranks bind no variables, yet each of
            // their iterations covers a disjoint coordinate range of
            // the base rank — they partition the output whenever that
            // base rank indexes it (e.g. M1 over an output indexed by
            // m).
            if (lr.isUpperPartition &&
                outVars.count(
                    einsum::varOfRank(baseOfDerived(lr.name))))
                return true;
            return false;
        };
        double wrev = 1.0;
        int evict = -1;
        if (tables.outUnit >= 0)
            evict = tables.units[static_cast<std::size_t>(
                                     tables.outUnit)]
                        .evictLoop;
        if (evict >= 0) {
            for (int j = 0; j < evict && j < static_cast<int>(nloops);
                 ++j) {
                const auto& lr = plan.loops[static_cast<std::size_t>(j)];
                if (!partitionsOutput(lr))
                    wrev *= std::max(
                        1.0,
                        ls[static_cast<std::size_t>(j)].perEntryBody);
            }
        }

        if (leafIters > 0 && tables.outUnit >= 0) {
            const ModelTables::UnitInfo& info =
                tables.units[static_cast<std::size_t>(tables.outUnit)];
            const double b = tables.outLeafBytes;
            // A revisit loop drains the buffet between epochs, but a
            // point only re-drains if it is actually produced again in
            // a later epoch. The expected distinct productions per
            // epoch capture that: with few contributing reduced
            // coordinates per point almost nothing recurs, while a
            // dense re-walk degenerates to dOut * wrev.
            double outUni = 1.0;
            for (std::size_t lvl = 0; lvl < out.productionOrder.size();
                 ++lvl)
                outUni *=
                    std::max(static_cast<double>(out.shapes[lvl]), 1.0);
            const double epochs = std::max(wrev, 1.0);
            const double drained = std::min(
                std::max(epochs * expectedDistinct(leafIters / epochs,
                                                   outUni),
                         dOut),
                std::max(leafIters, dOut));
            if (ComponentActions* ca = comp(info.component)) {
                ca->add("access_bytes",
                        std::max(leafIters, drained) * b);
                ca->add("drain_bytes", drained * b);
            }
            const bool onChip = info.onChipTensor;
            if (!onChip) {
                chargeDram(out.name, dOut * b, true, false);
                if (drained > dOut) {
                    chargeDram(out.name, (drained - dOut) * b, true,
                               true);
                    // Re-drained partials re-fetch from DRAM first.
                    chargeDram(out.name, (drained - dOut) * b, false,
                               true);
                }
            }
        } else if (leafIters > 0 && !tables.outputOnChip) {
            const double b = tables.outLineBytes > 0
                                 ? tables.outLineBytes
                                 : tables.outLeafBytes;
            const double revisits = std::max(0.0, leafIters - dOut);
            chargeDram(out.name, dOut * b, true, false);
            if (revisits > 0) {
                chargeDram(out.name, revisits * b, false, true);
                chargeDram(out.name, revisits * b, true, true);
            }
        }
    }

    // ------------------------------------------------------ swizzles
    auto chargeSwizzle = [&](double elements, std::size_t ways) {
        if (tables.mergerName.empty()) {
            if (ComponentActions* seq = comp(tables.seqName))
                seq->add("swizzle_elems", elements);
            return;
        }
        ComponentActions* merger = comp(tables.mergerName);
        const double passes = std::max(
            1.0,
            std::ceil(std::log(static_cast<double>(
                          std::max<std::size_t>(ways, 2))) /
                      std::log(static_cast<double>(tables.mergerRadix))));
        merger->add("merge_elems", elements * passes);
        merger->add("swizzles", 1);
    };
    for (const ir::TensorPlan& tp : plan.inputs) {
        if (tp.swizzled && tp.swizzleOnline)
            chargeSwizzle(static_cast<double>(tp.swizzleElements),
                          tp.swizzleWays);
    }
    std::size_t outWays = 2;
    if (out.needsReorder && dOut > 0) {
        for (std::size_t lvl = 0; lvl < out.productionOrder.size();
             ++lvl) {
            if (lvl < out.declaredOrder.size() &&
                out.productionOrder[lvl] != out.declaredOrder[lvl]) {
                const double above =
                    lvl == 0 ? 1.0 : outCounts[lvl - 1];
                if (above > 0)
                    outWays = std::max<std::size_t>(
                        2, static_cast<std::size_t>(outCounts[lvl] /
                                                    above) +
                               1);
                break;
            }
        }
        chargeSwizzle(dOut, outWays);
    }

    // ------------------------------------------- produced statistics
    SymbolicTensor& prod = est.produced;
    prod.name = out.name;
    {
        std::vector<ft::RankInfo> pranks;
        std::vector<double> pcounts, pwindows;
        for (std::size_t lvl = 0; lvl < out.productionOrder.size();
             ++lvl) {
            pranks.push_back(
                {out.productionOrder[lvl], out.shapes[lvl], {}, {}});
            pcounts.push_back(std::max(outCounts[lvl], 0.0));
            pwindows.push_back(std::max(
                static_cast<double>(out.shapes[lvl]), 1.0));
        }
        if (pranks.empty()) {
            // Scalar output: model as a single unit rank.
            pranks.push_back({out.name, 1, {}, {}});
            pcounts.push_back(dOut);
            pwindows.push_back(1.0);
        }
        prod.ranks = std::move(pranks);
        prod.counts = std::move(pcounts);
        prod.windows = std::move(pwindows);
        if (out.needsReorder &&
            out.declaredOrder.size() == prod.ranks.size()) {
            bool resolvable = true;
            for (const std::string& id : out.declaredOrder)
                resolvable = resolvable && prod.rankLevel(id) >= 0;
            if (resolvable)
                prod = swizzle(prod, out.declaredOrder);
        }
        // Support containment for later Einsums of the cascade. An
        // intersection-style output (multiply/take/assign) is non-zero
        // only where *every* input is, so its support projects into
        // each input — and transitively into their supersets. A union
        // output only inherits supersets common to all inputs.
        if (plan.expr.kind == einsum::OpKind::Add) {
            bool first = true;
            std::set<std::string> common;
            for (const SymbolicTensor& st : inputs) {
                std::set<std::string> s = st.supersets;
                s.insert(st.name);
                if (first) {
                    common = std::move(s);
                    first = false;
                } else {
                    std::set<std::string> kept;
                    for (const std::string& n : common)
                        if (s.count(n))
                            kept.insert(n);
                    common = std::move(kept);
                }
            }
            prod.supersets = std::move(common);
        } else {
            for (const SymbolicTensor& st : inputs) {
                prod.supersets.insert(st.name);
                prod.supersets.insert(st.supersets.begin(),
                                      st.supersets.end());
            }
        }
    }

    return est;
}

} // namespace teaal::model::analytic
