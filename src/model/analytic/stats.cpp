#include "model/analytic/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace teaal::model::analytic
{

double
expectedDistinct(double draws, double universe)
{
    if (draws <= 0 || universe <= 0)
        return 0;
    if (universe <= 1)
        return 1;
    // U * (1 - (1 - 1/U)^n) via expm1/log1p for large U.
    const double per = -std::expm1(draws * std::log1p(-1.0 / universe));
    return std::min(draws, universe * per);
}

SymbolicTensor
SymbolicTensor::fromHints(std::string name, std::vector<ft::RankInfo> ranks,
                          const std::vector<double>& hints, bool packed)
{
    SymbolicTensor t;
    t.name = std::move(name);
    t.ranks = std::move(ranks);
    t.packed = packed;
    double running = 1.0;
    for (std::size_t l = 0; l < t.ranks.size(); ++l) {
        running *= l < hints.size() ? hints[l] : 0.0;
        t.counts.push_back(running);
        t.windows.push_back(
            std::max<double>(static_cast<double>(t.ranks[l].shape), 1.0));
    }
    return t;
}

double
SymbolicTensor::occupancy(std::size_t level) const
{
    if (level >= counts.size())
        return 0;
    const double fibers = level == 0 ? 1.0 : counts[level - 1];
    return fibers > 0 ? counts[level] / fibers : 0.0;
}

std::vector<double>
SymbolicTensor::occupancyHints() const
{
    std::vector<double> hints;
    hints.reserve(counts.size());
    for (std::size_t l = 0; l < counts.size(); ++l)
        hints.push_back(occupancy(l));
    return hints;
}

std::vector<std::string>
SymbolicTensor::rankIds() const
{
    std::vector<std::string> ids;
    ids.reserve(ranks.size());
    for (const ft::RankInfo& r : ranks)
        ids.push_back(r.id);
    return ids;
}

int
SymbolicTensor::rankLevel(const std::string& id) const
{
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        if (ranks[i].id == id)
            return static_cast<int>(i);
    }
    return -1;
}

SymbolicTensor
swizzle(const SymbolicTensor& t, const std::vector<std::string>& order)
{
    TEAAL_ASSERT(order.size() == t.ranks.size(),
                 "symbolic swizzle of '", t.name,
                 "': order is not a permutation");
    SymbolicTensor out = t;
    out.ranks.clear();
    out.windows.clear();
    for (const std::string& id : order) {
        const int lvl = t.rankLevel(id);
        TEAAL_ASSERT(lvl >= 0, "symbolic swizzle of '", t.name,
                     "': unknown rank '", id, "'");
        out.ranks.push_back(t.ranks[static_cast<std::size_t>(lvl)]);
        out.windows.push_back(t.windows[static_cast<std::size_t>(lvl)]);
    }
    // A common prefix keeps its exact counts (those fibers are
    // untouched); below the first moved rank, prefixes redistribute
    // and the count becomes the expected number of distinct prefixes
    // of the tensor's nnz points over the permuted windows.
    std::size_t prefix = 0;
    while (prefix < order.size() && order[prefix] == t.ranks[prefix].id)
        ++prefix;
    const double n = t.nnz();
    double universe = 1.0;
    for (std::size_t l = 0; l < out.ranks.size(); ++l) {
        universe *= std::max(out.windows[l], 1.0);
        if (l < prefix)
            continue;
        double c = expectedDistinct(n, universe);
        if (l > 0)
            c = std::max(c, out.counts[l - 1]);
        out.counts[l] = std::min(c, n > 0 ? n : 0.0);
    }
    if (!out.counts.empty())
        out.counts.back() = n;
    return out;
}

SymbolicTensor
flattenRanks(const SymbolicTensor& t, const std::string& upper,
             const std::string& lower)
{
    const int u = t.rankLevel(upper);
    const int l = t.rankLevel(lower);
    TEAAL_ASSERT(u >= 0 && l == u + 1, "symbolic flatten of '", t.name,
                 "': ranks '", upper, "'/'", lower, "' not adjacent");
    const auto uu = static_cast<std::size_t>(u);
    const ft::RankInfo& ru = t.ranks[uu];
    const ft::RankInfo& rl = t.ranks[uu + 1];

    ft::RankInfo flat;
    flat.id = ru.id + rl.id;
    flat.shape = ru.shape * rl.shape;
    auto expand = [&](const ft::RankInfo& ri) {
        if (ri.isFlattened()) {
            flat.flatIds.insert(flat.flatIds.end(), ri.flatIds.begin(),
                                ri.flatIds.end());
            flat.flatShapes.insert(flat.flatShapes.end(),
                                   ri.flatShapes.begin(),
                                   ri.flatShapes.end());
        } else {
            flat.flatIds.push_back(ri.id);
            flat.flatShapes.push_back(ri.shape);
        }
    };
    expand(ru);
    expand(rl);

    SymbolicTensor out = t;
    out.ranks.erase(out.ranks.begin() + u, out.ranks.begin() + u + 2);
    out.ranks.insert(out.ranks.begin() + u, flat);
    // One flattened element per lower element; the upper level's
    // count row disappears.
    out.counts.erase(out.counts.begin() + u);
    const double win =
        std::max(t.windows[uu], 1.0) * std::max(t.windows[uu + 1], 1.0);
    out.windows.erase(out.windows.begin() + u, out.windows.begin() + u + 2);
    out.windows.insert(out.windows.begin() + u, win);
    return out;
}

SymbolicTensor
splitRankByShape(const SymbolicTensor& t, const std::string& rank,
                 ft::Coord tile, const std::string& upper,
                 const std::string& lower)
{
    const int r = t.rankLevel(rank);
    TEAAL_ASSERT(r >= 0, "symbolic shape split of '", t.name,
                 "': unknown rank '", rank, "'");
    TEAAL_ASSERT(tile > 0, "symbolic shape split of '", t.name,
                 "': tile must be positive");
    const auto rr = static_cast<std::size_t>(r);
    const double fibers = rr == 0 ? 1.0 : t.counts[rr - 1];
    const double occ = fibers > 0 ? t.counts[rr] / fibers : 0.0;
    const double window = std::max(t.windows[rr], 1.0);
    const double tiles =
        std::max(1.0, std::ceil(window / static_cast<double>(tile)));
    const double tiles_per_fiber =
        std::min(expectedDistinct(occ, tiles), std::max(occ, 0.0));

    SymbolicTensor out = t;
    ft::RankInfo up = t.ranks[rr];
    up.id = upper;
    ft::RankInfo low = t.ranks[rr];
    low.id = lower;
    out.ranks[rr] = up;
    out.ranks.insert(out.ranks.begin() + r + 1, low);
    out.counts.insert(out.counts.begin() + r, fibers * tiles_per_fiber);
    // Use the average tile width so the window product stays equal to
    // the true coordinate extent; the nominal tile width would pad the
    // space (ceil) and dilute every density derived from it.
    out.windows[rr] = tiles;
    out.windows.insert(out.windows.begin() + r + 1, window / tiles);
    return out;
}

SymbolicTensor
splitRankByOccupancy(const SymbolicTensor& t, const std::string& rank,
                     std::size_t chunk, const std::string& upper,
                     const std::string& lower)
{
    const int r = t.rankLevel(rank);
    TEAAL_ASSERT(r >= 0, "symbolic occupancy split of '", t.name,
                 "': unknown rank '", rank, "'");
    TEAAL_ASSERT(chunk > 0, "symbolic occupancy split of '", t.name,
                 "': chunk must be positive");
    const auto rr = static_cast<std::size_t>(r);
    const double fibers = rr == 0 ? 1.0 : t.counts[rr - 1];
    const double occ = fibers > 0 ? t.counts[rr] / fibers : 0.0;
    const double trips =
        occ > 0 ? std::ceil(occ / static_cast<double>(chunk)) : 0.0;

    SymbolicTensor out = t;
    ft::RankInfo up = t.ranks[rr];
    up.id = upper;
    ft::RankInfo low = t.ranks[rr];
    low.id = lower;
    out.ranks[rr] = up;
    out.ranks.insert(out.ranks.begin() + r + 1, low);
    out.counts.insert(out.counts.begin() + r, fibers * trips);
    out.windows[rr] = std::max(trips, 1.0);
    out.windows.insert(out.windows.begin() + r + 1,
                       std::max(t.windows[rr], 1.0) / std::max(trips, 1.0));
    return out;
}

} // namespace teaal::model::analytic
