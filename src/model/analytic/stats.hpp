/**
 * @file
 * Symbolic tensor statistics for the analytic model tier.
 *
 * A SymbolicTensor carries what the trace simulator's fibertree walk
 * would discover about a tensor, as expected values: per-level element
 * counts (the running product of the occupancy hints both backing
 * stores already expose) and per-level coordinate windows (the span of
 * legal coordinates inside one fiber). Every preparation transform the
 * plan builder applies to real data — swizzle, flatten, shape split,
 * occupancy split — has a closed-form counterpart here that updates
 * rank metadata identically to fibertree/transform.cpp and counts and
 * windows under a uniform-occupancy assumption.
 *
 * The estimator (model/analytic/estimator.hpp) instantiates plans
 * against these statistics instead of fiber data, so a mapping can be
 * ranked without touching a single fiber.
 */
#pragma once

#include <set>
#include <string>
#include <vector>

#include "fibertree/types.hpp"

namespace teaal::model::analytic
{

/**
 * Expected number of distinct values seen after @p draws uniform
 * draws from a universe of @p universe values:
 * U * (1 - (1 - 1/U)^n), evaluated stably for large U.
 */
double expectedDistinct(double draws, double universe);

/** Expected-value shadow of one (possibly transformed) tensor. */
struct SymbolicTensor
{
    std::string name;
    /// Rank metadata, maintained exactly as the real transforms would.
    std::vector<ft::RankInfo> ranks;
    /// Expected element count at each level (cumulative, level 0
    /// outermost); counts.back() is the expected nnz.
    std::vector<double> counts;
    /// Expected span of legal coordinates inside one fiber at each
    /// level. Starts at the rank shape; splits narrow it.
    std::vector<double> windows;
    /// Backed by a packed rank store (eligible for the engine's
    /// packed fast path, which skips the concordance swizzle).
    bool packed = false;
    /// Names of tensors whose nonzero support contains this one's
    /// (e.g. a take() output is a subset of the copied operand).
    /// Used to drop double-counted density factors in intersections.
    std::set<std::string> supersets;

    /**
     * Build from the backing store's metadata: declared ranks and the
     * per-level occupancy hints (ft::Tensor::occupancyHints /
     * storage::PackedTensor::occupancyHints). Counts are the running
     * product of the hints; windows start at the rank shapes.
     */
    static SymbolicTensor fromHints(std::string name,
                                    std::vector<ft::RankInfo> ranks,
                                    const std::vector<double>& hints,
                                    bool packed = false);

    double nnz() const { return counts.empty() ? 0.0 : counts.back(); }

    /** Expected elements per fiber at @p level. */
    double occupancy(std::size_t level) const;

    /** occupancy() at every level — same shape as the stores' hints. */
    std::vector<double> occupancyHints() const;

    std::vector<std::string> rankIds() const;
    int rankLevel(const std::string& id) const;
};

/** Reorder ranks to @p order (a permutation of rankIds()). */
SymbolicTensor swizzle(const SymbolicTensor& t,
                       const std::vector<std::string>& order);

/** Merge adjacent ranks @p upper and @p lower into one flat rank. */
SymbolicTensor flattenRanks(const SymbolicTensor& t,
                            const std::string& upper,
                            const std::string& lower);

/** Uniform-shape split of @p rank into tiles of @p tile coordinates. */
SymbolicTensor splitRankByShape(const SymbolicTensor& t,
                                const std::string& rank, ft::Coord tile,
                                const std::string& upper,
                                const std::string& lower);

/** Uniform-occupancy split of @p rank into chunks of @p chunk elems. */
SymbolicTensor splitRankByOccupancy(const SymbolicTensor& t,
                                    const std::string& rank,
                                    std::size_t chunk,
                                    const std::string& upper,
                                    const std::string& lower);

} // namespace teaal::model::analytic
