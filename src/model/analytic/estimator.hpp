/**
 * @file
 * The analytic model tier: closed-form estimates of everything the
 * trace simulator counts — compute ops, intersection work, per-level
 * traffic, buffer fills/drains — from metadata alone (rank shapes,
 * occupancy hints, format footprints, and the plan's co-iteration
 * strategies). No fibertree walk ever runs.
 *
 * Two stages mirror the trace pipeline:
 *
 *   symbolicInstantiate  the expected-value twin of
 *                        ir::instantiatePlan: binds a cached
 *                        EinsumRecipe to SymbolicTensor statistics and
 *                        produces a skeleton ir::EinsumPlan (rank
 *                        metadata only, no fiber data) plus the
 *                        post-transform statistics of every input.
 *   estimateEinsum       the expected-value twin of one engine run:
 *                        walks the loop nest symbolically and fills a
 *                        model::EinsumRecord with the same counter
 *                        keys the accumulator and storage-replay tiers
 *                        would produce, so model::analyze() and the
 *                        energy model consume it unchanged.
 *
 * Constructs the closed forms cannot express throw DiagnosticError
 * (section "analytic"); callers degrade to the trace tier.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/plan.hpp"
#include "model/analytic/stats.hpp"
#include "model/perf.hpp"
#include "model/tables.hpp"
#include "model/record.hpp"

namespace teaal::model::analytic
{

/** A skeleton plan plus the statistics it was instantiated against. */
struct SymbolicPlan
{
    ir::EinsumPlan plan;
    /// Post-transform statistics, parallel to plan.inputs.
    std::vector<SymbolicTensor> inputs;
};

/**
 * Bind @p recipe to tensor statistics instead of tensor data. Follows
 * ir::instantiatePlan step for step (loop metadata, variable binding,
 * preparation transforms, action placement, strategy selection, output
 * plan), with every data-dependent quantity read from @p stats.
 */
SymbolicPlan
symbolicInstantiate(const ir::EinsumRecipe& recipe,
                    const einsum::EinsumSpec& spec,
                    const std::map<std::string, SymbolicTensor>& stats);

/** The analytic walk's result for one Einsum. */
struct EinsumEstimate
{
    model::EinsumRecord record;
    /// Statistics of the produced output (feeds later Einsums of the
    /// cascade as an input).
    SymbolicTensor produced;
    double leafIters = 0;
};

/**
 * Estimate one Einsum's record from a symbolic plan and its resolved
 * model tables (ModelTables::build accepts skeleton plans: it reads
 * rank metadata only).
 */
EinsumEstimate estimateEinsum(const SymbolicPlan& sp,
                              const ModelTables& tables);

/** Whole-cascade analytic prediction (the pipeline's estimate()). */
struct AnalyticEstimate
{
    std::vector<model::EinsumRecord> records;
    model::CascadePerf perf;
    /// Predicted DRAM traffic summed over the cascade.
    std::map<std::string, model::TensorTraffic> traffic;
    double mulOps = 0;
    double addOps = 0;
    /// Served from the pipeline's estimate cache (set by the caller).
    bool cacheHit = false;

    double seconds() const { return perf.totalSeconds; }

    double
    totalTrafficBytes() const
    {
        double total = 0;
        for (const auto& [name, tt] : traffic)
            total += tt.total();
        return total;
    }
};

} // namespace teaal::model::analytic
