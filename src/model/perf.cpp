#include "model/perf.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace teaal::model
{

namespace
{

/** Temporal prefix of an Einsum's loop order (before first space rank). */
std::vector<std::string>
temporalPrefix(const mapping::EinsumMapping& em)
{
    std::vector<std::string> prefix;
    for (const std::string& rank : em.loopOrder) {
        bool is_space = false;
        for (const mapping::SpaceTimeEntry& e : em.space) {
            if (e.rank == rank)
                is_space = true;
        }
        if (is_space)
            break;
        prefix.push_back(rank);
    }
    return prefix;
}

/** Non-storage components an Einsum's binding uses exclusively. */
std::vector<std::string>
nonStorageComponents(const binding::EinsumBinding& eb)
{
    std::vector<std::string> out;
    for (const binding::ComponentBinding& cb : eb.components) {
        if (!cb.ops.empty())
            out.push_back(cb.component);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

std::vector<std::vector<std::size_t>>
inferBlocks(const einsum::EinsumSpec& spec, const mapping::MappingSpec& map,
            const binding::BindingSpec& bindings)
{
    std::vector<std::vector<std::size_t>> blocks;
    for (std::size_t i = 0; i < spec.expressions.size(); ++i) {
        const std::string& out = spec.expressions[i].output.name;
        bool fused = false;
        if (!blocks.empty()) {
            const std::size_t prev = blocks.back().back();
            const std::string& prev_out =
                spec.expressions[prev].output.name;
            const auto& em = map.einsum(out);
            const auto& pm = map.einsum(prev_out);
            const auto& eb = bindings.einsum(out);
            const auto& pb = bindings.einsum(prev_out);
            // Criterion 1: same topology.
            const bool same_topo = eb.topology == pb.topology;
            // Criterion 2: equal temporal prefixes (explicit orders).
            const bool same_prefix =
                !em.loopOrder.empty() && !pm.loopOrder.empty() &&
                temporalPrefix(em) == temporalPrefix(pm);
            // Criterion 3: disjoint non-storage components.
            const auto mine = nonStorageComponents(eb);
            const auto theirs = nonStorageComponents(pb);
            bool disjoint = true;
            for (const std::string& c : mine) {
                if (std::find(theirs.begin(), theirs.end(), c) !=
                    theirs.end())
                    disjoint = false;
            }
            fused = same_topo && same_prefix && disjoint;
        }
        if (fused)
            blocks.back().push_back(i);
        else
            blocks.push_back({i});
    }
    return blocks;
}

std::map<std::string, double>
componentTimes(const EinsumRecord& record, const arch::Topology& topo)
{
    std::map<std::string, double> times;
    for (const auto& [name, ca] : record.components) {
        long instances = 1;
        const arch::Component* comp =
            topo.findComponent(name, &instances);
        double seconds = 0;
        const double clock = record.clock;
        switch (ca.cls) {
          case arch::ComponentClass::DRAM: {
            const double bw =
                comp ? comp->attrDouble("bandwidth", 0) : 0;
            if (bw > 0) {
                seconds = (ca.count("read_bytes") +
                           ca.count("write_bytes")) /
                          (bw * 1e9);
            }
            break;
          }
          case arch::ComponentClass::Buffer: {
            const double bw =
                comp ? comp->attrDouble("bandwidth", 0) : 0;
            if (bw > 0)
                seconds = ca.count("access_bytes") / (bw * 1e9);
            break;
          }
          case arch::ComponentClass::Compute:
          case arch::ComponentClass::Intersection:
            // One action per cycle on the most-loaded instance.
            seconds = ca.maxPerPe() / clock;
            break;
          case arch::ComponentClass::Sequencer: {
            // One coordinate per cycle per rank-sequencer; an
            // instance drives `num_ranks` decoupled rank pipelines.
            const double ranks = std::max(
                1.0, comp ? comp->attrDouble("num_ranks", 1) : 1.0);
            seconds = ca.maxPerPe() / (clock * ranks);
            break;
          }
          case arch::ComponentClass::Merger: {
            const long lanes = std::max(1L, instances);
            seconds = ca.count("merge_elems") /
                      (static_cast<double>(lanes) * clock);
            break;
          }
        }
        times[name] = seconds;
    }
    return times;
}

CascadePerf
analyze(const std::vector<EinsumRecord>& records,
        const arch::ArchSpec& arch,
        const std::vector<std::vector<std::size_t>>& blocks)
{
    CascadePerf perf;
    for (const EinsumRecord& r : records) {
        perf.traceEvents += r.traceEvents;
        perf.traceBatches += r.traceBatches;
        const arch::Topology& topo = arch.topology(r.topologyName);
        EinsumPerf ep;
        ep.output = r.output;
        ep.componentSeconds = componentTimes(r, topo);
        for (const auto& [name, secs] : ep.componentSeconds) {
            if (secs > ep.seconds) {
                ep.seconds = secs;
                ep.bottleneck = name;
            }
        }
        perf.einsums.push_back(std::move(ep));
    }

    for (const auto& members : blocks) {
        BlockPerf bp;
        bp.einsums = members;
        // Per-component totals across the fused block; the block runs
        // as long as its busiest component.
        std::map<std::string, double> totals;
        for (std::size_t idx : members) {
            TEAAL_ASSERT(idx < perf.einsums.size(),
                         "block index out of range");
            for (const auto& [name, secs] :
                 perf.einsums[idx].componentSeconds)
                totals[name] += secs;
        }
        for (const auto& [name, secs] : totals) {
            if (secs > bp.seconds) {
                bp.seconds = secs;
                bp.bottleneck = name;
            }
        }
        perf.totalSeconds += bp.seconds;
        perf.blocks.push_back(std::move(bp));
    }
    return perf;
}

} // namespace teaal::model
