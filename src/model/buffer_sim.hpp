/**
 * @file
 * Storage-component simulators used by the performance model (paper
 * §4.1.2, Table 3):
 *
 *  - LruCache: replacement-managed buffer (e.g. Gamma's FiberCache,
 *    OuterSPACE's L0/L1 caches). Capacity-bounded by bytes; counts
 *    hits, fills (misses, charged to the parent level), and accesses.
 *
 *  - Buffet: explicitly managed buffer (Pellauer et al.), filled on
 *    first touch and drained when the binding's evict-on loop rank
 *    changes coordinate (paper §4.1.3).
 */
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "model/flat_hash.hpp"

namespace teaal::model
{

/** Counters shared by both buffer kinds. */
struct BufferCounters
{
    double accessBytes = 0;  ///< all bytes moved through the buffer
    double fillBytes = 0;    ///< bytes filled from the parent level
    double drainBytes = 0;   ///< bytes drained to the parent level
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** Byte-capacity LRU cache keyed by opaque object identities. */
class LruCache
{
  public:
    /** @param capacity_bytes Total capacity; 0 = unbounded. */
    explicit LruCache(double capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    /**
     * Access an object of @p bytes; returns true on hit. On miss the
     * object is filled (fillBytes += bytes) and LRU victims are
     * evicted to fit.
     */
    bool access(const void* key, double bytes);

    /** Forget everything (between Einsums). */
    void reset();

    const BufferCounters& counters() const { return counters_; }

  private:
    struct Entry
    {
        const void* key;
        double bytes;
    };

    double capacity_;
    double occupied_ = 0;
    std::list<Entry> lru_; // front = most recent
    std::unordered_map<const void*, std::list<Entry>::iterator> index_;
    BufferCounters counters_;
};

/**
 * Explicitly managed buffet. Objects are identified by 64-bit keys
 * (payload addresses or output path hashes). All resident objects are
 * dropped (reads) or drained (writes) when the eviction context
 * advances.
 */
class Buffet
{
  public:
    Buffet() = default;

    /**
     * Read access; fills on first touch in the current residency.
     * @return true if the object was already resident.
     */
    bool read(std::uint64_t key, double bytes);

    /**
     * Write access; allocates on first touch. If the object was
     * drained in an earlier residency, it is re-filled first (partial
     * output re-read; the caller charges the parent).
     * @return true if this key was drained before (a partial-output
     *         revisit).
     */
    bool write(std::uint64_t key, double bytes);

    /** Bytes drained by one eviction, split by first-time vs. re-drain
     *  (re-drains are partial-output traffic). */
    struct DrainResult
    {
        double firstBytes = 0;
        double againBytes = 0;
    };

    /**
     * The eviction context changed: drop reads, drain writes.
     * drainBytes accumulates the written-resident bytes.
     */
    DrainResult evictAll();

    /** Total bytes currently resident. */
    double residentBytes() const { return resident_bytes_; }

    void reset();

    const BufferCounters& counters() const { return counters_; }

  private:
    struct Entry
    {
        double bytes;
        bool written;
    };

    /// Flat tables: one buffet access per trace event made the node
    /// allocations of std::unordered_map a top profile entry. The
    /// residency is dropped wholesale at eviction (an O(1) generation
    /// bump), and evictAll's insertion-order iteration is
    /// deterministic — all byte quantities are multiples of 1/8, so
    /// accumulation order cannot perturb the sums either.
    FlatMap64<Entry> resident_;
    FlatSet64 everDrained_;
    double resident_bytes_ = 0;
    BufferCounters counters_;
};

} // namespace teaal::model
