/**
 * @file
 * Accelergy-style energy model (paper §4.3, Figure 11): per-action
 * energy tables translate the component action counts into joules.
 *
 * The constants are 45nm-class estimates in the spirit of the
 * Accelergy plug-in tables; the energy *shape* across workloads (what
 * Figure 11 validates) depends on the action counts, which come from
 * executing on real tensors.
 */
#pragma once

#include <map>
#include <string>

#include "arch/arch.hpp"
#include "model/model.hpp"

namespace teaal::energy
{

/** Per-action energy constants. */
struct EnergyTable
{
    double dramPjPerBit = 7.0;
    /// SRAM read/write energy scales with capacity class.
    double sramSmallPjPerBit = 0.06; ///< <= 256 KiB
    double sramLargePjPerBit = 0.18; ///< > 256 KiB
    double mulPj = 3.1;
    double addPj = 0.9;
    double mergePjPerElem = 1.2;
    double intersectPjPerStep = 0.4;
    double sequencerPjPerStep = 0.08;

    /** The default table used by all benches. */
    static EnergyTable standard() { return {}; }
};

/** Energy attribution. */
struct EnergyBreakdown
{
    std::map<std::string, double> byComponent; ///< joules
    double totalJoules = 0;

    double totalMilliJoules() const { return totalJoules * 1e3; }

    EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

/** Energy of one Einsum's action counts. */
EnergyBreakdown energyOf(const model::EinsumRecord& record,
                         const arch::Topology& topo,
                         const EnergyTable& table = EnergyTable::standard());

} // namespace teaal::energy
