#include "energy/energy.hpp"

namespace teaal::energy
{

EnergyBreakdown&
EnergyBreakdown::operator+=(const EnergyBreakdown& o)
{
    for (const auto& [name, joules] : o.byComponent)
        byComponent[name] += joules;
    totalJoules += o.totalJoules;
    return *this;
}

EnergyBreakdown
energyOf(const model::EinsumRecord& record, const arch::Topology& topo,
         const EnergyTable& table)
{
    EnergyBreakdown out;
    for (const auto& [name, ca] : record.components) {
        double pj = 0;
        switch (ca.cls) {
          case arch::ComponentClass::DRAM:
            pj = (ca.count("read_bytes") + ca.count("write_bytes")) *
                 8.0 * table.dramPjPerBit;
            break;
          case arch::ComponentClass::Buffer: {
            const arch::Component* comp = topo.findComponent(name);
            double capacity_bytes = 0;
            if (comp) {
                capacity_bytes = comp->attrDouble("size", 0);
                if (capacity_bytes == 0) {
                    capacity_bytes = comp->attrDouble("width", 64) *
                                     comp->attrDouble("depth", 1024) /
                                     8.0;
                }
            }
            const double pj_per_bit = capacity_bytes > 256.0 * 1024.0
                                          ? table.sramLargePjPerBit
                                          : table.sramSmallPjPerBit;
            pj = ca.count("access_bytes") * 8.0 * pj_per_bit;
            break;
          }
          case arch::ComponentClass::Compute:
            pj = ca.count("mul_ops") * table.mulPj +
                 ca.count("add_ops") * table.addPj;
            break;
          case arch::ComponentClass::Merger:
            pj = ca.count("merge_elems") * table.mergePjPerElem;
            break;
          case arch::ComponentClass::Intersection:
            pj = ca.count("steps") * table.intersectPjPerStep;
            break;
          case arch::ComponentClass::Sequencer:
            pj = (ca.count("steps") + ca.count("swizzle_elems")) *
                 table.sequencerPjPerStep;
            break;
        }
        if (pj > 0) {
            out.byComponent[name] += pj * 1e-12;
            out.totalJoules += pj * 1e-12;
        }
    }
    return out;
}

} // namespace teaal::energy
