/**
 * @file
 * A mini-YAML parser covering the subset used by TeAAL specifications
 * (paper Figures 3 and 8):
 *
 *   - block mappings (`key: value` and `key:` + indented block)
 *   - block sequences (`- item`, including `- key: value` entries)
 *   - inline flow sequences (`[K, M]`, `[uniform_occupancy(A.256)]`)
 *   - scalars (strings; typed access on demand)
 *   - `#` comments and blank lines
 *
 * Keys may themselves contain parentheses and commas, e.g. the
 * OuterSPACE partitioning key `(K, M)`, so key/value splitting is done
 * at paren depth zero.
 *
 * Mappings preserve insertion order: the order of Einsums in a cascade
 * and of ranks in a loop order is semantically meaningful.
 */
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace teaal::yaml
{

/** A parsed YAML node: null, scalar, sequence, or (ordered) mapping. */
class Node
{
  public:
    enum class Kind { Null, Scalar, Sequence, Mapping };

    Node() : kind_(Kind::Null) {}

    /** Construct a scalar node. */
    static Node makeScalar(std::string value);
    /** Construct an empty sequence node. */
    static Node makeSequence();
    /** Construct an empty mapping node. */
    static Node makeMapping();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isScalar() const { return kind_ == Kind::Scalar; }
    bool isSequence() const { return kind_ == Kind::Sequence; }
    bool isMapping() const { return kind_ == Kind::Mapping; }

    /** Scalar access; throws SpecError if not a scalar. */
    const std::string& scalar() const;
    /** Scalar parsed as long; throws SpecError on bad type/format. */
    long asLong() const;
    /** Scalar parsed as double; throws SpecError on bad type/format. */
    double asDouble() const;

    /** Sequence access; throws SpecError if not a sequence. */
    const std::vector<Node>& sequence() const;
    std::vector<Node>& sequence();

    /** Mapping access; throws SpecError if not a mapping. */
    const std::vector<std::pair<std::string, Node>>& mapping() const;
    std::vector<std::pair<std::string, Node>>& mapping();

    /** True if the mapping contains @p key. */
    bool has(const std::string& key) const;

    /** Mapping lookup; throws SpecError if missing. */
    const Node& at(const std::string& key) const;

    /** Mapping lookup; returns nullptr if missing. */
    const Node* find(const std::string& key) const;

    /** Keys of a mapping in insertion order. */
    std::vector<std::string> keys() const;

    /**
     * Convenience: the node as a list of scalar strings. Accepts a
     * sequence of scalars or a single scalar (treated as a 1-list);
     * a null node yields an empty list.
     */
    std::vector<std::string> scalarList() const;

    /** Re-render as YAML-ish text (for tests and debugging). */
    std::string dump(int indent = 0) const;

  private:
    Kind kind_;
    std::string scalar_;
    std::vector<Node> seq_;
    std::vector<std::pair<std::string, Node>> map_;
};

/** Parse YAML text; throws SpecError with a line number on failure. */
Node parse(const std::string& text);

/** Parse the contents of a file; throws SpecError if unreadable. */
Node parseFile(const std::string& path);

} // namespace teaal::yaml
