#include "yaml/yaml.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::yaml
{

Node
Node::makeScalar(std::string value)
{
    Node n;
    n.kind_ = Kind::Scalar;
    n.scalar_ = std::move(value);
    return n;
}

Node
Node::makeSequence()
{
    Node n;
    n.kind_ = Kind::Sequence;
    return n;
}

Node
Node::makeMapping()
{
    Node n;
    n.kind_ = Kind::Mapping;
    return n;
}

const std::string&
Node::scalar() const
{
    if (!isScalar())
        specError("expected a scalar YAML node");
    return scalar_;
}

long
Node::asLong() const
{
    return parseLong(scalar(), "YAML scalar");
}

double
Node::asDouble() const
{
    return parseDouble(scalar(), "YAML scalar");
}

const std::vector<Node>&
Node::sequence() const
{
    if (!isSequence())
        specError("expected a sequence YAML node");
    return seq_;
}

std::vector<Node>&
Node::sequence()
{
    if (!isSequence())
        specError("expected a sequence YAML node");
    return seq_;
}

const std::vector<std::pair<std::string, Node>>&
Node::mapping() const
{
    if (!isMapping())
        specError("expected a mapping YAML node");
    return map_;
}

std::vector<std::pair<std::string, Node>>&
Node::mapping()
{
    if (!isMapping())
        specError("expected a mapping YAML node");
    return map_;
}

bool
Node::has(const std::string& key) const
{
    return find(key) != nullptr;
}

const Node&
Node::at(const std::string& key) const
{
    const Node* n = find(key);
    if (n == nullptr)
        specError("missing key '", key, "' in YAML mapping");
    return *n;
}

const Node*
Node::find(const std::string& key) const
{
    if (!isMapping())
        return nullptr;
    for (const auto& [k, v] : map_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::vector<std::string>
Node::keys() const
{
    std::vector<std::string> out;
    for (const auto& [k, v] : mapping()) {
        (void)v;
        out.push_back(k);
    }
    return out;
}

std::vector<std::string>
Node::scalarList() const
{
    std::vector<std::string> out;
    if (isNull())
        return out;
    if (isScalar()) {
        out.push_back(scalar_);
        return out;
    }
    for (const Node& n : sequence())
        out.push_back(n.scalar());
    return out;
}

std::string
Node::dump(int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    std::ostringstream oss;
    switch (kind_) {
      case Kind::Null:
        oss << pad << "~\n";
        break;
      case Kind::Scalar:
        oss << pad << scalar_ << "\n";
        break;
      case Kind::Sequence:
        for (const Node& n : seq_) {
            if (n.isScalar()) {
                oss << pad << "- " << n.scalar_ << "\n";
            } else {
                oss << pad << "-\n" << n.dump(indent + 2);
            }
        }
        break;
      case Kind::Mapping:
        for (const auto& [k, v] : map_) {
            if (v.isScalar()) {
                oss << pad << k << ": " << v.scalar_ << "\n";
            } else if (v.isNull()) {
                oss << pad << k << ":\n";
            } else {
                oss << pad << k << ":\n" << v.dump(indent + 2);
            }
        }
        break;
    }
    return oss.str();
}

namespace
{

/** One significant input line. */
struct Line
{
    int indent;
    std::string content;
    int number;
};

/** Strip a trailing comment: `#` at start or preceded by whitespace. */
std::string
stripComment(const std::string& raw)
{
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '#' &&
            (i == 0 || raw[i - 1] == ' ' || raw[i - 1] == '\t')) {
            return raw.substr(0, i);
        }
    }
    return raw;
}

/** Split raw text into significant lines with indents. */
std::vector<Line>
lex(const std::string& text)
{
    std::vector<Line> lines;
    std::istringstream iss(text);
    std::string raw;
    int number = 0;
    while (std::getline(iss, raw)) {
        ++number;
        raw = stripComment(raw);
        int indent = 0;
        std::size_t i = 0;
        while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) {
            indent += raw[i] == '\t' ? 4 : 1;
            ++i;
        }
        std::string content = trim(raw.substr(i));
        if (content.empty())
            continue;
        lines.push_back({indent, content, number});
    }
    return lines;
}

class Parser
{
  public:
    explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

    Node
    parseDocument()
    {
        if (lines_.empty())
            return Node();
        Node root = parseNode(lines_[0].indent);
        if (pos_ != lines_.size()) {
            specError("YAML line ", lines_[pos_].number,
                      ": unexpected dedent/content '",
                      lines_[pos_].content, "'");
        }
        return root;
    }

  private:
    /** Parse the block starting at the current position at @p indent. */
    Node
    parseNode(int indent)
    {
        TEAAL_ASSERT(pos_ < lines_.size(), "parseNode past end");
        if (startsWith(lines_[pos_].content, "-"))
            return parseSequence(indent);
        return parseMapping(indent);
    }

    Node
    parseSequence(int indent)
    {
        Node seq = Node::makeSequence();
        while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
               isDashEntry(lines_[pos_].content)) {
            Line& line = lines_[pos_];
            std::string rest =
                line.content.size() > 1 ? trim(line.content.substr(1)) : "";
            if (rest.empty()) {
                // `-` alone: item is the following indented block.
                ++pos_;
                if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
                    seq.sequence().push_back(
                        parseNode(lines_[pos_].indent));
                } else {
                    seq.sequence().push_back(Node());
                }
            } else {
                // Rewrite `- content` as `content` two columns deeper and
                // parse the item in place; following lines indented past
                // the dash belong to the same item.
                line.indent = indent + 2;
                line.content = rest;
                seq.sequence().push_back(parseItem(indent));
            }
        }
        return seq;
    }

    /**
     * Parse a sequence item whose first (rewritten) line sits at an
     * indent greater than the dash. Continuation lines may use any
     * indent greater than the dash indent.
     */
    Node
    parseItem(int dash_indent)
    {
        const Line& first = lines_[pos_];
        if (!looksLikeMapEntry(first.content))
            return parseScalarLine();
        // Normalize all lines of this item to the first line's indent so
        // `- tensor: T` / `  config: X` parse as one mapping.
        std::size_t scan = pos_;
        const int item_indent = first.indent;
        while (scan < lines_.size() && (scan == pos_ ||
                                        lines_[scan].indent > dash_indent)) {
            if (lines_[scan].indent < item_indent &&
                lines_[scan].indent > dash_indent) {
                specError("YAML line ", lines_[scan].number,
                          ": inconsistent indentation in sequence item");
            }
            ++scan;
        }
        return parseNode(item_indent);
    }

    Node
    parseMapping(int indent)
    {
        Node map = Node::makeMapping();
        while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
               !isDashEntry(lines_[pos_].content)) {
            const Line& line = lines_[pos_];
            const std::size_t colon = topLevelColon(line.content);
            if (colon == std::string::npos) {
                specError("YAML line ", line.number, ": expected 'key:', ",
                          "got '", line.content, "'");
            }
            std::string key = trim(line.content.substr(0, colon));
            std::string value = trim(line.content.substr(colon + 1));
            ++pos_;
            Node child;
            if (!value.empty()) {
                child = parseFlow(value, line.number);
            } else if (pos_ < lines_.size() &&
                       lines_[pos_].indent > indent) {
                child = parseNode(lines_[pos_].indent);
            }
            if (map.has(key)) {
                specError("YAML line ", line.number, ": duplicate key '",
                          key, "'");
            }
            map.mapping().emplace_back(std::move(key), std::move(child));
        }
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
            specError("YAML line ", lines_[pos_].number,
                      ": unexpected indentation");
        }
        return map;
    }

    Node
    parseScalarLine()
    {
        Node n = parseFlow(lines_[pos_].content, lines_[pos_].number);
        ++pos_;
        return n;
    }

    /** Parse an inline value: flow sequence `[...]` or scalar. */
    static Node
    parseFlow(const std::string& value, int line_number)
    {
        if (!value.empty() && value.front() == '[') {
            if (value.back() != ']') {
                specError("YAML line ", line_number,
                          ": unterminated flow sequence '", value, "'");
            }
            Node seq = Node::makeSequence();
            const std::string inner =
                trim(value.substr(1, value.size() - 2));
            if (inner.empty())
                return seq;
            for (const std::string& field : splitTopLevel(inner, ','))
                seq.sequence().push_back(parseFlow(field, line_number));
            return seq;
        }
        return Node::makeScalar(value);
    }

    /** `- foo` or bare `-`, but not e.g. `-5` used as a scalar key. */
    static bool
    isDashEntry(const std::string& content)
    {
        return content == "-" ||
               (content.size() >= 2 && content[0] == '-' &&
                content[1] == ' ');
    }

    /** True if the line contains a top-level `key: value` colon. */
    static bool
    looksLikeMapEntry(const std::string& content)
    {
        return topLevelColon(content) != std::string::npos;
    }

    /** Index of the first ':' at paren/bracket depth 0, or npos. */
    static std::size_t
    topLevelColon(const std::string& s)
    {
        int depth = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            const char c = s[i];
            if (c == '(' || c == '[')
                ++depth;
            else if (c == ')' || c == ']')
                --depth;
            else if (c == ':' && depth == 0)
                return i;
        }
        return std::string::npos;
    }

    std::vector<Line> lines_;
    std::size_t pos_ = 0;
};

} // namespace

Node
parse(const std::string& text)
{
    return Parser(lex(text)).parseDocument();
}

Node
parseFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        specError("cannot open YAML file '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parse(oss.str());
}

} // namespace teaal::yaml
