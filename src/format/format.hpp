/**
 * @file
 * Concrete-representation (format) specification and footprint model
 * (paper §4.1.1, Figure 5b).
 *
 * Each tensor may have several named format configurations (the
 * fibertree may change representation as it is manipulated). Each rank
 * of a configuration declares:
 *   - format type: U (uncompressed), C (compressed), or B (uncompressed
 *     coordinates + compressed payloads, e.g. SIGMA's bitmap),
 *   - layout: contiguous (struct-of-arrays) or interleaved
 *     (array-of-structs, e.g. OuterSPACE's linked lists),
 *   - data widths: cbits (coordinates), pbits (payloads), fhbits
 *     (fiber headers, e.g. linked-list pointers).
 *
 * Unspecified widths default per format type at query time: implicit
 * coordinates of a U fiber cost 0 bits, compressed coordinates default
 * to 32, leaf payloads default to 64, and interior payloads (fiber
 * references) to 32.
 */
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fibertree/tensor.hpp"
#include "yaml/yaml.hpp"

namespace teaal::fmt
{

/** Format of all fibers in one rank. */
struct RankFormat
{
    enum class Type { U, C, B };
    enum class Layout { Contiguous, Interleaved };

    Type type = Type::C;
    Layout layout = Layout::Contiguous;
    std::optional<int> cbits;
    std::optional<int> pbits;
    std::optional<int> fhbits;

    /** Resolved coordinate width given defaults. */
    int coordBits() const;
    /** Resolved payload width; leaves default wider than references. */
    int payloadBits(bool is_leaf) const;
    /** Resolved fiber-header width. */
    int headerBits() const;
};

/** One named configuration of one tensor. */
struct TensorFormat
{
    std::string config;
    /// Rank order of the stored representation (defaults to mapping's).
    std::vector<std::string> rankOrder;
    std::map<std::string, RankFormat> ranks;

    /**
     * Format of @p rank_id with partitioning-aware fallback: an exact
     * match wins; otherwise trailing digits are stripped (K0 -> K), so
     * partitioned ranks inherit the base rank's format.
     */
    const RankFormat& rankFormat(const std::string& rank_id) const;
};

/** All formats of all tensors: format -> tensor -> config. */
class FormatSpec
{
  public:
    FormatSpec() = default;

    /** Parse the `format:` section of a TeAAL specification. */
    static FormatSpec parse(const yaml::Node& node);

    bool hasTensor(const std::string& tensor) const;

    /** True iff @p tensor declares a configuration named @p config. */
    bool hasConfig(const std::string& tensor,
                   const std::string& config) const;

    /**
     * Configuration lookup. An empty @p config selects the tensor's
     * only configuration (error if ambiguous). Missing tensors get a
     * default all-compressed format.
     */
    const TensorFormat& get(const std::string& tensor,
                            const std::string& config = "") const;

    /**
     * Like get(), but an ambiguous lookup returns the first declared
     * configuration instead of throwing (used for default routing of
     * tensors whose binding does not name a config).
     */
    const TensorFormat& getLenient(const std::string& tensor) const;

    /** Register a configuration programmatically. */
    void add(const std::string& tensor, TensorFormat format);

  private:
    std::map<std::string, std::map<std::string, TensorFormat>> tensors_;
    mutable std::map<std::string, TensorFormat> defaults_;
};

/**
 * Footprint model: bits occupied by one fiber of @p occupancy elements
 * at a rank with @p shape legal coordinates.
 *
 * @param span The coordinate extent the fiber actually stores
 *        (last - first + 1). Uncompressed (U/B) structures are sized
 *        by min(shape, span): a shape-partitioned tile's uncompressed
 *        payload array covers the tile range, not the whole rank.
 *        Pass shape when unknown.
 */
std::uint64_t fiberBits(const RankFormat& fmt, std::size_t occupancy,
                        ft::Coord shape, bool is_leaf,
                        ft::Coord span = -1);

/** Total footprint in bits of a tensor in configuration @p format. */
std::uint64_t tensorBits(const TensorFormat& format, const ft::Tensor& t);

/**
 * Footprint in bits of the subtree hanging below one payload of the
 * fiber at @p level (used for eager-binding loads). For a leaf payload
 * this is just the leaf's payload width.
 */
std::uint64_t subtreeBits(const TensorFormat& format,
                          const std::vector<std::string>& rank_ids,
                          const ft::Payload& payload, std::size_t level);

} // namespace teaal::fmt
