#include "format/format.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::fmt
{

int
RankFormat::coordBits() const
{
    if (cbits)
        return *cbits;
    switch (type) {
      case Type::U:
        return 0; // implicit coordinates
      case Type::C:
        return 32;
      case Type::B:
        return 1; // presence bitmap
    }
    return 32;
}

int
RankFormat::payloadBits(bool is_leaf) const
{
    if (pbits)
        return *pbits;
    return is_leaf ? 64 : 32;
}

int
RankFormat::headerBits() const
{
    return fhbits.value_or(0);
}

const RankFormat&
TensorFormat::rankFormat(const std::string& rank_id) const
{
    auto it = ranks.find(rank_id);
    if (it != ranks.end())
        return it->second;
    // Partitioned ranks (K1, KM0, ...) inherit the base rank format.
    std::string base = rank_id;
    while (!base.empty() &&
           std::isdigit(static_cast<unsigned char>(base.back()))) {
        base.pop_back();
    }
    it = ranks.find(base);
    if (it != ranks.end())
        return it->second;
    static const RankFormat default_fmt{};
    return default_fmt;
}

FormatSpec
FormatSpec::parse(const yaml::Node& node)
{
    FormatSpec spec;
    if (node.isNull())
        return spec;
    for (const auto& [tensor, configs] : node.mapping()) {
        for (const auto& [config_name, body] : configs.mapping()) {
            TensorFormat tf;
            tf.config = config_name;
            for (const auto& [key, value] : body.mapping()) {
                if (key == "rank-order") {
                    tf.rankOrder = value.scalarList();
                    continue;
                }
                RankFormat rf;
                for (const auto& [attr, av] : value.mapping()) {
                    if (attr == "format") {
                        const std::string f = av.scalar();
                        if (f == "U")
                            rf.type = RankFormat::Type::U;
                        else if (f == "C")
                            rf.type = RankFormat::Type::C;
                        else if (f == "B")
                            rf.type = RankFormat::Type::B;
                        else
                            specError("tensor ", tensor, " rank ", key,
                                      ": unknown format '", f, "'");
                    } else if (attr == "layout") {
                        const std::string l = av.scalar();
                        if (l == "contiguous")
                            rf.layout = RankFormat::Layout::Contiguous;
                        else if (l == "interleaved")
                            rf.layout = RankFormat::Layout::Interleaved;
                        else
                            specError("tensor ", tensor, " rank ", key,
                                      ": unknown layout '", l, "'");
                    } else if (attr == "cbits") {
                        rf.cbits = static_cast<int>(av.asLong());
                    } else if (attr == "pbits") {
                        rf.pbits = static_cast<int>(av.asLong());
                    } else if (attr == "fhbits") {
                        rf.fhbits = static_cast<int>(av.asLong());
                    } else {
                        specError("tensor ", tensor, " rank ", key,
                                  ": unknown format attribute '", attr,
                                  "'");
                    }
                }
                tf.ranks[key] = rf;
            }
            spec.add(tensor, std::move(tf));
        }
    }
    return spec;
}

bool
FormatSpec::hasTensor(const std::string& tensor) const
{
    return tensors_.count(tensor) > 0;
}

bool
FormatSpec::hasConfig(const std::string& tensor,
                      const std::string& config) const
{
    const auto it = tensors_.find(tensor);
    return it != tensors_.end() && it->second.count(config) > 0;
}

const TensorFormat&
FormatSpec::get(const std::string& tensor, const std::string& config) const
{
    const auto it = tensors_.find(tensor);
    if (it == tensors_.end()) {
        // Default: every rank compressed with default widths.
        auto [dit, inserted] = defaults_.try_emplace(tensor);
        if (inserted)
            dit->second.config = "default";
        return dit->second;
    }
    const auto& configs = it->second;
    if (config.empty()) {
        if (configs.size() != 1)
            specError("tensor ", tensor, " has ", configs.size(),
                      " format configs; binding must name one");
        return configs.begin()->second;
    }
    const auto cit = configs.find(config);
    if (cit == configs.end())
        specError("tensor ", tensor, ": unknown format config '", config,
                  "'");
    return cit->second;
}

const TensorFormat&
FormatSpec::getLenient(const std::string& tensor) const
{
    const auto it = tensors_.find(tensor);
    if (it == tensors_.end() || it->second.empty())
        return get(tensor);
    return it->second.begin()->second;
}

void
FormatSpec::add(const std::string& tensor, TensorFormat format)
{
    tensors_[tensor][format.config] = std::move(format);
}

std::uint64_t
fiberBits(const RankFormat& fmt, std::size_t occupancy, ft::Coord shape,
          bool is_leaf, ft::Coord span)
{
    const std::uint64_t pbits =
        static_cast<std::uint64_t>(fmt.payloadBits(is_leaf));
    const std::uint64_t cbits =
        static_cast<std::uint64_t>(fmt.coordBits());
    const std::uint64_t extent = static_cast<std::uint64_t>(
        span < 0 ? shape : std::min(shape, span));
    std::uint64_t bits = static_cast<std::uint64_t>(fmt.headerBits());
    switch (fmt.type) {
      case RankFormat::Type::U:
        // Payload array sized by the stored coordinate range;
        // coordinates implicit.
        bits += pbits * extent;
        bits += cbits * extent;
        break;
      case RankFormat::Type::C:
        bits += (cbits + pbits) * static_cast<std::uint64_t>(occupancy);
        break;
      case RankFormat::Type::B:
        // Uncompressed coordinate structure, compressed payloads.
        bits += cbits * extent;
        bits += pbits * static_cast<std::uint64_t>(occupancy);
        break;
    }
    return bits;
}

namespace
{

std::uint64_t
fiberSubtreeBits(const TensorFormat& format,
                 const std::vector<std::string>& rank_ids,
                 const ft::Fiber& fiber, std::size_t level)
{
    TEAAL_ASSERT(level < rank_ids.size(), "format level out of range");
    const RankFormat& rf = format.rankFormat(rank_ids[level]);
    const bool is_leaf = level + 1 == rank_ids.size();
    const ft::Coord span =
        fiber.empty() ? 0
                      : fiber.coordAt(fiber.size() - 1) -
                            fiber.coordAt(0) + 1;
    std::uint64_t bits =
        fiberBits(rf, fiber.size(), fiber.shape(), is_leaf, span);
    if (!is_leaf) {
        for (std::size_t pos = 0; pos < fiber.size(); ++pos) {
            const ft::Payload& p = fiber.payloadAt(pos);
            if (p.isFiber() && p.fiber() != nullptr) {
                bits += fiberSubtreeBits(format, rank_ids, *p.fiber(),
                                         level + 1);
            }
        }
    }
    return bits;
}

} // namespace

std::uint64_t
tensorBits(const TensorFormat& format, const ft::Tensor& t)
{
    if (t.root() == nullptr)
        return 0;
    return fiberSubtreeBits(format, t.rankIds(), *t.root(), 0);
}

std::uint64_t
subtreeBits(const TensorFormat& format,
            const std::vector<std::string>& rank_ids,
            const ft::Payload& payload, std::size_t level)
{
    if (payload.isValue()) {
        TEAAL_ASSERT(level >= 1, "leaf payload at root level");
        const RankFormat& rf = format.rankFormat(rank_ids[level - 1]);
        return static_cast<std::uint64_t>(rf.payloadBits(true));
    }
    if (payload.fiber() == nullptr)
        return 0;
    return fiberSubtreeBits(format, rank_ids, *payload.fiber(), level);
}

} // namespace teaal::fmt
