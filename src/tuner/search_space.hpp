/**
 * @file
 * The mapping explorer's design space: a parameterized family of
 * SpMSpM (Z = A · B) specifications over one generic spatial machine.
 *
 * Three orthogonal axes, every combination a complete compilable
 * specification:
 *
 *   loop order    Gustavson (row-wise, K between M and N), inner
 *                 product (K innermost, full reduction per output
 *                 element), outer product (K outermost, every k
 *                 revisits the whole output);
 *   partitioning  the M rank shape-split into tiles of 16/64/256 —
 *                 the tile is also the spatial fan-out (space: [M0]);
 *   formats       the leaf rank of each input stored compressed-
 *                 coordinate (C, 32-bit coords) or bitmap (B, 1-bit
 *                 presence), independently for A and B.
 *
 * The machine itself is fixed (DRAM + per-PE accumulation buffet +
 * ALUs + intersection unit + sequencer) so the tuner ranks *mappings*,
 * not hardware budgets.
 */
#pragma once

#include <string>
#include <vector>

#include "compiler/compiler.hpp"

namespace teaal::tuner
{

/** One point of the design space: a label and its specification. */
struct Candidate
{
    std::string label;
    compiler::Specification spec;
};

/** Knobs for spmspmSearchSpace — defaults give the canonical
 *  3 × 3 × 2 × 2 = 36-candidate space. */
struct SearchSpaceOptions
{
    /// Loop-order axis; valid names: "gustavson", "inner", "outer".
    std::vector<std::string> loopOrders = {"gustavson", "inner",
                                           "outer"};
    /// M-rank uniform_shape tile sizes (also the spatial width).
    std::vector<long> mTiles = {16, 64, 256};
    /// Leaf-rank format of A / of B: 'C' or 'B'.
    std::vector<char> aLeafFormats = {'C', 'B'};
    std::vector<char> bLeafFormats = {'C', 'B'};

    /// Machine constants.
    double clock = 1e9;
    double dramGBs = 128;
    long pes = 256; ///< >= max mTile so the space never overflows
};

/**
 * Enumerate the design space in deterministic order (loop order
 * outermost, then tile, then A format, then B format). Labels look
 * like "gustavson/m64/A:C/B:B".
 */
std::vector<Candidate>
spmspmSearchSpace(const SearchSpaceOptions& opts = {});

} // namespace teaal::tuner
