/**
 * @file
 * The two-speed mapping autotuner: rank every candidate with the
 * analytic model (CompiledModel::estimate — microseconds per mapping,
 * no fibertree walk), then trace-simulate only the top-K survivors to
 * confirm the winner.
 *
 * Both phases shard across a util::ThreadPool by candidate index
 * (strided slots, results written to per-candidate cells), and every
 * tie breaks on the candidate's position in the input vector — so the
 * ranking, the traced set, and the chosen best mapping are identical
 * at any thread count.
 *
 * Degradation: a candidate whose estimate throws DiagnosticError
 * (section "analytic" for constructs the closed forms cannot express,
 * or an injected "model.analytic.estimate" failpoint) is not dropped —
 * it joins the trace set unconditionally. When *every* estimate fails,
 * the tuner transparently becomes an exhaustive trace search
 * (analyticUsed = false): slower, never wrong.
 */
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "compiler/pipeline.hpp"
#include "tuner/search_space.hpp"

namespace teaal::tuner
{

/** Knobs for tune(). */
struct TunerOptions
{
    /// Candidates confirmed by trace simulation, best-estimate first
    /// (estimate failures are traced in addition). 0 traces nothing
    /// unless estimates failed; >= candidate count is exhaustive.
    std::size_t topK = 4;

    /// Worker threads sharding the candidate set (1 = serial). Both
    /// phases stride candidates across min(threads, n) slots.
    unsigned threads = 1;

    /// Pool the workers are drawn from; nullptr lazily creates a
    /// private pool when threads >= 2. Must outlive the call.
    util::ThreadPool* pool = nullptr;
};

/** One candidate's outcome, in ranking order. */
struct RankedCandidate
{
    std::size_t index = 0; ///< position in the input candidate vector
    std::string label;

    /// Analytic prediction (infinity when the estimate failed).
    double analyticSeconds = std::numeric_limits<double>::infinity();

    /// Trace-simulated seconds; valid only when traced.
    double traceSeconds = std::numeric_limits<double>::infinity();
    bool traced = false;

    /// estimate() threw (DiagnosticError); ranked after every
    /// successful estimate and always trace-simulated.
    bool estimateFailed = false;
};

/** tune()'s result. */
struct TuneResult
{
    /// Every candidate: successful estimates by ascending
    /// analyticSeconds (ties by index), then failures by index.
    std::vector<RankedCandidate> ranking;

    /// Input index of the winner: best traceSeconds over the traced
    /// set (ties by index).
    std::size_t bestIndex = 0;

    std::size_t tracedCount = 0;
    std::size_t estimateFailures = 0;

    /// False when every estimate failed and the tuner fell back to
    /// exhaustive trace search.
    bool analyticUsed = true;

    /** Ranking entry of the winner. */
    const RankedCandidate&
    best() const
    {
        for (const RankedCandidate& rc : ranking) {
            if (rc.index == bestIndex)
                return rc;
        }
        return ranking.front();
    }
};

/**
 * Compile, analytically rank, and trace-confirm @p candidates against
 * @p workload. Deterministic at any opts.threads. Throws on an empty
 * candidate set or a candidate whose *compile* fails (a malformed
 * search space is a caller bug; only estimate() failures degrade).
 */
TuneResult tune(const std::vector<Candidate>& candidates,
                const compiler::Workload& workload,
                const TunerOptions& opts = {});

} // namespace teaal::tuner
