#include "tuner/tuner.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "util/diagnostic.hpp"

namespace teaal::tuner
{

namespace
{

/**
 * Run fn(0..n-1) striped across min(threads, n) pool slots. Slot s
 * takes indices s, s+slots, ... — which indices run where is fixed by
 * the count alone, and every result lands in its own per-index cell,
 * so the outcome is identical at any thread count.
 */
template <typename Fn>
void
forEachSharded(std::size_t n, unsigned threads, util::ThreadPool* pool,
               std::unique_ptr<util::ThreadPool>& owned, const Fn& fn)
{
    const unsigned slots = static_cast<unsigned>(std::min<std::size_t>(
        std::max(threads, 1u), std::max<std::size_t>(n, 1)));
    if (slots <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (pool == nullptr) {
        if (!owned)
            owned = std::make_unique<util::ThreadPool>(slots);
        pool = owned.get();
    }
    pool->launch(slots,
                 [&](unsigned s) {
                     for (std::size_t i = s; i < n; i += slots)
                         fn(i);
                 })
        .wait();
}

} // namespace

TuneResult
tune(const std::vector<Candidate>& candidates,
     const compiler::Workload& workload, const TunerOptions& opts)
{
    const std::size_t n = candidates.size();
    if (n == 0)
        diagError("tuner", "candidates", "empty candidate set");

    std::unique_ptr<util::ThreadPool> owned;
    constexpr double kInf = std::numeric_limits<double>::infinity();

    // Phase 1: compile + analytic estimate, one cell per candidate.
    // Compile failures propagate (malformed search space = caller
    // bug); estimate failures degrade the candidate to the trace set.
    std::vector<std::unique_ptr<compiler::CompiledModel>> models(n);
    std::vector<double> analytic(n, kInf);
    std::vector<char> failed(n, 0);
    forEachSharded(n, opts.threads, opts.pool, owned,
                   [&](std::size_t i) {
                       models[i] =
                           std::make_unique<compiler::CompiledModel>(
                               compiler::compile(candidates[i].spec));
                       try {
                           analytic[i] =
                               models[i]->estimate(workload).seconds();
                       } catch (const DiagnosticError&) {
                           failed[i] = 1;
                       }
                   });

    // Rank: successful estimates ascending, failures last, every tie
    // broken by input index.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (failed[a] != failed[b])
                      return failed[a] < failed[b];
                  if (analytic[a] != analytic[b])
                      return analytic[a] < analytic[b];
                  return a < b;
              });

    // Trace set: the top-K estimates plus every estimate failure.
    std::vector<char> doTrace(n, 0);
    std::vector<std::size_t> traceIdx;
    std::size_t picked = 0;
    for (std::size_t i : order) {
        if (failed[i])
            doTrace[i] = 1;
        else if (picked < opts.topK) {
            doTrace[i] = 1;
            ++picked;
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (doTrace[i])
            traceIdx.push_back(i);
    }

    // Phase 2: confirm by trace simulation. Fire-and-forget runs —
    // each model is used exactly once more.
    std::vector<double> traceSec(n, kInf);
    forEachSharded(traceIdx.size(), opts.threads, opts.pool, owned,
                   [&](std::size_t t) {
                       const std::size_t i = traceIdx[t];
                       compiler::RunOptions ro;
                       ro.cacheState = false;
                       traceSec[i] =
                           models[i]->run(workload, ro).perf.totalSeconds;
                   });

    TuneResult res;
    res.tracedCount = traceIdx.size();
    for (std::size_t i = 0; i < n; ++i)
        res.estimateFailures += failed[i] != 0;
    res.analyticUsed = res.estimateFailures < n;

    for (std::size_t i : order) {
        RankedCandidate rc;
        rc.index = i;
        rc.label = candidates[i].label;
        rc.analyticSeconds = analytic[i];
        rc.traced = doTrace[i] != 0;
        rc.traceSeconds = traceSec[i];
        rc.estimateFailed = failed[i] != 0;
        res.ranking.push_back(std::move(rc));
    }

    // Winner: best traced seconds (first index wins ties); with an
    // empty trace set (topK = 0, no failures) fall back to the best
    // estimate.
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (!doTrace[i])
            continue;
        if (best == n || traceSec[i] < traceSec[best])
            best = i;
    }
    res.bestIndex = best != n ? best : order.front();
    return res;
}

} // namespace teaal::tuner
