#include "tuner/search_space.hpp"

#include "accelerators/spec_util.hpp"
#include "util/error.hpp"

namespace teaal::tuner
{

namespace
{

const char* kTemplate = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
mapping:
  rank-order:
    A: [$AORDER]
    B: [$BORDER]
    Z: [M, N]
  partitioning:
    Z:
      M: [uniform_shape($MTILE)]
  loop-order:
    Z: [$LOOP]
  spacetime:
    Z:
      space: [M0]
      time: [$TIME]
format:
  A:
    Tuned:
      $AUP:
        format: U
        pbits: 32
      $ALOW:
        format: $AFMT
        cbits: $ACBITS
        pbits: 64
  B:
    Tuned:
      $BUP:
        format: U
        pbits: 32
      $BLOW:
        format: $BFMT
        cbits: $BCBITS
        pbits: 64
  Z:
    Tuned:
      M:
        format: U
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
architecture:
  Machine:
    clock: $CLOCK
    subtree:
      - name: System
        local:
          - name: DDR
            class: DRAM
            attributes:
              bandwidth: $DRAMBW
        subtree:
          - name: PE
            num: $PES
            local:
              - name: AccumBuf
                class: Buffer
                attributes:
                  type: buffet
                  size: 65536
              - name: MulALU
                class: Compute
                attributes:
                  type: mul
              - name: AddALU
                class: Compute
                attributes:
                  type: add
              - name: KIsect
                class: Intersection
                attributes:
                  type: leader-follower
                  leader: A
              - name: Seq
                class: Sequencer
                attributes:
                  num_ranks: 2
binding:
  Z:
    config: Machine
    components:
      - component: AccumBuf
        bindings:
          - tensor: Z
            rank: N
            type: elem
            style: lazy
            evict-on: M0
      - component: MulALU
        bindings:
          - op: mul
      - component: AddALU
        bindings:
          - op: add
      - component: KIsect
        bindings:
          - op: intersect
      - component: Seq
        bindings:
          - op: seq
)";

/** Per-loop-order tensor layouts and schedules. */
struct OrderInfo
{
    const char* aOrder; ///< A rank-order ("M, K" or "K, M")
    const char* bOrder;
    const char* loop;   ///< loop-order for Z
    const char* time;   ///< loop order minus the space rank M0
};

OrderInfo
orderInfo(const std::string& name)
{
    if (name == "gustavson")
        return {"M, K", "K, N", "M1, M0, K, N", "M1, K, N"};
    if (name == "inner")
        return {"M, K", "N, K", "M1, M0, N, K", "M1, N, K"};
    if (name == "outer")
        return {"K, M", "K, N", "K, M1, M0, N", "K, M1, N"};
    specError("search space: unknown loop order '", name, "'");
}

} // namespace

std::vector<Candidate>
spmspmSearchSpace(const SearchSpaceOptions& opts)
{
    std::vector<Candidate> out;
    for (const std::string& order : opts.loopOrders) {
        const OrderInfo oi = orderInfo(order);
        // The format section lists ranks in the tensor's rank-order.
        const bool aSwizzled = order == "outer"; // A stored [K, M]
        const bool bSwizzled = order == "inner"; // B stored [N, K]
        for (long tile : opts.mTiles) {
            for (char af : opts.aLeafFormats) {
                for (char bf : opts.bLeafFormats) {
                    const std::string yaml = accel::subst(
                        kTemplate,
                        {{"AORDER", oi.aOrder},
                         {"BORDER", oi.bOrder},
                         {"LOOP", oi.loop},
                         {"TIME", oi.time},
                         {"MTILE", accel::num(tile)},
                         {"AUP", aSwizzled ? "K" : "M"},
                         {"ALOW", aSwizzled ? "M" : "K"},
                         {"AFMT", std::string(1, af)},
                         {"ACBITS", af == 'B' ? "1" : "32"},
                         {"BUP", bSwizzled ? "N" : "K"},
                         {"BLOW", bSwizzled ? "K" : "N"},
                         {"BFMT", std::string(1, bf)},
                         {"BCBITS", bf == 'B' ? "1" : "32"},
                         {"CLOCK", accel::num(opts.clock)},
                         {"DRAMBW", accel::num(opts.dramGBs)},
                         {"PES", accel::num(opts.pes)}});
                    Candidate c;
                    c.label = order + "/m" + std::to_string(tile) +
                              "/A:" + af + "/B:" + bf;
                    c.spec = compiler::Specification::parse(yaml);
                    out.push_back(std::move(c));
                }
            }
        }
    }
    return out;
}

} // namespace teaal::tuner
