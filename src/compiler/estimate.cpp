/**
 * @file
 * CompiledModel::estimate — the analytic fast path of the two-speed
 * pipeline. Binds the compile-time EinsumRecipes to tensor *metadata*
 * (rank shapes + occupancy hints) instead of tensor data and walks the
 * cascade symbolically; model::analyze consumes the resulting records
 * exactly as it would the trace simulator's.
 */
#include "compiler/pipeline.hpp"

#include <algorithm>

#include "model/tables.hpp"
#include "storage/packed.hpp"
#include "util/failpoint.hpp"

namespace teaal::compiler
{

namespace analytic = model::analytic;

model::analytic::AnalyticEstimate
CompiledModel::estimate(const Workload& workload) const
{
    TEAAL_FAILPOINT("model.analytic.estimate");
    validateWorkload(workload);

    const std::uint64_t fp = workload.fingerprint();
    {
        std::lock_guard<std::mutex> lk(*cacheMutex_);
        for (auto it = estimates_.begin(); it != estimates_.end();
             ++it) {
            if (it->first == fp) {
                estimates_.splice(estimates_.begin(), estimates_, it);
                analytic::AnalyticEstimate hit =
                    estimates_.front().second;
                hit.cacheHit = true;
                return hit;
            }
        }
    }

    const einsum::EinsumSpec& es = spec_.einsums;

    // Input statistics, with the mapping's declared rank-order applied
    // symbolically (the real pipeline swizzles offline and uncharged —
    // prepareInputs). A packed input stays eligible for the packed
    // fast path only while concordant, exactly like the real binding.
    std::map<std::string, analytic::SymbolicTensor> stats;
    for (const std::string& name : es.inputTensors()) {
        analytic::SymbolicTensor st;
        if (const auto pk = workload.packed(name)) {
            st = analytic::SymbolicTensor::fromHints(
                name, pk->ranks(), pk->occupancyHints(),
                /*packed=*/true);
        } else {
            const ft::Tensor& t = workload.tensor(name);
            st = analytic::SymbolicTensor::fromHints(
                name, t.ranks(), t.occupancyHints());
        }
        const auto& order = spec_.mapping.rankOrder(name);
        if (!order.empty() && st.rankIds() != order) {
            st = analytic::swizzle(st, order);
            st.packed = false; // discordant packed inputs unpack
        }
        stats.emplace(name, std::move(st));
    }

    analytic::AnalyticEstimate out;
    std::set<std::string> produced;
    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        analytic::SymbolicPlan sp =
            analytic::symbolicInstantiate(recipes_[i], es, stats);

        // Swizzles of intermediates happen online (the engine merges
        // them mid-cascade); workload inputs reorder offline, free.
        for (ir::TensorPlan& tp : sp.plan.inputs)
            tp.swizzleOnline = produced.count(tp.name) != 0;

        const model::ModelTables tables = model::ModelTables::build(
            sp.plan, *topologies_[i], *bindings_[i], spec_.formats,
            onChip_[i]);
        analytic::EinsumEstimate ee =
            analytic::estimateEinsum(sp, tables);

        for (const auto& [tensor, tt] : ee.record.traffic) {
            model::TensorTraffic& agg = out.traffic[tensor];
            agg.readBytes += tt.readBytes;
            agg.writeBytes += tt.writeBytes;
            agg.poBytes += tt.poBytes;
        }
        for (const auto& [cname, ca] : ee.record.components) {
            const auto mit = ca.counts.find("mul_ops");
            if (mit != ca.counts.end())
                out.mulOps += mit->second;
            const auto ait = ca.counts.find("add_ops");
            if (ait != ca.counts.end())
                out.addOps += ait->second;
        }
        out.records.push_back(std::move(ee.record));

        const std::string& oname = es.expressions[i].output.name;
        produced.insert(oname);
        stats.insert_or_assign(oname, std::move(ee.produced));
    }

    out.perf = model::analyze(out.records, spec_.architecture, blocks_);

    {
        std::lock_guard<std::mutex> lk(*cacheMutex_);
        estimates_.emplace_front(fp, out);
        while (estimates_.size() >
               std::max<std::size_t>(opts_.workloadCacheCapacity, 1))
            estimates_.pop_back();
    }
    return out;
}

} // namespace teaal::compiler
