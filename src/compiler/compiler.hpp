/**
 * @file
 * The TeAAL compiler: parses a full five-part specification (einsum,
 * mapping, format, architecture, binding — paper Figures 3, 5, 6) and
 * generates an executable simulator for it.
 *
 * This is the public entry point of the library:
 *
 *   auto spec = compiler::Specification::parse(yaml_text, params);
 *   compiler::Simulator sim(std::move(spec));
 *   auto result = sim.run({{"A", a}, {"B", b}});
 *   result.perf.totalSeconds; result.traffic["A"].readBytes; ...
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "einsum/parser.hpp"
#include "energy/energy.hpp"
#include "exec/executor.hpp"
#include "format/format.hpp"
#include "mapping/mapping.hpp"
#include "model/perf.hpp"

namespace teaal::compiler
{

/** A complete TeAAL specification. */
struct Specification
{
    einsum::EinsumSpec einsums;
    mapping::MappingSpec mapping;
    fmt::FormatSpec formats;
    arch::ArchSpec architecture;
    binding::BindingSpec bindings;

    /**
     * Parse the five top-level sections from one YAML document.
     * @param params Values for symbolic tile sizes (ExTensor's K1...).
     */
    static Specification parse(const std::string& yaml_text,
                               const mapping::ParamMap& params = {});
};

/** Everything a simulation produces. */
struct SimulationResult
{
    /// All tensors by name (inputs + produced), declared rank order.
    std::map<std::string, ft::Tensor> tensors;

    /// Per-Einsum action counts and traffic.
    std::vector<model::EinsumRecord> records;

    /// Fused-block structure used for the run.
    std::vector<std::vector<std::size_t>> blocks;

    /// Bottleneck timing.
    model::CascadePerf perf;

    /// Accelergy-style energy rollup.
    energy::EnergyBreakdown energy;

    /// DRAM traffic aggregated over the cascade, by tensor.
    std::map<std::string, model::TensorTraffic> traffic;

    /** The final Einsum's output. */
    const ft::Tensor& result(const Specification& spec) const;

    /** Total DRAM bytes (reads + writes). */
    double totalTrafficBytes() const;
};

/** Generates and runs the model for one specification. */
class Simulator
{
  public:
    explicit Simulator(Specification spec);

    const Specification& spec() const { return spec_; }

    /**
     * Execute the cascade on real tensors.
     * @param inputs One tensor per external input, in declared rank
     *        order (they are swizzled offline to the mapping's
     *        rank-order automatically).
     * @param sr     Operator redefinition for graph algorithms.
     */
    SimulationResult run(std::map<std::string, ft::Tensor> inputs,
                         exec::Semiring sr = exec::Semiring::arithmetic());

    /**
     * Algorithmic-minimum DRAM traffic: each input read once, the
     * final result written once (the Figure 9 normalization baseline).
     */
    double algorithmicMinBytes(
        const std::map<std::string, ft::Tensor>& tensors) const;

  private:
    Specification spec_;
};

} // namespace teaal::compiler
