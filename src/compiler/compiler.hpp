/**
 * @file
 * The TeAAL specification and simulation-result types, plus the
 * deprecated single-shot `Simulator` shim.
 *
 * The public entry point is the staged pipeline in
 * compiler/pipeline.hpp:
 *
 *   auto spec  = compiler::Specification::parse(yaml_text, params);
 *   auto model = compiler::compile(std::move(spec));
 *   compiler::Workload w;
 *   w.add("A", a).add("B", b);
 *   auto result = model.run(w);
 *   result.perf.totalSeconds; result.traffic["A"].readBytes; ...
 *
 * `Simulator` wraps compile+run in one object for source compatibility
 * with the original API; it recompiles nothing but re-instantiates
 * plans on every run() — prefer CompiledModel for sweeps.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "einsum/parser.hpp"
#include "energy/energy.hpp"
#include "exec/executor.hpp"
#include "format/format.hpp"
#include "mapping/mapping.hpp"
#include "model/perf.hpp"
#include "trace/spill.hpp"

namespace teaal::compiler
{

/** A complete TeAAL specification. */
struct Specification
{
    einsum::EinsumSpec einsums;
    mapping::MappingSpec mapping;
    fmt::FormatSpec formats;
    arch::ArchSpec architecture;
    binding::BindingSpec bindings;

    /**
     * Parse the five top-level sections from one YAML document.
     * Malformed input surfaces as teaal::DiagnosticError pinning the
     * offending section and key.
     * @param params Values for symbolic tile sizes (ExTensor's K1...).
     */
    static Specification parse(const std::string& yaml_text,
                               const mapping::ParamMap& params = {});
};

/** Everything a simulation produces. */
struct SimulationResult
{
    /// All tensors by name (inputs + produced), declared rank order.
    std::map<std::string, ft::Tensor> tensors;

    /// Per-Einsum action counts and traffic.
    std::vector<model::EinsumRecord> records;

    /// Fused-block structure used for the run.
    std::vector<std::vector<std::size_t>> blocks;

    /// Bottleneck timing.
    model::CascadePerf perf;

    /// Accelergy-style energy rollup.
    energy::EnergyBreakdown energy;

    /// DRAM traffic aggregated over the cascade, by tensor.
    std::map<std::string, model::TensorTraffic> traffic;

    /// Out-of-core trace spill totals (RunOptions::spillDir); all
    /// zero when spilling was off or nothing crossed the threshold.
    trace::SpillStats spill;

    /** The final Einsum's output. */
    const ft::Tensor& result(const Specification& spec) const;

    /** Total DRAM bytes (reads + writes). */
    double totalTrafficBytes() const;
};

class CompiledModel;

/**
 * Deprecated single-shot shim over the compile/run pipeline
 * (pipeline.hpp). Compiles in the constructor; every run() binds the
 * inputs as a fresh Workload and discards the instantiated plans, so
 * repeated runs pay full plan instantiation — use
 * `compiler::compile(...)` + `CompiledModel::run(...)` for sweeps and
 * run-many workloads.
 */
class Simulator
{
  public:
    explicit Simulator(Specification spec);
    ~Simulator();
    Simulator(Simulator&&) noexcept;
    Simulator& operator=(Simulator&&) noexcept;

    const Specification& spec() const;

    /** The underlying compiled model. */
    CompiledModel& model() { return *model_; }

    /**
     * Execute the cascade on real tensors.
     * @param inputs One tensor per external input, in declared rank
     *        order (they are swizzled offline to the mapping's
     *        rank-order automatically). The result's `tensors` map
     *        includes the (swizzled) inputs, as the original API did.
     * @param sr     Operator redefinition for graph algorithms.
     */
    SimulationResult run(std::map<std::string, ft::Tensor> inputs,
                         exec::Semiring sr = exec::Semiring::arithmetic());

    /**
     * Algorithmic-minimum DRAM traffic: each input read once, the
     * final result written once (the Figure 9 normalization baseline).
     */
    double algorithmicMinBytes(
        const std::map<std::string, ft::Tensor>& tensors) const;

  private:
    std::unique_ptr<CompiledModel> model_;
};

} // namespace teaal::compiler
