#include "compiler/compiler.hpp"

#include <algorithm>

#include "fibertree/transform.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "yaml/yaml.hpp"

namespace teaal::compiler
{

Specification
Specification::parse(const std::string& yaml_text,
                     const mapping::ParamMap& params)
{
    const yaml::Node doc = yaml::parse(yaml_text);
    Specification spec;
    spec.einsums = einsum::EinsumSpec::parse(doc.at("einsum"));
    if (const yaml::Node* m = doc.find("mapping"))
        spec.mapping = mapping::MappingSpec::parse(*m, params);
    if (const yaml::Node* f = doc.find("format"))
        spec.formats = fmt::FormatSpec::parse(*f);
    if (const yaml::Node* a = doc.find("architecture"))
        spec.architecture = arch::ArchSpec::parse(*a);
    if (const yaml::Node* b = doc.find("binding"))
        spec.bindings = binding::BindingSpec::parse(*b);
    return spec;
}

const ft::Tensor&
SimulationResult::result(const Specification& spec) const
{
    const auto it = tensors.find(spec.einsums.resultTensor());
    TEAAL_ASSERT(it != tensors.end(), "result tensor missing");
    return it->second;
}

double
SimulationResult::totalTrafficBytes() const
{
    double total = 0;
    for (const auto& [tensor, tt] : traffic)
        total += tt.total();
    return total;
}

Simulator::Simulator(Specification spec) : spec_(std::move(spec))
{
    // A default single-DRAM topology lets purely functional runs work
    // without an architecture section.
    if (spec_.architecture.topologyNames().empty()) {
        arch::Topology topo;
        topo.name = "default";
        topo.root.name = "System";
        arch::Component dram;
        dram.name = "MainMemory";
        dram.cls = arch::ComponentClass::DRAM;
        dram.attributes["bandwidth"] = "100";
        topo.root.local.push_back(dram);
        arch::Component alu;
        alu.name = "ALU";
        alu.cls = arch::ComponentClass::Compute;
        alu.attributes["type"] = "mul";
        topo.root.local.push_back(alu);
        spec_.architecture.add(std::move(topo));
    }
}

SimulationResult
Simulator::run(std::map<std::string, ft::Tensor> inputs,
               exec::Semiring sr)
{
    SimulationResult out;
    const einsum::EinsumSpec& es = spec_.einsums;

    // Check inputs and apply the declared rank-order offline
    // (§3.2.2: input swizzles are preprocessing and cost nothing).
    for (const std::string& name : es.inputTensors()) {
        const auto it = inputs.find(name);
        if (it == inputs.end())
            specError("missing input tensor '", name, "'");
        ft::Tensor t = std::move(it->second);
        const auto& order = spec_.mapping.rankOrder(name);
        if (!order.empty() && t.rankIds() != order)
            t = ft::swizzle(t, order);
        out.tensors.emplace(name, std::move(t));
    }
    inputs.clear();

    // Fused blocks must be known before execution: intermediates that
    // stay within a block never touch DRAM.
    out.blocks =
        model::inferBlocks(es, spec_.mapping, spec_.bindings);
    std::map<std::size_t, std::size_t> block_of;
    for (std::size_t b = 0; b < out.blocks.size(); ++b) {
        for (std::size_t idx : out.blocks[b])
            block_of[idx] = b;
    }
    std::set<std::string> fused_intermediates;
    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        const std::string& produced = es.expressions[i].output.name;
        for (int consumer : es.consumersOf(produced)) {
            if (block_of[i] ==
                block_of[static_cast<std::size_t>(consumer)]) {
                fused_intermediates.insert(produced);
            }
        }
    }

    std::vector<std::string> intermediates;

    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        const einsum::Expression& expr = es.expressions[i];
        const binding::EinsumBinding& eb =
            spec_.bindings.einsum(expr.output.name);
        const arch::Topology& topo =
            spec_.architecture.topology(eb.topology);

        ir::EinsumPlan plan = ir::buildPlan(expr, es, spec_.mapping,
                                            out.tensors, intermediates);
        logDebug("einsum ", i, ": ", plan.toString());

        // Within a fused block, a tensor streamed by an earlier Einsum
        // is shared through the pipeline: later Einsums re-use it on
        // chip instead of re-reading DRAM (e.g. Gamma's A).
        std::set<std::string> on_chip = fused_intermediates;
        for (std::size_t j : out.blocks[block_of[i]]) {
            if (j >= i)
                break;
            for (const einsum::TensorRef& in :
                 es.expressions[j].inputs)
                on_chip.insert(in.name);
        }
        model::ModelObserver observer(plan, topo, eb, spec_.formats,
                                      on_chip);
        exec::Executor executor(plan, observer, sr);
        ft::Tensor produced = executor.run();

        model::EinsumRecord record =
            observer.finalize(executor.stats());
        for (const auto& [tensor, tt] : record.traffic) {
            model::TensorTraffic& agg = out.traffic[tensor];
            agg.readBytes += tt.readBytes;
            agg.writeBytes += tt.writeBytes;
            agg.poBytes += tt.poBytes;
        }
        out.records.push_back(std::move(record));

        intermediates.push_back(expr.output.name);
        out.tensors.insert_or_assign(expr.output.name,
                                     std::move(produced));
    }

    out.perf = model::analyze(out.records, spec_.architecture,
                              out.blocks);
    for (const model::EinsumRecord& r : out.records) {
        out.energy += energy::energyOf(
            r, spec_.architecture.topology(r.topologyName));
    }
    return out;
}

double
Simulator::algorithmicMinBytes(
    const std::map<std::string, ft::Tensor>& tensors) const
{
    double bits = 0;
    auto add = [&](const std::string& name) {
        const auto it = tensors.find(name);
        if (it == tensors.end())
            return;
        bits += static_cast<double>(fmt::tensorBits(
            spec_.formats.getLenient(name), it->second));
    };
    for (const std::string& name : spec_.einsums.inputTensors())
        add(name);
    add(spec_.einsums.resultTensor());
    return bits / 8.0;
}

} // namespace teaal::compiler
