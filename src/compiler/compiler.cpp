#include "compiler/compiler.hpp"

#include <algorithm>

#include "compiler/pipeline.hpp"
#include "fibertree/transform.hpp"
#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace teaal::compiler
{

Specification
Specification::parse(const std::string& yaml_text,
                     const mapping::ParamMap& params)
{
    yaml::Node doc;
    try {
        doc = yaml::parse(yaml_text);
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("document", "", e);
    }
    if (!doc.isMapping() || doc.find("einsum") == nullptr) {
        diagError("einsum", "einsum",
                  "missing required section 'einsum'");
    }

    Specification spec;
    try {
        spec.einsums = einsum::EinsumSpec::parse(doc.at("einsum"));
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("einsum", "", e);
    }
    try {
        if (const yaml::Node* m = doc.find("mapping"))
            spec.mapping = mapping::MappingSpec::parse(*m, params);
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("mapping", "", e);
    }
    try {
        if (const yaml::Node* f = doc.find("format"))
            spec.formats = fmt::FormatSpec::parse(*f);
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("format", "", e);
    }
    try {
        if (const yaml::Node* a = doc.find("architecture"))
            spec.architecture = arch::ArchSpec::parse(*a);
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("architecture", "", e);
    }
    try {
        if (const yaml::Node* b = doc.find("binding"))
            spec.bindings = binding::BindingSpec::parse(*b);
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("binding", "", e);
    }
    return spec;
}

const ft::Tensor&
SimulationResult::result(const Specification& spec) const
{
    const auto it = tensors.find(spec.einsums.resultTensor());
    TEAAL_ASSERT(it != tensors.end(), "result tensor missing");
    return it->second;
}

double
SimulationResult::totalTrafficBytes() const
{
    double total = 0;
    for (const auto& [tensor, tt] : traffic)
        total += tt.total();
    return total;
}

Simulator::Simulator(Specification spec)
    : model_(std::make_unique<CompiledModel>(compile(std::move(spec))))
{
}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

const Specification&
Simulator::spec() const
{
    return model_->spec();
}

SimulationResult
Simulator::run(std::map<std::string, ft::Tensor> inputs,
               exec::Semiring sr)
{
    // Stage inputs in their mapping rank-order up front (one swizzle
    // per discordant input, zero copies otherwise — the original
    // API's exact cost). The pipeline then finds them concordant and
    // uses them in place.
    const Specification& spec = model_->spec();
    std::map<std::string, ft::Tensor> staged;
    for (auto& [name, tensor] : inputs) {
        const auto& order = spec.mapping.rankOrder(name);
        if (!order.empty() && tensor.rankIds() != order) {
            staged.emplace(name, ft::swizzle(tensor, order));
        } else {
            staged.emplace(name, std::move(tensor));
        }
    }

    Workload workload;
    for (const auto& [name, tensor] : staged)
        workload.add(name, tensor); // borrowed; `staged` outlives run
    RunOptions opts;
    opts.semiring = sr;
    opts.cacheState = false; // the workload dies with this call
    SimulationResult out = model_->run(workload, opts);

    // Legacy surface: the result's tensor map also carries the
    // (rank-order-swizzled) declared inputs, moved in without
    // copying. Undeclared extras are dropped, as the original did.
    for (const std::string& name : spec.einsums.inputTensors()) {
        const auto it = staged.find(name);
        if (it != staged.end() && out.tensors.count(name) == 0)
            out.tensors.emplace(name, std::move(it->second));
    }
    return out;
}

double
Simulator::algorithmicMinBytes(
    const std::map<std::string, ft::Tensor>& tensors) const
{
    const Specification& spec = model_->spec();
    double bits = 0;
    auto add = [&](const std::string& name) {
        const auto it = tensors.find(name);
        if (it == tensors.end())
            return;
        bits += static_cast<double>(fmt::tensorBits(
            spec.formats.getLenient(name), it->second));
    };
    for (const std::string& name : spec.einsums.inputTensors())
        add(name);
    add(spec.einsums.resultTensor());
    return bits / 8.0;
}

} // namespace teaal::compiler
