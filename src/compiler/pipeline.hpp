/**
 * @file
 * The staged compile-once / run-many pipeline — the public entry point
 * of the library (paper §4: one declarative specification generates an
 * executable model; Sparseloop and SAM draw the same line between
 * "lower the spec" and "evaluate it on a workload"):
 *
 *   auto spec  = compiler::Specification::parse(yaml_text, params);
 *   auto model = compiler::compile(std::move(spec));
 *   compiler::Workload w;
 *   w.add("A", a).add("B", b);              // borrowed, never deep-copied
 *   auto r1 = model.run(w);                 // instantiates + executes
 *   auto r2 = model.run(w);                 // executes only (plans cached)
 *
 * compile() owns everything derivable from the specification alone:
 * per-Einsum ir::EinsumRecipes (loop order, partitioning, spacetime,
 * probe ranks, output storage order), the fused-block schedule, the
 * resolved per-Einsum architecture/binding/on-chip tables, and the
 * declared rank-order swizzle recipe. run() binds a Workload —
 * preparing tensors and selecting co-iteration strategies on first
 * contact, cached per workload fingerprint — and executes.
 *
 * RunOptions varies a run without recompiling: the semiring, extra
 * trace observers, per-loop co-iteration overrides (the intersection
 * ablation), and input validation.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "exec/engine.hpp"
#include "ir/plan.hpp"
#include "model/analytic/estimator.hpp"
#include "trace/observer.hpp"
#include "util/diagnostic.hpp"
#include "util/thread_pool.hpp"

namespace teaal::compiler
{

/** Knobs for compile(). */
struct CompileOptions
{
    /// Re-run spec-only einsum validation (arity, declarations) at
    /// compile time, surfacing problems as teaal::DiagnosticError.
    /// Specification::parse already validates what it parses; this
    /// flag matters for specifications assembled programmatically
    /// (e.g. accelerators/) that never went through parse. Recipe
    /// analysis and binding/topology resolution always run.
    bool validate = true;

    /// Inject a single-DRAM default topology when the specification
    /// has no architecture section, so purely functional runs work.
    bool addDefaultArchitecture = true;

    /// Per-workload plan caches kept alive (least-recently-used
    /// eviction beyond this).
    std::size_t workloadCacheCapacity = 4;
};

/**
 * The tensors one simulation runs on. Inputs are borrowed by const
 * reference and never deep-copied; the caller's tensors must stay
 * alive and unmodified for the duration of each run() call that uses
 * them (cached plans share their fiber trees — call touch() after
 * mutating a tensor's contents in place to invalidate stale plans).
 *
 * Inputs may alternatively be bound as packed rank stores
 * (storage::PackedTensor): a packed input whose rank order is already
 * concordant and that needs no partitioning executes straight off its
 * packed buffers — no pointer fibertree is ever built for it.
 * Discordant or partitioned packed inputs are unpacked once at plan
 * instantiation (the legacy path).
 */
class Workload
{
  public:
    Workload() : fingerprint_(nextStamp()) {}

    /** Borrow @p t (no copy). Returns *this for chaining. */
    Workload&
    add(const std::string& name, const ft::Tensor& t)
    {
        entries_[name] = Entry{&t, {}, nullptr, nullptr};
        fingerprint_ = nextStamp();
        return *this;
    }

    /** Take ownership of @p t (moved, not copied). */
    Workload&
    add(const std::string& name, ft::Tensor&& t)
    {
        entries_[name] = Entry{nullptr, std::move(t), nullptr, nullptr};
        fingerprint_ = nextStamp();
        return *this;
    }

    /**
     * Borrow a packed rank store. Sharper lifetime contract than a
     * borrowed ft::Tensor: cached plans reference the packed buffers
     * *directly* (pointer tensors share their fibers by shared_ptr,
     * packed borrows share nothing), so @p t must stay alive for as
     * long as any run or cached plan of a model uses this workload —
     * not just the current run() call. Pass ownership (the && or
     * shared_ptr overloads) when that is hard to guarantee.
     */
    Workload& add(const std::string& name,
                  const storage::PackedTensor& t);

    /** Take ownership of a packed rank store. */
    Workload& add(const std::string& name, storage::PackedTensor&& t);

    /** Share ownership of a packed rank store: cached plans keep the
     *  buffers alive however long they outlive the caller's copy. */
    Workload& add(const std::string& name,
                  std::shared_ptr<const storage::PackedTensor> t);

    bool has(const std::string& name) const
    {
        return entries_.count(name) != 0;
    }

    /** The pointer tensor bound to @p name (DiagnosticError if absent
     *  or bound packed). */
    const ft::Tensor& tensor(const std::string& name) const;

    /** The packed store bound to @p name, or null if @p name is
     *  absent or bound as a pointer tensor. Borrowed entries return a
     *  non-owning handle. */
    std::shared_ptr<const storage::PackedTensor>
    packed(const std::string& name) const;

    /** Rank ids of the entry (pointer or packed); DiagnosticError if
     *  absent. */
    std::vector<std::string> rankIdsOf(const std::string& name) const;

    std::vector<std::string> names() const;

    /**
     * Identity stamp for plan caching: globally unique, refreshed by
     * every add()/touch(), so a model never confuses two workloads or
     * reuses plans across a mutation.
     */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Declare in-place mutation of a borrowed tensor's contents. */
    void touch() { fingerprint_ = nextStamp(); }

  private:
    struct Entry
    {
        const ft::Tensor* borrowed = nullptr;
        ft::Tensor owned;
        const storage::PackedTensor* packedBorrowed = nullptr;
        std::shared_ptr<const storage::PackedTensor> packedOwned;

        bool
        isPacked() const
        {
            return packedBorrowed != nullptr || packedOwned != nullptr;
        }
    };

    static std::uint64_t nextStamp();

    std::map<std::string, Entry> entries_;
    std::uint64_t fingerprint_;
};

/** Per-run knobs — everything that varies without recompiling. */
struct RunOptions
{
    /// Operator redefinition for graph algorithms (paper Figure 12).
    /// Cached state is keyed per (workload, semiring): intermediate
    /// values bound into cached plans depend on the operators, so a
    /// different semiring gets its own plan instantiation.
    exec::Semiring semiring = exec::Semiring::arithmetic();

    /// Extra trace sinks fed alongside the performance model (each
    /// receives the same event batches; batch-aware sinks consume
    /// them directly). Must outlive the run() call.
    std::vector<trace::Observer*> observers;

    /// Override the planned co-iteration strategy of specific loop
    /// ranks by name — the intersection-ablation knob. Applied at
    /// execution time; cached plans are not mutated.
    std::map<std::string, ir::CoiterStrategy> coiterOverrides;

    /// Validate workload tensors against the declaration (presence
    /// and rank sets) before executing, surfacing mismatches as
    /// DiagnosticError instead of a mid-run failure.
    bool validateInputs = true;

    /// Keep this workload's instantiated plans cached in the model
    /// for later runs. Disable for fire-and-forget workloads.
    bool cacheState = true;

    /// Worker threads per Einsum execution: 1 (default) is the
    /// classic serial path; 0 means one per hardware thread; N >= 2
    /// shards each shardable Einsum's walk across N workers drawn
    /// from the model's shared pool (see CompiledModel::shardPlans
    /// and shardingReport). Nearly every mapping shards:
    /// contraction-outermost nests shard with private partial
    /// outputs merged by semiring add (ir::ShardPlan::Mode::Reduce),
    /// and nests whose top rank is lookup-bound or too coarse shard
    /// the first viable inner rank. Counters and delivered trace
    /// batches are byte-identical at every thread count; output
    /// values too, up to floating-point summation grouping under
    /// reduce merges. The rare unshardable Einsum (e.g. a
    /// whole-tensor copy) runs serially, logged once per model.
    ///
    /// The performance model parallelizes with the walk: when no
    /// extra `observers` are attached, each worker runs the model's
    /// order-independent tier (model::ShardAccumulator) inside its
    /// shard and only the order-dependent storage simulation replays
    /// serially on the coordinator. Extra observers need the full
    /// event stream, so their presence falls back to full
    /// capture/replay — records are byte-identical either way.
    unsigned threads = 1;

    /// Worker pool for threads >= 2. Default (nullptr) uses the
    /// model's own lazily-created pool; a host serving many models
    /// (serve::Server) passes its one shared pool here so every
    /// model's sharded runs and the request queue draw from the same
    /// workers instead of spawning a pool per model. Must outlive the
    /// run() call.
    util::ThreadPool* pool = nullptr;

    /// Cooperative cancellation: when set (borrowed; must outlive the
    /// run), the engine polls the token at walk-batch granularity and
    /// the run unwinds with util::CancelledError — a DiagnosticError
    /// of section "cancelled" carrying the reason, the elapsed time,
    /// and the loop position reached. A cancelled run leaves no
    /// partial outputs and never poisons the plan cache: the next run
    /// on the same workload re-instantiates cleanly.
    const util::CancelToken* cancelToken = nullptr;

    /// Hard deadline for the run (steady clock). Unset (default)
    /// never expires; expiry cancels exactly like a token with reason
    /// CancelReason::Deadline. Checked alongside cancelToken by the
    /// same amortized poll.
    util::Deadline deadline;

    /// Out-of-core trace capture for sharded runs (threads >= 2):
    /// when non-empty, each slice's captured trace spills to an
    /// append-only segment file in this directory whenever it crosses
    /// spillSegmentBytes, and the coordinator streams the frames back
    /// in slice order — peak resident trace becomes
    /// O(threads x spillSegmentBytes) instead of growing with the
    /// input, with results, counters, and delivered trace batches
    /// byte-identical to the resident path. The directory must exist
    /// and be writable; segment files are process-private scratch,
    /// deleted as soon as each slice is replayed. Empty (default)
    /// keeps the whole trace resident. Serial runs (threads == 1)
    /// deliver live and never capture, so the option is inert there.
    std::string spillDir;

    /// Target bytes of buffered trace per spilled segment frame
    /// (frames are cut at the first fiber-walk boundary past this
    /// size, never mid-walk).
    std::size_t spillSegmentBytes = 4u << 20;

    /// Keep the segment files after replay instead of deleting them
    /// (debugging artifact; files remain meaningful only to the
    /// writing process — events hold in-process pointers).
    bool spillKeep = false;
};

/**
 * One Einsum's parallelization, in stable struct form — what
 * shardingReport() prints, exposed so tools (the serving daemon's
 * `sharding_report` endpoint, tests) can assert on fields instead of
 * parsing a log line.
 */
struct ShardingEntry
{
    std::string einsum;

    bool shardable = false;

    /// "disjoint", "reduce", or "inner" when shardable; "serial"
    /// otherwise.
    std::string mode;

    /// The sharded loop rank (empty when serial).
    std::string rank;

    /// The declared outermost space rank, when any (informational).
    std::string spaceRank;

    /// ir::ShardPlan::reason, verbatim, for the serial fallback.
    std::string reason;
};

/**
 * Plan-cache counters since compile(), in stable struct form for the
 * serving daemon's `stats` endpoint and tests. A hit is a run()/
 * plans() call that found its (workload, semiring) state cached; an
 * eviction is an LRU drop past CompileOptions::workloadCacheCapacity
 * (the evicted state stays alive until in-flight runs on it finish).
 */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0; ///< currently cached states
};

/**
 * A specification lowered to an executable model: the reusable
 * artifact of the pipeline. Everything spec-derivable is resolved at
 * compile(); run() only binds data and executes — on a workload it
 * has seen before, nothing is re-derived, re-prepared, or re-planned.
 *
 * Thread safety: concurrent run() calls from multiple host threads
 * are supported. The plan-cache LRU is internally synchronized —
 * entries are held by shared_ptr so eviction never destroys state an
 * in-flight run is using, and runs on the *same* (workload, semiring)
 * serialize on a per-state mutex while runs on distinct workloads
 * proceed in parallel. plans() references follow the documented
 * eviction lifetime; clearCache() while runs are in flight is safe
 * (their state stays alive until they finish).
 *
 * run() is const: evaluation is logically read-only (the plan cache,
 * pool, and counters are internally synchronized implementation
 * state), so holders of a `const CompiledModel&` — e.g. the serving
 * daemon's registry, which shares models across request threads —
 * can evaluate without a cast.
 */
class CompiledModel
{
  public:
    /// Movable but not copyable: the resolved per-Einsum tables point
    /// into this object's own spec_ (map nodes are address-stable
    /// across moves, but a copy would alias the source's).
    CompiledModel(CompiledModel&&) = default;
    CompiledModel& operator=(CompiledModel&&) = default;
    CompiledModel(const CompiledModel&) = delete;
    CompiledModel& operator=(const CompiledModel&) = delete;

    const Specification& spec() const { return spec_; }

    /** Fused-block schedule (expression indices per block). */
    const std::vector<std::vector<std::size_t>>& blocks() const
    {
        return blocks_;
    }

    /** Spec-only per-Einsum lowering recipes, in cascade order. */
    const std::vector<ir::EinsumRecipe>& recipes() const
    {
        return recipes_;
    }

    /**
     * Per-Einsum shard plans, precomputed at compile() from the
     * recipes: whether (and along which outermost rank) each Einsum's
     * execution can be split across RunOptions::threads workers, with
     * the reason when it cannot.
     */
    const std::vector<ir::ShardPlan>& shardPlans() const
    {
        return shardPlans_;
    }

    /**
     * Human-readable summary of how run(threads=N) parallelizes each
     * Einsum: one line per Einsum naming the shard mode (disjoint /
     * reduction / inner-rank), the sharded rank, and — for the rare
     * serial fallback — ir::ShardPlan::reason verbatim.
     */
    std::string shardingReport() const;

    /** The same information as shardingReport(), one stable struct
     *  per Einsum in cascade order. */
    std::vector<ShardingEntry> shardingEntries() const;

    /** Plan-cache hit/miss/eviction counters since compile(). */
    PlanCacheStats planCacheStats() const;

    /**
     * Execute the cascade on @p workload. The first run on a workload
     * instantiates and caches its plans (preparing tensors, selecting
     * co-iteration strategies); later runs execute the cached plans
     * directly. Results are deterministic: repeated runs on the same
     * workload produce identical records, perf, and traffic.
     */
    SimulationResult run(const Workload& workload,
                         const RunOptions& opts = {}) const;

    /**
     * Analytic fast path: predict what run() would measure — compute
     * ops, intersection work, per-level traffic, buffer occupancy —
     * from metadata alone (rank shapes, occupancy hints, format
     * footprints). No fibertree walk and no plan instantiation
     * happen; the same cached EinsumRecipes are bound symbolically
     * (model/analytic/). Orders of magnitude faster than run(), at
     * bounded relative error: the mapping autotuner ranks every
     * candidate with this and trace-simulates only the survivors.
     *
     * Results are cached per workload fingerprint (same LRU capacity
     * as the plan cache). Mappings whose constructs the closed forms
     * cannot express throw DiagnosticError (section "analytic");
     * callers degrade to run().
     */
    model::analytic::AnalyticEstimate
    estimate(const Workload& workload) const;

    /**
     * The fully instantiated per-Einsum plans for @p workload (under
     * the arithmetic semiring) — the documented accessor for
     * plan-level tooling (microbenches, white-box tests) that
     * previously called ir::buildPlan by hand. Instantiates on first
     * use; for cascades whose later Einsums consume intermediates
     * this requires executing the earlier Einsums once (results
     * discarded).
     *
     * The reference points into this model's per-workload cache: it
     * stays valid until the entry is evicted — i.e. until run()/
     * plans() touches more than CompileOptions::workloadCacheCapacity
     * other (workload, semiring) combinations — or clearCache() is
     * called.
     */
    const std::vector<ir::EinsumPlan>& plans(const Workload& workload);

    /**
     * Algorithmic-minimum DRAM traffic: each input read once, the
     * final result written once (the Figure 9 normalization
     * baseline). @p result supplies the produced output tensor.
     */
    double algorithmicMinBytes(const Workload& workload,
                               const SimulationResult& result) const;

    /** Drop all cached per-workload state (plans, prepared tensors). */
    void
    clearCache() const
    {
        std::lock_guard<std::mutex> lk(*cacheMutex_);
        states_.clear();
    }

  private:
    friend CompiledModel compile(Specification spec,
                                 const CompileOptions& opts);

    CompiledModel() = default;

    /** Cached per-(workload, semiring) execution state. Keyed on the
     *  semiring too because cached plans bind intermediate *values*,
     *  which depend on the operators that produced them. */
    struct WorkloadState
    {
        std::uint64_t fingerprint = 0;
        exec::Semiring semiring = exec::Semiring::arithmetic();
        /// Inputs whose declared rank-order differs from the workload
        /// tensor's: swizzled once per workload (offline, uncharged —
        /// paper §3.2.2).
        std::map<std::string, ft::Tensor> swizzledInputs;
        /// Packed inputs that needed the legacy preparation path
        /// (partitioned): unpacked once per workload, reused across
        /// Einsums and slots (ir::instantiatePlan's unpack cache).
        std::map<std::string, ft::Tensor> unpackedInputs;
        /// Intermediates produced on the instantiating run, kept so
        /// later plans could be (re)bound without re-executing.
        std::map<std::string, ft::Tensor> intermediates;
        std::vector<ir::EinsumPlan> plans;
        bool prepared = false;       // swizzledInputs materialized
        bool plansComplete = false;
        /// Serializes runs sharing this state: concurrent run() calls
        /// on the *same* (workload, semiring) take turns; calls on
        /// distinct workloads proceed in parallel.
        std::mutex runMutex;
    };

    std::shared_ptr<WorkloadState>
    stateFor(const Workload& w, const exec::Semiring& sr) const;
    /** Detach @p st from the LRU (no-op if already evicted) — used to
     *  discard a state whose instantiating run failed mid-way. */
    void dropState(const std::shared_ptr<WorkloadState>& st) const;
    void prepareInputs(WorkloadState& st, const Workload& w) const;
    ir::TensorRefMap inputRefs(const WorkloadState& st,
                               const Workload& w) const;
    /** Packed workload entries to bind directly (everything packed
     *  that prepareInputs did not have to unpack-and-swizzle). */
    ir::PackedRefMap packedRefs(const WorkloadState& st,
                                const Workload& w) const;
    void validateWorkload(const Workload& w) const;
    void validateOverrides(const RunOptions& opts) const;
    SimulationResult runOn(WorkloadState& st, const Workload& w,
                           const RunOptions& opts) const;
    util::ThreadPool* poolFor(unsigned threads) const;

    Specification spec_;
    CompileOptions opts_;

    std::vector<std::vector<std::size_t>> blocks_;
    std::vector<ir::EinsumRecipe> recipes_;
    std::vector<ir::ShardPlan> shardPlans_;

    /// Per-Einsum resolved tables (pointers into spec_, stable).
    std::vector<const binding::EinsumBinding*> bindings_;
    std::vector<const arch::Topology*> topologies_;
    std::vector<std::set<std::string>> onChip_;

    /// True when some Einsum consumes an earlier Einsum's output, so
    /// plans() must execute the cascade once to materialize them.
    bool plansNeedExecution_ = false;

    /// One-shot latch for the threads>1-but-serial info log (in a
    /// shared_ptr so the model stays movable).
    std::shared_ptr<std::atomic<bool>> serialFallbackLogged_ =
        std::make_shared<std::atomic<bool>>(false);

    /// LRU list of per-workload states (front = most recent), held by
    /// shared_ptr so an eviction racing an in-flight run on another
    /// host thread can never destroy state under it. cacheMutex_
    /// guards the list structure only; per-state work is serialized
    /// by WorkloadState::runMutex. (Concurrent run() calls are
    /// supported; see the class comment.) Mutable: the cache is
    /// internally-synchronized implementation state of the logically
    /// const run() surface.
    mutable std::list<std::shared_ptr<WorkloadState>> states_;
    std::unique_ptr<std::mutex> cacheMutex_ =
        std::make_unique<std::mutex>();

    /// Plan-cache counters (under cacheMutex_), in a shared_ptr so
    /// the model stays movable.
    struct CacheCounters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };
    std::shared_ptr<CacheCounters> cacheCounters_ =
        std::make_shared<CacheCounters>();

    /// Analytic-estimate LRU (front = most recent), keyed on the
    /// workload fingerprint; sized like the plan cache. Under
    /// cacheMutex_.
    mutable std::list<
        std::pair<std::uint64_t, model::analytic::AnalyticEstimate>>
        estimates_;

    /// Shared worker pool for RunOptions::threads >= 2, created on
    /// first parallel run.
    mutable std::shared_ptr<util::ThreadPool> pool_;
    std::unique_ptr<std::mutex> poolMutex_ =
        std::make_unique<std::mutex>();
};

/**
 * Lower @p spec to an executable model. Validates the specification
 * (per @p opts) and resolves every spec-derivable table; throws
 * teaal::DiagnosticError pinning problems to their section/key.
 */
CompiledModel compile(Specification spec, const CompileOptions& opts = {});

} // namespace teaal::compiler
