#include "compiler/pipeline.hpp"

#include <algorithm>
#include <atomic>

#include "energy/energy.hpp"
#include "exec/executor.hpp"
#include "fibertree/transform.hpp"
#include "format/format.hpp"
#include "model/model.hpp"
#include "model/perf.hpp"
#include "storage/packed.hpp"
#include "trace/fanout.hpp"
#include "trace/spill.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace teaal::compiler
{

// ------------------------------------------------------------ Workload

std::uint64_t
Workload::nextStamp()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

Workload&
Workload::add(const std::string& name, const storage::PackedTensor& t)
{
    Entry e;
    e.packedBorrowed = &t;
    entries_[name] = std::move(e);
    fingerprint_ = nextStamp();
    return *this;
}

Workload&
Workload::add(const std::string& name, storage::PackedTensor&& t)
{
    Entry e;
    e.packedOwned =
        std::make_shared<const storage::PackedTensor>(std::move(t));
    entries_[name] = std::move(e);
    fingerprint_ = nextStamp();
    return *this;
}

Workload&
Workload::add(const std::string& name,
              std::shared_ptr<const storage::PackedTensor> t)
{
    Entry e;
    e.packedOwned = std::move(t);
    entries_[name] = std::move(e);
    fingerprint_ = nextStamp();
    return *this;
}

const ft::Tensor&
Workload::tensor(const std::string& name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        diagError("workload", name, "missing input tensor '", name, "'");
    if (it->second.isPacked())
        diagError("workload", name, "input tensor '", name,
                  "' is bound as a packed rank store");
    return it->second.borrowed != nullptr ? *it->second.borrowed
                                          : it->second.owned;
}

std::shared_ptr<const storage::PackedTensor>
Workload::packed(const std::string& name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.isPacked())
        return nullptr;
    if (it->second.packedOwned != nullptr)
        return it->second.packedOwned;
    // Borrowed: non-owning handle (empty control block) — the caller
    // keeps the packed tensor alive, like borrowed pointer tensors.
    return std::shared_ptr<const storage::PackedTensor>(
        std::shared_ptr<const storage::PackedTensor>(),
        it->second.packedBorrowed);
}

std::vector<std::string>
Workload::rankIdsOf(const std::string& name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        diagError("workload", name, "missing input tensor '", name, "'");
    if (it->second.isPacked())
        return packed(name)->rankIds();
    return tensor(name).rankIds();
}

std::vector<std::string>
Workload::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_)
        out.push_back(name);
    return out;
}

// ------------------------------------------------------------- compile

CompiledModel
compile(Specification spec, const CompileOptions& opts)
{
    CompiledModel model;
    model.spec_ = std::move(spec);
    model.opts_ = opts;
    Specification& s = model.spec_;

    // A default single-DRAM topology lets purely functional runs work
    // without an architecture section.
    if (opts.addDefaultArchitecture &&
        s.architecture.topologyNames().empty()) {
        arch::Topology topo;
        topo.name = "default";
        topo.root.name = "System";
        arch::Component dram;
        dram.name = "MainMemory";
        dram.cls = arch::ComponentClass::DRAM;
        dram.attributes["bandwidth"] = "100";
        topo.root.local.push_back(dram);
        arch::Component alu;
        alu.name = "ALU";
        alu.cls = arch::ComponentClass::Compute;
        alu.attributes["type"] = "mul";
        topo.root.local.push_back(alu);
        s.architecture.add(std::move(topo));
    }

    const einsum::EinsumSpec& es = s.einsums;

    if (opts.validate) {
        try {
            es.validate();
        } catch (const SpecError& e) {
            rethrowAsDiagnostic("einsum", "", e);
        }
    }

    // Spec-only lowering: one recipe per Einsum (loop order,
    // partitioning, spacetime, probe ranks, output storage order).
    for (const einsum::Expression& expr : es.expressions) {
        try {
            model.recipes_.push_back(
                ir::analyzeEinsum(expr, es, s.mapping));
        } catch (const SpecError& e) {
            rethrowAsDiagnostic("mapping", expr.output.name, e);
        }
    }

    // Shard plan per Einsum: how run(threads=N) may split it.
    for (const ir::EinsumRecipe& recipe : model.recipes_)
        model.shardPlans_.push_back(ir::analyzeSharding(recipe));

    // Resolved per-Einsum binding and topology tables.
    for (const einsum::Expression& expr : es.expressions) {
        const binding::EinsumBinding& eb =
            s.bindings.einsum(expr.output.name);
        model.bindings_.push_back(&eb);
        try {
            model.topologies_.push_back(
                &s.architecture.topology(eb.topology));
        } catch (const SpecError& e) {
            rethrowAsDiagnostic("binding", expr.output.name, e);
        }
        // A storage binding naming a format configuration the format
        // section does not declare used to fall back to the default
        // all-compressed format silently (when the tensor had no
        // format entry at all) or fail mid-run; surface it here.
        for (const binding::ComponentBinding& cb : eb.components) {
            for (const binding::StorageBinding& sb : cb.storage) {
                if (sb.config.empty() ||
                    s.formats.hasConfig(sb.tensor, sb.config))
                    continue;
                diagError("format", sb.tensor, "einsum '",
                          expr.output.name, "': binding of tensor '",
                          sb.tensor, "' to component '", cb.component,
                          "' names format config '", sb.config,
                          "', which the format section does not "
                          "declare");
            }
        }
        // A binding naming a component its topology does not declare
        // used to slip through: storage bindings failed mid-run with
        // a bare SpecError, and op bindings silently created an empty
        // pseudo-component (default instance count, wrong class) in
        // the model. Pin both to the binding section at compile time.
        const arch::Topology& topo = *model.topologies_.back();
        for (const binding::ComponentBinding& cb : eb.components) {
            if (topo.findComponent(cb.component, nullptr) != nullptr)
                continue;
            diagError("binding", cb.component, "einsum '",
                      expr.output.name, "': binding names component '",
                      cb.component, "', which topology '",
                      (topo.name.empty() ? eb.topology : topo.name),
                      "' of the architecture section does not "
                      "declare");
        }
    }

    // Fused-block schedule: must be known before execution so fused
    // intermediates skip DRAM.
    model.blocks_ = model::inferBlocks(es, s.mapping, s.bindings);
    std::map<std::size_t, std::size_t> block_of;
    for (std::size_t b = 0; b < model.blocks_.size(); ++b) {
        for (std::size_t idx : model.blocks_[b])
            block_of[idx] = b;
    }
    std::set<std::string> fused_intermediates;
    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        const std::string& produced = es.expressions[i].output.name;
        for (int consumer : es.consumersOf(produced)) {
            if (block_of[i] ==
                block_of[static_cast<std::size_t>(consumer)]) {
                fused_intermediates.insert(produced);
            }
        }
    }

    // Per-Einsum on-chip sets: within a fused block, a tensor streamed
    // by an earlier Einsum is shared through the pipeline — later
    // Einsums re-use it on chip instead of re-reading DRAM (e.g.
    // Gamma's A).
    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        std::set<std::string> on_chip = fused_intermediates;
        for (std::size_t j : model.blocks_[block_of[i]]) {
            if (j >= i)
                break;
            for (const einsum::TensorRef& in : es.expressions[j].inputs)
                on_chip.insert(in.name);
        }
        model.onChip_.push_back(std::move(on_chip));
    }

    // Does any Einsum consume an earlier Einsum's output? Then plans()
    // must execute the cascade once to materialize intermediates.
    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        for (const einsum::TensorRef& in : es.expressions[i].inputs) {
            if (es.producerOf(in.name) >= 0 &&
                static_cast<std::size_t>(es.producerOf(in.name)) < i)
                model.plansNeedExecution_ = true;
        }
    }

    return model;
}

// ------------------------------------------------------ CompiledModel

std::shared_ptr<CompiledModel::WorkloadState>
CompiledModel::stateFor(const Workload& w, const exec::Semiring& sr) const
{
    std::lock_guard<std::mutex> lk(*cacheMutex_);
    for (auto it = states_.begin(); it != states_.end(); ++it) {
        if ((*it)->fingerprint == w.fingerprint() &&
            (*it)->semiring == sr) {
            states_.splice(states_.begin(), states_, it);
            ++cacheCounters_->hits;
            return states_.front();
        }
    }
    states_.emplace_front(std::make_shared<WorkloadState>());
    states_.front()->fingerprint = w.fingerprint();
    states_.front()->semiring = sr;
    ++cacheCounters_->misses;
    // Evicted entries only drop the cache's reference: a run still
    // holding the shared_ptr finishes safely on the detached state.
    while (states_.size() >
           std::max<std::size_t>(1, opts_.workloadCacheCapacity)) {
        states_.pop_back();
        ++cacheCounters_->evictions;
    }
    return states_.front();
}

void
CompiledModel::dropState(
    const std::shared_ptr<WorkloadState>& st) const
{
    std::lock_guard<std::mutex> lk(*cacheMutex_);
    for (auto it = states_.begin(); it != states_.end(); ++it) {
        if (*it == st) {
            states_.erase(it);
            ++cacheCounters_->evictions;
            return;
        }
    }
}

PlanCacheStats
CompiledModel::planCacheStats() const
{
    std::lock_guard<std::mutex> lk(*cacheMutex_);
    PlanCacheStats s;
    s.hits = cacheCounters_->hits;
    s.misses = cacheCounters_->misses;
    s.evictions = cacheCounters_->evictions;
    s.entries = states_.size();
    return s;
}

util::ThreadPool*
CompiledModel::poolFor(unsigned threads) const
{
    if (threads == 1)
        return nullptr;
    std::lock_guard<std::mutex> lk(*poolMutex_);
    if (pool_ == nullptr)
        pool_ = std::make_shared<util::ThreadPool>();
    return pool_.get();
}

std::vector<ShardingEntry>
CompiledModel::shardingEntries() const
{
    std::vector<ShardingEntry> out;
    out.reserve(shardPlans_.size());
    for (std::size_t i = 0; i < shardPlans_.size(); ++i) {
        const ir::ShardPlan& sp = shardPlans_[i];
        ShardingEntry e;
        e.einsum = recipes_[i].expr.output.name;
        e.shardable = sp.shardable;
        if (!sp.shardable) {
            e.mode = "serial";
            e.reason = sp.reason;
        } else {
            switch (sp.mode) {
            case ir::ShardPlan::Mode::Disjoint:
                e.mode = "disjoint";
                break;
            case ir::ShardPlan::Mode::Reduce: e.mode = "reduce"; break;
            case ir::ShardPlan::Mode::Inner: e.mode = "inner"; break;
            }
            e.rank = sp.rank;
            e.spaceRank = sp.spaceRank;
        }
        out.push_back(std::move(e));
    }
    return out;
}

std::string
CompiledModel::shardingReport() const
{
    std::string out;
    for (const ShardingEntry& e : shardingEntries()) {
        out += e.einsum;
        out += ": ";
        if (!e.shardable) {
            out += "serial (";
            out += e.reason;
            out += ")";
        } else {
            if (e.mode == "disjoint") {
                out += "disjoint sharding along rank '" + e.rank + "'";
            } else if (e.mode == "reduce") {
                out += "reduction sharding along rank '" + e.rank +
                       "' (partial outputs merged by semiring add)";
            } else {
                out += "inner-rank sharding along rank '" + e.rank +
                       "' (outermost rank unshardable or too coarse)";
            }
            if (!e.spaceRank.empty())
                out += ", space rank '" + e.spaceRank + "'";
        }
        out += "\n";
    }
    return out;
}

void
CompiledModel::validateOverrides(const RunOptions& opts) const
{
    for (const auto& [rank, strategy] : opts.coiterOverrides) {
        (void)strategy;
        bool known = false;
        for (const ir::EinsumRecipe& r : recipes_) {
            if (std::find(r.loopOrder.begin(), r.loopOrder.end(),
                          rank) != r.loopOrder.end())
                known = true;
        }
        if (!known) {
            diagError("exec", rank,
                      "co-iteration override names rank '", rank,
                      "', which is not a loop rank of any Einsum in "
                      "the cascade");
        }
    }
}

void
CompiledModel::validateWorkload(const Workload& w) const
{
    const einsum::EinsumSpec& es = spec_.einsums;
    for (const std::string& name : es.inputTensors()) {
        if (!w.has(name))
            diagError("workload", name, "missing input tensor '", name,
                      "'");
        const auto decl_it = es.declaration.find(name);
        if (decl_it == es.declaration.end())
            continue;
        std::set<std::string> declared(decl_it->second.begin(),
                                       decl_it->second.end());
        const auto ids = w.rankIdsOf(name);
        std::set<std::string> actual(ids.begin(), ids.end());
        if (declared != actual)
            diagError("workload", name, "tensor '", name,
                      "' has ranks {", join(ids, ", "),
                      "} but the declaration names {",
                      join(decl_it->second, ", "), "}");
    }
}

void
CompiledModel::prepareInputs(WorkloadState& st, const Workload& w) const
{
    if (st.prepared)
        return;
    // Apply the declared rank-order offline (§3.2.2: input swizzles
    // are preprocessing and cost nothing). Concordant inputs are used
    // in place — no copy of any kind. Discordant *packed* inputs take
    // the legacy path: unpacked once here, then swizzled like any
    // pointer tensor.
    for (const std::string& name : spec_.einsums.inputTensors()) {
        const auto& order = spec_.mapping.rankOrder(name);
        if (order.empty())
            continue;
        if (const auto pk = w.packed(name)) {
            if (pk->rankIds() != order) {
                st.swizzledInputs.insert_or_assign(
                    name, ft::swizzle(pk->toTensor(), order));
            }
            continue;
        }
        const ft::Tensor& t = w.tensor(name);
        if (t.rankIds() != order)
            st.swizzledInputs.insert_or_assign(name,
                                               ft::swizzle(t, order));
    }
    st.prepared = true;
}

SimulationResult
CompiledModel::run(const Workload& workload,
                   const RunOptions& opts) const
{
    if (opts.validateInputs)
        validateWorkload(workload);
    validateOverrides(opts);
    if (opts.cacheState) {
        // Keep the shared_ptr for the whole run: a concurrent
        // eviction only detaches the state from the cache.
        const std::shared_ptr<WorkloadState> st =
            stateFor(workload, opts.semiring);
        std::lock_guard<std::mutex> lk(st->runMutex);
        try {
            return runOn(*st, workload, opts);
        } catch (...) {
            // A run that died before its plans were fully
            // instantiated (cancellation, deadline, injected fault)
            // must not leave a half-built state in the LRU — evict it
            // so the next run on this workload re-instantiates
            // cleanly instead of binding stale intermediates.
            if (!st->plansComplete)
                dropState(st);
            throw;
        }
    }
    WorkloadState ephemeral;
    ephemeral.fingerprint = workload.fingerprint();
    ephemeral.semiring = opts.semiring;
    return runOn(ephemeral, workload, opts);
}

ir::TensorRefMap
CompiledModel::inputRefs(const WorkloadState& st, const Workload& w) const
{
    ir::TensorRefMap refs;
    for (const std::string& name : spec_.einsums.inputTensors()) {
        const auto sit = st.swizzledInputs.find(name);
        if (sit != st.swizzledInputs.end()) {
            refs.emplace(name, &sit->second);
            continue;
        }
        if (w.packed(name) != nullptr)
            continue; // bound through packedRefs instead
        refs.emplace(name, &w.tensor(name));
    }
    return refs;
}

ir::PackedRefMap
CompiledModel::packedRefs(const WorkloadState& st, const Workload& w) const
{
    ir::PackedRefMap refs;
    for (const std::string& name : spec_.einsums.inputTensors()) {
        if (st.swizzledInputs.count(name) != 0)
            continue; // discordant: already unpacked + swizzled
        if (auto pk = w.packed(name))
            refs.emplace(name, std::move(pk));
    }
    return refs;
}

SimulationResult
CompiledModel::runOn(WorkloadState& st, const Workload& w,
                     const RunOptions& opts) const
{
    const einsum::EinsumSpec& es = spec_.einsums;
    prepareInputs(st, w);

    // Live-tensor view for plan instantiation: workload inputs (in
    // their mapping rank-order) plus intermediates as they appear.
    // Packed inputs bind through their own map (zero fibertree
    // construction when concordant).
    ir::TensorRefMap refs;
    ir::PackedRefMap prefs;
    if (!st.plansComplete) {
        refs = inputRefs(st, w);
        prefs = packedRefs(st, w);
        for (const auto& [name, tensor] : st.intermediates)
            refs.emplace(name, &tensor);
    }

    SimulationResult out;
    out.blocks = blocks_;

    exec::ExecOptions eo;
    eo.threads = opts.threads;
    eo.pool = opts.pool != nullptr
                  ? (opts.threads == 1 ? nullptr : opts.pool)
                  : poolFor(opts.threads == 0 ? 2 : opts.threads);

    // One cancellation context for the whole cascade: every Einsum's
    // engines (and workers) share the token, deadline, and elapsed
    // base. A request already past its deadline (queued too long)
    // stops here, before any plan work.
    eo.cancel.token = opts.cancelToken;
    eo.cancel.deadline = opts.deadline;
    eo.cancel.start = std::chrono::steady_clock::now();
    if (eo.cancel.armed())
        eo.cancel.throwIfCancelled("before execution");

    // Out-of-core trace capture: one spill context for the whole
    // cascade (per-slice segment files all land in spillDir; the
    // aggregate counters become SimulationResult::spill).
    std::unique_ptr<trace::SpillContext> spill_ctx;
    if (!opts.spillDir.empty()) {
        spill_ctx = std::make_unique<trace::SpillContext>(
            opts.spillDir, opts.spillSegmentBytes, opts.spillKeep);
        eo.spill = spill_ctx.get();
    }

    std::vector<std::string> produced;
    for (std::size_t i = 0; i < es.expressions.size(); ++i) {
        const einsum::Expression& expr = es.expressions[i];

        // Per-Einsum override slice: only the ranks this Einsum loops
        // over (validateOverrides already rejected names unknown to
        // the whole cascade; the engine rejects plan-level strays).
        eo.coiterOverrides.clear();
        for (const auto& [rank, strategy] : opts.coiterOverrides) {
            if (std::find(recipes_[i].loopOrder.begin(),
                          recipes_[i].loopOrder.end(),
                          rank) != recipes_[i].loopOrder.end())
                eo.coiterOverrides.emplace(rank, strategy);
        }

        // Cascade boundary: catch a cancel/deadline that fired after
        // the previous Einsum's engines flushed (their polls are
        // amortized, so the tail of a walk may outlive the deadline
        // by one batch).
        if (eo.cancel.armed()) {
            eo.cancel.throwIfCancelled("einsum '" + expr.output.name +
                                       "'");
        }

        if (st.plans.size() <= i) {
            TEAAL_FAILPOINT("compiler.pipeline.instantiate");
            st.plans.push_back(ir::instantiatePlan(
                recipes_[i], es, refs, produced,
                /*share_unprepared=*/true, prefs,
                &st.unpackedInputs));
            logDebug("einsum ", i, ": ", st.plans[i].toString());
        }
        const ir::EinsumPlan& plan = st.plans[i];

        model::ModelObserver observer(plan, *topologies_[i],
                                      *bindings_[i], spec_.formats,
                                      onChip_[i]);
        trace::FanoutObserver fan;
        trace::Observer* sink = &observer;
        if (!opts.observers.empty()) {
            fan.add(&observer);
            for (trace::Observer* o : opts.observers)
                fan.add(o);
            sink = &fan;
        }

        // Model split for parallel runs: hand the executor the
        // model's shard hooks so each worker consumes the
        // order-independent datapath records inside its shard and the
        // coordinator replays only the order-dependent storage
        // records. Requires the model to be the sole trace consumer —
        // extra observers need the full stream, so their presence
        // falls back to full capture/replay (byte-identical either
        // way; see model/model.hpp).
        eo.modelHooks = exec::ShardModelHooks{};
        if (opts.threads != 1 && opts.observers.empty()) {
            eo.modelHooks.classifier = &observer.classifier();
            eo.modelHooks.coordinatorSink = &observer.coordinatorSink();
            eo.modelHooks.makeShardSinks =
                [&observer](std::size_t shards) {
                    return observer.makeShardSinks(shards);
                };
        }

        if (opts.threads != 1 && !plan.shard.shardable &&
            !serialFallbackLogged_->exchange(true)) {
            logInfo("threads=", opts.threads, " requested but Einsum '",
                    plan.output.name, "' is not shardable (",
                    plan.shard.reason,
                    "); executing it serially. shardingReport() lists "
                    "every Einsum's parallelization.");
        }

        exec::Executor executor(plan, *sink, opts.semiring, eo);
        ft::Tensor result = executor.run();

        model::EinsumRecord record =
            observer.finalize(executor.stats());
        // Trace diagnostics come from the bus, the single source that
        // counts shard-consumed, replayed, and live records alike —
        // equal to the serial totals at every thread count.
        record.traceEvents = executor.bus().eventCount();
        record.traceBatches = executor.bus().batchCount();
        for (const auto& [tensor, tt] : record.traffic) {
            model::TensorTraffic& agg = out.traffic[tensor];
            agg.readBytes += tt.readBytes;
            agg.writeBytes += tt.writeBytes;
            agg.poBytes += tt.poBytes;
        }
        out.records.push_back(std::move(record));

        produced.push_back(expr.output.name);
        const bool bind_later =
            !st.plansComplete && i + 1 < es.expressions.size();
        if (bind_later && opts.cacheState) {
            // Later plans bind this intermediate; the cached state
            // owns its copy so cached plans never alias a tensor
            // returned to the caller.
            auto [iit, fresh] = st.intermediates.insert_or_assign(
                expr.output.name, result.clone());
            refs.insert_or_assign(expr.output.name, &iit->second);
            (void)fresh;
        }
        auto [oit, inserted] = out.tensors.insert_or_assign(
            expr.output.name, std::move(result));
        (void)inserted;
        if (bind_later && !opts.cacheState) {
            // Ephemeral state: plans die with this call, so they can
            // bind the result tensor in place (map nodes are
            // address-stable) — no defensive deep copy.
            refs.insert_or_assign(expr.output.name, &oit->second);
        }
    }
    st.plansComplete = true;

    if (spill_ctx != nullptr)
        out.spill = spill_ctx->stats();
    out.perf = model::analyze(out.records, spec_.architecture, blocks_);
    for (const model::EinsumRecord& r : out.records) {
        out.energy += energy::energyOf(
            r, spec_.architecture.topology(r.topologyName));
    }
    return out;
}

const std::vector<ir::EinsumPlan>&
CompiledModel::plans(const Workload& workload)
{
    const std::shared_ptr<WorkloadState> st =
        stateFor(workload, exec::Semiring::arithmetic());
    std::lock_guard<std::mutex> lk(st->runMutex);
    if (!st->plansComplete) {
        if (plansNeedExecution_) {
            // Later Einsums bind intermediates: produce them once.
            RunOptions opts;
            (void)runOn(*st, workload, opts);
        } else {
            prepareInputs(*st, workload);
            const einsum::EinsumSpec& es = spec_.einsums;
            const ir::TensorRefMap refs = inputRefs(*st, workload);
            const ir::PackedRefMap prefs = packedRefs(*st, workload);
            std::vector<std::string> produced;
            for (std::size_t i = st->plans.size();
                 i < es.expressions.size(); ++i) {
                st->plans.push_back(ir::instantiatePlan(
                    recipes_[i], es, refs, produced,
                    /*share_unprepared=*/true, prefs,
                    &st->unpackedInputs));
            }
            st->plansComplete = true;
        }
    }
    return st->plans;
}

double
CompiledModel::algorithmicMinBytes(const Workload& workload,
                                   const SimulationResult& result) const
{
    double bits = 0;
    auto add = [&](const std::string& name, const ft::Tensor& t) {
        bits += static_cast<double>(
            fmt::tensorBits(spec_.formats.getLenient(name), t));
    };
    // A prepared state for this workload already holds any swizzled
    // inputs; reuse them instead of re-materializing per call (const
    // lookup — no LRU reordering). Uncached (cacheState=false) runs
    // leave no state, so discordant inputs cost one throwaway
    // swizzle here — negligible next to the simulation itself.
    std::shared_ptr<WorkloadState> st;
    {
        std::lock_guard<std::mutex> lk(*cacheMutex_);
        for (const std::shared_ptr<WorkloadState>& s : states_) {
            if (s->fingerprint == workload.fingerprint()) {
                st = s;
                break;
            }
        }
    }
    // Reading prepared/swizzledInputs must hold the state's run mutex:
    // a concurrent first run() on the same workload may be populating
    // them (prepareInputs runs under runMutex).
    std::unique_lock<std::mutex> run_lk;
    bool use_state = false;
    if (st != nullptr) {
        run_lk = std::unique_lock<std::mutex>(st->runMutex);
        use_state = st->prepared;
    }
    for (const std::string& name : spec_.einsums.inputTensors()) {
        if (!workload.has(name))
            continue;
        if (use_state) {
            const auto sit = st->swizzledInputs.find(name);
            if (sit != st->swizzledInputs.end()) {
                add(name, sit->second);
                continue;
            }
        }
        const auto& order = spec_.mapping.rankOrder(name);
        if (const auto pk = workload.packed(name)) {
            if (!order.empty() && pk->rankIds() != order) {
                add(name, ft::swizzle(pk->toTensor(), order));
            } else {
                // Concordant packed input: bits straight off the
                // packed buffers (identical to the formula on the
                // unpacked tree).
                bits += static_cast<double>(storage::packedTensorBits(
                    spec_.formats.getLenient(name), *pk));
            }
            continue;
        }
        const ft::Tensor& t = workload.tensor(name);
        if (!order.empty() && t.rankIds() != order) {
            add(name, ft::swizzle(t, order));
        } else {
            add(name, t);
        }
    }
    const auto rit = result.tensors.find(spec_.einsums.resultTensor());
    if (rit != result.tensors.end())
        add(rit->first, rit->second);
    return bits / 8.0;
}

} // namespace teaal::compiler
