#include "binding/binding.hpp"

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::binding
{

const EinsumBinding BindingSpec::defaultBinding_{};

const ComponentBinding*
EinsumBinding::findComponent(const std::string& name) const
{
    for (const ComponentBinding& c : components) {
        if (c.component == name)
            return &c;
    }
    return nullptr;
}

namespace
{

DataType
parseDataType(const std::string& s)
{
    const std::string t = toLower(s);
    if (t == "coord")
        return DataType::Coord;
    if (t == "payload")
        return DataType::Payload;
    if (t == "elem")
        return DataType::Elem;
    specError("unknown binding data type '", s, "'");
}

Style
parseStyle(const std::string& s)
{
    const std::string t = toLower(s);
    if (t == "lazy")
        return Style::Lazy;
    if (t == "eager")
        return Style::Eager;
    specError("unknown binding style '", s, "'");
}

ComponentBinding
parseComponent(const yaml::Node& node)
{
    ComponentBinding cb;
    cb.component = node.at("component").scalar();
    if (const yaml::Node* bindings = node.find("bindings")) {
        for (const yaml::Node& b : bindings->sequence()) {
            if (b.has("op")) {
                OpBinding op;
                op.op = toLower(b.at("op").scalar());
                if (const yaml::Node* t = b.find("tensor"))
                    op.tensor = t->scalar();
                cb.ops.push_back(std::move(op));
                continue;
            }
            StorageBinding sb;
            sb.tensor = b.at("tensor").scalar();
            if (const yaml::Node* c = b.find("config"))
                sb.config = c->scalar();
            if (const yaml::Node* r = b.find("rank"))
                sb.rank = r->scalar();
            if (const yaml::Node* t = b.find("type"))
                sb.type = parseDataType(t->scalar());
            if (const yaml::Node* s = b.find("style"))
                sb.style = parseStyle(s->scalar());
            if (const yaml::Node* e = b.find("evict-on"))
                sb.evictOn = e->scalar();
            cb.storage.push_back(std::move(sb));
        }
    }
    return cb;
}

} // namespace

BindingSpec
BindingSpec::parse(const yaml::Node& node)
{
    BindingSpec spec;
    if (node.isNull())
        return spec;
    for (const auto& [einsum_name, body] : node.mapping()) {
        EinsumBinding eb;
        if (const yaml::Node* topo = body.find("config"))
            eb.topology = topo->scalar();
        if (const yaml::Node* comps = body.find("components")) {
            for (const yaml::Node& c : comps->sequence())
                eb.components.push_back(parseComponent(c));
        }
        spec.einsums_[einsum_name] = std::move(eb);
    }
    return spec;
}

const EinsumBinding&
BindingSpec::einsum(const std::string& output) const
{
    const auto it = einsums_.find(output);
    return it == einsums_.end() ? defaultBinding_ : it->second;
}

bool
BindingSpec::hasEinsum(const std::string& output) const
{
    return einsums_.count(output) > 0;
}

void
BindingSpec::setEinsum(const std::string& output, EinsumBinding b)
{
    einsums_[output] = std::move(b);
}

} // namespace teaal::binding
