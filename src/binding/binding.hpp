/**
 * @file
 * Binding specification (paper §4.1.3, Figure 5e): matches the
 * Einsum- and mapping-induced fibertree operations to concrete
 * representations and hardware components.
 *
 * Per Einsum: which architecture topology runs it; per storage
 * component: which tensor data resides there (tensor, format config,
 * rank, element type, lazy/eager style, and — for explicitly managed
 * buffets — the rank whose change drains the buffer); per compute /
 * merger / intersection component: which operations it performs.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "yaml/yaml.hpp"

namespace teaal::binding
{

/** What part of the fiber an access touches. */
enum class DataType { Coord, Payload, Elem };

/** Lazy = element-at-a-time; eager = whole subtree on first touch. */
enum class Style { Lazy, Eager };

/** One piece of tensor data resident in a storage component. */
struct StorageBinding
{
    std::string tensor;
    std::string config;  ///< format configuration name (may be empty)
    std::string rank;    ///< binding rank within the tensor
    DataType type = DataType::Elem;
    Style style = Style::Lazy;
    /// Buffet drain rank: data is evicted when this loop rank's
    /// coordinate changes. Empty for caches (replacement-managed).
    std::string evictOn;
};

/** One operation bound to a functional component. */
struct OpBinding
{
    /// "mul", "add", "intersect", "merge", "sort", "seq".
    std::string op;
    /// Optional tensor the op applies to (e.g. merger sorting T).
    std::string tensor;
};

/** Everything bound to one architecture component. */
struct ComponentBinding
{
    std::string component;
    std::vector<StorageBinding> storage;
    std::vector<OpBinding> ops;
};

/** The bindings of one Einsum. */
struct EinsumBinding
{
    /// Architecture topology name (empty = the only one).
    std::string topology;
    std::vector<ComponentBinding> components;

    const ComponentBinding* findComponent(const std::string& name) const;
};

/** The full `binding:` section, keyed by Einsum output tensor. */
class BindingSpec
{
  public:
    BindingSpec() = default;

    static BindingSpec parse(const yaml::Node& node);

    /** Binding for Einsum @p output; empty default if absent. */
    const EinsumBinding& einsum(const std::string& output) const;

    bool hasEinsum(const std::string& output) const;

    void setEinsum(const std::string& output, EinsumBinding b);

  private:
    std::map<std::string, EinsumBinding> einsums_;
    static const EinsumBinding defaultBinding_;
};

} // namespace teaal::binding
