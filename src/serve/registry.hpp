/**
 * @file
 * The serving daemon's resident-state store: compiled models and
 * packed datasets behind one byte-accounted LRU (serve/server.hpp is
 * the consumer).
 *
 * Entries are held by shared_ptr, so eviction never destroys state an
 * in-flight evaluation is using — the same lifetime discipline as the
 * pipeline's plan cache. Eviction only drops the registry's
 * reference; the memory is reclaimed when the last request finishes.
 *
 * Byte accounting: datasets charge their actual resident buffer bytes
 * (storage::PackedTensor::residentBytes); models charge an estimate
 * supplied by the caller (spec size plus a fixed overhead — a model's
 * dominant memory is its per-workload plan cache, which the pipeline
 * bounds separately via CompileOptions::workloadCacheCapacity).
 *
 * Lookups of an evicted id are distinguishable from ids that never
 * existed, so the protocol can answer "evicted, re-register" instead
 * of a bare "unknown id".
 */
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "compiler/pipeline.hpp"
#include "storage/packed.hpp"

namespace teaal::serve
{

class Registry
{
  public:
    /** @param budget_bytes Resident-byte budget. Inserting past it
     *  evicts cold entries (LRU) until back under; a single entry
     *  larger than the whole budget is admitted alone (the budget
     *  then holds for everything else). */
    explicit Registry(std::uint64_t budget_bytes)
        : budgetBytes_(budget_bytes)
    {
    }

    /** Register a model; returns its id ("m1", "m2", ...). */
    std::string addModel(
        std::shared_ptr<const compiler::CompiledModel> model,
        std::uint64_t bytes);

    /** Register a dataset (charged at residentBytes()); returns its
     *  id ("d1", "d2", ...). */
    std::string
    addDataset(std::shared_ptr<const storage::PackedTensor> dataset);

    /** Look up a model, marking it most-recently-used; nullptr when
     *  absent (evicted() distinguishes why). */
    std::shared_ptr<const compiler::CompiledModel>
    model(const std::string& id);

    /** Look up a dataset, marking it most-recently-used. */
    std::shared_ptr<const storage::PackedTensor>
    dataset(const std::string& id);

    /** True if @p id was registered and later evicted (the protocol's
     *  "evicted, re-register" case). */
    bool evicted(const std::string& id) const;

    /** Ids of live model entries, LRU order (cold last). */
    std::vector<std::string> modelIds() const;

    /** Live model entries without touching the LRU or the hit/miss
     *  counters (the `stats` endpoint's aggregation walk). */
    std::vector<
        std::pair<std::string,
                  std::shared_ptr<const compiler::CompiledModel>>>
    peekModels() const;

    /** Called (outside the registry lock) with each id as it is
     *  evicted — the server uses it to drop bound-workload cache
     *  entries that reference the id. */
    void
    setEvictionHook(std::function<void(const std::string&)> hook)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        evictionHook_ = std::move(hook);
    }

    struct Stats
    {
        std::uint64_t models = 0;
        std::uint64_t datasets = 0;
        std::uint64_t residentBytes = 0;
        std::uint64_t budgetBytes = 0;
        std::uint64_t evictions = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    Stats stats() const;

  private:
    struct Entry
    {
        std::string id;
        std::uint64_t bytes = 0;
        std::shared_ptr<const compiler::CompiledModel> model;
        std::shared_ptr<const storage::PackedTensor> dataset;
    };

    /** Insert at the hot end, then evict cold entries past the
     *  budget. Returns the evicted ids (hook runs on them after the
     *  lock drops). */
    std::vector<std::string> insertLocked(Entry entry);

    const Entry* touchLocked(const std::string& id);

    /** Evict the front (just-touched) entry — the
     *  serve.registry.evict_inflight failpoint's as-if-under-pressure
     *  eviction. */
    void evictHotLocked();

    mutable std::mutex mutex_;
    std::uint64_t budgetBytes_;
    std::uint64_t residentBytes_ = 0;
    std::uint64_t evictions_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    std::uint64_t nextModel_ = 1;
    std::uint64_t nextDataset_ = 1;
    /// Hot first; lookups splice to the front.
    std::list<Entry> lru_;
    std::map<std::string, std::list<Entry>::iterator> index_;
    std::set<std::string> evicted_;
    std::function<void(const std::string&)> evictionHook_;
};

} // namespace teaal::serve
