/**
 * @file
 * A minimal blocking client for the serving protocol
 * (serve/server.hpp): connect to 127.0.0.1:<port>, send one
 * newline-delimited JSON request per call, read the matching response
 * line. Used by examples/serve_client.cpp, bench/serve_latency.cpp,
 * and the end-to-end tests; kept deliberately synchronous — the load
 * generator gets concurrency by running many clients, matching how
 * real open-loop harnesses drive a service.
 *
 * requestWithRetry() layers the client-side half of the server's
 * load-shedding contract on top: `overloaded` and `evicted` are
 * transient by design (capacity frees up; evicted ids can be
 * re-registered), so they get bounded retries with exponential
 * backoff and seeded jitter. Everything else — including `cancelled`
 * and `deadline_exceeded`, which mean the server deliberately stopped
 * the run — returns to the caller untouched.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/json.hpp"

namespace teaal::serve
{

/** The `error.code` of a response, or "" when `ok` is true. */
std::string responseErrorCode(const Json& response);

/**
 * Retry policy for requestWithRetry(). Backoff for attempt n (0-based)
 * is min(maxDelayMs, baseDelayMs * 2^n) scaled by a jitter factor in
 * [0.5, 1.0) drawn from a seeded Xoshiro256 stream — deterministic
 * for tests, decorrelated across clients seeded differently.
 */
struct RetryPolicy
{
    unsigned maxAttempts = 4;   ///< total tries, including the first
    double baseDelayMs = 10.0;  ///< first backoff step
    double maxDelayMs = 250.0;  ///< backoff ceiling
    std::uint64_t seed = 0x5eed5eedULL; ///< jitter stream seed

    /// Consulted before each retry with the error code and the
    /// mutable request. Return false to give up now (keeping the
    /// error response). Mutating the request is the `evicted`
    /// recovery path: re-register the dropped model/dataset, then
    /// point the retried request at the fresh ids.
    std::function<bool(const std::string& code, Json& request)> onRetry;
};

class Client
{
  public:
    Client() = default;

    /** Closes the connection if open. */
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;

    /** Connect to 127.0.0.1:@p port; throws SpecError on failure. */
    void connect(int port);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Send one request line, block for the response line (no
     *  trailing newline). Throws SpecError if the connection drops. */
    std::string requestLine(const std::string& line);

    /** requestLine + JSON round trip. */
    Json request(const Json& req);

    /**
     * request() with bounded retries on the transient codes
     * (`overloaded`, `evicted`) per @p policy. Returns the first
     * non-retryable response, or the last error once attempts are
     * exhausted / onRetry declines. @p attempts_out (optional) gets
     * the number of requests actually sent.
     */
    Json requestWithRetry(Json req, const RetryPolicy& policy,
                          unsigned* attempts_out = nullptr);

  private:
    int fd_ = -1;
    std::string pending_; ///< bytes past the last response line
};

} // namespace teaal::serve
