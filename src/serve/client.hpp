/**
 * @file
 * A minimal blocking client for the serving protocol
 * (serve/server.hpp): connect to 127.0.0.1:<port>, send one
 * newline-delimited JSON request per call, read the matching response
 * line. Used by examples/serve_client.cpp, bench/serve_latency.cpp,
 * and the end-to-end tests; kept deliberately synchronous — the load
 * generator gets concurrency by running many clients, matching how
 * real open-loop harnesses drive a service.
 */
#pragma once

#include <string>

#include "serve/json.hpp"

namespace teaal::serve
{

class Client
{
  public:
    Client() = default;

    /** Closes the connection if open. */
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;

    /** Connect to 127.0.0.1:@p port; throws SpecError on failure. */
    void connect(int port);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Send one request line, block for the response line (no
     *  trailing newline). Throws SpecError if the connection drops. */
    std::string requestLine(const std::string& line);

    /** requestLine + JSON round trip. */
    Json request(const Json& req);

  private:
    int fd_ = -1;
    std::string pending_; ///< bytes past the last response line
};

} // namespace teaal::serve
