#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace teaal::serve
{

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), pending_(std::move(other.pending_))
{
    other.fd_ = -1;
}

Client&
Client::operator=(Client&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        pending_ = std::move(other.pending_);
        other.fd_ = -1;
    }
    return *this;
}

void
Client::connect(int port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw SpecError("serve client: socket() failed: " +
                        std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw SpecError("serve client: connect(127.0.0.1:" +
                        std::to_string(port) + ") failed: " + why);
    }
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

std::string
Client::requestLine(const std::string& line)
{
    if (fd_ < 0)
        throw SpecError("serve client: not connected");
    std::string framed = line;
    framed += '\n';
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
        const ssize_t w = ::send(fd_, p, left, MSG_NOSIGNAL);
        if (w <= 0)
            throw SpecError(
                "serve client: connection lost while sending");
        p += w;
        left -= static_cast<std::size_t>(w);
    }
    char buf[4096];
    for (;;) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string response = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            return response;
        }
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0)
            throw SpecError(
                "serve client: connection closed before a response "
                "arrived");
        pending_.append(buf, static_cast<std::size_t>(n));
    }
}

Json
Client::request(const Json& req)
{
    return parseJson(requestLine(req.dump()));
}

} // namespace teaal::serve
