#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/random.hpp"

namespace teaal::serve
{

std::string
responseErrorCode(const Json& response)
{
    const Json* ok = response.find("ok");
    if (ok != nullptr && ok->isBool() && ok->boolean())
        return "";
    const Json* error = response.find("error");
    if (error == nullptr)
        return "";
    const Json* code = error->find("code");
    return code != nullptr && code->isString() ? code->str()
                                               : std::string();
}

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), pending_(std::move(other.pending_))
{
    other.fd_ = -1;
}

Client&
Client::operator=(Client&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        pending_ = std::move(other.pending_);
        other.fd_ = -1;
    }
    return *this;
}

void
Client::connect(int port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw SpecError("serve client: socket() failed: " +
                        std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw SpecError("serve client: connect(127.0.0.1:" +
                        std::to_string(port) + ") failed: " + why);
    }
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

std::string
Client::requestLine(const std::string& line)
{
    if (fd_ < 0)
        throw SpecError("serve client: not connected");
    std::string framed = line;
    framed += '\n';
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
        const ssize_t w = ::send(fd_, p, left, MSG_NOSIGNAL);
        if (w <= 0)
            throw SpecError(
                "serve client: connection lost while sending");
        p += w;
        left -= static_cast<std::size_t>(w);
    }
    char buf[4096];
    for (;;) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string response = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            return response;
        }
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0)
            throw SpecError(
                "serve client: connection closed before a response "
                "arrived");
        pending_.append(buf, static_cast<std::size_t>(n));
    }
}

Json
Client::request(const Json& req)
{
    return parseJson(requestLine(req.dump()));
}

Json
Client::requestWithRetry(Json req, const RetryPolicy& policy,
                         unsigned* attempts_out)
{
    Xoshiro256 rng(policy.seed);
    const unsigned max_attempts = std::max(1u, policy.maxAttempts);
    for (unsigned attempt = 0;; ++attempt) {
        Json response = request(req);
        if (attempts_out != nullptr)
            *attempts_out = attempt + 1;
        const std::string code = responseErrorCode(response);
        const bool transient = code == "overloaded" || code == "evicted";
        if (!transient || attempt + 1 >= max_attempts)
            return response;
        if (policy.onRetry && !policy.onRetry(code, req))
            return response;
        const double step = std::min(
            policy.maxDelayMs,
            policy.baseDelayMs *
                static_cast<double>(1ULL << std::min(attempt, 30u)));
        const double delay_ms = step * (0.5 + 0.5 * rng.uniform());
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
    }
}

} // namespace teaal::serve
