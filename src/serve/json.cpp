#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace teaal::serve
{

Json
Json::makeBool(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

Json
Json::makeNumber(double v)
{
    Json j;
    j.kind_ = Kind::Number;
    j.num_ = v;
    return j;
}

Json
Json::makeString(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.str_ = std::move(v);
    return j;
}

Json
Json::makeArray()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::makeObject()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::boolean() const
{
    if (kind_ != Kind::Bool)
        throw SpecError("json value is not a boolean");
    return bool_;
}

double
Json::number() const
{
    if (kind_ != Kind::Number)
        throw SpecError("json value is not a number");
    return num_;
}

const std::string&
Json::str() const
{
    if (kind_ != Kind::String)
        throw SpecError("json value is not a string");
    return str_;
}

const std::vector<Json>&
Json::array() const
{
    if (kind_ != Kind::Array)
        throw SpecError("json value is not an array");
    return arr_;
}

std::vector<Json>&
Json::array()
{
    if (kind_ != Kind::Array)
        throw SpecError("json value is not an array");
    return arr_;
}

const std::vector<std::pair<std::string, Json>>&
Json::object() const
{
    if (kind_ != Kind::Object)
        throw SpecError("json value is not an object");
    return obj_;
}

std::vector<std::pair<std::string, Json>>&
Json::object()
{
    if (kind_ != Kind::Object)
        throw SpecError("json value is not an object");
    return obj_;
}

const Json*
Json::find(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Json&
Json::set(const std::string& key, Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        throw SpecError("json set() on a non-object");
    for (auto& [k, v] : obj_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(value));
    return *this;
}

Json&
Json::push(Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        throw SpecError("json push() on a non-array");
    arr_.push_back(std::move(value));
    return *this;
}

namespace
{

void
dumpString(const std::string& s, std::string& out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
dumpNumber(double v, std::string& out)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no inf/nan
        return;
    }
    // Integers (the common protocol case: ids, counters, bytes) print
    // without an exponent or trailing ".0"; everything else gets
    // round-trippable shortest-ish formatting.
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
dumpValue(const Json& j, std::string& out)
{
    switch (j.kind()) {
    case Json::Kind::Null: out += "null"; break;
    case Json::Kind::Bool: out += j.boolean() ? "true" : "false"; break;
    case Json::Kind::Number: dumpNumber(j.number(), out); break;
    case Json::Kind::String: dumpString(j.str(), out); break;
    case Json::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json& v : j.array()) {
            if (!first)
                out += ',';
            first = false;
            dumpValue(v, out);
        }
        out += ']';
        break;
    }
    case Json::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, v] : j.object()) {
            if (!first)
                out += ',';
            first = false;
            dumpString(k, out);
            out += ':';
            dumpValue(v, out);
        }
        out += '}';
        break;
    }
    }
}

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string& what) const
    {
        throw SpecError("json parse error at offset " +
                        std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char* word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    void
    appendUtf8(unsigned cp, std::string& out)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape digit");
        }
        return v;
    }

    std::string
    stringBody()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp = hex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // Surrogate pair.
                    if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                        text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        const unsigned lo = hex4();
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            fail("bad low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else {
                        fail("lone high surrogate");
                    }
                }
                appendUtf8(cp, out);
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Json
    numberValue()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string tok = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            fail("bad number '" + tok + "'");
        return Json::makeNumber(v);
    }

    Json
    value()
    {
        skipWs();
        const char c = peek();
        if (c == '{') {
            ++pos_;
            Json obj = Json::makeObject();
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            for (;;) {
                skipWs();
                std::string key = stringBody();
                skipWs();
                expect(':');
                obj.object().emplace_back(std::move(key), value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return obj;
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::makeArray();
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            for (;;) {
                arr.array().push_back(value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return arr;
            }
        }
        if (c == '"')
            return Json::makeString(stringBody());
        if (c == 't') {
            if (!consumeWord("true"))
                fail("bad literal");
            return Json::makeBool(true);
        }
        if (c == 'f') {
            if (!consumeWord("false"))
                fail("bad literal");
            return Json::makeBool(false);
        }
        if (c == 'n') {
            if (!consumeWord("null"))
                fail("bad literal");
            return Json();
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return numberValue();
        fail("unexpected character");
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
Json::dump() const
{
    std::string out;
    dumpValue(*this, out);
    return out;
}

Json
parseJson(const std::string& text)
{
    return Parser(text).parse();
}

} // namespace teaal::serve
