/**
 * @file
 * Admission control for the serving daemon: a bounded request queue
 * over the shared util::ThreadPool, with load shedding.
 *
 * Each accepted request is dispatched as its own one-slot pool launch
 * — the pool's FIFO job queue is the request queue — and the bound is
 * an in-flight cap covering queued *and* executing requests. At the
 * cap, submit() rejects immediately (the caller answers `overloaded`)
 * instead of queueing unboundedly: open-loop arrivals past saturation
 * shed instead of building a standing queue, which is what keeps the
 * p99 of *accepted* requests disciplined (TailBench's open-loop
 * methodology; the harness in bench/serve_latency.cpp measures it).
 *
 * close() flips the gate for graceful shutdown: new submissions shed
 * (the caller answers `shutting_down`) while drain() waits for every
 * accepted request to finish.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/thread_pool.hpp"

namespace teaal::serve
{

class Admission
{
  public:
    /**
     * @param pool Shared worker pool (also used by CompiledModel::run
     *     for intra-request sharding; the pool grows on demand, so
     *     admission workers blocking on nested launches cannot
     *     deadlock it).
     * @param max_in_flight Accepted-but-unfinished cap (queued +
     *     executing). 0 is pinned to 1.
     */
    Admission(util::ThreadPool& pool, unsigned max_in_flight);

    /** Closes and drains: accepted jobs reference this object, so it
     *  cannot die while any is queued or running. */
    ~Admission();

    /** Why submit() declined a request. */
    enum class Reject { None, Overloaded, ShuttingDown };

    /**
     * Run @p job on the pool unless the in-flight cap is reached
     * (Reject::Overloaded) or close() was called
     * (Reject::ShuttingDown). @p job runs exactly once; completion is
     * tracked for drain().
     */
    Reject submit(std::function<void()> job);

    /** Stop accepting; already-accepted jobs keep running. */
    void close();

    /** Re-open after close() (tests). */
    void reopen();

    /** Block until every accepted job has finished. */
    void drain();

    struct Stats
    {
        std::uint64_t accepted = 0;
        std::uint64_t shed = 0;
        std::uint64_t completed = 0;
        unsigned inFlight = 0;
        unsigned peakInFlight = 0;
        unsigned maxInFlight = 0;
    };

    Stats stats() const;

  private:
    /// Return an in-flight slot (job finished or threw).
    void releaseSlot();

    util::ThreadPool& pool_;
    const unsigned maxInFlight_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    bool closed_ = false;
    unsigned inFlight_ = 0;
    unsigned peakInFlight_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace teaal::serve
