#include "serve/registry.hpp"

#include <algorithm>

#include "util/failpoint.hpp"

namespace teaal::serve
{

std::vector<std::string>
Registry::insertLocked(Entry entry)
{
    const std::string id = entry.id;
    lru_.push_front(std::move(entry));
    index_[id] = lru_.begin();
    residentBytes_ += lru_.front().bytes;
    evicted_.erase(id);

    // Evict cold entries until back under budget. The entry just
    // inserted is never evicted by its own insertion — a dataset
    // larger than the whole budget is admitted alone (everything
    // else goes), rather than bouncing with a spurious failure.
    std::vector<std::string> evicted;
    while (residentBytes_ > budgetBytes_ && lru_.size() > 1) {
        Entry& cold = lru_.back();
        residentBytes_ -= cold.bytes;
        index_.erase(cold.id);
        evicted_.insert(cold.id);
        ++evictions_;
        evicted.push_back(cold.id);
        lru_.pop_back();
    }
    return evicted;
}

std::string
Registry::addModel(std::shared_ptr<const compiler::CompiledModel> model,
                   std::uint64_t bytes)
{
    std::vector<std::string> evicted;
    std::string id;
    std::function<void(const std::string&)> hook;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        id = "m" + std::to_string(nextModel_++);
        Entry e;
        e.id = id;
        e.bytes = bytes;
        e.model = std::move(model);
        evicted = insertLocked(std::move(e));
        hook = evictionHook_;
    }
    if (hook) {
        for (const std::string& gone : evicted)
            hook(gone);
    }
    return id;
}

std::string
Registry::addDataset(
    std::shared_ptr<const storage::PackedTensor> dataset)
{
    std::vector<std::string> evicted;
    std::string id;
    std::function<void(const std::string&)> hook;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        id = "d" + std::to_string(nextDataset_++);
        Entry e;
        e.id = id;
        e.bytes = dataset->residentBytes();
        e.dataset = std::move(dataset);
        evicted = insertLocked(std::move(e));
        hook = evictionHook_;
    }
    if (hook) {
        for (const std::string& gone : evicted)
            hook(gone);
    }
    return id;
}

const Registry::Entry*
Registry::touchLocked(const std::string& id)
{
    const auto it = index_.find(id);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    return &*it->second;
}

void
Registry::evictHotLocked()
{
    // Fault injection (serve.registry.evict_inflight): evict the
    // entry a lookup just touched, exactly as memory pressure would —
    // bytes returned, eviction recorded, id remembered as evicted so
    // the protocol answers "evicted, re-register".
    Entry& hot = lru_.front();
    residentBytes_ -= hot.bytes;
    index_.erase(hot.id);
    evicted_.insert(hot.id);
    ++evictions_;
    lru_.pop_front();
}

std::shared_ptr<const compiler::CompiledModel>
Registry::model(const std::string& id)
{
    std::function<void(const std::string&)> hook;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        const Entry* e = touchLocked(id);
        if (e == nullptr)
            return nullptr;
        if (!TEAAL_FAILPOINT_TRIGGERED("serve.registry.evict_inflight"))
            return e->model;
        evictHotLocked();
        hook = evictionHook_;
    }
    if (hook)
        hook(id);
    return nullptr;
}

std::shared_ptr<const storage::PackedTensor>
Registry::dataset(const std::string& id)
{
    std::function<void(const std::string&)> hook;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        const Entry* e = touchLocked(id);
        if (e == nullptr)
            return nullptr;
        if (!TEAAL_FAILPOINT_TRIGGERED("serve.registry.evict_inflight"))
            return e->dataset;
        evictHotLocked();
        hook = evictionHook_;
    }
    if (hook)
        hook(id);
    return nullptr;
}

bool
Registry::evicted(const std::string& id) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return evicted_.count(id) != 0;
}

std::vector<std::string>
Registry::modelIds() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<std::string> out;
    for (const Entry& e : lru_) {
        if (e.model != nullptr)
            out.push_back(e.id);
    }
    return out;
}

std::vector<std::pair<std::string,
                      std::shared_ptr<const compiler::CompiledModel>>>
Registry::peekModels() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<std::pair<
        std::string, std::shared_ptr<const compiler::CompiledModel>>>
        out;
    for (const Entry& e : lru_) {
        if (e.model != nullptr)
            out.emplace_back(e.id, e.model);
    }
    return out;
}

Registry::Stats
Registry::stats() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    Stats s;
    for (const Entry& e : lru_) {
        if (e.model != nullptr)
            ++s.models;
        else
            ++s.datasets;
    }
    s.residentBytes = residentBytes_;
    s.budgetBytes = budgetBytes_;
    s.evictions = evictions_;
    s.hits = hits_;
    s.misses = misses_;
    return s;
}

} // namespace teaal::serve
