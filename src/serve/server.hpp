/**
 * @file
 * Simulation-as-a-service: a long-lived evaluation daemon serving
 * evaluate-this-mapping traffic — the ROADMAP's "millions of users"
 * scenario built on the substrate of PRs 2-6 (compile-once/run-many
 * pipeline, thread-safe plan cache, zero-copy packed binding, shared
 * util::ThreadPool).
 *
 * Protocol: newline-delimited JSON over TCP (loopback-oriented; no
 * external HTTP dependency, same spirit as the yaml/ mini-parser).
 * One request object per line, one response object per line, in
 * order per connection. Requests carry an `op` plus op-specific
 * fields; an optional `id` of any JSON type is echoed back verbatim.
 *
 *   {"op":"compile","accel":"gamma"}            -> {"ok":true,"model":"m1"}
 *   {"op":"compile","spec":"<yaml>","params":{"K1":64}}
 *   {"op":"load_dataset","path":"a.mtx","rank_ids":["K","M"]}
 *                      -> {"ok":true,"dataset":"d1","bytes":N,
 *                          "mapped":false}
 *   load_dataset sniffs the file: a packed store (teaal-pack output,
 *   storage/store.hpp) is mmap-ed read-only — millisecond cold-start,
 *   pages shared across processes, registry charged by file size,
 *   eviction unmaps — anything else parses as Matrix Market. Invalid
 *   stores (bad magic/version/checksum, truncation) answer with error
 *   section "store" keyed by the path.
 *   {"op":"evaluate","model":"m1",
 *    "bindings":{"A":"d1","B":"d2"},"threads":1}
 *        -> {"ok":true,"latency_ms":...,"exec_seconds":...,
 *            "traffic_bytes":...,"compute_muls":...,"cache":"hit"}
 *   {"op":"stats"}            -> registry/admission/plan-cache counters
 *   {"op":"sharding_report","model":"m1"} -> per-Einsum entries
 *   {"op":"cancel","target":<id>}         -> {"ok":true,"cancelled":N}
 *
 * Evaluations accept an optional `deadline_ms`; the server clamps it
 * to ServerOptions::maxDeadlineMs (also the default when absent). The
 * deadline clock starts at request receipt, so queueing time counts.
 * Every evaluate response — success or error — reports `elapsed_ms`.
 * `cancel` cooperatively stops in-flight evaluations whose request
 * `id` equals `target`; they answer with code `cancelled`.
 *
 * Errors are structured, mirroring util::Diagnostic:
 *   {"ok":false,"error":{"code":"bad_request"|"unknown_id"|"evicted"|
 *                        "overloaded"|"shutting_down"|"cancelled"|
 *                        "deadline_exceeded"|"internal",
 *                        "section":"...","key":"...","message":"..."}}
 * `evicted` means "this id was registered and later LRU-evicted under
 * the memory budget — re-register it"; `overloaded` is admission
 * shedding (serve/admission.hpp); `cancelled` / `deadline_exceeded`
 * are cooperative-cancellation outcomes (util/cancel.hpp) and are
 * deliberately distinct from `overloaded` so clients can tell "shed
 * before running" from "stopped while running".
 *
 * Evaluations run through serve::Admission on the server's single
 * shared ThreadPool (also passed into RunOptions::pool, so sharded
 * runs draw from the same workers); control-plane ops (compile,
 * load_dataset, introspection) execute inline on the session thread.
 * Each request builds its own RunOptions — nothing mutable is shared
 * between requests.
 *
 * Graceful shutdown: stop() (the daemon calls it on SIGINT/SIGTERM)
 * stops accepting connections and new work, cancels in-flight
 * evaluations through the same token path (reason `shutdown`, so the
 * drain is bounded), lets every request write its response, then
 * joins all sessions.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace teaal::serve
{

struct ServerOptions
{
    /// Loopback TCP port; 0 asks the kernel for an ephemeral port
    /// (read it back via port()).
    int port = 0;

    /// Registry memory budget (models + packed datasets); cold
    /// entries are LRU-evicted past it.
    std::uint64_t memoryBudgetBytes = 256ull << 20;

    /// Admission cap: accepted-but-unfinished evaluations (queued +
    /// executing). Arrivals past it are shed with `overloaded`.
    unsigned maxInFlight = 64;

    /// Upper bound a request's `threads` field may ask for.
    unsigned maxEvalThreads = 8;

    /// Per-model plan-cache capacity (CompileOptions::
    /// workloadCacheCapacity) for models compiled through the server.
    std::size_t planCacheCapacity = 4;

    /// Bound-workload cache entries (model + binding-set combinations
    /// kept alive so repeated evaluations hit the plan cache).
    std::size_t workloadCacheEntries = 64;

    /// Deadline policy for evaluations, in milliseconds: the default
    /// applied when a request names no `deadline_ms`, and the cap a
    /// requested one is clamped to. 0 disables both (no deadline
    /// unless a request asks, uncapped). Expiry cancels the run
    /// cooperatively and answers `deadline_exceeded`.
    double maxDeadlineMs = 30000.0;
};

class Server
{
  public:
    explicit Server(ServerOptions opts = {});

    /** Stops and drains (idempotent with stop()). */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Bind + listen on 127.0.0.1 and start accepting connections.
     *  Throws SpecError when the socket cannot be bound. */
    void start();

    /** The bound TCP port (valid after start()). */
    int port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting connections, shed new
     * requests with `shutting_down`, finish and answer every
     * in-flight request, join all session threads. Idempotent.
     */
    void stop();

    bool running() const { return running_.load(); }

    /**
     * The protocol core, socket-free: handle one request line,
     * return one response line (no trailing newline). Sessions call
     * this per received line; tests and the latency bench may call
     * it directly to measure protocol cost without socket overhead.
     */
    std::string handleLine(const std::string& line);

    Registry& registry() { return registry_; }
    Admission& admission() { return *admission_; }

  private:
    struct Session
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    /// One cached bound workload: the stable Workload identity that
    /// turns repeated evaluations of the same (model, bindings) into
    /// plan-cache hits inside the model.
    struct BoundWorkload
    {
        compiler::Workload workload;
        std::set<std::string> refIds; ///< registry ids it pins
    };

    void acceptLoop();
    void sessionLoop(Session& session);
    void reapSessionsLocked();

    Json handle(const Json& request);
    Json handleCompile(const Json& request);
    Json handleLoadDataset(const Json& request);
    Json handleEvaluate(const Json& request);
    Json handleEstimate(const Json& request);
    Json handleCancel(const Json& request);
    Json handleStats(const Json& request);
    Json handleShardingReport(const Json& request);

    /** Get-or-create the cached Workload for (model, bindings);
     *  sets @p cache_hit. */
    std::shared_ptr<const BoundWorkload> boundWorkloadFor(
        const std::string& model_id, const Json& bindings,
        bool& cache_hit);

    /** Drop bound-workload entries pinning @p id (eviction hook). */
    void dropWorkloadsReferencing(const std::string& id);

    ServerOptions opts_;
    Registry registry_;
    util::ThreadPool pool_;
    std::unique_ptr<Admission> admission_;

    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;

    std::mutex sessionsMutex_;
    std::list<std::unique_ptr<Session>> sessions_;

    std::mutex workloadsMutex_;
    /// Key: "<model id>|<name>=<dataset id>,..." — LRU, bounded.
    std::list<std::pair<std::string,
                        std::shared_ptr<const BoundWorkload>>>
        workloads_;

    /// In-flight evaluations by serialized request `id` (empty key
    /// for id-less requests — uncancellable by op, still reached by
    /// shutdown). Multimap: duplicate ids cancel together.
    std::mutex inflightMutex_;
    std::multimap<std::string, std::shared_ptr<util::CancelToken>>
        inflight_;
};

} // namespace teaal::serve
