#include "serve/admission.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/failpoint.hpp"

namespace teaal::serve
{

Admission::Admission(util::ThreadPool& pool, unsigned max_in_flight)
    : pool_(pool), maxInFlight_(std::max(1u, max_in_flight))
{
}

Admission::~Admission()
{
    close();
    drain();
}

Admission::Reject
Admission::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (closed_) {
            ++shed_;
            return Reject::ShuttingDown;
        }
        if (inFlight_ >= maxInFlight_ ||
            TEAAL_FAILPOINT_TRIGGERED("serve.admission.overload")) {
            ++shed_;
            return Reject::Overloaded;
        }
        ++inFlight_;
        peakInFlight_ = std::max(peakInFlight_, inFlight_);
        ++accepted_;
    }
    auto wrapped = std::make_shared<std::function<void()>>(
        std::move(job));
    pool_.launch(1, [this, wrapped](unsigned) {
        // The in-flight slot must be returned even when the job
        // throws (the pool now surfaces job exceptions at its
        // Ticket::wait(), so a throw no longer aborts the process —
        // but an unguarded one here would leak the slot and hang
        // drain() forever).
        try {
            (*wrapped)();
        } catch (...) {
            releaseSlot();
            throw;
        }
        releaseSlot();
    });
    return Reject::None;
}

void
Admission::releaseSlot()
{
    std::lock_guard<std::mutex> lk(mutex_);
    --inFlight_;
    ++completed_;
    if (inFlight_ == 0)
        idleCv_.notify_all();
}

void
Admission::close()
{
    std::lock_guard<std::mutex> lk(mutex_);
    closed_ = true;
}

void
Admission::reopen()
{
    std::lock_guard<std::mutex> lk(mutex_);
    closed_ = false;
}

void
Admission::drain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    idleCv_.wait(lk, [this] { return inFlight_ == 0; });
}

Admission::Stats
Admission::stats() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    Stats s;
    s.accepted = accepted_;
    s.shed = shed_;
    s.completed = completed_;
    s.inFlight = inFlight_;
    s.peakInFlight = peakInFlight_;
    s.maxInFlight = maxInFlight_;
    return s;
}

} // namespace teaal::serve
