#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>

#include "accelerators/accelerators.hpp"
#include "storage/store.hpp"
#include "util/diagnostic.hpp"
#include "util/logging.hpp"
#include "workloads/mtx.hpp"

namespace teaal::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

const Clock::time_point g_start = Clock::now();

const Json&
requireField(const Json& req, const char* key)
{
    const Json* f = req.find(key);
    if (f == nullptr)
        diagError("protocol", key, "missing required field '", key,
                  "'");
    return *f;
}

std::string
requireString(const Json& req, const char* key)
{
    const Json& f = requireField(req, key);
    if (!f.isString())
        diagError("protocol", key, "field '", key,
                  "' must be a string");
    return f.str();
}

bool
optionalBool(const Json& req, const char* key, bool fallback)
{
    const Json* f = req.find(key);
    if (f == nullptr)
        return fallback;
    if (!f->isBool())
        diagError("protocol", key, "field '", key,
                  "' must be a boolean");
    return f->boolean();
}

Json
errorResponse(const std::string& code, const std::string& section,
              const std::string& key, const std::string& message)
{
    Json e = Json::makeObject();
    e.set("code", Json::makeString(code));
    if (!section.empty())
        e.set("section", Json::makeString(section));
    if (!key.empty())
        e.set("key", Json::makeString(key));
    e.set("message", Json::makeString(message));
    Json r = Json::makeObject();
    r.set("ok", Json::makeBool(false));
    r.set("error", std::move(e));
    return r;
}

Json
okResponse()
{
    Json r = Json::makeObject();
    r.set("ok", Json::makeBool(true));
    return r;
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), registry_(opts.memoryBudgetBytes), pool_(0),
      admission_(std::make_unique<Admission>(pool_, opts.maxInFlight))
{
    registry_.setEvictionHook([this](const std::string& id) {
        dropWorkloadsReferencing(id);
    });
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw SpecError("serve: socket() failed: " +
                        std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw SpecError("serve: bind(port " +
                        std::to_string(opts_.port) +
                        ") failed: " + std::strerror(errno));
    }
    if (::listen(listenFd_, 128) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw SpecError("serve: listen() failed: " +
                        std::string(std::strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                  &len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 200);
        if (stopping_.load())
            break;
        if (pr <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            continue;
        }
        auto session = std::make_unique<Session>();
        session->fd = fd;
        Session* raw = session.get();
        {
            std::lock_guard<std::mutex> lk(sessionsMutex_);
            reapSessionsLocked();
            sessions_.push_back(std::move(session));
        }
        raw->thread = std::thread([this, raw] { sessionLoop(*raw); });
    }
}

void
Server::reapSessionsLocked()
{
    // Only ever called from the acceptor (or after it is joined), so
    // Session::thread is never touched from two threads at once.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        Session& s = **it;
        if (s.done.load() && s.thread.joinable()) {
            s.thread.join();
            if (s.fd >= 0)
                ::close(s.fd);
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::sessionLoop(Session& session)
{
    std::string pending;
    char buf[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(session.fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        pending.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = pending.find('\n')) != std::string::npos) {
            std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const std::string response = handleLine(line) + "\n";
            const char* p = response.data();
            std::size_t left = response.size();
            while (left > 0) {
                const ssize_t w =
                    ::send(session.fd, p, left, MSG_NOSIGNAL);
                if (w <= 0) {
                    open = false;
                    break;
                }
                p += w;
                left -= static_cast<std::size_t>(w);
            }
            if (!open)
                break;
        }
    }
    // The fd is closed by the reaper/stop() after the join, so a
    // concurrent stop() never shutdown()s a recycled descriptor.
    session.done.store(true);
}

void
Server::stop()
{
    if (stopping_.exchange(true)) {
        // Second caller: the first stop() owns the teardown.
        if (acceptThread_.joinable())
            acceptThread_.join();
        return;
    }
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Shed work not yet admitted; everything accepted observes
    // shutdown through the same cancellation path as a user `cancel`,
    // so the drain below is bounded by one poll interval instead of a
    // full run, and its session still writes the (structured
    // `cancelled`) response before exiting.
    admission_->close();
    {
        std::lock_guard<std::mutex> lk(inflightMutex_);
        for (auto& [key, token] : inflight_)
            token->cancel(util::CancelReason::Shutdown);
    }
    {
        std::lock_guard<std::mutex> lk(sessionsMutex_);
        for (const std::unique_ptr<Session>& s : sessions_) {
            if (s->fd >= 0)
                ::shutdown(s->fd, SHUT_RD);
        }
    }
    std::list<std::unique_ptr<Session>> gone;
    {
        std::lock_guard<std::mutex> lk(sessionsMutex_);
        gone.swap(sessions_);
    }
    for (const std::unique_ptr<Session>& s : gone) {
        if (s->thread.joinable())
            s->thread.join();
        if (s->fd >= 0)
            ::close(s->fd);
    }
    admission_->drain();
    running_.store(false);
    logInfo("serve: drained in-flight requests and stopped");
}

// ------------------------------------------------------------ protocol

std::string
Server::handleLine(const std::string& line)
{
    Json request;
    try {
        request = parseJson(line);
    } catch (const SpecError& e) {
        return errorResponse("bad_request", "protocol", "json",
                             detail::stripSpecPrefix(e.what()))
            .dump();
    }
    return handle(request).dump();
}

Json
Server::handle(const Json& request)
{
    const Json* id = request.find("id");
    Json response;
    try {
        if (!request.isObject())
            diagError("protocol", "",
                      "request must be a JSON object");
        const std::string op = requireString(request, "op");
        if (op == "compile")
            response = handleCompile(request);
        else if (op == "load_dataset")
            response = handleLoadDataset(request);
        else if (op == "evaluate")
            response = handleEvaluate(request);
        else if (op == "estimate")
            response = handleEstimate(request);
        else if (op == "cancel")
            response = handleCancel(request);
        else if (op == "stats")
            response = handleStats(request);
        else if (op == "sharding_report")
            response = handleShardingReport(request);
        else
            diagError("protocol", "op", "unknown op '", op, "'");
    } catch (const DiagnosticError& e) {
        response = errorResponse("bad_request", e.diagnostic().section,
                                 e.diagnostic().key,
                                 e.diagnostic().message);
    } catch (const std::exception& e) {
        response = errorResponse("internal", "", "", e.what());
    }
    if (id != nullptr)
        response.set("id", *id);
    return response;
}

Json
Server::handleCompile(const Json& request)
{
    compiler::Specification spec;
    std::uint64_t bytes = 64 * 1024; // nominal model overhead
    if (const Json* accel = request.find("accel")) {
        if (!accel->isString())
            diagError("protocol", "accel",
                      "field 'accel' must be a string");
        const std::string& name = accel->str();
        if (name == "outerspace")
            spec = accel::outerSpace();
        else if (name == "gamma")
            spec = accel::gamma();
        else if (name == "extensor")
            spec = accel::extensor();
        else if (name == "sigma")
            spec = accel::sigma();
        else
            diagError("protocol", "accel", "unknown accelerator '",
                      name,
                      "' (expected outerspace, gamma, extensor, or "
                      "sigma)");
    } else {
        const std::string text = requireString(request, "spec");
        mapping::ParamMap params;
        if (const Json* p = request.find("params")) {
            if (!p->isObject())
                diagError("protocol", "params",
                          "field 'params' must be an object of "
                          "numbers");
            for (const auto& [k, v] : p->object()) {
                if (!v.isNumber())
                    diagError("protocol", "params", "parameter '", k,
                              "' must be a number");
                params[k] = static_cast<long>(v.number());
            }
        }
        spec = compiler::Specification::parse(text, params);
        bytes += text.size();
    }

    compiler::CompileOptions co;
    co.workloadCacheCapacity = opts_.planCacheCapacity;
    auto model = std::make_shared<const compiler::CompiledModel>(
        compiler::compile(std::move(spec), co));
    const std::string id = registry_.addModel(std::move(model), bytes);

    Json r = okResponse();
    r.set("model", Json::makeString(id));
    return r;
}

Json
Server::handleLoadDataset(const Json& request)
{
    const std::string path = requireString(request, "path");
    std::string name = "A";
    if (const Json* n = request.find("name")) {
        if (!n->isString())
            diagError("protocol", "name",
                      "field 'name' must be a string");
        name = n->str();
    }
    std::vector<std::string> rank_ids{"K", "M"};
    if (const Json* r = request.find("rank_ids")) {
        if (!r->isArray())
            diagError("protocol", "rank_ids",
                      "field 'rank_ids' must be an array of strings");
        rank_ids.clear();
        for (const Json& v : r->array()) {
            if (!v.isString())
                diagError("protocol", "rank_ids",
                          "field 'rank_ids' must be an array of "
                          "strings");
            rank_ids.push_back(v.str());
        }
    }

    std::shared_ptr<const storage::PackedTensor> dataset;
    try {
        // Store files (teaal-pack output) mmap in milliseconds and
        // share the page cache across processes; anything else goes
        // through the streaming Matrix Market parser. Store errors
        // (bad magic past the sniff, version, checksum, truncation)
        // surface as DiagnosticError section "store" keyed by path.
        if (storage::isStoreFile(path)) {
            dataset = std::make_shared<const storage::PackedTensor>(
                storage::mapStore(path));
            if (dataset->name() != name)
                diagError("store", path,
                          "store holds tensor '", dataset->name(),
                          "', request asked for '", name,
                          "' (pass the packed name or repack)");
        } else {
            dataset = std::make_shared<const storage::PackedTensor>(
                workloads::readMatrixMarketPacked(path, name,
                                                  rank_ids));
        }
    } catch (const DiagnosticError&) {
        throw;
    } catch (const SpecError& e) {
        rethrowAsDiagnostic("protocol", "path", e);
    }

    Json r = okResponse();
    r.set("dataset",
          Json::makeString(registry_.addDataset(dataset)));
    // Mapped stores are charged by file size (the pages the mapping
    // can pin); parsed datasets by heap footprint. Eviction drops the
    // last owning reference, which unmaps.
    r.set("bytes", Json::makeNumber(
                       static_cast<double>(dataset->residentBytes())));
    r.set("nnz",
          Json::makeNumber(static_cast<double>(dataset->nnz())));
    r.set("mapped", Json::makeBool(dataset->mapped()));
    return r;
}

std::shared_ptr<const Server::BoundWorkload>
Server::boundWorkloadFor(const std::string& model_id,
                         const Json& bindings, bool& cache_hit)
{
    // Canonical key: the bindings object sorted by tensor name, so
    // {"A":"d1","B":"d2"} and {"B":"d2","A":"d1"} share a Workload
    // (and therefore a plan-cache entry in the model).
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const auto& [tensor, did] : bindings.object()) {
        if (!did.isString())
            diagError("protocol", tensor, "binding of tensor '",
                      tensor, "' must be a dataset id string");
        pairs.emplace_back(tensor, did.str());
    }
    std::sort(pairs.begin(), pairs.end());
    std::string key = model_id + "|";
    for (const auto& [tensor, did] : pairs)
        key += tensor + "=" + did + ",";

    // Resolve the datasets first (touches the registry LRU, surfaces
    // evicted/unknown ids) — outside workloadsMutex_ to keep the two
    // locks unordered.
    std::vector<
        std::pair<std::string,
                  std::shared_ptr<const storage::PackedTensor>>>
        resolved;
    for (const auto& [tensor, did] : pairs) {
        auto dataset = registry_.dataset(did);
        if (dataset == nullptr) {
            if (registry_.evicted(did))
                throw DiagnosticError(Diagnostic{
                    "workload", did,
                    "dataset '" + did +
                        "' was evicted under memory pressure; "
                        "re-register it with load_dataset"});
            diagError("workload", did, "unknown dataset id '", did,
                      "'");
        }
        resolved.emplace_back(tensor, std::move(dataset));
    }

    std::lock_guard<std::mutex> lk(workloadsMutex_);
    for (auto it = workloads_.begin(); it != workloads_.end(); ++it) {
        if (it->first == key) {
            workloads_.splice(workloads_.begin(), workloads_, it);
            cache_hit = true;
            return workloads_.front().second;
        }
    }
    cache_hit = false;
    auto bound = std::make_shared<BoundWorkload>();
    bound->refIds.insert(model_id);
    for (auto& [tensor, dataset] : resolved) {
        bound->workload.add(tensor, std::move(dataset));
    }
    for (const auto& [tensor, did] : pairs)
        bound->refIds.insert(did);
    workloads_.emplace_front(key, bound);
    while (workloads_.size() > std::max<std::size_t>(
                                   1, opts_.workloadCacheEntries))
        workloads_.pop_back();
    return bound;
}

void
Server::dropWorkloadsReferencing(const std::string& id)
{
    std::lock_guard<std::mutex> lk(workloadsMutex_);
    for (auto it = workloads_.begin(); it != workloads_.end();) {
        if (it->second->refIds.count(id) != 0)
            it = workloads_.erase(it);
        else
            ++it;
    }
}

Json
Server::handleEvaluate(const Json& request)
{
    // The deadline clock starts at receipt, so time spent queued in
    // admission counts against the request's budget.
    const Clock::time_point received = Clock::now();
    const auto elapsedMs = [received] {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         received)
            .count();
    };

    const std::string model_id = requireString(request, "model");
    const Json& bindings = requireField(request, "bindings");
    if (!bindings.isObject())
        diagError("protocol", "bindings",
                  "field 'bindings' must be an object mapping tensor "
                  "names to dataset ids");

    unsigned threads = 1;
    if (const Json* t = request.find("threads")) {
        if (!t->isNumber())
            diagError("protocol", "threads",
                      "field 'threads' must be a number");
        const double v = t->number();
        if (v != std::floor(v) || v < 1.0 ||
            v > static_cast<double>(opts_.maxEvalThreads))
            diagError("protocol", "threads",
                      "field 'threads' must be an integer in [1, ",
                      opts_.maxEvalThreads, "]");
        threads = static_cast<unsigned>(v);
    }
    const bool validate = optionalBool(request, "validate", true);
    const bool cache = optionalBool(request, "cache", true);

    double deadline_ms = opts_.maxDeadlineMs;
    if (const Json* d = request.find("deadline_ms")) {
        if (!d->isNumber() || !(d->number() > 0.0))
            diagError("protocol", "deadline_ms",
                      "field 'deadline_ms' must be a positive number "
                      "of milliseconds");
        deadline_ms = opts_.maxDeadlineMs > 0.0
                          ? std::min(d->number(), opts_.maxDeadlineMs)
                          : d->number();
    }

    auto model = registry_.model(model_id);
    if (model == nullptr) {
        if (registry_.evicted(model_id))
            return errorResponse(
                "evicted", "workload", model_id,
                "model '" + model_id +
                    "' was evicted under memory pressure; re-register "
                    "it with compile");
        return errorResponse("unknown_id", "workload", model_id,
                             "unknown model id '" + model_id + "'");
    }

    bool workload_cached = false;
    std::shared_ptr<const BoundWorkload> bound;
    try {
        bound = boundWorkloadFor(model_id, bindings, workload_cached);
    } catch (const DiagnosticError& e) {
        const std::string code =
            e.diagnostic().message.find("evicted") != std::string::npos
                ? "evicted"
                : (e.diagnostic().section == "workload" ? "unknown_id"
                                                        : "bad_request");
        return errorResponse(code, e.diagnostic().section,
                             e.diagnostic().key,
                             e.diagnostic().message);
    }

    // Register in the in-flight table so the `cancel` op and stop()
    // can reach this run through its token. Keyed by the serialized
    // request `id`; id-less requests sit under the empty key, out of
    // reach of `cancel` but still cancelled at shutdown.
    auto token = std::make_shared<util::CancelToken>();
    const Json* rid = request.find("id");
    std::multimap<std::string,
                  std::shared_ptr<util::CancelToken>>::iterator entry;
    {
        std::lock_guard<std::mutex> lk(inflightMutex_);
        entry = inflight_.emplace(
            rid != nullptr ? rid->dump() : std::string(), token);
    }
    struct Unregister
    {
        Server* server;
        std::multimap<std::string,
                      std::shared_ptr<util::CancelToken>>::iterator it;
        ~Unregister()
        {
            std::lock_guard<std::mutex> lk(server->inflightMutex_);
            server->inflight_.erase(it);
        }
    } unregister{this, entry};

    // Per-request RunOptions: nothing mutable is shared between
    // requests; the server's one pool hosts any intra-request shards.
    compiler::RunOptions ro;
    ro.threads = threads;
    ro.validateInputs = validate;
    ro.cacheState = cache;
    ro.pool = &pool_;
    ro.cancelToken = token.get();
    if (deadline_ms > 0.0)
        ro.deadline = util::Deadline::at(
            received + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               deadline_ms)));

    std::promise<Json> done;
    std::future<Json> future = done.get_future();
    const Admission::Reject rejected =
        admission_->submit([&model, &bound, &ro, &done,
                            workload_cached] {
            Json response;
            try {
                const Clock::time_point t0 = Clock::now();
                const compiler::SimulationResult result =
                    model->run(bound->workload, ro);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
                double muls = 0;
                for (const auto& record : result.records)
                    muls += static_cast<double>(
                        record.execStats.computeMuls);
                response = okResponse();
                response.set("latency_ms", Json::makeNumber(ms));
                response.set(
                    "exec_seconds",
                    Json::makeNumber(result.perf.totalSeconds));
                response.set(
                    "traffic_bytes",
                    Json::makeNumber(result.totalTrafficBytes()));
                response.set("compute_muls", Json::makeNumber(muls));
                response.set(
                    "energy_joules",
                    Json::makeNumber(result.energy.totalJoules));
                response.set("cache",
                             Json::makeString(workload_cached
                                                  ? "hit"
                                                  : "miss"));
            } catch (const util::CancelledError& e) {
                // Distinct from `overloaded`: the run was admitted
                // and then stopped cooperatively.
                const bool deadline =
                    e.reason() == util::CancelReason::Deadline;
                response = errorResponse(
                    deadline ? "deadline_exceeded" : "cancelled",
                    e.diagnostic().section, e.diagnostic().key,
                    e.diagnostic().message);
                response.set("reason",
                             Json::makeString(util::cancelReasonName(
                                 e.reason())));
            } catch (const DiagnosticError& e) {
                response = errorResponse(
                    "bad_request", e.diagnostic().section,
                    e.diagnostic().key, e.diagnostic().message);
            } catch (const std::exception& e) {
                response = errorResponse("internal", "", "", e.what());
            }
            done.set_value(std::move(response));
        });
    if (rejected != Admission::Reject::None) {
        Json shed =
            rejected == Admission::Reject::Overloaded
                ? errorResponse("overloaded", "admission", "",
                                "in-flight evaluation cap reached; "
                                "retry later")
                : errorResponse("shutting_down", "admission", "",
                                "server is draining; not accepting "
                                "new evaluations");
        shed.set("elapsed_ms", Json::makeNumber(elapsedMs()));
        return shed;
    }
    Json response = future.get();
    response.set("elapsed_ms", Json::makeNumber(elapsedMs()));
    return response;
}

Json
Server::handleEstimate(const Json& request)
{
    // The analytic fast path: same model/bindings resolution and
    // error codes as `evaluate`, but the prediction comes from
    // CompiledModel::estimate — microseconds of closed-form
    // arithmetic, no fibertree walk — so the request bypasses
    // admission control, deadlines, and the cancel table entirely.
    const Clock::time_point received = Clock::now();
    const std::string model_id = requireString(request, "model");
    const Json& bindings = requireField(request, "bindings");
    if (!bindings.isObject())
        diagError("protocol", "bindings",
                  "field 'bindings' must be an object mapping tensor "
                  "names to dataset ids");

    auto model = registry_.model(model_id);
    if (model == nullptr) {
        if (registry_.evicted(model_id))
            return errorResponse(
                "evicted", "workload", model_id,
                "model '" + model_id +
                    "' was evicted under memory pressure; re-register "
                    "it with compile");
        return errorResponse("unknown_id", "workload", model_id,
                             "unknown model id '" + model_id + "'");
    }

    bool workload_cached = false;
    std::shared_ptr<const BoundWorkload> bound;
    try {
        bound = boundWorkloadFor(model_id, bindings, workload_cached);
    } catch (const DiagnosticError& e) {
        const std::string code =
            e.diagnostic().message.find("evicted") != std::string::npos
                ? "evicted"
                : (e.diagnostic().section == "workload" ? "unknown_id"
                                                        : "bad_request");
        return errorResponse(code, e.diagnostic().section,
                             e.diagnostic().key,
                             e.diagnostic().message);
    }

    // Estimate failures (section "analytic": constructs the closed
    // forms cannot express) propagate to handle()'s DiagnosticError
    // catch and come back in the standard {code,section,key,message}
    // shape — clients degrade to `evaluate`.
    const model::analytic::AnalyticEstimate est =
        model->estimate(bound->workload);

    Json response = okResponse();
    response.set("latency_ms",
                 Json::makeNumber(
                     std::chrono::duration<double, std::milli>(
                         Clock::now() - received)
                         .count()));
    response.set("exec_seconds_est", Json::makeNumber(est.seconds()));
    response.set("traffic_bytes_est",
                 Json::makeNumber(est.totalTrafficBytes()));
    response.set("compute_muls_est", Json::makeNumber(est.mulOps));
    response.set("cache", Json::makeString(est.cacheHit ? "hit"
                                                        : "miss"));
    return response;
}

Json
Server::handleCancel(const Json& request)
{
    // Cancels every in-flight evaluation whose request `id` equals
    // `target` (compared by serialized value, so any JSON id type
    // works). Already-finished requests are simply not in the table;
    // cancelling nothing is not an error — the caller learns the
    // count either way.
    const Json& target = requireField(request, "target");
    std::size_t n = 0;
    {
        std::lock_guard<std::mutex> lk(inflightMutex_);
        auto [lo, hi] = inflight_.equal_range(target.dump());
        for (auto it = lo; it != hi; ++it) {
            it->second->cancel(util::CancelReason::User);
            ++n;
        }
    }
    Json r = okResponse();
    r.set("cancelled", Json::makeNumber(static_cast<double>(n)));
    return r;
}

Json
Server::handleStats(const Json&)
{
    const Registry::Stats rs = registry_.stats();
    const Admission::Stats as = admission_->stats();

    Json registry = Json::makeObject();
    registry.set("models",
                 Json::makeNumber(static_cast<double>(rs.models)));
    registry.set("datasets",
                 Json::makeNumber(static_cast<double>(rs.datasets)));
    registry.set("resident_bytes", Json::makeNumber(static_cast<double>(
                                       rs.residentBytes)));
    registry.set("budget_bytes", Json::makeNumber(static_cast<double>(
                                     rs.budgetBytes)));
    registry.set("evictions",
                 Json::makeNumber(static_cast<double>(rs.evictions)));
    registry.set("hits",
                 Json::makeNumber(static_cast<double>(rs.hits)));
    registry.set("misses",
                 Json::makeNumber(static_cast<double>(rs.misses)));

    Json admission = Json::makeObject();
    admission.set("accepted",
                  Json::makeNumber(static_cast<double>(as.accepted)));
    admission.set("shed",
                  Json::makeNumber(static_cast<double>(as.shed)));
    admission.set("completed",
                  Json::makeNumber(static_cast<double>(as.completed)));
    admission.set("in_flight",
                  Json::makeNumber(static_cast<double>(as.inFlight)));
    admission.set("peak_in_flight", Json::makeNumber(static_cast<double>(
                                        as.peakInFlight)));
    admission.set("max_in_flight", Json::makeNumber(static_cast<double>(
                                       as.maxInFlight)));

    // Plan-cache counters aggregated over resident models (peek —
    // introspection must not reorder the LRU it reports on).
    compiler::PlanCacheStats agg;
    for (const auto& [id, model] : registry_.peekModels()) {
        const compiler::PlanCacheStats s = model->planCacheStats();
        agg.hits += s.hits;
        agg.misses += s.misses;
        agg.evictions += s.evictions;
        agg.entries += s.entries;
    }
    Json plan_cache = Json::makeObject();
    plan_cache.set("hits",
                   Json::makeNumber(static_cast<double>(agg.hits)));
    plan_cache.set("misses",
                   Json::makeNumber(static_cast<double>(agg.misses)));
    plan_cache.set("evictions", Json::makeNumber(static_cast<double>(
                                    agg.evictions)));
    plan_cache.set("entries",
                   Json::makeNumber(static_cast<double>(agg.entries)));

    Json r = okResponse();
    r.set("registry", std::move(registry));
    r.set("admission", std::move(admission));
    r.set("plan_cache", std::move(plan_cache));
    r.set("uptime_seconds",
          Json::makeNumber(std::chrono::duration<double>(Clock::now() -
                                                         g_start)
                               .count()));
    return r;
}

Json
Server::handleShardingReport(const Json& request)
{
    const std::string model_id = requireString(request, "model");
    auto model = registry_.model(model_id);
    if (model == nullptr) {
        if (registry_.evicted(model_id))
            return errorResponse(
                "evicted", "workload", model_id,
                "model '" + model_id +
                    "' was evicted under memory pressure; re-register "
                    "it with compile");
        return errorResponse("unknown_id", "workload", model_id,
                             "unknown model id '" + model_id + "'");
    }
    Json einsums = Json::makeArray();
    for (const compiler::ShardingEntry& e : model->shardingEntries()) {
        Json entry = Json::makeObject();
        entry.set("einsum", Json::makeString(e.einsum));
        entry.set("shardable", Json::makeBool(e.shardable));
        entry.set("mode", Json::makeString(e.mode));
        if (!e.rank.empty())
            entry.set("rank", Json::makeString(e.rank));
        if (!e.spaceRank.empty())
            entry.set("space_rank", Json::makeString(e.spaceRank));
        if (!e.reason.empty())
            entry.set("reason", Json::makeString(e.reason));
        einsums.push(std::move(entry));
    }
    Json r = okResponse();
    r.set("model", Json::makeString(model_id));
    r.set("einsums", std::move(einsums));
    return r;
}

} // namespace teaal::serve
