/**
 * @file
 * A mini-JSON value type for the serving protocol (serve/server.hpp):
 * the same philosophy as yaml/yaml.hpp — cover exactly the subset the
 * newline-delimited protocol needs, with no external dependency.
 *
 *   - objects (insertion-ordered, like yaml::Node mappings), arrays
 *   - strings with the standard escapes (\uXXXX included, encoded to
 *     UTF-8), numbers (doubles), booleans, null
 *   - one value per line: parse() consumes a whole document and
 *     rejects trailing garbage, dump() never emits a newline, so a
 *     dumped value is always a valid NDJSON frame
 *
 * Parse errors throw teaal::SpecError with a character offset; the
 * server maps them to structured `bad_request` responses.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace teaal::serve
{

/** A parsed JSON value. Numbers are stored as double (the protocol
 *  carries counters that fit a double exactly up to 2^53). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() : kind_(Kind::Null) {}

    static Json makeBool(bool v);
    static Json makeNumber(double v);
    static Json makeString(std::string v);
    static Json makeArray();
    static Json makeObject();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed access; throws SpecError on kind mismatch. */
    bool boolean() const;
    double number() const;
    const std::string& str() const;
    const std::vector<Json>& array() const;
    std::vector<Json>& array();
    const std::vector<std::pair<std::string, Json>>& object() const;
    std::vector<std::pair<std::string, Json>>& object();

    /** Object lookup; returns nullptr when missing (or not an
     *  object). */
    const Json* find(const std::string& key) const;

    /** Object insert-or-assign (makes *this an object if null). */
    Json& set(const std::string& key, Json value);

    /** Array append (makes *this an array if null). */
    Json& push(Json value);

    /** Render as a single-line JSON document (no newline). */
    std::string dump() const;

  private:
    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Parse one JSON document; throws SpecError (with the character
 *  offset) on malformed input or trailing non-whitespace. */
Json parseJson(const std::string& text);

} // namespace teaal::serve
