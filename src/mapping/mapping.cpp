#include "mapping/mapping.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace teaal::mapping
{

const EinsumMapping MappingSpec::defaultMapping_{};
const std::vector<std::string> MappingSpec::emptyOrder_{};

std::string
PartitionDirective::toString() const
{
    std::ostringstream oss;
    switch (kind) {
      case Kind::Flatten:
        oss << "flatten()";
        break;
      case Kind::UniformShape:
        oss << "uniform_shape(" << tile << ")";
        break;
      case Kind::UniformOccupancy:
        oss << "uniform_occupancy(" << leader << "." << chunk << ")";
        break;
    }
    return oss.str();
}

PartitionDirective
PartitionDirective::parse(const std::string& text, const ParamMap& params)
{
    PartitionDirective d;
    const std::string t = trim(text);
    const std::size_t open = t.find('(');
    if (open == std::string::npos || t.back() != ')')
        specError("bad partitioning directive '", text, "'");
    const std::string head = trim(t.substr(0, open));
    const std::string arg = trim(t.substr(open + 1, t.size() - open - 2));

    if (head == "flatten") {
        if (!arg.empty())
            specError("flatten() takes no arguments, got '", text, "'");
        d.kind = Kind::Flatten;
        return d;
    }
    if (head == "uniform_shape") {
        d.kind = Kind::UniformShape;
        if (isInteger(arg)) {
            d.tile = parseLong(arg, text);
        } else {
            const auto it = params.find(arg);
            if (it == params.end())
                specError("uniform_shape: unresolved parameter '", arg,
                          "' in '", text, "'");
            d.tile = it->second;
        }
        if (d.tile <= 0)
            specError("uniform_shape tile must be positive in '", text,
                      "'");
        return d;
    }
    if (head == "uniform_occupancy") {
        d.kind = Kind::UniformOccupancy;
        const std::size_t dot = arg.find('.');
        if (dot == std::string::npos)
            specError("uniform_occupancy expects 'leader.N', got '", text,
                      "'");
        d.leader = trim(arg.substr(0, dot));
        const std::string size_text = trim(arg.substr(dot + 1));
        long chunk;
        if (isInteger(size_text)) {
            chunk = parseLong(size_text, text);
        } else {
            const auto it = params.find(size_text);
            if (it == params.end())
                specError("uniform_occupancy: unresolved parameter '",
                          size_text, "' in '", text, "'");
            chunk = it->second;
        }
        if (chunk <= 0)
            specError("uniform_occupancy size must be positive in '",
                      text, "'");
        d.chunk = static_cast<std::size_t>(chunk);
        return d;
    }
    specError("unknown partitioning directive '", text, "'");
}

bool
RankPartitioning::flattenOnly() const
{
    return directives.size() == 1 &&
           directives[0].kind == PartitionDirective::Kind::Flatten;
}

std::string
RankPartitioning::baseRank() const
{
    if (sourceRanks.size() == 1)
        return sourceRanks[0];
    std::string out;
    for (const std::string& r : sourceRanks)
        out += r;
    return out;
}

std::vector<std::string>
RankPartitioning::resultRanks() const
{
    const std::string base = baseRank();
    std::size_t splits = 0;
    for (const PartitionDirective& d : directives) {
        if (d.kind != PartitionDirective::Kind::Flatten)
            ++splits;
    }
    if (splits == 0)
        return {base};
    std::vector<std::string> out;
    for (std::size_t i = 0; i <= splits; ++i)
        out.push_back(base + std::to_string(splits - i));
    return out;
}

SpaceTimeEntry
SpaceTimeEntry::parse(const std::string& text)
{
    SpaceTimeEntry e;
    const std::string t = trim(text);
    if (endsWith(t, ".coord")) {
        e.rank = t.substr(0, t.size() - 6);
        e.coordSpace = true;
    } else if (endsWith(t, ".pos")) {
        e.rank = t.substr(0, t.size() - 4);
    } else {
        e.rank = t;
    }
    if (e.rank.empty())
        specError("empty spacetime entry '", text, "'");
    return e;
}

const RankPartitioning*
EinsumMapping::groupFor(const std::string& rank) const
{
    for (const RankPartitioning& g : partitioning) {
        if (std::find(g.sourceRanks.begin(), g.sourceRanks.end(), rank) !=
            g.sourceRanks.end())
            return &g;
        if (g.baseRank() == rank)
            return &g;
    }
    return nullptr;
}

MappingSpec
MappingSpec::parse(const yaml::Node& node, const ParamMap& params)
{
    MappingSpec spec;
    if (node.isNull())
        return spec;

    if (const yaml::Node* ro = node.find("rank-order")) {
        for (const auto& [tensor, order] : ro->mapping())
            spec.rankOrder_[tensor] = order.scalarList();
    }

    auto& einsums = spec.einsums_;
    if (const yaml::Node* part = node.find("partitioning")) {
        for (const auto& [einsum_name, groups] : part->mapping()) {
            EinsumMapping& em = einsums[einsum_name];
            for (const auto& [key, dirs] : groups.mapping()) {
                RankPartitioning rp;
                // Key is a rank name or a tuple "(K, M)".
                std::string k = trim(key);
                if (!k.empty() && k.front() == '(') {
                    if (k.back() != ')')
                        specError("bad partitioning key '", key, "'");
                    for (const std::string& r :
                         splitTopLevel(k.substr(1, k.size() - 2), ','))
                        rp.sourceRanks.push_back(r);
                } else {
                    rp.sourceRanks.push_back(k);
                }
                for (const std::string& d : dirs.scalarList())
                    rp.directives.push_back(
                        PartitionDirective::parse(d, params));
                if (rp.directives.empty())
                    specError("partitioning of '", key,
                              "' has no directives");
                // flatten() may only appear first and only for tuples;
                // tuple keys must start with flatten().
                for (std::size_t i = 0; i < rp.directives.size(); ++i) {
                    const bool is_flatten =
                        rp.directives[i].kind ==
                        PartitionDirective::Kind::Flatten;
                    if (is_flatten && i != 0)
                        specError("flatten() must be the first directive",
                                  " for '", key, "'");
                }
                if (rp.sourceRanks.size() > 1 &&
                    rp.directives[0].kind !=
                        PartitionDirective::Kind::Flatten)
                    specError("tuple partitioning key '", key,
                              "' requires flatten() first");
                em.partitioning.push_back(std::move(rp));
            }
        }
    }

    if (const yaml::Node* lo = node.find("loop-order")) {
        for (const auto& [einsum_name, order] : lo->mapping())
            einsums[einsum_name].loopOrder = order.scalarList();
    }

    if (const yaml::Node* st = node.find("spacetime")) {
        for (const auto& [einsum_name, body] : st->mapping()) {
            EinsumMapping& em = einsums[einsum_name];
            if (const yaml::Node* sp = body.find("space")) {
                for (const std::string& e : sp->scalarList())
                    em.space.push_back(SpaceTimeEntry::parse(e));
            }
            if (const yaml::Node* tm = body.find("time")) {
                for (const std::string& e : tm->scalarList())
                    em.time.push_back(SpaceTimeEntry::parse(e));
            }
        }
    }

    // Validate: spacetime ranks must partition the loop order.
    for (const auto& [name, em] : einsums) {
        if (em.loopOrder.empty() || (em.space.empty() && em.time.empty()))
            continue;
        std::vector<std::string> st_ranks;
        for (const auto& e : em.space)
            st_ranks.push_back(e.rank);
        for (const auto& e : em.time)
            st_ranks.push_back(e.rank);
        std::vector<std::string> lo = em.loopOrder;
        std::sort(st_ranks.begin(), st_ranks.end());
        std::sort(lo.begin(), lo.end());
        if (st_ranks != lo)
            specError("einsum '", name, "': spacetime ranks {",
                      join(st_ranks, ", "),
                      "} do not cover the loop order {", join(lo, ", "),
                      "}");
    }
    return spec;
}

const std::vector<std::string>&
MappingSpec::rankOrder(const std::string& tensor) const
{
    const auto it = rankOrder_.find(tensor);
    return it == rankOrder_.end() ? emptyOrder_ : it->second;
}

bool
MappingSpec::hasRankOrder(const std::string& tensor) const
{
    return rankOrder_.count(tensor) > 0;
}

const EinsumMapping&
MappingSpec::einsum(const std::string& output) const
{
    const auto it = einsums_.find(output);
    return it == einsums_.end() ? defaultMapping_ : it->second;
}

bool
MappingSpec::hasEinsum(const std::string& output) const
{
    return einsums_.count(output) > 0;
}

void
MappingSpec::setRankOrder(const std::string& tensor,
                          std::vector<std::string> order)
{
    rankOrder_[tensor] = std::move(order);
}

void
MappingSpec::setEinsum(const std::string& output, EinsumMapping m)
{
    einsums_[output] = std::move(m);
}

} // namespace teaal::mapping
