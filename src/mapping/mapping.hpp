/**
 * @file
 * Mapping specification (paper §2.3, §3.2, Figures 3 and 8):
 * per-tensor `rank-order`, per-Einsum `partitioning` (uniform shape,
 * uniform occupancy with a leader, flattening), `loop-order`, and
 * `spacetime` (which loop ranks are spatial vs. temporal).
 *
 * Derived rank names follow the paper's convention: a rank R split by
 * n directives becomes R<n>, ..., R0 (K -> K1, K0); flattening (K, M)
 * yields KM; partitioning a flattened or derived rank appends digits
 * (MK0 -> MK01, MK00).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fibertree/types.hpp"
#include "yaml/yaml.hpp"

namespace teaal::mapping
{

/** Symbol table for symbolic tile sizes (e.g. ExTensor's K1, M0). */
using ParamMap = std::map<std::string, long>;

/** One partitioning directive. */
struct PartitionDirective
{
    enum class Kind { Flatten, UniformShape, UniformOccupancy };

    Kind kind = Kind::UniformShape;

    /// UniformShape: tile size (coordinate extent).
    ft::Coord tile = 0;

    /// UniformOccupancy: leader tensor and elements per partition.
    std::string leader;
    std::size_t chunk = 0;

    std::string toString() const;

    /** Parse "flatten()", "uniform_shape(X)", "uniform_occupancy(A.N)". */
    static PartitionDirective parse(const std::string& text,
                                    const ParamMap& params);
};

/** All directives applied to one (possibly flattened) rank group. */
struct RankPartitioning
{
    /// The key's ranks: one entry normally, several for `(K, M)`.
    std::vector<std::string> sourceRanks;
    std::vector<PartitionDirective> directives;

    /** True if this group only flattens (no splitting). */
    bool flattenOnly() const;

    /** Name of the rank the directives apply to (post-flatten). */
    std::string baseRank() const;

    /**
     * Names of the ranks produced, top to bottom. A flatten of (K, M)
     * gives {KM}; splitting K twice gives {K2, K1, K0}.
     */
    std::vector<std::string> resultRanks() const;
};

/** One `spacetime` entry; ".coord" selects coordinate-space stamping. */
struct SpaceTimeEntry
{
    std::string rank;
    bool coordSpace = false;

    static SpaceTimeEntry parse(const std::string& text);
};

/** Mapping attributes of a single Einsum (keyed by its output). */
struct EinsumMapping
{
    std::vector<RankPartitioning> partitioning;
    std::vector<std::string> loopOrder;
    std::vector<SpaceTimeEntry> space;
    std::vector<SpaceTimeEntry> time;

    /** The partition group owning @p rank, or nullptr. */
    const RankPartitioning* groupFor(const std::string& rank) const;
};

/** The full `mapping:` section. */
class MappingSpec
{
  public:
    MappingSpec() = default;

    /**
     * Parse the `mapping:` YAML node; symbolic tile sizes are
     * resolved against @p params (SpecError if unresolved).
     */
    static MappingSpec parse(const yaml::Node& node,
                             const ParamMap& params = {});

    /** Declared storage rank order of @p tensor, or empty. */
    const std::vector<std::string>& rankOrder(
        const std::string& tensor) const;

    /** True if a rank-order was declared for @p tensor. */
    bool hasRankOrder(const std::string& tensor) const;

    /** Mapping for the Einsum producing @p tensor (default if none). */
    const EinsumMapping& einsum(const std::string& output) const;

    bool hasEinsum(const std::string& output) const;

    /** Register programmatically (used by canned accelerator specs). */
    void setRankOrder(const std::string& tensor,
                      std::vector<std::string> order);
    void setEinsum(const std::string& output, EinsumMapping m);

  private:
    std::map<std::string, std::vector<std::string>> rankOrder_;
    std::map<std::string, EinsumMapping> einsums_;
    static const EinsumMapping defaultMapping_;
    static const std::vector<std::string> emptyOrder_;
};

} // namespace teaal::mapping
