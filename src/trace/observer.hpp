/**
 * @file
 * Streaming trace interface (paper §4.3 "trace generation").
 *
 * The executor emits one callback per logical event while running the
 * mapped loop nest on real fibertrees; component models subscribe and
 * derive action counts online. This replaces the paper's
 * generate-then-consume trace files with a streaming pipeline that
 * produces identical counts without materializing traces.
 *
 * Events carry the PE id derived from the mapping's space ranks so
 * models can capture load imbalance.
 */
#pragma once

#include <cstdint>
#include <string>

#include "fibertree/payload.hpp"
#include "fibertree/types.hpp"

namespace teaal::trace
{

struct EventBatch;

/** Receiver of execution events. Default implementations ignore. */
class Observer
{
  public:
    virtual ~Observer() = default;

    /**
     * A batch of events from the engine's trace bus (see
     * trace/batch.hpp). This is the only call the engine makes on the
     * hot path; the default implementation (batch.cpp) replays the
     * records through the per-event methods below in original order,
     * so observers written against the streaming interface see
     * bit-identical counts. Batch-aware observers override this.
     */
    virtual void onEventBatch(const EventBatch& batch);

    /** A new coordinate was entered at loop rank @p loop. */
    virtual void
    onLoopEnter(std::size_t loop, ft::Coord c)
    {
        (void)loop;
        (void)c;
    }

    /**
     * A co-iteration walk finished at loop rank @p loop.
     * @param steps   Total element advances over all drivers.
     * @param matches Coordinates produced.
     * @param drivers Number of co-iterated fibers (>= 2 means the walk
     *                needed an intersection/union unit; 0 = dense).
     */
    virtual void
    onCoIterate(std::size_t loop, std::size_t steps, std::size_t matches,
                std::size_t drivers, std::uint64_t pe)
    {
        (void)loop;
        (void)steps;
        (void)matches;
        (void)drivers;
        (void)pe;
    }

    /** Coordinates of one driver scanned during a walk. */
    virtual void
    onCoordScan(int input, std::size_t level, std::size_t count,
                std::uint64_t pe)
    {
        (void)input;
        (void)level;
        (void)count;
        (void)pe;
    }

    /**
     * A payload of input @p input was read (descend into @p payload at
     * @p level, coordinate @p c). @p key is a stable identity usable
     * for reuse modeling.
     *
     * @p payload is null when the input is bound as a packed rank
     * store (storage/packed.hpp) — no ft::Payload object exists
     * there; the access's full context (source tensor + position)
     * travels on the batch Event (`packed`/`a`), which batch-aware
     * observers consume. Streaming observers must treat payload as
     * nullable.
     */
    virtual void
    onTensorAccess(int input, const std::string& tensor, std::size_t level,
                   ft::Coord c, const void* key,
                   const ft::Payload* payload, std::uint64_t pe)
    {
        (void)input;
        (void)tensor;
        (void)level;
        (void)c;
        (void)key;
        (void)payload;
        (void)pe;
    }

    /**
     * The output was written at @p level.
     * @param inserted True if this created a new element.
     * @param at_leaf  True for scalar writes (else fiber inserts).
     * @param path_key Hash of the coordinate path (stable identity).
     */
    virtual void
    onOutputWrite(const std::string& tensor, std::size_t level, ft::Coord c,
                  std::uint64_t path_key, bool inserted, bool at_leaf,
                  std::uint64_t pe)
    {
        (void)tensor;
        (void)level;
        (void)c;
        (void)path_key;
        (void)inserted;
        (void)at_leaf;
        (void)pe;
    }

    /** @p count compute operations of kind @p op ('m' or 'a') on @p pe. */
    virtual void
    onCompute(char op, std::uint64_t pe, std::size_t count)
    {
        (void)op;
        (void)pe;
        (void)count;
    }

    /**
     * A rank swizzle was performed on @p tensor. Online swizzles (on
     * intermediates) are charged to the merger/sort hardware; offline
     * swizzles are free preprocessing (§3.2.2).
     */
    virtual void
    onSwizzle(const std::string& tensor, std::size_t elements,
              std::size_t ways, bool online)
    {
        (void)tensor;
        (void)elements;
        (void)ways;
        (void)online;
    }

    /** Whole-tensor copy (e.g. P1 = P0). */
    virtual void
    onTensorCopy(const std::string& from, const std::string& to,
                 std::size_t elements)
    {
        (void)from;
        (void)to;
        (void)elements;
    }
};

} // namespace teaal::trace
