/**
 * @file
 * Disk-spilled trace capture (the out-of-core half of sharded runs).
 *
 * A sharded run captures each slice's trace into a TraceLog and
 * replays the logs in slice order on the coordinator; resident memory
 * therefore grows with the total captured trace — for a SuiteSparse-
 * scale input that is gigabytes of Event records alive at once. The
 * spill layer bounds it: each slice's capture bus drains its log to
 * an append-only per-slice segment file whenever the buffered frame
 * crosses a size threshold (Shore-MT's partitioned-log idiom: one
 * log partition per worker, no cross-thread contention, coordinator
 * merges by replaying partitions in slice order), and the coordinator
 * streams the frames back one at a time. Peak resident trace becomes
 * O(threads x segmentBytes) instead of O(total trace).
 *
 * Frames are cut only at walk boundaries (SpillSink::onWalkBoundary),
 * so every frame satisfies the TraceLog invariants on its own:
 * walkEnds are frame-relative, a leaf's Compute('a')/OutputWrite pair
 * never straddles frames (they are emitted between boundaries), and
 * the coordinator's replay fixup runs frame-locally with its state
 * (FixupState) persisting across frames exactly as it persists across
 * slices. Replaying the frames of a file in order, then the slice's
 * residual in-memory tail, delivers a stream byte-identical to the
 * unspilled capture's.
 *
 * Event records hold borrowed pointers (tensor-name strings owned by
 * the plan, PackedTensor identities); they remain valid for the whole
 * run, so frames round-trip through disk as raw bytes — the file is
 * scratch, meaningful only to the process that wrote it (and deleted
 * by it, unless RunOptions::spillKeep).
 *
 * Failure surface: segment write/flush errors (disk full) throw
 * DiagnosticError(section "spill") keyed by the segment path, from
 * inside the emitting walk — the run fails like any engine error and
 * the writer's destructor removes the partial file. Failpoint
 * `trace.spill.write_error` arms that branch for tests.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "trace/batch.hpp"

namespace teaal::trace
{

/** Aggregate spill counters for one run (SimulationResult::spill). */
struct SpillStats
{
    std::uint64_t files = 0;  ///< slice partitions that hit disk
    std::uint64_t frames = 0; ///< frames written across all files
    std::uint64_t bytes = 0;  ///< total bytes written
};

class SpillWriter;

/**
 * Per-run spill configuration and shared counters: the executor asks
 * it for one SpillWriter per slice (initial and stolen alike); the
 * writers report their totals back here. Thread-safe.
 */
class SpillContext
{
  public:
    SpillContext(std::string dir, std::size_t segmentBytes, bool keep)
        : dir_(std::move(dir)),
          segmentBytes_(segmentBytes == 0 ? 1 : segmentBytes),
          keep_(keep)
    {
    }

    /** New per-slice segment writer (unique path under dir()). */
    std::unique_ptr<SpillWriter> makeWriter();

    const std::string& dir() const { return dir_; }
    std::size_t segmentBytes() const { return segmentBytes_; }
    bool keep() const { return keep_; }

    SpillStats
    stats() const
    {
        SpillStats s;
        s.files = files_.load(std::memory_order_relaxed);
        s.frames = frames_.load(std::memory_order_relaxed);
        s.bytes = bytes_.load(std::memory_order_relaxed);
        return s;
    }

  private:
    friend class SpillWriter;

    std::string dir_;
    std::size_t segmentBytes_;
    bool keep_;
    std::atomic<std::uint64_t> counter_{0};
    std::atomic<std::uint64_t> files_{0};
    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::uint64_t> bytes_{0};
};

/**
 * One slice's log partition: drains the slice's TraceLog to an
 * append-only segment file, one frame per walk-boundary crossing of
 * the size threshold. The file is created lazily on the first frame —
 * a slice whose whole trace fits in one threshold's worth of events
 * never touches disk and replays through the ordinary resident path.
 *
 * Used by one worker at a time during capture, then by the
 * coordinator (after the slice's `done` handshake) for seal/replay —
 * no internal locking needed.
 */
class SpillWriter final : public SpillSink
{
  public:
    SpillWriter(SpillContext& ctx, std::string path)
        : ctx_(&ctx), path_(std::move(path))
    {
    }

    /** Removes the segment file unless the context keeps artifacts. */
    ~SpillWriter() override;

    SpillWriter(const SpillWriter&) = delete;
    SpillWriter& operator=(const SpillWriter&) = delete;

    /** SpillSink: cut a frame iff the buffered log crossed the
     *  segment-size threshold. Throws DiagnosticError("spill") on
     *  write failure, leaving the log untouched. */
    bool onWalkBoundary(TraceLog& log) override;

    /** Flush and verify the stream before reading it back. */
    void seal();

    /** Close and delete the file now (no-op in keep mode, or when
     *  nothing spilled); frees disk as soon as a slice is replayed. */
    void discard();

    const std::string& path() const { return path_; }

    /** Frames written so far; 0 means fully resident. */
    std::uint64_t frames() const { return frames_; }

  private:
    void writeFrame(TraceLog& log);

    SpillContext* ctx_;
    std::string path_;
    std::ofstream out_;
    std::uint64_t frames_ = 0;
    bool created_ = false; ///< file exists on disk (even partial)
    bool discarded_ = false;
};

/**
 * Streams the frames of one segment file back, oldest first. Each
 * frame arrives as a self-contained TraceLog (single chunk,
 * frame-relative walkEnds) ready for the coordinator's fixup+replay;
 * clear() it between frames.
 */
class SpillReader
{
  public:
    /** Throws DiagnosticError("spill") if the file cannot be opened. */
    explicit SpillReader(const std::string& path);

    /** Fill @p frame with the next frame; false at end-of-file.
     *  Throws DiagnosticError("spill") on a truncated or corrupt
     *  segment. */
    bool next(TraceLog& frame);

  private:
    std::ifstream in_;
    std::string path_;
};

} // namespace teaal::trace
