/**
 * @file
 * Batched trace bus (paper §4.3 "trace generation", restructured).
 *
 * The execution engine used to fire one virtual `Observer` callback
 * per logical event — one `onLoopEnter`/`onTensorAccess`/... call per
 * coordinate of every fiber walk. The bus instead records events as
 * compact PODs in an `EventBatch` and delivers whole batches through a
 * single virtual call (`Observer::onEventBatch`), flushed at fiber-walk
 * boundaries. The default `onEventBatch` replays the records through
 * the per-event virtual interface in their original order, so every
 * observer — including ones written against the streaming API — sees a
 * bit-identical event sequence; batch-aware observers (the performance
 * model) override it and skip the per-event dispatch entirely.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fibertree/payload.hpp"
#include "fibertree/types.hpp"
#include "trace/observer.hpp"

namespace teaal::trace
{

/** One recorded event. POD; strings are borrowed (the plan outlives
 *  the run, so tensor-name pointers stay valid until the flush). */
struct Event
{
    enum class Kind : std::uint8_t
    {
        LoopEnter,
        CoIterate,
        CoordScan,
        TensorAccess,
        OutputWrite,
        Compute,
        Swizzle,
        TensorCopy,
    };

    Kind kind = Kind::LoopEnter;
    char op = 0;          // Compute: 'm' or 'a'
    bool flagA = false;   // OutputWrite: inserted; Swizzle: online
    bool flagB = false;   // OutputWrite: at_leaf
    int input = -1;       // CoordScan/TensorAccess input slot
    std::size_t loop = 0; // LoopEnter/CoIterate loop index
    std::size_t level = 0;
    std::size_t a = 0; // steps / count / elements
    std::size_t b = 0; // matches / ways
    std::size_t c = 0; // drivers
    ft::Coord coord = 0;
    std::uint64_t pe = 0;
    std::uint64_t key = 0;              // OutputWrite path key
    const void* ptr = nullptr;          // TensorAccess identity key
    const ft::Payload* payload = nullptr;
    /// TensorAccess on a packed input: the source storage::PackedTensor
    /// (opaque here — trace stays below the storage layer) with the
    /// element position in `a`; `payload` is null for these.
    const void* packed = nullptr;
    const std::string* name = nullptr;  // tensor name
    const std::string* name2 = nullptr; // TensorCopy destination
};

/** An ordered run of events, delivered through one virtual call. */
struct EventBatch
{
    std::vector<Event> events;

    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }
};

/**
 * Cheap per-record order classification (the model split): a record is
 * either *datapath* — its consumption is a pure, order-independent
 * accumulation (compute ops, sequencer steps, intersection tallies,
 * coordinate scans, streamed accesses) — or *stateful* — consuming it
 * mutates simulator state whose outcome depends on the serial event
 * order (buffet/cache accesses, output writes, evict-loop entries).
 *
 * The performance model builds one per Einsum from its storage
 * routing tables; a capture-mode BatchBus uses it to feed datapath
 * records straight to a per-shard accumulator instead of logging them
 * for the coordinator's in-order replay. Classification is static per
 * (kind, loop) / (kind, input, level), so the hot path pays one or
 * two vector reads per record.
 */
struct RecordClassifier
{
    /// Per loop index: LoopEnter drains a buffet bound to this loop
    /// (order-dependent). Loops beyond the vector are order-free.
    std::vector<char> statefulLoopEnter;

    /// Per input, per level: TensorAccess routes to live buffet/cache
    /// state. Slots beyond the tables conservatively stay stateful.
    std::vector<std::vector<char>> statefulAccess;

    bool
    loopStateful(std::size_t loop) const
    {
        return loop < statefulLoopEnter.size() &&
               statefulLoopEnter[loop] != 0;
    }

    bool
    accessStateful(int input, std::size_t level) const
    {
        if (input < 0)
            return false; // the model ignores input-less accesses
        const auto i = static_cast<std::size_t>(input);
        if (i >= statefulAccess.size() ||
            level >= statefulAccess[i].size())
            return true;
        return statefulAccess[i][level] != 0;
    }

    /** Full-record classification (used when only an Event is at
     *  hand; the bus producers classify from their arguments). */
    bool
    stateful(const Event& e) const
    {
        switch (e.kind) {
          case Event::Kind::CoIterate:
          case Event::Kind::CoordScan:
          case Event::Kind::Compute:
            return false;
          case Event::Kind::LoopEnter:
            return loopStateful(e.loop);
          case Event::Kind::TensorAccess:
            return accessStateful(e.input, e.level);
          case Event::Kind::OutputWrite:
          case Event::Kind::Swizzle:
          case Event::Kind::TensorCopy:
            return true;
        }
        return true;
    }
};

/**
 * A captured event stream: every event in emission order plus the
 * positions at which walkEnd() fired. A capture-mode BatchBus fills
 * one; `BatchBus::replay` later re-emits it through a delivery-mode
 * bus, reproducing the original flush points — so a trace produced by
 * parallel shards and replayed in canonical shard order delivers
 * batches byte-identical to a serial run's (same events, same batch
 * boundaries).
 *
 * Events are stored in fixed-capacity chunks so capture never
 * reallocates (a multi-million-event shard would otherwise re-copy
 * its whole history on every vector growth); replay bulk-copies whole
 * runs between walk boundaries.
 */
/**
 * Recycles capture chunks between shards: a replayed-and-cleared
 * shard's chunk memory backs the next shard's capture, so the
 * first-touch page faults of a multi-megabyte event stream are paid
 * once per run, not once per shard. Thread-safe (workers capture
 * while the coordinator frees); the lock is taken once per chunk,
 * i.e. once per ~1000 events.
 */
class ChunkPool
{
  public:
    std::vector<Event>
    acquire()
    {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (!free_.empty()) {
                std::vector<Event> c = std::move(free_.back());
                free_.pop_back();
                c.clear();
                return c;
            }
        }
        return {};
    }

    void
    release(std::vector<Event>&& chunk)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        free_.push_back(std::move(chunk));
    }

  private:
    std::mutex mutex_;
    std::vector<std::vector<Event>> free_;
};

struct TraceLog;

/**
 * Out-of-core hook: a capture-mode BatchBus consults this at every
 * walk boundary (the only points where the log is a self-contained
 * prefix of the stream). An implementation that drains the log to
 * disk (trace/spill.hpp) returns true, after which the bus restarts
 * its logged/logical counters at zero — so the residual capture is
 * itself a valid stand-alone frame with the same invariants as a
 * fresh log, and frames concatenated in write order reproduce the
 * original stream exactly.
 */
class SpillSink
{
  public:
    virtual ~SpillSink() = default;

    /** Called with the log positioned exactly at a walk boundary
     *  (walkEnds.back() == eventCount()). Return true iff the log's
     *  chunks/walkEnds/logicalWalkEnds were drained (filtered, pool,
     *  and this pointer must be preserved). */
    virtual bool onWalkBoundary(TraceLog& log) = 0;
};

struct TraceLog
{
    /// Events per chunk, sized to ~105 KB — under the common malloc
    /// mmap threshold (128 KB), so freed chunks are recycled from the
    /// allocator arena instead of being returned to the OS and
    /// page-faulted back in on the next shard's capture.
    static constexpr std::size_t kChunkEvents = 1024;

    std::vector<std::vector<Event>> chunks;

    /// Logged event counts at which walkEnd() fired (non-decreasing).
    std::vector<std::size_t> walkEnds;

    /// Filtered capture (a RecordClassifier routed datapath records to
    /// a shard accumulator instead of the log): chunks hold only the
    /// stateful records, and the *logical* stream — everything the
    /// shard emitted, in logical indices — is tracked alongside so a
    /// replay can keep the delivery bus's event/batch accounting
    /// byte-identical to an unfiltered serial run.
    bool filtered = false;
    /// Per walkEnds entry: the logical event count at that boundary.
    std::vector<std::size_t> logicalWalkEnds;
    /// Total logical events the capture produced (== eventCount()
    /// when not filtered).
    std::size_t logicalEvents = 0;

    /// Optional chunk recycler shared between captures.
    ChunkPool* pool = nullptr;

    /// Optional out-of-core drain, consulted at walk boundaries
    /// (borrowed; survives clear() like `pool` does).
    SpillSink* spill = nullptr;

    std::size_t
    eventCount() const
    {
        std::size_t n = 0;
        for (const auto& c : chunks)
            n += c.size();
        return n;
    }

    /** Drop everything, returning chunk memory to the pool if set. */
    void
    clear()
    {
        if (pool != nullptr) {
            for (std::vector<Event>& c : chunks)
                pool->release(std::move(c));
        }
        chunks.clear();
        walkEnds.clear();
        logicalWalkEnds.clear();
        logicalEvents = 0;
        filtered = false;
    }
};

/**
 * The engine-side producer: append events, flush batches.
 *
 * Flush policy: the engine calls walkEnd() when a fiber walk finishes,
 * which flushes once the pending batch has reached the threshold —
 * batches stay aligned to walk boundaries without flushing a tiny
 * batch per innermost row. flush() forces delivery (end of run).
 *
 * A bus is either in *delivery* mode (constructed on an Observer:
 * batches go out through onEventBatch) or in *capture* mode
 * (constructed on a TraceLog: events and walk boundaries are recorded,
 * nothing is delivered). Capture mode is how parallel shard engines
 * defer their trace until the coordinator replays it in order.
 */
class BatchBus
{
  public:
    static constexpr std::size_t kFlushThreshold = 1024;

    explicit BatchBus(Observer& obs, std::size_t threshold = kFlushThreshold)
        : obs_(&obs), threshold_(threshold)
    {
        batch_.events.reserve(threshold + threshold / 2);
    }

    /** Capture mode: record into @p log instead of delivering. */
    explicit BatchBus(TraceLog& log) : log_(&log), threshold_(0) {}

    /** Flushes any pending batch; a throwing observer is swallowed
     *  here (the run that produced the events has already failed —
     *  its exception is the one in flight). */
    ~BatchBus()
    {
        try {
            flush();
        } catch (...) {
        }
    }

    BatchBus(const BatchBus&) = delete;
    BatchBus& operator=(const BatchBus&) = delete;

    /**
     * Route datapath-class records (per @p cls) to @p datapath_sink
     * instead of the normal stream. On a capture bus the log then
     * holds only the stateful records (plus the logical-stream
     * bookkeeping replay needs); on a delivery bus only stateful
     * records reach the observer, while event/batch accounting stays
     * byte-identical to the unfiltered stream. The sink receives
     * coalesced batches of the datapath records, in emission order,
     * on the emitting thread. Both pointers are borrowed.
     */
    void
    setFilter(const RecordClassifier* cls, Observer* datapath_sink)
    {
        cls_ = datapath_sink == nullptr ? nullptr : cls;
        sideSink_ = datapath_sink;
        if (log_ != nullptr && cls_ != nullptr)
            log_->filtered = true;
    }

    /**
     * Suppress the bus entirely while set: muted records are neither
     * counted, logged, delivered, nor routed to the datapath sink.
     * Inner-rank (depth-1) sharding uses this when a shard engine
     * re-derives an outer coordinate's loop state that another shard
     * owns the events for — the state transitions must happen, their
     * trace must not.
     */
    void setMuted(bool muted) { muted_ = muted; }

    // ------------------------------------------------ event producers
    void
    loopEnter(std::size_t loop, ft::Coord c)
    {
        Event& e = push(Event::Kind::LoopEnter,
                        cls_ != nullptr && !cls_->loopStateful(loop));
        e.loop = loop;
        e.coord = c;
    }

    void
    coIterate(std::size_t loop, std::size_t steps, std::size_t matches,
              std::size_t drivers, std::uint64_t pe)
    {
        Event& e = push(Event::Kind::CoIterate, cls_ != nullptr);
        e.loop = loop;
        e.a = steps;
        e.b = matches;
        e.c = drivers;
        e.pe = pe;
    }

    void
    coordScan(int input, std::size_t level, std::size_t count,
              std::uint64_t pe)
    {
        Event& e = push(Event::Kind::CoordScan, cls_ != nullptr);
        e.input = input;
        e.level = level;
        e.a = count;
        e.pe = pe;
    }

    void
    tensorAccess(int input, const std::string& tensor, std::size_t level,
                 ft::Coord c, const void* key, const ft::Payload* payload,
                 std::uint64_t pe)
    {
        Event& e =
            push(Event::Kind::TensorAccess,
                 cls_ != nullptr && !cls_->accessStateful(input, level));
        e.input = input;
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.ptr = key;
        e.payload = payload;
        e.pe = pe;
    }

    /** TensorAccess on a packed input: @p packed/@p pos identify the
     *  element in its storage::PackedTensor (no ft::Payload exists). */
    void
    tensorAccessPacked(int input, const std::string& tensor,
                       std::size_t level, ft::Coord c, const void* key,
                       const void* packed, std::size_t pos,
                       std::uint64_t pe)
    {
        Event& e =
            push(Event::Kind::TensorAccess,
                 cls_ != nullptr && !cls_->accessStateful(input, level));
        e.input = input;
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.ptr = key;
        e.packed = packed;
        e.a = pos;
        e.pe = pe;
    }

    /** @p reduce_adds rides in `a` on reduce-mode shard captures
     *  only (the expression-add count of a shard-fresh leaf write,
     *  which the replay fixup needs); serial streams leave it 0. */
    void
    outputWrite(const std::string& tensor, std::size_t level, ft::Coord c,
                std::uint64_t path_key, bool inserted, bool at_leaf,
                std::uint64_t pe, std::size_t reduce_adds = 0)
    {
        Event& e = push(Event::Kind::OutputWrite, false);
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.key = path_key;
        e.flagA = inserted;
        e.flagB = at_leaf;
        e.pe = pe;
        e.a = reduce_adds;
    }

    void
    compute(char op, std::uint64_t pe, std::size_t count)
    {
        Event& e = push(Event::Kind::Compute, cls_ != nullptr);
        e.op = op;
        e.pe = pe;
        e.a = count;
    }

    void
    swizzle(const std::string& tensor, std::size_t elements,
            std::size_t ways, bool online)
    {
        Event& e = push(Event::Kind::Swizzle, false);
        e.name = &tensor;
        e.a = elements;
        e.b = ways;
        e.flagA = online;
    }

    void
    tensorCopy(const std::string& from, const std::string& to,
               std::size_t elements)
    {
        Event& e = push(Event::Kind::TensorCopy, false);
        e.name = &from;
        e.name2 = &to;
        e.a = elements;
    }

    // ------------------------------------------------------- flushing
    /** A fiber walk ended: flush if the pending batch is big enough
     *  (capture mode records the boundary instead). The threshold
     *  check counts *logical* pending records — filtered-out datapath
     *  records included — so flush points (and therefore batch counts)
     *  land exactly where the unfiltered stream's would. */
    void
    walkEnd()
    {
        if (muted_)
            return;
        if (sideBatch_.events.size() >= kFlushThreshold)
            flushSide();
        if (log_ != nullptr) {
            log_->walkEnds.push_back(logged_);
            if (cls_ != nullptr)
                log_->logicalWalkEnds.push_back(events_);
            if (log_->spill != nullptr &&
                log_->spill->onWalkBoundary(*log_)) {
                // The sink wrote the log out as one frame. Restart
                // every counter the log's bookkeeping is relative to,
                // so the residual capture (and the next frame cut
                // from it) is internally consistent on its own.
                logChunk_ = nullptr;
                logged_ = 0;
                events_ = 0;
                pendingLogical_ = 0;
            }
            return;
        }
        if (pendingLogical_ >= threshold_)
            flush();
    }

    /** Force-deliver everything buffered (end of run; no-op when
     *  capturing — the log keeps everything). */
    void flush();

    /**
     * Re-emit a captured stream through this (delivery-mode) bus:
     * events are pushed in order and every recorded walk boundary
     * re-fires walkEnd(), so downstream batch boundaries land exactly
     * where a live engine emitting the same stream would put them.
     */
    void replay(const TraceLog& log);

    /** Logical events recorded so far (delivered + pending + routed
     *  to the datapath sink; filtered replays count the records their
     *  shard accumulators consumed, so this matches the serial bus). */
    std::size_t eventCount() const { return events_; }

    /** Batches delivered so far (filtered buses count the batches the
     *  equivalent unfiltered stream would have delivered). */
    std::size_t batchCount() const { return batches_; }

  private:
    Event&
    push(Event::Kind kind, bool datapath)
    {
        if (muted_) {
            mutedScratch_ = Event{};
            mutedScratch_.kind = kind;
            return mutedScratch_;
        }
        ++events_;
        ++pendingLogical_;
        if (datapath) {
            // Routed to the datapath sink: never logged or delivered
            // downstream (flushed to the sink at walk boundaries).
            sideBatch_.events.emplace_back();
            Event& e = sideBatch_.events.back();
            e.kind = kind;
            return e;
        }
        if (log_ != nullptr) {
            if (logChunk_ == nullptr ||
                logChunk_->size() == TraceLog::kChunkEvents) {
                if (log_->pool != nullptr)
                    log_->chunks.push_back(log_->pool->acquire());
                else
                    log_->chunks.emplace_back();
                logChunk_ = &log_->chunks.back();
                logChunk_->reserve(TraceLog::kChunkEvents);
            }
            ++logged_;
            logChunk_->emplace_back();
            Event& e = logChunk_->back();
            e.kind = kind;
            return e;
        }
        batch_.events.emplace_back();
        Event& e = batch_.events.back();
        e.kind = kind;
        return e;
    }

    /** Deliver buffered datapath records to the side sink. */
    void flushSide();

    /** replay() for filtered captures: pushes the logged (stateful)
     *  records and accounts the consumed datapath records so flush
     *  points and diagnostics stay serial-identical. */
    void replayFiltered(const TraceLog& log);

    Observer* obs_ = nullptr;
    TraceLog* log_ = nullptr;
    std::vector<Event>* logChunk_ = nullptr;
    std::size_t logged_ = 0;
    std::size_t threshold_;
    EventBatch batch_;
    std::size_t events_ = 0;
    std::size_t batches_ = 0;

    /// Logical records since the last flush (== batch_.size() when no
    /// filter is set); the serial-equivalent flush criterion.
    std::size_t pendingLogical_ = 0;

    // Record filtering (see setFilter).
    const RecordClassifier* cls_ = nullptr;
    Observer* sideSink_ = nullptr;
    EventBatch sideBatch_;

    // Muting (see setMuted): producers write into the scratch event.
    bool muted_ = false;
    Event mutedScratch_;
};

} // namespace teaal::trace
