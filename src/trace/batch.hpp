/**
 * @file
 * Batched trace bus (paper §4.3 "trace generation", restructured).
 *
 * The execution engine used to fire one virtual `Observer` callback
 * per logical event — one `onLoopEnter`/`onTensorAccess`/... call per
 * coordinate of every fiber walk. The bus instead records events as
 * compact PODs in an `EventBatch` and delivers whole batches through a
 * single virtual call (`Observer::onEventBatch`), flushed at fiber-walk
 * boundaries. The default `onEventBatch` replays the records through
 * the per-event virtual interface in their original order, so every
 * observer — including ones written against the streaming API — sees a
 * bit-identical event sequence; batch-aware observers (the performance
 * model) override it and skip the per-event dispatch entirely.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fibertree/payload.hpp"
#include "fibertree/types.hpp"
#include "trace/observer.hpp"

namespace teaal::trace
{

/** One recorded event. POD; strings are borrowed (the plan outlives
 *  the run, so tensor-name pointers stay valid until the flush). */
struct Event
{
    enum class Kind : std::uint8_t
    {
        LoopEnter,
        CoIterate,
        CoordScan,
        TensorAccess,
        OutputWrite,
        Compute,
        Swizzle,
        TensorCopy,
    };

    Kind kind = Kind::LoopEnter;
    char op = 0;          // Compute: 'm' or 'a'
    bool flagA = false;   // OutputWrite: inserted; Swizzle: online
    bool flagB = false;   // OutputWrite: at_leaf
    int input = -1;       // CoordScan/TensorAccess input slot
    std::size_t loop = 0; // LoopEnter/CoIterate loop index
    std::size_t level = 0;
    std::size_t a = 0; // steps / count / elements
    std::size_t b = 0; // matches / ways
    std::size_t c = 0; // drivers
    ft::Coord coord = 0;
    std::uint64_t pe = 0;
    std::uint64_t key = 0;              // OutputWrite path key
    const void* ptr = nullptr;          // TensorAccess identity key
    const ft::Payload* payload = nullptr;
    const std::string* name = nullptr;  // tensor name
    const std::string* name2 = nullptr; // TensorCopy destination
};

/** An ordered run of events, delivered through one virtual call. */
struct EventBatch
{
    std::vector<Event> events;

    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }
};

/**
 * The engine-side producer: append events, flush batches.
 *
 * Flush policy: the engine calls walkEnd() when a fiber walk finishes,
 * which flushes once the pending batch has reached the threshold —
 * batches stay aligned to walk boundaries without flushing a tiny
 * batch per innermost row. flush() forces delivery (end of run).
 */
class BatchBus
{
  public:
    static constexpr std::size_t kFlushThreshold = 1024;

    explicit BatchBus(Observer& obs, std::size_t threshold = kFlushThreshold)
        : obs_(obs), threshold_(threshold)
    {
        batch_.events.reserve(threshold + threshold / 2);
    }

    ~BatchBus() { flush(); }

    BatchBus(const BatchBus&) = delete;
    BatchBus& operator=(const BatchBus&) = delete;

    // ------------------------------------------------ event producers
    void
    loopEnter(std::size_t loop, ft::Coord c)
    {
        Event& e = push(Event::Kind::LoopEnter);
        e.loop = loop;
        e.coord = c;
    }

    void
    coIterate(std::size_t loop, std::size_t steps, std::size_t matches,
              std::size_t drivers, std::uint64_t pe)
    {
        Event& e = push(Event::Kind::CoIterate);
        e.loop = loop;
        e.a = steps;
        e.b = matches;
        e.c = drivers;
        e.pe = pe;
    }

    void
    coordScan(int input, std::size_t level, std::size_t count,
              std::uint64_t pe)
    {
        Event& e = push(Event::Kind::CoordScan);
        e.input = input;
        e.level = level;
        e.a = count;
        e.pe = pe;
    }

    void
    tensorAccess(int input, const std::string& tensor, std::size_t level,
                 ft::Coord c, const void* key, const ft::Payload* payload,
                 std::uint64_t pe)
    {
        Event& e = push(Event::Kind::TensorAccess);
        e.input = input;
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.ptr = key;
        e.payload = payload;
        e.pe = pe;
    }

    void
    outputWrite(const std::string& tensor, std::size_t level, ft::Coord c,
                std::uint64_t path_key, bool inserted, bool at_leaf,
                std::uint64_t pe)
    {
        Event& e = push(Event::Kind::OutputWrite);
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.key = path_key;
        e.flagA = inserted;
        e.flagB = at_leaf;
        e.pe = pe;
    }

    void
    compute(char op, std::uint64_t pe, std::size_t count)
    {
        Event& e = push(Event::Kind::Compute);
        e.op = op;
        e.pe = pe;
        e.a = count;
    }

    void
    swizzle(const std::string& tensor, std::size_t elements,
            std::size_t ways, bool online)
    {
        Event& e = push(Event::Kind::Swizzle);
        e.name = &tensor;
        e.a = elements;
        e.b = ways;
        e.flagA = online;
    }

    void
    tensorCopy(const std::string& from, const std::string& to,
               std::size_t elements)
    {
        Event& e = push(Event::Kind::TensorCopy);
        e.name = &from;
        e.name2 = &to;
        e.a = elements;
    }

    // ------------------------------------------------------- flushing
    /** A fiber walk ended: flush if the pending batch is big enough. */
    void
    walkEnd()
    {
        if (batch_.events.size() >= threshold_)
            flush();
    }

    /** Force-deliver everything buffered (end of run). */
    void flush();

    /** Events recorded so far (delivered + pending). */
    std::size_t eventCount() const { return events_; }

    /** Batches delivered so far. */
    std::size_t batchCount() const { return batches_; }

  private:
    Event&
    push(Event::Kind kind)
    {
        ++events_;
        batch_.events.emplace_back();
        Event& e = batch_.events.back();
        e.kind = kind;
        return e;
    }

    Observer& obs_;
    std::size_t threshold_;
    EventBatch batch_;
    std::size_t events_ = 0;
    std::size_t batches_ = 0;
};

} // namespace teaal::trace
