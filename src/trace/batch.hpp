/**
 * @file
 * Batched trace bus (paper §4.3 "trace generation", restructured).
 *
 * The execution engine used to fire one virtual `Observer` callback
 * per logical event — one `onLoopEnter`/`onTensorAccess`/... call per
 * coordinate of every fiber walk. The bus instead records events as
 * compact PODs in an `EventBatch` and delivers whole batches through a
 * single virtual call (`Observer::onEventBatch`), flushed at fiber-walk
 * boundaries. The default `onEventBatch` replays the records through
 * the per-event virtual interface in their original order, so every
 * observer — including ones written against the streaming API — sees a
 * bit-identical event sequence; batch-aware observers (the performance
 * model) override it and skip the per-event dispatch entirely.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fibertree/payload.hpp"
#include "fibertree/types.hpp"
#include "trace/observer.hpp"

namespace teaal::trace
{

/** One recorded event. POD; strings are borrowed (the plan outlives
 *  the run, so tensor-name pointers stay valid until the flush). */
struct Event
{
    enum class Kind : std::uint8_t
    {
        LoopEnter,
        CoIterate,
        CoordScan,
        TensorAccess,
        OutputWrite,
        Compute,
        Swizzle,
        TensorCopy,
    };

    Kind kind = Kind::LoopEnter;
    char op = 0;          // Compute: 'm' or 'a'
    bool flagA = false;   // OutputWrite: inserted; Swizzle: online
    bool flagB = false;   // OutputWrite: at_leaf
    int input = -1;       // CoordScan/TensorAccess input slot
    std::size_t loop = 0; // LoopEnter/CoIterate loop index
    std::size_t level = 0;
    std::size_t a = 0; // steps / count / elements
    std::size_t b = 0; // matches / ways
    std::size_t c = 0; // drivers
    ft::Coord coord = 0;
    std::uint64_t pe = 0;
    std::uint64_t key = 0;              // OutputWrite path key
    const void* ptr = nullptr;          // TensorAccess identity key
    const ft::Payload* payload = nullptr;
    /// TensorAccess on a packed input: the source storage::PackedTensor
    /// (opaque here — trace stays below the storage layer) with the
    /// element position in `a`; `payload` is null for these.
    const void* packed = nullptr;
    const std::string* name = nullptr;  // tensor name
    const std::string* name2 = nullptr; // TensorCopy destination
};

/** An ordered run of events, delivered through one virtual call. */
struct EventBatch
{
    std::vector<Event> events;

    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }
};

/**
 * A captured event stream: every event in emission order plus the
 * positions at which walkEnd() fired. A capture-mode BatchBus fills
 * one; `BatchBus::replay` later re-emits it through a delivery-mode
 * bus, reproducing the original flush points — so a trace produced by
 * parallel shards and replayed in canonical shard order delivers
 * batches byte-identical to a serial run's (same events, same batch
 * boundaries).
 *
 * Events are stored in fixed-capacity chunks so capture never
 * reallocates (a multi-million-event shard would otherwise re-copy
 * its whole history on every vector growth); replay bulk-copies whole
 * runs between walk boundaries.
 */
/**
 * Recycles capture chunks between shards: a replayed-and-cleared
 * shard's chunk memory backs the next shard's capture, so the
 * first-touch page faults of a multi-megabyte event stream are paid
 * once per run, not once per shard. Thread-safe (workers capture
 * while the coordinator frees); the lock is taken once per chunk,
 * i.e. once per ~1000 events.
 */
class ChunkPool
{
  public:
    std::vector<Event>
    acquire()
    {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (!free_.empty()) {
                std::vector<Event> c = std::move(free_.back());
                free_.pop_back();
                c.clear();
                return c;
            }
        }
        return {};
    }

    void
    release(std::vector<Event>&& chunk)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        free_.push_back(std::move(chunk));
    }

  private:
    std::mutex mutex_;
    std::vector<std::vector<Event>> free_;
};

struct TraceLog
{
    /// Events per chunk, sized to ~105 KB — under the common malloc
    /// mmap threshold (128 KB), so freed chunks are recycled from the
    /// allocator arena instead of being returned to the OS and
    /// page-faulted back in on the next shard's capture.
    static constexpr std::size_t kChunkEvents = 1024;

    std::vector<std::vector<Event>> chunks;

    /// Global event counts at which walkEnd() fired (non-decreasing).
    std::vector<std::size_t> walkEnds;

    /// Optional chunk recycler shared between captures.
    ChunkPool* pool = nullptr;

    std::size_t
    eventCount() const
    {
        std::size_t n = 0;
        for (const auto& c : chunks)
            n += c.size();
        return n;
    }

    /** Drop everything, returning chunk memory to the pool if set. */
    void
    clear()
    {
        if (pool != nullptr) {
            for (std::vector<Event>& c : chunks)
                pool->release(std::move(c));
        }
        chunks.clear();
        walkEnds.clear();
    }
};

/**
 * The engine-side producer: append events, flush batches.
 *
 * Flush policy: the engine calls walkEnd() when a fiber walk finishes,
 * which flushes once the pending batch has reached the threshold —
 * batches stay aligned to walk boundaries without flushing a tiny
 * batch per innermost row. flush() forces delivery (end of run).
 *
 * A bus is either in *delivery* mode (constructed on an Observer:
 * batches go out through onEventBatch) or in *capture* mode
 * (constructed on a TraceLog: events and walk boundaries are recorded,
 * nothing is delivered). Capture mode is how parallel shard engines
 * defer their trace until the coordinator replays it in order.
 */
class BatchBus
{
  public:
    static constexpr std::size_t kFlushThreshold = 1024;

    explicit BatchBus(Observer& obs, std::size_t threshold = kFlushThreshold)
        : obs_(&obs), threshold_(threshold)
    {
        batch_.events.reserve(threshold + threshold / 2);
    }

    /** Capture mode: record into @p log instead of delivering. */
    explicit BatchBus(TraceLog& log) : log_(&log), threshold_(0) {}

    /** Flushes any pending batch; a throwing observer is swallowed
     *  here (the run that produced the events has already failed —
     *  its exception is the one in flight). */
    ~BatchBus()
    {
        try {
            flush();
        } catch (...) {
        }
    }

    BatchBus(const BatchBus&) = delete;
    BatchBus& operator=(const BatchBus&) = delete;

    // ------------------------------------------------ event producers
    void
    loopEnter(std::size_t loop, ft::Coord c)
    {
        Event& e = push(Event::Kind::LoopEnter);
        e.loop = loop;
        e.coord = c;
    }

    void
    coIterate(std::size_t loop, std::size_t steps, std::size_t matches,
              std::size_t drivers, std::uint64_t pe)
    {
        Event& e = push(Event::Kind::CoIterate);
        e.loop = loop;
        e.a = steps;
        e.b = matches;
        e.c = drivers;
        e.pe = pe;
    }

    void
    coordScan(int input, std::size_t level, std::size_t count,
              std::uint64_t pe)
    {
        Event& e = push(Event::Kind::CoordScan);
        e.input = input;
        e.level = level;
        e.a = count;
        e.pe = pe;
    }

    void
    tensorAccess(int input, const std::string& tensor, std::size_t level,
                 ft::Coord c, const void* key, const ft::Payload* payload,
                 std::uint64_t pe)
    {
        Event& e = push(Event::Kind::TensorAccess);
        e.input = input;
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.ptr = key;
        e.payload = payload;
        e.pe = pe;
    }

    /** TensorAccess on a packed input: @p packed/@p pos identify the
     *  element in its storage::PackedTensor (no ft::Payload exists). */
    void
    tensorAccessPacked(int input, const std::string& tensor,
                       std::size_t level, ft::Coord c, const void* key,
                       const void* packed, std::size_t pos,
                       std::uint64_t pe)
    {
        Event& e = push(Event::Kind::TensorAccess);
        e.input = input;
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.ptr = key;
        e.packed = packed;
        e.a = pos;
        e.pe = pe;
    }

    void
    outputWrite(const std::string& tensor, std::size_t level, ft::Coord c,
                std::uint64_t path_key, bool inserted, bool at_leaf,
                std::uint64_t pe)
    {
        Event& e = push(Event::Kind::OutputWrite);
        e.name = &tensor;
        e.level = level;
        e.coord = c;
        e.key = path_key;
        e.flagA = inserted;
        e.flagB = at_leaf;
        e.pe = pe;
    }

    void
    compute(char op, std::uint64_t pe, std::size_t count)
    {
        Event& e = push(Event::Kind::Compute);
        e.op = op;
        e.pe = pe;
        e.a = count;
    }

    void
    swizzle(const std::string& tensor, std::size_t elements,
            std::size_t ways, bool online)
    {
        Event& e = push(Event::Kind::Swizzle);
        e.name = &tensor;
        e.a = elements;
        e.b = ways;
        e.flagA = online;
    }

    void
    tensorCopy(const std::string& from, const std::string& to,
               std::size_t elements)
    {
        Event& e = push(Event::Kind::TensorCopy);
        e.name = &from;
        e.name2 = &to;
        e.a = elements;
    }

    // ------------------------------------------------------- flushing
    /** A fiber walk ended: flush if the pending batch is big enough
     *  (capture mode records the boundary instead). */
    void
    walkEnd()
    {
        if (log_ != nullptr) {
            log_->walkEnds.push_back(logged_);
            return;
        }
        if (batch_.events.size() >= threshold_)
            flush();
    }

    /** Force-deliver everything buffered (end of run; no-op when
     *  capturing — the log keeps everything). */
    void flush();

    /**
     * Re-emit a captured stream through this (delivery-mode) bus:
     * events are pushed in order and every recorded walk boundary
     * re-fires walkEnd(), so downstream batch boundaries land exactly
     * where a live engine emitting the same stream would put them.
     */
    void replay(const TraceLog& log);

    /** Events recorded so far (delivered + pending). */
    std::size_t eventCount() const { return events_; }

    /** Batches delivered so far. */
    std::size_t batchCount() const { return batches_; }

  private:
    Event&
    push(Event::Kind kind)
    {
        ++events_;
        if (log_ != nullptr) {
            if (logChunk_ == nullptr ||
                logChunk_->size() == TraceLog::kChunkEvents) {
                if (log_->pool != nullptr)
                    log_->chunks.push_back(log_->pool->acquire());
                else
                    log_->chunks.emplace_back();
                logChunk_ = &log_->chunks.back();
                logChunk_->reserve(TraceLog::kChunkEvents);
            }
            ++logged_;
            logChunk_->emplace_back();
            Event& e = logChunk_->back();
            e.kind = kind;
            return e;
        }
        batch_.events.emplace_back();
        Event& e = batch_.events.back();
        e.kind = kind;
        return e;
    }

    Observer* obs_ = nullptr;
    TraceLog* log_ = nullptr;
    std::vector<Event>* logChunk_ = nullptr;
    std::size_t logged_ = 0;
    std::size_t threshold_;
    EventBatch batch_;
    std::size_t events_ = 0;
    std::size_t batches_ = 0;
};

} // namespace teaal::trace
