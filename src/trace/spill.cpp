#include "trace/spill.hpp"

#include <unistd.h>

#include <cstdio>

#include "util/diagnostic.hpp"
#include "util/failpoint.hpp"

namespace teaal::trace
{

namespace
{

/// First 8 bytes of every frame, a cheap torn-file detector.
constexpr std::uint64_t kFrameMagic = 0x314C4C4950535424ULL; // "$TSPILL1"

struct FrameHeader
{
    std::uint64_t magic = kFrameMagic;
    std::uint64_t events = 0;
    std::uint64_t walkEnds = 0;
    std::uint64_t logicalWalkEnds = 0;
    std::uint64_t logicalEvents = 0;
    std::uint64_t filtered = 0;
};

static_assert(sizeof(FrameHeader) == 48, "frame header layout");

} // namespace

// ------------------------------------------------------- SpillContext

std::unique_ptr<SpillWriter>
SpillContext::makeWriter()
{
    const std::uint64_t id =
        counter_.fetch_add(1, std::memory_order_relaxed);
    std::string path = dir_;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "teaal-spill-";
    path += std::to_string(static_cast<long>(::getpid()));
    path += '-';
    path += std::to_string(id);
    path += ".seg";
    return std::make_unique<SpillWriter>(*this, std::move(path));
}

// -------------------------------------------------------- SpillWriter

SpillWriter::~SpillWriter()
{
    try {
        discard();
    } catch (...) {
    }
}

bool
SpillWriter::onWalkBoundary(TraceLog& log)
{
    // Buffered frame size: every chunk but the last is full (push()
    // only opens a new chunk when the previous one reached capacity).
    if (log.chunks.empty())
        return false;
    const std::size_t events =
        (log.chunks.size() - 1) * TraceLog::kChunkEvents +
        log.chunks.back().size();
    if (events * sizeof(Event) < ctx_->segmentBytes())
        return false;
    writeFrame(log);
    // Drain — selectively: `filtered`, `pool`, and the `spill` hook
    // itself must survive (TraceLog::clear() would reset filtered).
    if (log.pool != nullptr) {
        for (std::vector<Event>& c : log.chunks)
            log.pool->release(std::move(c));
    }
    log.chunks.clear();
    log.walkEnds.clear();
    log.logicalWalkEnds.clear();
    return true;
}

void
SpillWriter::writeFrame(TraceLog& log)
{
    if (!created_) {
        out_.open(path_, std::ios::binary | std::ios::trunc);
        if (!out_.is_open())
            diagError("spill", path_,
                      "cannot open spill segment for writing");
        created_ = true;
        ctx_->files_.fetch_add(1, std::memory_order_relaxed);
    }

    FrameHeader h;
    std::size_t events = 0;
    for (const auto& c : log.chunks)
        events += c.size();
    h.events = events;
    h.walkEnds = log.walkEnds.size();
    h.logicalWalkEnds = log.logicalWalkEnds.size();
    // The frame ends exactly at a walk boundary, so its logical span
    // is the boundary's logical index (== events when unfiltered).
    h.logicalEvents = log.logicalWalkEnds.empty()
                          ? events
                          : log.logicalWalkEnds.back();
    h.filtered = log.filtered ? 1 : 0;

    const auto put = [&](const void* p, std::size_t n) {
        out_.write(static_cast<const char*>(p),
                   static_cast<std::streamsize>(n));
    };
    put(&h, sizeof(h));
    put(log.walkEnds.data(),
        log.walkEnds.size() * sizeof(std::size_t));
    put(log.logicalWalkEnds.data(),
        log.logicalWalkEnds.size() * sizeof(std::size_t));
    std::uint64_t frame_bytes =
        sizeof(h) +
        (log.walkEnds.size() + log.logicalWalkEnds.size()) *
            sizeof(std::size_t);
    for (const auto& c : log.chunks) {
        put(c.data(), c.size() * sizeof(Event));
        frame_bytes += c.size() * sizeof(Event);
    }

    if (TEAAL_FAILPOINT_TRIGGERED("trace.spill.write_error") || !out_)
        diagError("spill", path_,
                  "spill segment write failed (disk full?)");

    ++frames_;
    ctx_->frames_.fetch_add(1, std::memory_order_relaxed);
    ctx_->bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
}

void
SpillWriter::seal()
{
    if (!out_.is_open())
        return;
    out_.flush();
    if (!out_)
        diagError("spill", path_,
                  "spill segment flush failed (disk full?)");
    out_.close();
}

void
SpillWriter::discard()
{
    if (discarded_)
        return;
    discarded_ = true;
    if (out_.is_open())
        out_.close();
    // Remove whenever the file exists — a write that failed mid-frame
    // (frames_ still 0) must not leak a partial segment.
    if (created_ && !ctx_->keep())
        std::remove(path_.c_str());
}

// -------------------------------------------------------- SpillReader

SpillReader::SpillReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_.is_open())
        diagError("spill", path_, "cannot open spill segment");
}

bool
SpillReader::next(TraceLog& frame)
{
    FrameHeader h;
    in_.read(reinterpret_cast<char*>(&h),
             static_cast<std::streamsize>(sizeof(h)));
    if (in_.gcount() == 0 && in_.eof())
        return false;
    if (static_cast<std::size_t>(in_.gcount()) != sizeof(h) ||
        h.magic != kFrameMagic)
        diagError("spill", path_, "truncated or corrupt spill segment");

    const auto get = [&](void* p, std::size_t n) {
        in_.read(static_cast<char*>(p),
                 static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(in_.gcount()) != n)
            diagError("spill", path_,
                      "truncated or corrupt spill segment");
    };

    frame.walkEnds.resize(h.walkEnds);
    get(frame.walkEnds.data(), h.walkEnds * sizeof(std::size_t));
    frame.logicalWalkEnds.resize(h.logicalWalkEnds);
    get(frame.logicalWalkEnds.data(),
        h.logicalWalkEnds * sizeof(std::size_t));

    // One chunk per frame: replay and fixup only care about event
    // order and the (frame-relative) walkEnds indices, not the
    // capture-time chunk partitioning.
    frame.chunks.clear();
    frame.chunks.emplace_back(static_cast<std::size_t>(h.events));
    get(frame.chunks.back().data(), h.events * sizeof(Event));

    frame.filtered = h.filtered != 0;
    frame.logicalEvents = static_cast<std::size_t>(h.logicalEvents);
    return true;
}

} // namespace teaal::trace
