#include "trace/batch.hpp"

namespace teaal::trace
{

void
BatchBus::flushSide()
{
    if (sideBatch_.events.empty())
        return;
    if (sideSink_ != nullptr)
        sideSink_->onEventBatch(sideBatch_);
    sideBatch_.events.clear();
}

void
BatchBus::flush()
{
    flushSide();
    if (log_ != nullptr) {
        // Capture mode: nothing to deliver, but stamp the logical
        // stream length so a filtered replay can account for the
        // records the shard accumulator consumed.
        log_->logicalEvents = events_;
        return;
    }
    if (pendingLogical_ == 0 && batch_.events.empty())
        return;
    // The unfiltered stream would deliver a batch here (it had the
    // datapath records); count it even when filtering left the actual
    // batch empty, so batchCount() stays serial-identical.
    ++batches_;
    if (!batch_.events.empty()) {
        obs_->onEventBatch(batch_);
        batch_.events.clear();
    }
    pendingLogical_ = 0;
}

// NOTE: dropDuplicateInserts (exec/executor.cpp) mirrors this
// chunk/walkEnds traversal for its in-place filter — change them
// together (the thread-equivalence tests compare batch boundaries).
void
BatchBus::replay(const TraceLog& log)
{
    if (log.filtered) {
        replayFiltered(log);
        return;
    }
    std::size_t we = 0;
    std::size_t base = 0; // global index of the current chunk's start
    for (const std::vector<Event>& chunk : log.chunks) {
        std::size_t i = 0;
        while (i < chunk.size()) {
            while (we < log.walkEnds.size() &&
                   log.walkEnds[we] == base + i) {
                walkEnd();
                ++we;
            }
            // Bulk-copy the run up to the next walk boundary.
            std::size_t stop = chunk.size();
            if (we < log.walkEnds.size())
                stop = std::min(stop, log.walkEnds[we] - base);
            batch_.events.insert(batch_.events.end(),
                                 chunk.begin() +
                                     static_cast<std::ptrdiff_t>(i),
                                 chunk.begin() +
                                     static_cast<std::ptrdiff_t>(stop));
            events_ += stop - i;
            pendingLogical_ += stop - i;
            i = stop;
        }
        base += chunk.size();
    }
    while (we < log.walkEnds.size() && log.walkEnds[we] == base) {
        walkEnd();
        ++we;
    }
}

void
BatchBus::replayFiltered(const TraceLog& log)
{
    // The log holds only the stateful records; the logical stream
    // (datapath records included — already consumed, in-shard, by the
    // capture filter's accumulator sink) is reconstructed
    // arithmetically from logicalWalkEnds/logicalEvents so that
    // events_, pendingLogical_, and therefore every flush decision
    // and batchCount() land exactly where an unfiltered replay of the
    // same shard would put them.
    std::size_t we = 0;
    std::size_t base = 0;    // logged index of the current chunk start
    std::size_t logical = 0; // logical records accounted so far
    auto account = [&](std::size_t upto) {
        events_ += upto - logical;
        pendingLogical_ += upto - logical;
        logical = upto;
    };
    for (const std::vector<Event>& chunk : log.chunks) {
        std::size_t i = 0;
        while (i < chunk.size()) {
            while (we < log.walkEnds.size() &&
                   log.walkEnds[we] == base + i) {
                account(log.logicalWalkEnds[we]);
                if (pendingLogical_ >= threshold_)
                    flush();
                ++we;
            }
            std::size_t stop = chunk.size();
            if (we < log.walkEnds.size())
                stop = std::min(stop, log.walkEnds[we] - base);
            batch_.events.insert(batch_.events.end(),
                                 chunk.begin() +
                                     static_cast<std::ptrdiff_t>(i),
                                 chunk.begin() +
                                     static_cast<std::ptrdiff_t>(stop));
            i = stop;
        }
        base += chunk.size();
    }
    while (we < log.walkEnds.size() && log.walkEnds[we] == base) {
        account(log.logicalWalkEnds[we]);
        if (pendingLogical_ >= threshold_)
            flush();
        ++we;
    }
    account(log.logicalEvents);
}

void
Observer::onEventBatch(const EventBatch& batch)
{
    // Default: replay through the streaming interface in original
    // order, so per-event observers see counts bit-identical to the
    // unbatched engine.
    for (const Event& e : batch.events) {
        switch (e.kind) {
          case Event::Kind::LoopEnter:
            onLoopEnter(e.loop, e.coord);
            break;
          case Event::Kind::CoIterate:
            onCoIterate(e.loop, e.a, e.b, e.c, e.pe);
            break;
          case Event::Kind::CoordScan:
            onCoordScan(e.input, e.level, e.a, e.pe);
            break;
          case Event::Kind::TensorAccess:
            onTensorAccess(e.input, *e.name, e.level, e.coord, e.ptr,
                           e.payload, e.pe);
            break;
          case Event::Kind::OutputWrite:
            onOutputWrite(*e.name, e.level, e.coord, e.key, e.flagA,
                          e.flagB, e.pe);
            break;
          case Event::Kind::Compute:
            onCompute(e.op, e.pe, e.a);
            break;
          case Event::Kind::Swizzle:
            onSwizzle(*e.name, e.a, e.b, e.flagA);
            break;
          case Event::Kind::TensorCopy:
            onTensorCopy(*e.name, *e.name2, e.a);
            break;
        }
    }
}

} // namespace teaal::trace
