#include "trace/batch.hpp"

namespace teaal::trace
{

void
BatchBus::flush()
{
    if (batch_.events.empty())
        return;
    ++batches_;
    obs_.onEventBatch(batch_);
    batch_.events.clear();
}

void
Observer::onEventBatch(const EventBatch& batch)
{
    // Default: replay through the streaming interface in original
    // order, so per-event observers see counts bit-identical to the
    // unbatched engine.
    for (const Event& e : batch.events) {
        switch (e.kind) {
          case Event::Kind::LoopEnter:
            onLoopEnter(e.loop, e.coord);
            break;
          case Event::Kind::CoIterate:
            onCoIterate(e.loop, e.a, e.b, e.c, e.pe);
            break;
          case Event::Kind::CoordScan:
            onCoordScan(e.input, e.level, e.a, e.pe);
            break;
          case Event::Kind::TensorAccess:
            onTensorAccess(e.input, *e.name, e.level, e.coord, e.ptr,
                           e.payload, e.pe);
            break;
          case Event::Kind::OutputWrite:
            onOutputWrite(*e.name, e.level, e.coord, e.key, e.flagA,
                          e.flagB, e.pe);
            break;
          case Event::Kind::Compute:
            onCompute(e.op, e.pe, e.a);
            break;
          case Event::Kind::Swizzle:
            onSwizzle(*e.name, e.a, e.b, e.flagA);
            break;
          case Event::Kind::TensorCopy:
            onTensorCopy(*e.name, *e.name2, e.a);
            break;
        }
    }
}

} // namespace teaal::trace
