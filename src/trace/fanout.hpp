/**
 * @file
 * FanoutObserver: one trace sink that forwards every event to a list
 * of downstream observers. RunOptions uses it to attach extra
 * observers (loggers, counters, ring buffers) alongside the
 * performance model without the engine knowing about multiplexing.
 *
 * Batches are forwarded as batches: a batch-aware downstream consumes
 * them directly, while a streaming-only downstream sees the default
 * replay — each sink keeps its own consumption style.
 */
#pragma once

#include <vector>

#include "trace/batch.hpp"
#include "trace/observer.hpp"

namespace teaal::trace
{

class FanoutObserver : public Observer
{
  public:
    FanoutObserver() = default;

    /** Add a downstream sink; must outlive this observer. */
    void add(Observer* obs) { sinks_.push_back(obs); }

    std::size_t size() const { return sinks_.size(); }

    void
    onEventBatch(const EventBatch& batch) override
    {
        for (Observer* o : sinks_)
            o->onEventBatch(batch);
    }

    void
    onLoopEnter(std::size_t loop, ft::Coord c) override
    {
        for (Observer* o : sinks_)
            o->onLoopEnter(loop, c);
    }

    void
    onCoIterate(std::size_t loop, std::size_t steps, std::size_t matches,
                std::size_t drivers, std::uint64_t pe) override
    {
        for (Observer* o : sinks_)
            o->onCoIterate(loop, steps, matches, drivers, pe);
    }

    void
    onCoordScan(int input, std::size_t level, std::size_t count,
                std::uint64_t pe) override
    {
        for (Observer* o : sinks_)
            o->onCoordScan(input, level, count, pe);
    }

    void
    onTensorAccess(int input, const std::string& tensor, std::size_t level,
                   ft::Coord c, const void* key,
                   const ft::Payload* payload, std::uint64_t pe) override
    {
        for (Observer* o : sinks_)
            o->onTensorAccess(input, tensor, level, c, key, payload, pe);
    }

    void
    onOutputWrite(const std::string& tensor, std::size_t level, ft::Coord c,
                  std::uint64_t path_key, bool inserted, bool at_leaf,
                  std::uint64_t pe) override
    {
        for (Observer* o : sinks_)
            o->onOutputWrite(tensor, level, c, path_key, inserted, at_leaf,
                             pe);
    }

    void
    onCompute(char op, std::uint64_t pe, std::size_t count) override
    {
        for (Observer* o : sinks_)
            o->onCompute(op, pe, count);
    }

    void
    onSwizzle(const std::string& tensor, std::size_t elements,
              std::size_t ways, bool online) override
    {
        for (Observer* o : sinks_)
            o->onSwizzle(tensor, elements, ways, online);
    }

    void
    onTensorCopy(const std::string& from, const std::string& to,
                 std::size_t elements) override
    {
        for (Observer* o : sinks_)
            o->onTensorCopy(from, to, elements);
    }

  private:
    std::vector<Observer*> sinks_;
};

} // namespace teaal::trace
