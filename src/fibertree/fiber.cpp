#include "fibertree/fiber.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

namespace teaal::ft
{

namespace
{
std::atomic<std::uint64_t> g_fiber_constructions{0};
} // namespace

void
Fiber::noteConstruction()
{
    g_fiber_constructions.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Fiber::constructionCount()
{
    return g_fiber_constructions.load(std::memory_order_relaxed);
}

bool
Payload::empty() const
{
    if (isValue())
        return value() == Value{0};
    const FiberPtr& f = std::get<FiberPtr>(data_);
    return f == nullptr || f->empty();
}

std::optional<std::size_t>
Fiber::find(Coord c) const
{
    const auto it = std::lower_bound(coords_.begin(), coords_.end(), c);
    if (it == coords_.end() || *it != c)
        return std::nullopt;
    return static_cast<std::size_t>(it - coords_.begin());
}

std::size_t
Fiber::lowerBound(Coord c) const
{
    const auto it = std::lower_bound(coords_.begin(), coords_.end(), c);
    return static_cast<std::size_t>(it - coords_.begin());
}

void
Fiber::append(Coord c, Payload p)
{
    TEAAL_ASSERT(coords_.empty() || c > coords_.back(),
                 "append coordinate ", c, " not past fiber end");
    coords_.push_back(c);
    payloads_.push_back(std::move(p));
}

Payload&
Fiber::getOrInsert(Coord c)
{
    bool inserted = false;
    return payloads_[getOrInsertPos(c, inserted)];
}

std::size_t
Fiber::getOrInsertPos(Coord c, bool& inserted)
{
    if (coords_.empty() || c > coords_.back()) {
        coords_.push_back(c);
        payloads_.emplace_back();
        inserted = true;
        return coords_.size() - 1;
    }
    const std::size_t pos = lowerBound(c);
    if (pos < coords_.size() && coords_[pos] == c) {
        inserted = false;
        return pos;
    }
    // One insert per array: each shifts the tail exactly once.
    coords_.insert(coords_.begin() + static_cast<std::ptrdiff_t>(pos), c);
    payloads_.insert(payloads_.begin() + static_cast<std::ptrdiff_t>(pos),
                     Payload());
    inserted = true;
    return pos;
}

void
Fiber::reserve(std::size_t n)
{
    coords_.reserve(n);
    payloads_.reserve(n);
}

namespace
{

/** "rank 'K1' of Einsum 'Z'" when @p ctx is known, "" otherwise. */
std::string
absorbWhere(const AbsorbContext* ctx, std::size_t depth)
{
    if (ctx == nullptr)
        return "";
    std::string where = " of rank '";
    where += depth < ctx->rankIds.size() ? ctx->rankIds[depth]
                                         : "?";
    where += "' of Einsum '";
    where += ctx->einsum;
    where += '\'';
    return where;
}

} // namespace

void
Fiber::absorbDisjoint(Fiber&& other, const AbsorbContext* ctx,
                      std::size_t depth)
{
    if (other.empty())
        return;
    shape_ = std::max(shape_, other.shape_);
    // Fast path: strictly past our last coordinate — bulk move append.
    if (coords_.empty() || other.coords_.front() > coords_.back()) {
        reserve(coords_.size() + other.coords_.size());
        coords_.insert(coords_.end(), other.coords_.begin(),
                       other.coords_.end());
        payloads_.insert(payloads_.end(),
                         std::make_move_iterator(other.payloads_.begin()),
                         std::make_move_iterator(other.payloads_.end()));
        other.coords_.clear();
        other.payloads_.clear();
        return;
    }
    // Interleaved: sorted union merge, recursing into colliding
    // subfibers. Scalar collisions are producer bugs, not data.
    std::vector<Coord> coords;
    std::vector<Payload> payloads;
    coords.reserve(coords_.size() + other.coords_.size());
    payloads.reserve(coords.capacity());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < coords_.size() || b < other.coords_.size()) {
        const bool take_a =
            b >= other.coords_.size() ||
            (a < coords_.size() && coords_[a] < other.coords_[b]);
        const bool take_b =
            a >= coords_.size() ||
            (b < other.coords_.size() && other.coords_[b] < coords_[a]);
        if (take_a) {
            coords.push_back(coords_[a]);
            payloads.push_back(std::move(payloads_[a]));
            ++a;
        } else if (take_b) {
            coords.push_back(other.coords_[b]);
            payloads.push_back(std::move(other.payloads_[b]));
            ++b;
        } else {
            // Collision: merge subfibers, reject scalar overlap.
            Payload& pa = payloads_[a];
            Payload& pb = other.payloads_[b];
            if (!pa.isFiber() || !pb.isFiber() || pa.fiber() == nullptr ||
                pb.fiber() == nullptr) {
                modelError("absorbDisjoint: leaf collision at coordinate ",
                           coords_[a], absorbWhere(ctx, depth),
                           " (two shards produced the same output point)");
            }
            pa.fiber()->absorbDisjoint(std::move(*pb.fiber()), ctx,
                                       depth + 1);
            coords.push_back(coords_[a]);
            payloads.push_back(std::move(pa));
            ++a;
            ++b;
        }
    }
    coords_ = std::move(coords);
    payloads_ = std::move(payloads);
    other.coords_.clear();
    other.payloads_.clear();
}

void
Fiber::absorbReduce(Fiber&& other, Value (*add)(Value, Value),
                    const AbsorbContext* ctx, std::size_t depth)
{
    if (other.empty())
        return;
    shape_ = std::max(shape_, other.shape_);
    // Fast path: strictly past our last coordinate — bulk move append
    // (no coordinate is shared, so nothing can need summing).
    if (coords_.empty() || other.coords_.front() > coords_.back()) {
        reserve(coords_.size() + other.coords_.size());
        coords_.insert(coords_.end(), other.coords_.begin(),
                       other.coords_.end());
        payloads_.insert(payloads_.end(),
                         std::make_move_iterator(other.payloads_.begin()),
                         std::make_move_iterator(other.payloads_.end()));
        other.coords_.clear();
        other.payloads_.clear();
        return;
    }
    // Interleaved: sorted union merge; colliding subfibers recurse,
    // colliding scalar leaves fold with the semiring add.
    std::vector<Coord> coords;
    std::vector<Payload> payloads;
    coords.reserve(coords_.size() + other.coords_.size());
    payloads.reserve(coords.capacity());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < coords_.size() || b < other.coords_.size()) {
        const bool take_a =
            b >= other.coords_.size() ||
            (a < coords_.size() && coords_[a] < other.coords_[b]);
        const bool take_b =
            a >= coords_.size() ||
            (b < other.coords_.size() && other.coords_[b] < coords_[a]);
        if (take_a) {
            coords.push_back(coords_[a]);
            payloads.push_back(std::move(payloads_[a]));
            ++a;
        } else if (take_b) {
            coords.push_back(other.coords_[b]);
            payloads.push_back(std::move(other.payloads_[b]));
            ++b;
        } else {
            Payload& pa = payloads_[a];
            Payload& pb = other.payloads_[b];
            if (pa.isFiber() && pb.isFiber() && pa.fiber() != nullptr &&
                pb.fiber() != nullptr) {
                pa.fiber()->absorbReduce(std::move(*pb.fiber()), add,
                                         ctx, depth + 1);
            } else if (pa.isValue() && pb.isValue()) {
                pa.setValue(add(pa.value(), pb.value()));
            } else {
                // One side a scalar, the other a subtree: the shards
                // disagree on the output's depth — a producer bug.
                modelError("absorbReduce: rank mismatch at coordinate ",
                           coords_[a], absorbWhere(ctx, depth),
                           " (scalar leaf collided with a subfiber)");
            }
            coords.push_back(coords_[a]);
            payloads.push_back(std::move(pa));
            ++a;
            ++b;
        }
    }
    coords_ = std::move(coords);
    payloads_ = std::move(payloads);
    other.coords_.clear();
    other.payloads_.clear();
}

std::size_t
Fiber::leafCount() const
{
    std::size_t total = 0;
    for (const Payload& p : payloads_) {
        if (p.isValue())
            ++total;
        else if (p.fiber() != nullptr)
            total += p.fiber()->leafCount();
    }
    return total;
}

void
Fiber::elementCountsByDepth(std::vector<std::size_t>& counts,
                            std::size_t depth) const
{
    if (counts.size() <= depth)
        counts.resize(depth + 1, 0);
    counts[depth] += size();
    for (const Payload& p : payloads_) {
        if (p.isFiber() && p.fiber() != nullptr)
            p.fiber()->elementCountsByDepth(counts, depth + 1);
    }
}

FiberPtr
Fiber::clone() const
{
    auto copy = std::make_shared<Fiber>(shape_);
    copy->coords_ = coords_;
    copy->payloads_.reserve(payloads_.size());
    for (const Payload& p : payloads_) {
        if (p.isValue()) {
            copy->payloads_.emplace_back(p.value());
        } else {
            copy->payloads_.emplace_back(
                p.fiber() ? p.fiber()->clone() : FiberPtr());
        }
    }
    return copy;
}

FiberPtr
Fiber::fromUnsorted(std::vector<std::pair<Coord, Payload>> elems,
                    Coord shape)
{
    std::sort(elems.begin(), elems.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    auto fiber = std::make_shared<Fiber>(shape);
    fiber->reserve(elems.size());
    for (auto& [c, p] : elems) {
        if (!fiber->empty() && fiber->coords_.back() == c)
            modelError("fromUnsorted: duplicate coordinate ", c);
        fiber->coords_.push_back(c);
        fiber->payloads_.push_back(std::move(p));
    }
    return fiber;
}

} // namespace teaal::ft
