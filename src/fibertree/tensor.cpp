#include "fibertree/tensor.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "fibertree/occupancy.hpp"
#include "util/error.hpp"

namespace teaal::ft
{

Tensor::Tensor(std::string name, std::vector<RankInfo> ranks)
    : name_(std::move(name)), ranks_(std::move(ranks))
{
    TEAAL_ASSERT(!ranks_.empty(), "tensor '", name_, "' needs >= 1 rank");
    root_ = std::make_shared<Fiber>(ranks_[0].shape);
}

Tensor::Tensor(std::string name, const std::vector<std::string>& rank_ids,
               const std::vector<Coord>& shape)
    : Tensor(std::move(name),
             [&] {
                 TEAAL_ASSERT(rank_ids.size() == shape.size(),
                              "rank ids / shape length mismatch");
                 std::vector<RankInfo> ranks;
                 for (std::size_t i = 0; i < rank_ids.size(); ++i)
                     ranks.push_back({rank_ids[i], shape[i], {}, {}});
                 return ranks;
             }())
{
}

std::vector<std::string>
Tensor::rankIds() const
{
    std::vector<std::string> ids;
    ids.reserve(ranks_.size());
    for (const RankInfo& r : ranks_)
        ids.push_back(r.id);
    return ids;
}

int
Tensor::rankLevel(const std::string& id) const
{
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        if (ranks_[i].id == id)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<double>
Tensor::occupancyHints() const
{
    if (root_ == nullptr)
        return std::vector<double>(ranks_.size(), 0.0);
    std::vector<std::size_t> counts;
    root_->elementCountsByDepth(counts);
    return occupancyHintsFromCounts(counts, ranks_.size());
}

Value
Tensor::at(std::span<const Coord> point) const
{
    TEAAL_ASSERT(point.size() == ranks_.size(), "tensor '", name_,
                 "': point arity ", point.size(), " != rank count ",
                 ranks_.size());
    const Fiber* fiber = root_.get();
    for (std::size_t level = 0; level < point.size(); ++level) {
        if (fiber == nullptr)
            return 0;
        const auto pos = fiber->find(point[level]);
        if (!pos)
            return 0;
        const Payload& p = fiber->payloadAt(*pos);
        if (level + 1 == point.size())
            return p.value();
        fiber = p.fiber().get();
    }
    return 0;
}

void
Tensor::set(std::span<const Coord> point, Value v)
{
    TEAAL_ASSERT(point.size() == ranks_.size(), "tensor '", name_,
                 "': point arity mismatch in set()");
    Fiber* fiber = root_.get();
    for (std::size_t level = 0; level + 1 < point.size(); ++level) {
        Payload& p = fiber->getOrInsert(point[level]);
        if (!p.isFiber() || p.fiber() == nullptr)
            p.setFiber(std::make_shared<Fiber>(ranks_[level + 1].shape));
        fiber = p.fiber().get();
    }
    fiber->getOrInsert(point.back()).setValue(v);
}

namespace
{

void
forEachLeafImpl(const Fiber& fiber, std::vector<Coord>& point,
                const std::function<void(std::span<const Coord>, Value)>& fn)
{
    for (std::size_t pos = 0; pos < fiber.size(); ++pos) {
        point.push_back(fiber.coordAt(pos));
        const Payload& p = fiber.payloadAt(pos);
        if (p.isValue()) {
            fn(point, p.value());
        } else if (p.fiber() != nullptr) {
            forEachLeafImpl(*p.fiber(), point, fn);
        }
        point.pop_back();
    }
}

} // namespace

void
Tensor::forEachLeaf(
    const std::function<void(std::span<const Coord>, Value)>& fn) const
{
    if (root_ == nullptr)
        return;
    std::vector<Coord> point;
    point.reserve(ranks_.size());
    forEachLeafImpl(*root_, point, fn);
}

bool
Tensor::equals(const Tensor& other, double tol) const
{
    if (numRanks() != other.numRanks())
        return false;
    // Collect both leaf sets; equality requires the same nonzero
    // support and matching values. Zero-valued leaves are treated as
    // absent to keep equality representation-independent.
    std::vector<std::pair<std::vector<Coord>, Value>> mine, theirs;
    forEachLeaf([&](std::span<const Coord> p, Value v) {
        if (v != 0)
            mine.emplace_back(std::vector<Coord>(p.begin(), p.end()), v);
    });
    other.forEachLeaf([&](std::span<const Coord> p, Value v) {
        if (v != 0)
            theirs.emplace_back(std::vector<Coord>(p.begin(), p.end()), v);
    });
    if (mine.size() != theirs.size())
        return false;
    for (std::size_t i = 0; i < mine.size(); ++i) {
        if (mine[i].first != theirs[i].first)
            return false;
        if (std::abs(mine[i].second - theirs[i].second) > tol)
            return false;
    }
    return true;
}

std::string
Tensor::toString(std::size_t max_elems) const
{
    std::ostringstream oss;
    oss << name_ << "[";
    for (std::size_t i = 0; i < ranks_.size(); ++i)
        oss << (i ? ", " : "") << ranks_[i].id;
    oss << "] nnz=" << nnz() << " {";
    std::size_t shown = 0;
    bool truncated = false;
    forEachLeaf([&](std::span<const Coord> p, Value v) {
        if (shown >= max_elems) {
            truncated = true;
            return;
        }
        oss << (shown ? ", " : "") << "(";
        for (std::size_t i = 0; i < p.size(); ++i)
            oss << (i ? "," : "") << p[i];
        oss << ")=" << v;
        ++shown;
    });
    if (truncated)
        oss << ", ...";
    oss << "}";
    return oss.str();
}

Tensor
Tensor::fromCoo(std::string name, const std::vector<std::string>& rank_ids,
                const std::vector<Coord>& shape,
                const std::vector<std::pair<std::vector<Coord>, Value>>&
                    elems)
{
    Tensor t(std::move(name), rank_ids, shape);
    for (const auto& [point, value] : elems)
        t.set(point, value);
    return t;
}

namespace
{
std::atomic<std::uint64_t> g_clone_count{0};
} // namespace

Tensor
Tensor::clone() const
{
    g_clone_count.fetch_add(1, std::memory_order_relaxed);
    Tensor copy(name_, ranks_);
    copy.root_ = root_ ? root_->clone() : nullptr;
    return copy;
}

std::uint64_t
Tensor::cloneCount()
{
    return g_clone_count.load(std::memory_order_relaxed);
}

} // namespace teaal::ft
