/**
 * @file
 * Fiber co-iteration: views, two-finger intersection, and merge-union.
 *
 * Intersection realizes the sparsified iteration space of multiplied
 * operands (paper §2.4); union realizes addition; leader-follower
 * slicing realizes occupancy partitioning adoption (§3.2.1).
 */
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "fibertree/fiber.hpp"

namespace teaal::ft
{

/**
 * A contiguous, read-only window [lo, hi) of one fiber's positions.
 *
 * Two interchangeable backends sit behind the same interface, so the
 * co-iteration strategies and the execution engine walk either without
 * knowing which:
 *
 *   pointer  `fiber` set — a window of a ft::Fiber's coordinate array,
 *   packed   `crd` set — a slice of a packed rank's flat coordinate
 *            array (storage/packed.hpp), positions global to the rank.
 *
 * Packed views may carry a bitmap auxiliary (B-format ranks): a
 * presence-bit run plus a per-word rank directory giving O(1)
 * membership and position in find(). Packed views of contiguous
 * fibers (dense/U ranks) take an O(1) implicit-coordinate path in
 * find() — no per-view state needed, contiguity is two loads.
 */
struct FiberView
{
    const Fiber* fiber = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;

    // ---- packed backend (set when fiber == nullptr) ----
    /// Base of the rank's coordinate array (positions are absolute).
    const Coord* crd = nullptr;
    /// Rank shape (pointer views read it off the fiber).
    Coord shapeHint = 0;
    /// Bitmap auxiliary: the fiber's presence bits occupy pool bits
    /// [bitBase, bitBase + bitExtent), bit 0 = coordinate bitFirst.
    /// The pool-global rank of a set bit is the element's position.
    const std::uint64_t* bits = nullptr;
    const std::uint64_t* bitRank = nullptr;
    std::uint64_t bitBase = 0;
    Coord bitFirst = 0;
    Coord bitExtent = 0;

    std::size_t size() const { return hi - lo; }
    bool
    empty() const
    {
        return lo >= hi || (fiber == nullptr && crd == nullptr);
    }

    Coord
    coordAt(std::size_t pos) const
    {
        return fiber != nullptr ? fiber->coordAt(pos) : crd[pos];
    }

    /** Pointer-backed views only (packed payloads live in the packed
     *  tensor's own arrays; the engine descends through it directly). */
    const Payload&
    payloadAt(std::size_t pos) const
    {
        return fiber->payloadAt(pos);
    }

    /** Coordinate-space size of the backing rank (0 if unbacked). */
    Coord
    shape() const
    {
        return fiber != nullptr ? fiber->shape() : shapeHint;
    }

    /**
     * Position of coordinate @p c inside this window, or nullopt.
     * Pointer views search the backing fiber and reject hits outside
     * [lo, hi) — the engine's historical lookup semantics. Packed
     * views binary-search the slice, with O(1) fast paths for
     * contiguous (implicit-coordinate) fibers and bitmap ranks.
     */
    std::optional<std::size_t> find(Coord c) const;

    /** View over an entire fiber (empty view if null). */
    static FiberView whole(const Fiber* f);

    /** Subview restricted to coordinates in [c0, c1). */
    FiberView range(Coord c0, Coord c1) const;
};

/** Work counters for co-iteration, fed to the intersection-unit model. */
struct CoIterStats
{
    /// Elements examined (sum of both operands' advances).
    std::size_t steps = 0;
    /// Matching coordinates produced.
    std::size_t matches = 0;

    CoIterStats&
    operator+=(const CoIterStats& o)
    {
        steps += o.steps;
        matches += o.matches;
        return *this;
    }
};

/**
 * Two-finger intersection of two views.
 * @param fn Called as fn(coord, pos_a, pos_b) for every match.
 */
CoIterStats intersect2(
    const FiberView& a, const FiberView& b,
    const std::function<void(Coord, std::size_t, std::size_t)>& fn);

/**
 * Merge-union of two views.
 * @param fn Called as fn(coord, pos_a?, pos_b?) with the positions
 *           present on each side (at least one is set).
 */
CoIterStats unionMerge(
    const FiberView& a, const FiberView& b,
    const std::function<void(Coord, std::optional<std::size_t>,
                             std::optional<std::size_t>)>& fn);

/**
 * Leader-follower traversal: walk the leader, looking each coordinate
 * up in the follower (paper's leader-follower intersection).
 * @param fn Called as fn(coord, pos_leader, pos_follower?) for every
 *           leader element.
 */
CoIterStats leaderFollower(
    const FiberView& leader, const FiberView& follower,
    const std::function<void(Coord, std::size_t,
                             std::optional<std::size_t>)>& fn);

} // namespace teaal::ft
