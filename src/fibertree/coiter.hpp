/**
 * @file
 * Fiber co-iteration: views, two-finger intersection, and merge-union.
 *
 * Intersection realizes the sparsified iteration space of multiplied
 * operands (paper §2.4); union realizes addition; leader-follower
 * slicing realizes occupancy partitioning adoption (§3.2.1).
 */
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "fibertree/fiber.hpp"

namespace teaal::ft
{

/** A contiguous, read-only window [lo, hi) of a fiber's positions. */
struct FiberView
{
    const Fiber* fiber = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;

    std::size_t size() const { return hi - lo; }
    bool empty() const { return lo >= hi || fiber == nullptr; }

    Coord coordAt(std::size_t pos) const { return fiber->coordAt(pos); }
    const Payload&
    payloadAt(std::size_t pos) const
    {
        return fiber->payloadAt(pos);
    }

    /** View over an entire fiber (empty view if null). */
    static FiberView whole(const Fiber* f);

    /** Subview restricted to coordinates in [c0, c1). */
    FiberView range(Coord c0, Coord c1) const;
};

/** Work counters for co-iteration, fed to the intersection-unit model. */
struct CoIterStats
{
    /// Elements examined (sum of both operands' advances).
    std::size_t steps = 0;
    /// Matching coordinates produced.
    std::size_t matches = 0;

    CoIterStats&
    operator+=(const CoIterStats& o)
    {
        steps += o.steps;
        matches += o.matches;
        return *this;
    }
};

/**
 * Two-finger intersection of two views.
 * @param fn Called as fn(coord, pos_a, pos_b) for every match.
 */
CoIterStats intersect2(
    const FiberView& a, const FiberView& b,
    const std::function<void(Coord, std::size_t, std::size_t)>& fn);

/**
 * Merge-union of two views.
 * @param fn Called as fn(coord, pos_a?, pos_b?) with the positions
 *           present on each side (at least one is set).
 */
CoIterStats unionMerge(
    const FiberView& a, const FiberView& b,
    const std::function<void(Coord, std::optional<std::size_t>,
                             std::optional<std::size_t>)>& fn);

/**
 * Leader-follower traversal: walk the leader, looking each coordinate
 * up in the follower (paper's leader-follower intersection).
 * @param fn Called as fn(coord, pos_leader, pos_follower?) for every
 *           leader element.
 */
CoIterStats leaderFollower(
    const FiberView& leader, const FiberView& follower,
    const std::function<void(Coord, std::size_t,
                             std::optional<std::size_t>)>& fn);

} // namespace teaal::ft
