/**
 * @file
 * Shared per-level occupancy-hint math.
 *
 * Both fibertree tensors (ft::Tensor) and packed tensors
 * (storage::PackedTensor) expose `occupancyHints()`: for each rank
 * level, the average number of elements per fiber at that level —
 * elements(level) / fibers(level), where the fiber count of a level
 * is the element count of the level above (one fiber per parent
 * element) and the root level has exactly one fiber.
 *
 * The two implementations were maintained bit-identical by
 * convention; this helper is the single definition both call. It is
 * also the vocabulary of the analytic model (model/analytic), which
 * inverts it: given hints, per-level element counts are recovered as
 * a running product.
 */
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace teaal::ft
{

/**
 * Per-level occupancy hints from per-level element counts.
 *
 * @p counts element count at each rank level (level 0 outermost);
 *           may be shorter than @p num_ranks (missing levels hint 0).
 * @p num_ranks number of rank levels in the tensor; sets the result
 *           size.
 * @return hints[l] = counts[l] / (l == 0 ? 1 : counts[l-1]), or 0
 *         when the level above is empty.
 */
inline std::vector<double>
occupancyHintsFromCounts(std::span<const std::size_t> counts,
                         std::size_t num_ranks)
{
    std::vector<double> hints(num_ranks, 0.0);
    for (std::size_t level = 0;
         level < num_ranks && level < counts.size(); ++level) {
        const std::size_t fibers_above =
            level == 0 ? 1 : counts[level - 1];
        if (fibers_above > 0) {
            hints[level] = static_cast<double>(counts[level]) /
                           static_cast<double>(fibers_above);
        }
    }
    return hints;
}

} // namespace teaal::ft
