/**
 * @file
 * Tensor: a named fibertree — an ordered list of ranks plus a root
 * fiber (paper §2.1). Handles dense and sparse contents uniformly.
 */
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fibertree/fiber.hpp"
#include "fibertree/types.hpp"

namespace teaal::ft
{

class Tensor
{
  public:
    /** Default: a placeholder 1-rank scalar holder (for containers). */
    Tensor() : Tensor("_empty", std::vector<RankInfo>{{"_", 1, {}, {}}})
    {
    }

    /** An empty tensor over the given ranks (rank order = list order). */
    Tensor(std::string name, std::vector<RankInfo> ranks);

    /** Convenience: plain ranks from parallel id/shape lists. */
    Tensor(std::string name, const std::vector<std::string>& rank_ids,
           const std::vector<Coord>& shape);

    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    std::size_t numRanks() const { return ranks_.size(); }
    const RankInfo& rank(std::size_t level) const { return ranks_[level]; }
    RankInfo& rank(std::size_t level) { return ranks_[level]; }
    const std::vector<RankInfo>& ranks() const { return ranks_; }

    /** Rank ids top-to-bottom (the rank order). */
    std::vector<std::string> rankIds() const;

    /** Level of rank @p id, or -1 if the tensor lacks it. */
    int rankLevel(const std::string& id) const;

    const FiberPtr& root() const { return root_; }
    FiberPtr& root() { return root_; }

    /** Number of stored scalar leaves. */
    std::size_t nnz() const { return root_ ? root_->leafCount() : 0; }

    /**
     * Average fiber occupancy per level (elements per fiber), the
     * hints the planner uses to pick co-iteration strategies: a
     * driver much sparser than its partner favors galloping
     * intersection. One O(nnz) traversal produces every level's
     * hint; empty levels report 0.
     */
    std::vector<double> occupancyHints() const;

    /**
     * Value at a full point; absent coordinates yield 0 (fibertrees
     * omit empty payloads).
     */
    Value at(std::span<const Coord> point) const;

    /** Insert/overwrite the value at a full point. */
    void set(std::span<const Coord> point, Value v);

    /** Visit every stored leaf as (point, value), concordantly. */
    void forEachLeaf(
        const std::function<void(std::span<const Coord>, Value)>& fn) const;

    /** Structural + value equality within @p tol (ignores names). */
    bool equals(const Tensor& other, double tol = 1e-9) const;

    /** Human-readable dump, truncated to @p max_elems leaves. */
    std::string toString(std::size_t max_elems = 32) const;

    /** Build from (point, value) tuples (any order, unique points). */
    static Tensor fromCoo(
        std::string name, const std::vector<std::string>& rank_ids,
        const std::vector<Coord>& shape,
        const std::vector<std::pair<std::vector<Coord>, Value>>& elems);

    /** Deep copy (fibers are cloned, not shared). Note the plain copy
     *  constructor is a *shallow* copy sharing the fiber tree — cheap
     *  and safe for read-only consumers like instantiated plans. */
    Tensor clone() const;

    /**
     * Process-wide count of deep copies (clone() calls). The
     * compile-once/run-many tests assert the run path stays
     * clone-free for unmutated inputs.
     */
    static std::uint64_t cloneCount();

  private:
    std::string name_;
    std::vector<RankInfo> ranks_;
    FiberPtr root_;
};

} // namespace teaal::ft
