/**
 * @file
 * Fiber: a sorted sequence of coordinate/payload pairs (paper §2.1).
 *
 * Stored struct-of-arrays (a coordinate vector plus a payload vector)
 * so two-finger co-iteration touches only the coordinate array, which
 * is also how compressed concrete formats lay fibers out.
 */
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "fibertree/payload.hpp"
#include "fibertree/types.hpp"

namespace teaal::ft
{

/**
 * Provenance for shard-merge diagnostics: which Einsum produced the
 * partial outputs being merged and what the output's rank ids are
 * (root to leaf), so a collision error can name the rank it happened
 * on instead of only the coordinate.
 */
struct AbsorbContext
{
    std::string einsum;
    std::vector<std::string> rankIds;
};

class Fiber
{
  public:
    Fiber() { noteConstruction(); }

    /** @param shape Legal coordinate range is [0, shape). */
    explicit Fiber(Coord shape) : shape_(shape) { noteConstruction(); }

    /**
     * Process-wide count of Fiber constructions. The packed-execution
     * tests assert that binding and running a packed workload builds
     * no per-element pointer fibers (the counter's delta stays O(rank
     * count), independent of nnz).
     */
    static std::uint64_t constructionCount();

    std::size_t size() const { return coords_.size(); }
    bool empty() const { return coords_.empty(); }

    Coord shape() const { return shape_; }
    void setShape(Coord shape) { shape_ = shape; }

    /** Coordinate at position @p pos (positions are occupancy-order). */
    Coord
    coordAt(std::size_t pos) const
    {
        return coords_[pos];
    }

    const Payload& payloadAt(std::size_t pos) const
    {
        return payloads_[pos];
    }

    Payload& payloadAt(std::size_t pos) { return payloads_[pos]; }

    /** Binary search for an exact coordinate. */
    std::optional<std::size_t> find(Coord c) const;

    /** First position whose coordinate is >= @p c. */
    std::size_t lowerBound(Coord c) const;

    /**
     * Append an element; @p c must exceed the last coordinate.
     * This is the fast path for concordant construction.
     */
    void append(Coord c, Payload p);

    /**
     * Return the payload at coordinate @p c, inserting a default
     * payload if absent. Appends are O(1); mid-fiber inserts shift.
     */
    Payload& getOrInsert(Coord c);

    /**
     * Position-returning getOrInsert: one binary search total, and the
     * caller learns whether the element is fresh without re-searching
     * (the engine's output materialization needs both).
     */
    std::size_t getOrInsertPos(Coord c, bool& inserted);

    /** Pre-size both the coordinate and payload arrays. */
    void reserve(std::size_t n);

    /**
     * Merge @p other into this fiber, consuming it. The two fibers
     * must cover *disjoint* leaf paths: colliding coordinates whose
     * payloads are subfibers merge recursively; colliding scalar
     * leaves are a hard error (they would mean two producers wrote
     * the same output point — a disjoint-mode shard merge must never
     * see that; the error names the Einsum and rank when @p ctx is
     * given). When @p other's coordinates all lie past this fiber's
     * last coordinate the merge is a bulk reserve + move append (the
     * common case for contiguous shard outputs).
     */
    void absorbDisjoint(Fiber&& other,
                        const AbsorbContext* ctx = nullptr,
                        std::size_t depth = 0);

    /**
     * Merge @p other into this fiber, consuming it, summing colliding
     * scalar leaves with the semiring add @p add (reduction-mode shard
     * merges: each shard held a private partial output, and shards of
     * a contraction-restricting rank legitimately touch the same
     * output points). Structural collisions (a scalar against a
     * subfiber) are still producer bugs and raise a ModelError.
     */
    void absorbReduce(Fiber&& other, Value (*add)(Value, Value),
                      const AbsorbContext* ctx = nullptr,
                      std::size_t depth = 0);

    /** Number of scalar leaves in the subtree rooted at this fiber. */
    std::size_t leafCount() const;

    /**
     * Element counts of the subtree by depth: counts[0] is this
     * fiber's occupancy, counts[1] sums the child fibers', etc.
     */
    void elementCountsByDepth(std::vector<std::size_t>& counts,
                              std::size_t depth = 0) const;

    /** Deep copy of this fiber and everything below it. */
    FiberPtr clone() const;

    /**
     * Build a fiber from possibly-unsorted (coord, payload) pairs;
     * duplicate coordinates are rejected.
     */
    static FiberPtr fromUnsorted(
        std::vector<std::pair<Coord, Payload>> elems, Coord shape);

  private:
    static void noteConstruction();

    std::vector<Coord> coords_;
    std::vector<Payload> payloads_;
    Coord shape_ = 0;
};

} // namespace teaal::ft
