#include "fibertree/coiter.hpp"

namespace teaal::ft
{

FiberView
FiberView::whole(const Fiber* f)
{
    if (f == nullptr)
        return {};
    return {f, 0, f->size()};
}

FiberView
FiberView::range(Coord c0, Coord c1) const
{
    if (empty())
        return {};
    FiberView out;
    out.fiber = fiber;
    out.lo = fiber->lowerBound(c0);
    out.hi = fiber->lowerBound(c1);
    if (out.lo < lo)
        out.lo = lo;
    if (out.hi > hi)
        out.hi = hi;
    if (out.lo > out.hi)
        out.lo = out.hi;
    return out;
}

CoIterStats
intersect2(const FiberView& a, const FiberView& b,
           const std::function<void(Coord, std::size_t, std::size_t)>& fn)
{
    CoIterStats stats;
    if (a.empty() || b.empty())
        return stats;
    std::size_t ia = a.lo;
    std::size_t ib = b.lo;
    while (ia < a.hi && ib < b.hi) {
        const Coord ca = a.coordAt(ia);
        const Coord cb = b.coordAt(ib);
        ++stats.steps;
        if (ca == cb) {
            ++stats.matches;
            fn(ca, ia, ib);
            ++ia;
            ++ib;
        } else if (ca < cb) {
            ++ia;
        } else {
            ++ib;
        }
    }
    return stats;
}

CoIterStats
unionMerge(const FiberView& a, const FiberView& b,
           const std::function<void(Coord, std::optional<std::size_t>,
                                    std::optional<std::size_t>)>& fn)
{
    CoIterStats stats;
    std::size_t ia = a.empty() ? 0 : a.lo;
    std::size_t ib = b.empty() ? 0 : b.lo;
    const std::size_t ha = a.empty() ? 0 : a.hi;
    const std::size_t hb = b.empty() ? 0 : b.hi;
    while (ia < ha || ib < hb) {
        ++stats.steps;
        if (ib >= hb || (ia < ha && a.coordAt(ia) < b.coordAt(ib))) {
            fn(a.coordAt(ia), ia, std::nullopt);
            ++ia;
        } else if (ia >= ha || b.coordAt(ib) < a.coordAt(ia)) {
            fn(b.coordAt(ib), std::nullopt, ib);
            ++ib;
        } else {
            ++stats.matches;
            fn(a.coordAt(ia), ia, ib);
            ++ia;
            ++ib;
        }
    }
    return stats;
}

CoIterStats
leaderFollower(const FiberView& leader, const FiberView& follower,
               const std::function<void(Coord, std::size_t,
                                        std::optional<std::size_t>)>& fn)
{
    CoIterStats stats;
    if (leader.empty())
        return stats;
    for (std::size_t il = leader.lo; il < leader.hi; ++il) {
        const Coord c = leader.coordAt(il);
        ++stats.steps;
        std::optional<std::size_t> pos;
        if (!follower.empty()) {
            const auto found = follower.fiber->find(c);
            if (found && *found >= follower.lo && *found < follower.hi)
                pos = *found;
        }
        if (pos)
            ++stats.matches;
        fn(c, il, pos);
    }
    return stats;
}

} // namespace teaal::ft
