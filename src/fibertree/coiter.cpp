#include "fibertree/coiter.hpp"

#include <algorithm>
#include <bit>

namespace teaal::ft
{

FiberView
FiberView::whole(const Fiber* f)
{
    if (f == nullptr)
        return {};
    FiberView out;
    out.fiber = f;
    out.lo = 0;
    out.hi = f->size();
    return out;
}

FiberView
FiberView::range(Coord c0, Coord c1) const
{
    if (empty())
        return {};
    FiberView out = *this;
    std::size_t r0;
    std::size_t r1;
    if (fiber != nullptr) {
        r0 = fiber->lowerBound(c0);
        r1 = fiber->lowerBound(c1);
    } else {
        r0 = static_cast<std::size_t>(
            std::lower_bound(crd + lo, crd + hi, c0) - crd);
        r1 = static_cast<std::size_t>(
            std::lower_bound(crd + lo, crd + hi, c1) - crd);
    }
    out.lo = std::max(r0, lo);
    out.hi = std::min(r1, hi);
    if (out.lo > out.hi)
        out.lo = out.hi;
    return out;
}

std::optional<std::size_t>
FiberView::find(Coord c) const
{
    if (empty())
        return std::nullopt;
    if (fiber != nullptr) {
        // Historical engine semantics: search the whole fiber, reject
        // positions outside the window.
        const auto f = fiber->find(c);
        if (f && *f >= lo && *f < hi)
            return f;
        return std::nullopt;
    }
    if (bits != nullptr) {
        // Bitmap probe: O(1) membership, rank directory for position.
        const Coord off = c - bitFirst;
        if (off < 0 || off >= bitExtent)
            return std::nullopt;
        const std::uint64_t idx = bitBase + static_cast<std::uint64_t>(off);
        const std::uint64_t word = bits[idx >> 6];
        if (((word >> (idx & 63)) & 1ULL) == 0)
            return std::nullopt;
        const std::uint64_t below =
            bitRank[idx >> 6] +
            static_cast<std::uint64_t>(
                std::popcount(word & ((1ULL << (idx & 63)) - 1)));
        const auto pos = static_cast<std::size_t>(below);
        if (pos >= lo && pos < hi)
            return pos;
        return std::nullopt;
    }
    // Contiguous-coordinate (implicit/dense) fast path: two loads
    // decide, then position is arithmetic.
    const Coord first = crd[lo];
    const Coord last = crd[hi - 1];
    if (last - first == static_cast<Coord>(hi - lo - 1)) {
        if (c < first || c > last)
            return std::nullopt;
        return lo + static_cast<std::size_t>(c - first);
    }
    const Coord* it = std::lower_bound(crd + lo, crd + hi, c);
    if (it == crd + hi || *it != c)
        return std::nullopt;
    return static_cast<std::size_t>(it - crd);
}

CoIterStats
intersect2(const FiberView& a, const FiberView& b,
           const std::function<void(Coord, std::size_t, std::size_t)>& fn)
{
    CoIterStats stats;
    if (a.empty() || b.empty())
        return stats;
    std::size_t ia = a.lo;
    std::size_t ib = b.lo;
    while (ia < a.hi && ib < b.hi) {
        const Coord ca = a.coordAt(ia);
        const Coord cb = b.coordAt(ib);
        ++stats.steps;
        if (ca == cb) {
            ++stats.matches;
            fn(ca, ia, ib);
            ++ia;
            ++ib;
        } else if (ca < cb) {
            ++ia;
        } else {
            ++ib;
        }
    }
    return stats;
}

CoIterStats
unionMerge(const FiberView& a, const FiberView& b,
           const std::function<void(Coord, std::optional<std::size_t>,
                                    std::optional<std::size_t>)>& fn)
{
    CoIterStats stats;
    std::size_t ia = a.empty() ? 0 : a.lo;
    std::size_t ib = b.empty() ? 0 : b.lo;
    const std::size_t ha = a.empty() ? 0 : a.hi;
    const std::size_t hb = b.empty() ? 0 : b.hi;
    while (ia < ha || ib < hb) {
        ++stats.steps;
        if (ib >= hb || (ia < ha && a.coordAt(ia) < b.coordAt(ib))) {
            fn(a.coordAt(ia), ia, std::nullopt);
            ++ia;
        } else if (ia >= ha || b.coordAt(ib) < a.coordAt(ia)) {
            fn(b.coordAt(ib), std::nullopt, ib);
            ++ib;
        } else {
            ++stats.matches;
            fn(a.coordAt(ia), ia, ib);
            ++ia;
            ++ib;
        }
    }
    return stats;
}

CoIterStats
leaderFollower(const FiberView& leader, const FiberView& follower,
               const std::function<void(Coord, std::size_t,
                                        std::optional<std::size_t>)>& fn)
{
    CoIterStats stats;
    if (leader.empty())
        return stats;
    for (std::size_t il = leader.lo; il < leader.hi; ++il) {
        const Coord c = leader.coordAt(il);
        ++stats.steps;
        const std::optional<std::size_t> pos = follower.find(c);
        if (pos)
            ++stats.matches;
        fn(c, il, pos);
    }
    return stats;
}

} // namespace teaal::ft
