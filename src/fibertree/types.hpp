/**
 * @file
 * Fundamental types for the fibertree abstraction (Sze et al., used by
 * the TeAAL paper Section 2.1).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace teaal::ft
{

/** A coordinate within one rank. Flattened ranks pack tuples. */
using Coord = std::int64_t;

/** Scalar payload value at the leaves. */
using Value = double;

class Fiber;
using FiberPtr = std::shared_ptr<Fiber>;

/**
 * Static description of one rank (level) of a fibertree.
 *
 * A flattened rank (e.g. `KM` produced by `flatten()` on `(K, M)`)
 * records the constituent rank ids and shapes; its packed coordinate is
 * `upper * lowerShape + lower`, which preserves lexicographic tuple
 * order (paper Figure 2).
 */
struct RankInfo
{
    /// Rank identifier, e.g. "K", "KM", "K1".
    std::string id;

    /// Coordinate-space size: coords lie in [0, shape).
    Coord shape = 0;

    /// Non-empty iff this rank was produced by flattening.
    std::vector<std::string> flatIds;
    std::vector<Coord> flatShapes;

    bool isFlattened() const { return !flatIds.empty(); }
};

} // namespace teaal::ft
