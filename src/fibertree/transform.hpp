/**
 * @file
 * Content-preserving fibertree transformations (paper §2.1, §3.2):
 * rank swizzling, rank flattening, and rank partitioning (uniform
 * shape, uniform occupancy, and explicit-boundary for leader-follower
 * adoption). None of these change the set of leaf values — only the
 * coordinate system used to reach them.
 */
#pragma once

#include <string>
#include <vector>

#include "fibertree/tensor.hpp"

namespace teaal::ft
{

/**
 * Reorder the levels of the fibertree to @p new_order, which must be a
 * permutation of the tensor's rank ids (paper Figure 4).
 */
Tensor swizzle(const Tensor& t, const std::vector<std::string>& new_order);

/**
 * Flatten adjacent ranks @p upper_id (directly above) and @p lower_id
 * into one rank whose packed coordinate is upper*lowerShape + lower;
 * packing preserves lexicographic tuple order (paper Figure 2).
 * The combined rank is named upper_id + lower_id.
 */
Tensor flattenRanks(const Tensor& t, const std::string& upper_id,
                    const std::string& lower_id);

/**
 * Split rank @p rank_id at coordinate multiples of @p tile (uniform
 * shape-based partitioning, §2.3). Upper-rank coordinates are the first
 * legal coordinate of the fiber below (i.e. c - c % tile).
 */
Tensor splitRankByShape(const Tensor& t, const std::string& rank_id,
                        Coord tile, const std::string& upper_name,
                        const std::string& lower_name);

/**
 * Split rank @p rank_id so every fiber is divided into chunks of
 * @p chunk elements (uniform occupancy-based partitioning, §3.2.1).
 * Boundaries are chosen per fiber; upper-rank coordinates are each
 * chunk's first coordinate.
 */
Tensor splitRankByOccupancy(const Tensor& t, const std::string& rank_id,
                            std::size_t chunk,
                            const std::string& upper_name,
                            const std::string& lower_name);

/**
 * Split rank @p rank_id at explicit coordinate boundaries, used by
 * follower tensors adopting a leader's occupancy boundaries.
 * @p starts holds each partition's first coordinate, ascending,
 * starting with the range minimum; partition j spans
 * [starts[j], starts[j+1]) with the last extending to the shape.
 */
Tensor splitRankByBoundaries(const Tensor& t, const std::string& rank_id,
                             const std::vector<Coord>& starts,
                             const std::string& upper_name,
                             const std::string& lower_name);

/**
 * Occupancy boundaries of one fiber: the coordinates starting each
 * chunk of @p chunk elements. Leader tensors export these for their
 * followers (leader-follower paradigm, §3.2.1).
 */
std::vector<Coord> occupancyBoundaries(const Fiber& fiber,
                                       std::size_t chunk);

} // namespace teaal::ft
