#include "fibertree/transform.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace teaal::ft
{

namespace
{

/** Gather all leaves as (point, value) pairs. */
std::vector<std::pair<std::vector<Coord>, Value>>
gatherLeaves(const Tensor& t)
{
    std::vector<std::pair<std::vector<Coord>, Value>> leaves;
    leaves.reserve(t.nnz());
    t.forEachLeaf([&](std::span<const Coord> p, Value v) {
        leaves.emplace_back(std::vector<Coord>(p.begin(), p.end()), v);
    });
    return leaves;
}

/** Build a tensor from sorted leaves using append-only construction. */
void
buildFromSortedLeaves(
    Tensor& t,
    const std::vector<std::pair<std::vector<Coord>, Value>>& leaves)
{
    // Maintain a stack of open fibers, one per level.
    const std::size_t depth = t.numRanks();
    std::vector<Fiber*> stack(depth, nullptr);
    stack[0] = t.root().get();
    std::vector<Coord> open(depth, -1);
    for (const auto& [point, value] : leaves) {
        TEAAL_ASSERT(point.size() == depth, "leaf arity mismatch");
        // Find the first level whose open coordinate differs.
        std::size_t level = 0;
        while (level + 1 < depth && open[level] == point[level] &&
               stack[level + 1] != nullptr) {
            ++level;
        }
        for (; level + 1 < depth; ++level) {
            auto child = std::make_shared<Fiber>(t.rank(level + 1).shape);
            Fiber* child_raw = child.get();
            stack[level]->append(point[level], Payload(std::move(child)));
            open[level] = point[level];
            stack[level + 1] = child_raw;
        }
        stack[depth - 1]->append(point[depth - 1], Payload(value));
        open[depth - 1] = point[depth - 1];
    }
}

/**
 * Apply @p fn to every fiber at @p target_level (0 = root), replacing
 * each with the fiber @p fn returns.
 */
void
replaceFibersAtLevel(FiberPtr& fiber, std::size_t target_level,
                     const std::function<FiberPtr(const Fiber&)>& fn)
{
    if (fiber == nullptr)
        return;
    if (target_level == 0) {
        fiber = fn(*fiber);
        return;
    }
    for (std::size_t pos = 0; pos < fiber->size(); ++pos) {
        Payload& p = fiber->payloadAt(pos);
        if (p.isFiber()) {
            FiberPtr child = p.fiber();
            replaceFibersAtLevel(child, target_level - 1, fn);
            p.setFiber(std::move(child));
        }
    }
}

} // namespace

Tensor
swizzle(const Tensor& t, const std::vector<std::string>& new_order)
{
    if (new_order.size() != t.numRanks())
        specError("swizzle of '", t.name(), "': order has ",
                  new_order.size(), " ranks, tensor has ", t.numRanks());

    std::vector<std::size_t> perm;
    std::vector<RankInfo> new_ranks;
    for (const std::string& id : new_order) {
        const int level = t.rankLevel(id);
        if (level < 0)
            specError("swizzle of '", t.name(), "': unknown rank '", id,
                      "'");
        perm.push_back(static_cast<std::size_t>(level));
        new_ranks.push_back(t.rank(static_cast<std::size_t>(level)));
    }
    std::vector<bool> seen(t.numRanks(), false);
    for (std::size_t p : perm) {
        if (seen[p])
            specError("swizzle of '", t.name(), "': duplicate rank");
        seen[p] = true;
    }

    auto leaves = gatherLeaves(t);
    for (auto& [point, value] : leaves) {
        (void)value;
        std::vector<Coord> permuted(point.size());
        for (std::size_t i = 0; i < perm.size(); ++i)
            permuted[i] = point[perm[i]];
        point = std::move(permuted);
    }
    std::sort(leaves.begin(), leaves.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    Tensor out(t.name(), new_ranks);
    buildFromSortedLeaves(out, leaves);
    return out;
}

Tensor
flattenRanks(const Tensor& t, const std::string& upper_id,
             const std::string& lower_id)
{
    const int upper = t.rankLevel(upper_id);
    const int lower = t.rankLevel(lower_id);
    if (upper < 0 || lower < 0 || lower != upper + 1)
        specError("flatten of '", t.name(), "': ranks ", upper_id, ", ",
                  lower_id, " must be adjacent (upper directly above)");

    const RankInfo& ru = t.rank(static_cast<std::size_t>(upper));
    const RankInfo& rl = t.rank(static_cast<std::size_t>(lower));
    const Coord stride = rl.shape;
    TEAAL_ASSERT(stride > 0, "flatten: lower rank shape must be positive");

    RankInfo flat;
    flat.id = ru.id + rl.id;
    flat.shape = ru.shape * rl.shape;
    // Record constituents; nested flattening concatenates expansions.
    auto expand = [](const RankInfo& r, std::vector<std::string>& ids,
                     std::vector<Coord>& shapes) {
        if (r.isFlattened()) {
            ids.insert(ids.end(), r.flatIds.begin(), r.flatIds.end());
            shapes.insert(shapes.end(), r.flatShapes.begin(),
                          r.flatShapes.end());
        } else {
            ids.push_back(r.id);
            shapes.push_back(r.shape);
        }
    };
    expand(ru, flat.flatIds, flat.flatShapes);
    expand(rl, flat.flatIds, flat.flatShapes);

    std::vector<RankInfo> new_ranks;
    for (std::size_t i = 0; i < t.numRanks(); ++i) {
        if (static_cast<int>(i) == upper)
            new_ranks.push_back(flat);
        else if (static_cast<int>(i) != lower)
            new_ranks.push_back(t.rank(i));
    }

    Tensor out(t.name(), new_ranks);
    out.root() = t.root() ? t.root()->clone() : nullptr;
    replaceFibersAtLevel(
        out.root(), static_cast<std::size_t>(upper),
        [&](const Fiber& f) {
            auto merged = std::make_shared<Fiber>(flat.shape);
            std::size_t total = 0;
            for (std::size_t pos = 0; pos < f.size(); ++pos) {
                const Payload& p = f.payloadAt(pos);
                if (p.isFiber() && p.fiber() != nullptr)
                    total += p.fiber()->size();
            }
            merged->reserve(total);
            for (std::size_t pos = 0; pos < f.size(); ++pos) {
                const Coord cu = f.coordAt(pos);
                const Payload& p = f.payloadAt(pos);
                if (!p.isFiber() || p.fiber() == nullptr)
                    modelError("flatten: expected fibers below rank '",
                               upper_id, "'");
                const Fiber& child = *p.fiber();
                for (std::size_t cpos = 0; cpos < child.size(); ++cpos) {
                    merged->append(cu * stride + child.coordAt(cpos),
                                   child.payloadAt(cpos));
                }
            }
            return merged;
        });
    return out;
}

namespace
{

/**
 * Common splitter: given a function mapping a fiber to the list of
 * partition start coordinates, split every fiber at @p level.
 */
Tensor
splitImpl(const Tensor& t, const std::string& rank_id,
          const std::string& upper_name, const std::string& lower_name,
          const std::function<std::vector<Coord>(const Fiber&)>& bounds_fn)
{
    const int level = t.rankLevel(rank_id);
    if (level < 0)
        specError("partitioning of '", t.name(), "': unknown rank '",
                  rank_id, "'");

    const RankInfo& orig = t.rank(static_cast<std::size_t>(level));
    RankInfo upper = orig;
    upper.id = upper_name;
    RankInfo lower = orig;
    lower.id = lower_name;

    std::vector<RankInfo> new_ranks;
    for (std::size_t i = 0; i < t.numRanks(); ++i) {
        if (static_cast<int>(i) == level) {
            new_ranks.push_back(upper);
            new_ranks.push_back(lower);
        } else {
            new_ranks.push_back(t.rank(i));
        }
    }

    Tensor out(t.name(), new_ranks);
    out.root() = t.root() ? t.root()->clone() : nullptr;
    replaceFibersAtLevel(
        out.root(), static_cast<std::size_t>(level),
        [&](const Fiber& f) {
            auto split = std::make_shared<Fiber>(orig.shape);
            const std::vector<Coord> starts = bounds_fn(f);
            split->reserve(starts.size());
            std::size_t pos = 0;
            for (std::size_t j = 0; j < starts.size(); ++j) {
                const Coord begin = starts[j];
                const Coord end = j + 1 < starts.size()
                                      ? starts[j + 1]
                                      : orig.shape;
                auto part = std::make_shared<Fiber>(orig.shape);
                while (pos < f.size() && f.coordAt(pos) < begin)
                    ++pos; // elements before the first boundary: none
                part->reserve(f.lowerBound(end) - pos);
                while (pos < f.size() && f.coordAt(pos) < end) {
                    part->append(f.coordAt(pos), f.payloadAt(pos));
                    ++pos;
                }
                if (!part->empty())
                    split->append(begin, Payload(std::move(part)));
            }
            return split;
        });
    return out;
}

} // namespace

Tensor
splitRankByShape(const Tensor& t, const std::string& rank_id, Coord tile,
                 const std::string& upper_name,
                 const std::string& lower_name)
{
    if (tile <= 0)
        specError("uniform_shape tile must be positive, got ", tile);
    return splitImpl(t, rank_id, upper_name, lower_name,
                     [&t, rank_id, tile](const Fiber& f) {
                         const int level = t.rankLevel(rank_id);
                         const Coord shape =
                             t.rank(static_cast<std::size_t>(level)).shape;
                         (void)f;
                         std::vector<Coord> starts;
                         for (Coord c = 0; c < shape; c += tile)
                             starts.push_back(c);
                         if (starts.empty())
                             starts.push_back(0);
                         return starts;
                     });
}

Tensor
splitRankByOccupancy(const Tensor& t, const std::string& rank_id,
                     std::size_t chunk, const std::string& upper_name,
                     const std::string& lower_name)
{
    if (chunk == 0)
        specError("uniform_occupancy chunk must be positive");
    return splitImpl(t, rank_id, upper_name, lower_name,
                     [chunk](const Fiber& f) {
                         return occupancyBoundaries(f, chunk);
                     });
}

Tensor
splitRankByBoundaries(const Tensor& t, const std::string& rank_id,
                      const std::vector<Coord>& starts,
                      const std::string& upper_name,
                      const std::string& lower_name)
{
    if (starts.empty())
        specError("splitRankByBoundaries: empty boundary list");
    return splitImpl(t, rank_id, upper_name, lower_name,
                     [&starts](const Fiber&) { return starts; });
}

std::vector<Coord>
occupancyBoundaries(const Fiber& fiber, std::size_t chunk)
{
    TEAAL_ASSERT(chunk > 0, "occupancy chunk must be positive");
    std::vector<Coord> starts;
    if (fiber.empty()) {
        starts.push_back(0);
        return starts;
    }
    for (std::size_t pos = 0; pos < fiber.size(); pos += chunk) {
        // Each chunk starts at its first element's coordinate, except
        // the first chunk which starts at the range minimum so that
        // follower elements below the leader's first coordinate are
        // not orphaned.
        starts.push_back(pos == 0 ? 0 : fiber.coordAt(pos));
    }
    return starts;
}

} // namespace teaal::ft
