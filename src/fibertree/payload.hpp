/**
 * @file
 * Payload: the value side of a fiber's coordinate/payload pair.
 *
 * A payload is a scalar value at a leaf level or a reference to a fiber
 * at an interior level (paper Section 2.1).
 */
#pragma once

#include <variant>

#include "fibertree/types.hpp"
#include "util/error.hpp"

namespace teaal::ft
{

class Fiber;

/** Tagged scalar-or-fiber payload. */
class Payload
{
  public:
    /** Default: the scalar zero (an empty payload). */
    Payload() : data_(Value{0}) {}

    explicit Payload(Value v) : data_(v) {}
    explicit Payload(FiberPtr f) : data_(std::move(f)) {}

    bool isValue() const { return std::holds_alternative<Value>(data_); }
    bool isFiber() const { return !isValue(); }

    /** Scalar access; throws ModelError when holding a fiber. */
    Value
    value() const
    {
        if (!isValue())
            modelError("payload holds a fiber, not a value");
        return std::get<Value>(data_);
    }

    /** Fiber access; throws ModelError when holding a scalar. */
    const FiberPtr&
    fiber() const
    {
        if (!isFiber())
            modelError("payload holds a value, not a fiber");
        return std::get<FiberPtr>(data_);
    }

    /** In-place scalar mutation (for reductions). */
    void
    setValue(Value v)
    {
        data_ = v;
    }

    void
    setFiber(FiberPtr f)
    {
        data_ = std::move(f);
    }

    /** True for the scalar 0 or a null/empty fiber. */
    bool empty() const;

  private:
    std::variant<Value, FiberPtr> data_;
};

} // namespace teaal::ft
