/**
 * @file
 * OuterSPACE specification (paper Figure 3 for einsum+mapping, Figure 5
 * for format/architecture/binding, Table 5 for parameters).
 *
 * Multiply phase: outer products of A columns with B rows, partial
 * products written to the array-of-linked-lists tensor T. Merge phase:
 * per-row sort (rank swizzle [M,K,N] -> [M,N,K]) and reduction over K.
 * The accelerator reorganizes between phases, so two topologies are
 * specified.
 */
#include "accelerators/accelerators.hpp"

#include "accelerators/spec_util.hpp"

namespace teaal::accel
{

namespace
{

const char* kTemplate = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    T: [K, M, N]
    Z: [M, N]
  expressions:
    - T[k, m, n] = A[k, m] * B[k, n]
    - Z[m, n] = T[k, m, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    T: [M, K, N]
    Z: [M, N]
  partitioning:
    T:
      (K, M): [flatten()]
      KM: [uniform_occupancy(A.$CHUNK2), uniform_occupancy(A.$CHUNK1)]
    Z:
      M: [uniform_occupancy(T.$MCHUNK2), uniform_occupancy(T.$MCHUNK1)]
  loop-order:
    T: [KM2, KM1, KM0, N]
    Z: [M2, M1, M0, N, K]
  spacetime:
    T:
      space: [KM1, KM0]
      time: [KM2, N]
    Z:
      space: [M1, M0]
      time: [M2, N, K]
format:
  A:
    CSC:
      K:
        format: U
        pbits: 32
      M:
        format: C
        cbits: 32
        pbits: 64
  B:
    CSR:
      K:
        format: U
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
  T:
    LinkedLists:
      M:
        format: U
        pbits: 32
      K:
        format: C
        cbits: 32
        pbits: 32
      N:
        format: C
        fhbits: 32
        layout: interleaved
        cbits: 32
        pbits: 64
  Z:
    CSR:
      M:
        format: U
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
architecture:
  Multiply:
    clock: $CLOCK
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes:
              bandwidth: $DRAMBW
        subtree:
          - name: PT
            num: $PTS
            local:
              - name: L0Cache
                class: Buffer
                attributes:
                  type: cache
                  size: $L0BYTES
                  bandwidth: 1024
            subtree:
              - name: PE
                num: $MULPES
                local:
                  - name: MulALU
                    class: Compute
                    attributes:
                      type: mul
                  - name: PESeq
                    class: Sequencer
                    attributes:
                      num_ranks: 4
  Merge:
    clock: $CLOCK
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes:
              bandwidth: $DRAMBW
        subtree:
          - name: PT
            num: $PTS
            local:
              - name: L0Scratch
                class: Buffer
                attributes:
                  type: buffet
                  size: $L0BYTES
                  bandwidth: 1024
            subtree:
              - name: PE
                num: $MERGEPES
                local:
                  - name: SortNet
                    class: Merger
                    attributes:
                      inputs: 64
                      comparator_radix: 2
                      outputs: 1
                      order: fifo
                      reduce: 0
                  - name: AddALU
                    class: Compute
                    attributes:
                      type: add
                  - name: MergeSeq
                    class: Sequencer
                    attributes:
                      num_ranks: 3
binding:
  T:
    config: Multiply
    components:
      - component: L0Cache
        bindings:
          - tensor: B
            rank: K
            type: payload
            style: eager
      - component: MulALU
        bindings:
          - op: mul
      - component: PESeq
        bindings:
          - op: seq
  Z:
    config: Merge
    components:
      - component: L0Scratch
        bindings:
          - tensor: T
            config: LinkedLists
            rank: M0
            type: elem
            style: eager
            evict-on: M0
          - tensor: Z
            rank: N
            type: elem
            style: lazy
            evict-on: M0
      - component: SortNet
        bindings:
          - op: sort
            tensor: T
      - component: AddALU
        bindings:
          - op: add
      - component: MergeSeq
        bindings:
          - op: seq
)";

} // namespace

compiler::Specification
outerSpace(const OuterSpaceConfig& cfg)
{
    const std::string yaml = subst(
        kTemplate,
        {{"CLOCK", num(cfg.clock)},
         {"DRAMBW", num(cfg.dramGBs)},
         {"PTS", num(cfg.processingTiles)},
         {"MULPES", num(cfg.pesPerTileMultiply)},
         {"MERGEPES", num(cfg.pesPerTileMerge)},
         {"L0BYTES", num(cfg.l0CacheBytes)},
         {"CHUNK2", num(cfg.chunkOuter)},
         {"CHUNK1", num(cfg.chunkInner)},
         {"MCHUNK2", num(cfg.mergeChunkOuter)},
         {"MCHUNK1", num(cfg.mergeChunkInner)}});
    return compiler::Specification::parse(yaml);
}

} // namespace teaal::accel
