/**
 * @file
 * SIGMA specification (paper Figure 8c, Table 5).
 *
 * A deep-learning GEMM accelerator using occupancy-based partitioning
 * so only non-zero elements of the stationary matrix occupy PEs
 * (A-stationary dataflow). The cascade pre-filters A: empty rows of B
 * are detected (S), removed from A (T), then the multiply runs on the
 * filtered T. S and T are bitmap metadata (1-bit coordinates), so
 * their memory footprint is negligible — as in the real design.
 */
#include "accelerators/accelerators.hpp"

#include "accelerators/spec_util.hpp"

namespace teaal::accel
{

namespace
{

const char* kTemplate = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    S: [K, M]
    T: [K, M]
    Z: [M, N]
  expressions:
    - S[k, m] = take(A[k, m], B[k, n], 0)
    - T[k, m] = take(A[k, m], S[k, m], 0)
    - Z[m, n] = T[k, m] * B[k, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    S: [K, M]
    T: [K, M]
    Z: [M, N]
  partitioning:
    Z:
      K: [uniform_shape($KTILE)]
      (M, K0): [flatten()]
      MK0: [uniform_occupancy(T.$CHUNK)]
  loop-order:
    S: [K, M, N]
    T: [K, M]
    Z: [K1, MK01, MK00, N]
  spacetime:
    S:
      space: []
      time: [K, M, N]
    T:
      space: []
      time: [K, M]
    Z:
      space: [MK00]
      time: [K1, MK01, N.coord]
format:
  A:
    Bitmap:
      K:
        format: U
        pbits: 32
      M:
        format: B
        cbits: 1
        pbits: 16
  B:
    Bitmap:
      K:
        format: U
        pbits: 32
      N:
        format: B
        cbits: 1
        pbits: 16
  S:
    Bitmap:
      K:
        format: U
        pbits: 1
      M:
        format: B
        cbits: 1
        pbits: 1
  T:
    Bitmap:
      K:
        format: U
        pbits: 1
      M:
        format: B
        cbits: 1
        pbits: 16
  Z:
    Dense:
      M:
        format: U
        pbits: 32
      N:
        format: U
        pbits: 32
architecture:
  Sigma:
    clock: $CLOCK
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes:
              bandwidth: $DRAMBW
          - name: DataSRAM
            class: Buffer
            attributes:
              type: buffet
              size: $SRAMBYTES
              bandwidth: $SRAMBW
          - name: FilterUnit
            class: Sequencer
            attributes:
              num_ranks: 1024
        subtree:
          - name: FlexDPE
            num: $DPES
            local:
              - name: Benes
                class: Merger
                attributes:
                  inputs: $DPEPES
                  comparator_radix: 2
                  outputs: $DPEPES
                  order: fifo
                  reduce: 0
            subtree:
              - name: PE
                num: $DPEPES
                local:
                  - name: MulALU
                    class: Compute
                    attributes:
                      type: mul
                  - name: AddTree
                    class: Compute
                    attributes:
                      type: add
                  - name: PESeq
                    class: Sequencer
                    attributes:
                      num_ranks: 2
binding:
  S:
    config: Sigma
    components:
      - component: FilterUnit
        bindings:
          - op: seq
  T:
    config: Sigma
    components:
      - component: FilterUnit
        bindings:
          - op: seq
  Z:
    config: Sigma
    components:
      - component: DataSRAM
        bindings:
          - tensor: T
            rank: K1
            type: elem
            style: eager
            evict-on: K1
          - tensor: B
            rank: K1
            type: elem
            style: eager
            evict-on: K1
          - tensor: Z
            rank: N
            type: elem
            style: lazy
      - component: MulALU
        bindings:
          - op: mul
      - component: AddTree
        bindings:
          - op: add
      - component: PESeq
        bindings:
          - op: seq
)";

} // namespace

compiler::Specification
sigma(const SigmaConfig& cfg)
{
    const std::string yaml =
        subst(kTemplate, {{"CLOCK", num(cfg.clock)},
                          {"DRAMBW", num(cfg.dramGBs)},
                          {"SRAMBYTES", num(cfg.dataSramBytes)},
                          {"SRAMBW", num(cfg.sramGBs)},
                          {"DPES", num(cfg.flexDpes)},
                          {"DPEPES", num(cfg.pesPerDpe)},
                          {"KTILE", num(cfg.kTile)},
                          {"CHUNK", num(cfg.stationaryChunk)}});
    return compiler::Specification::parse(yaml);
}

} // namespace teaal::accel
