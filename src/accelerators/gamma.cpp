/**
 * @file
 * Gamma specification (paper Figure 8a, Table 5).
 *
 * Row-wise (Gustavson) SpMSpM: rows of A distributed to PEs; the
 * take() Einsum fetches the referenced rows of B (cached in the
 * FiberCache); per-PE 64-way mergers swizzle T from [M, K, N] to
 * [M, N, K] so the reduction over K is concordant. The two Einsums
 * fuse into one pipelined block (§4.3).
 */
#include "accelerators/accelerators.hpp"

#include "accelerators/spec_util.hpp"

namespace teaal::accel
{

namespace
{

const char* kTemplate = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    T: [K, M, N]
    Z: [M, N]
  expressions:
    - T[k, m, n] = take(A[k, m], B[k, n], 1)
    - Z[m, n] = T[k, m, n] * A[k, m]
mapping:
  rank-order:
    A: [M, K]
    B: [K, N]
    T: [M, K, N]
    Z: [M, N]
  partitioning:
    T:
      M: [uniform_occupancy(A.$MCHUNK)]
      K: [uniform_occupancy(A.$KCHUNK)]
    Z:
      M: [uniform_occupancy(A.$MCHUNK)]
      K: [uniform_occupancy(A.$KCHUNK)]
  loop-order:
    T: [M1, M0, K1, K0, N]
    Z: [M1, M0, K1, N, K0]
  spacetime:
    T:
      space: [M0, K1]
      time: [M1, K0, N]
    Z:
      space: [M0, K1]
      time: [M1, N, K0]
format:
  A:
    CSR:
      M:
        format: U
        pbits: 32
      K:
        format: C
        cbits: 32
        pbits: 64
  B:
    CSR:
      K:
        format: U
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
  T:
    CSF:
      M:
        format: U
        pbits: 32
      K:
        format: C
        cbits: 32
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
  Z:
    CSR:
      M:
        format: U
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
architecture:
  Gamma:
    clock: $CLOCK
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes:
              bandwidth: $DRAMBW
          - name: FiberCache
            class: Buffer
            attributes:
              type: cache
              size: $FCBYTES
              bandwidth: $FCBW
        subtree:
          - name: PE
            num: $PES
            local:
              - name: AccumBuf
                class: Buffer
                attributes:
                  type: buffet
                  size: 65536
              - name: TopMerger
                class: Merger
                attributes:
                  inputs: $WAYS
                  comparator_radix: $WAYS
                  outputs: 1
                  order: opt
                  reduce: 1
              - name: MulALU
                class: Compute
                attributes:
                  type: mul
              - name: AddALU
                class: Compute
                attributes:
                  type: add
              - name: RowIsect
                class: Intersection
                attributes:
                  type: leader-follower
                  leader: A
              - name: PESeq
                class: Sequencer
                attributes:
                  num_ranks: 3
binding:
  T:
    config: Gamma
    components:
      - component: FiberCache
        bindings:
          - tensor: B
            rank: K
            type: payload
            style: eager
      - component: RowIsect
        bindings:
          - op: intersect
  Z:
    config: Gamma
    components:
      - component: AccumBuf
        bindings:
          - tensor: Z
            rank: N
            type: elem
            style: lazy
            evict-on: M0
      - component: TopMerger
        bindings:
          - op: merge
            tensor: T
      - component: MulALU
        bindings:
          - op: mul
      - component: AddALU
        bindings:
          - op: add
)";

} // namespace

compiler::Specification
gamma(const GammaConfig& cfg)
{
    const std::string yaml =
        subst(kTemplate, {{"CLOCK", num(cfg.clock)},
                          {"DRAMBW", num(cfg.dramGBs)},
                          {"FCBYTES", num(cfg.fiberCacheBytes)},
                          {"FCBW", num(cfg.fiberCacheGBs)},
                          {"PES", num(cfg.pes)},
                          {"WAYS", num(cfg.mergerWays)},
                          {"MCHUNK", num(cfg.rowChunk)},
                          {"KCHUNK", num(cfg.kChunk)}});
    return compiler::Specification::parse(yaml);
}

} // namespace teaal::accel
