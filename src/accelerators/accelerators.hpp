/**
 * @file
 * Canned TeAAL specifications of the four validated accelerators
 * (paper Figures 3 and 8) with the Table 5 hardware configurations:
 *
 *   OuterSPACE  outer-product multiply/merge SpMSpM (Pal et al.)
 *   ExTensor    tiled inner-product with skip-ahead intersection
 *               (Hegde et al.)
 *   Gamma       row-wise Gustavson with FiberCache + 64-way mergers
 *               (Zhang et al.)
 *   SIGMA       occupancy-balanced dense-ish GEMM (Qin et al.)
 *
 * Each builder takes a config struct defaulting to the published
 * parameters; tests use scaled-down configs, benches the defaults.
 *
 * The returned Specification is the input to the pipeline:
 *
 *   auto model = compiler::compile(accel::gamma(cfg));
 *   auto r = model.run(workload);   // compile once, run many
 */
#pragma once

#include <string>

#include "compiler/compiler.hpp"

namespace teaal::accel
{

/** OuterSPACE (Table 5 row 3, Figures 3 and 5). */
struct OuterSpaceConfig
{
    double clock = 1.5e9;
    int processingTiles = 16;
    int pesPerTileMultiply = 16;
    int pesPerTileMerge = 8;
    double l0CacheBytes = 16 * 1024;
    double dramGBs = 128.0; ///< 16 x 64-bit HBM @ 8000 MB/s/channel
    /// Work-division chunks (paper §3.2.1).
    std::size_t chunkOuter = 256;
    std::size_t chunkInner = 16;
    std::size_t mergeChunkOuter = 128;
    std::size_t mergeChunkInner = 8;
};

compiler::Specification outerSpace(const OuterSpaceConfig& cfg = {});

/** Gamma (Table 5 row 2, Figure 8a). */
struct GammaConfig
{
    double clock = 1e9;
    int pes = 32;
    int mergerWays = 64;
    double fiberCacheBytes = 3.0 * 1024 * 1024;
    double fiberCacheGBs = 512.0;
    double dramGBs = 128.0; ///< 16 x 64-bit HBM @ 8 GB/s/channel
    std::size_t rowChunk = 32; ///< rows of A per PE round
    std::size_t kChunk = 64;   ///< merger radix rows of B per pass
};

compiler::Specification gamma(const GammaConfig& cfg = {});

/** ExTensor (Table 5 row 1, Figure 8b). */
struct ExTensorConfig
{
    double clock = 1e9;
    int pes = 128;
    double peBufferBytes = 64 * 1024;
    double llcBytes = 30.0 * 1024 * 1024;
    double llcGBs = 2048.0;
    double dramGBs = 68.256;
    /// Shape-partition tile sizes (symbolic params of Figure 8b).
    /// K1/K0 = 128 gives the space rank K1 its 128-way parallelism.
    long tileK1 = 8192, tileK0 = 64;
    long tileM1 = 8192, tileM0 = 1024;
    long tileN1 = 8192, tileN0 = 1024;
    /// Intersection unit type (ablation: two-finger, leader-follower,
    /// skip-ahead).
    std::string intersection = "skip-ahead";
};

compiler::Specification extensor(const ExTensorConfig& cfg = {});

/** SIGMA (Table 5 row 4, Figure 8c). */
struct SigmaConfig
{
    double clock = 500e6;
    int flexDpes = 128;
    int pesPerDpe = 128;
    double dataSramBytes = 32.0 * 1024 * 1024;
    double sramGBs = 960.0;
    double dramGBs = 1024.0;
    long kTile = 128;
    std::size_t stationaryChunk = 16384; ///< nonzeros per PE round
};

compiler::Specification sigma(const SigmaConfig& cfg = {});

} // namespace teaal::accel
