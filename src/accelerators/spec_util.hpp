/**
 * @file
 * Tiny template substitution for the canned YAML specifications.
 */
#pragma once

#include <map>
#include <sstream>
#include <string>

namespace teaal::accel
{

/** Replace each "$KEY" in @p text with its mapped value. */
inline std::string
subst(std::string text, const std::map<std::string, std::string>& values)
{
    for (const auto& [key, value] : values) {
        const std::string token = "$" + key;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            text.replace(pos, token.size(), value);
            pos += value.size();
        }
    }
    return text;
}

/** Number to string without trailing zeros noise. */
inline std::string
num(double v)
{
    std::ostringstream oss;
    oss << v;
    return oss.str();
}

inline std::string
num(long v)
{
    return std::to_string(v);
}

inline std::string
num(int v)
{
    return std::to_string(v);
}

inline std::string
num(std::size_t v)
{
    return std::to_string(v);
}

} // namespace teaal::accel
