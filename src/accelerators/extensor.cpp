/**
 * @file
 * ExTensor specification (paper Figure 8b, Table 5).
 *
 * Hybrid dataflow, inner-product at the innermost level, with uniform
 * shape-based partitioning at two levels (DRAM->LLC->PE) and
 * hierarchical skip-ahead intersection. Partial output tiles live in
 * the LLC and spill across K2 iterations (the PO traffic of Figure
 * 9a).
 */
#include "accelerators/accelerators.hpp"

#include "accelerators/spec_util.hpp"

namespace teaal::accel
{

namespace
{

const char* kTemplate = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  partitioning:
    Z:
      K:
        - uniform_shape(K1)
        - uniform_shape(K0)
      M:
        - uniform_shape(M1)
        - uniform_shape(M0)
      N:
        - uniform_shape(N1)
        - uniform_shape(N0)
  loop-order:
    Z: [N2, K2, M2, M1, N1, K1, M0, N0, K0]
  spacetime:
    Z:
      space: [K1]
      time: [N2, K2, M2, M1, N1, M0, N0, K0]
format:
  A:
    CSF:
      K:
        format: C
        cbits: 32
        pbits: 32
      M:
        format: C
        cbits: 32
        pbits: 64
  B:
    CSF:
      K:
        format: C
        cbits: 32
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
  Z:
    CSR:
      M:
        format: U
        pbits: 32
      N:
        format: C
        cbits: 32
        pbits: 64
architecture:
  ExTensor:
    clock: $CLOCK
    subtree:
      - name: System
        local:
          - name: MainMemory
            class: DRAM
            attributes:
              bandwidth: $DRAMBW
          - name: LLC
            class: Buffer
            attributes:
              type: buffet
              size: $LLCBYTES
              bandwidth: $LLCBW
        subtree:
          - name: PE
            num: $PES
            local:
              - name: PEBuffer
                class: Buffer
                attributes:
                  type: buffet
                  size: $PEBYTES
              - name: SkipAhead
                class: Intersection
                attributes:
                  type: $ISECT
              - name: MulALU
                class: Compute
                attributes:
                  type: mul
              - name: PESeq
                class: Sequencer
                attributes:
                  num_ranks: 4
binding:
  Z:
    config: ExTensor
    components:
      - component: LLC
        bindings:
          - tensor: A
            rank: K1
            type: elem
            style: eager
            evict-on: M1
          - tensor: B
            rank: K1
            type: elem
            style: eager
            evict-on: M2
      - component: LLC
        bindings:
          - tensor: Z
            rank: N
            type: elem
            style: lazy
            evict-on: M2
      - component: SkipAhead
        bindings:
          - op: intersect
      - component: MulALU
        bindings:
          - op: mul
      - component: PESeq
        bindings:
          - op: seq
)";

} // namespace

compiler::Specification
extensor(const ExTensorConfig& cfg)
{
    const std::string yaml =
        subst(kTemplate, {{"CLOCK", num(cfg.clock)},
                          {"DRAMBW", num(cfg.dramGBs)},
                          {"LLCBYTES", num(cfg.llcBytes)},
                          {"LLCBW", num(cfg.llcGBs)},
                          {"PEBYTES", num(cfg.peBufferBytes)},
                          {"PES", num(cfg.pes)},
                          {"ISECT", cfg.intersection}});
    const mapping::ParamMap params{
        {"K1", cfg.tileK1}, {"K0", cfg.tileK0}, {"M1", cfg.tileM1},
        {"M0", cfg.tileM0}, {"N1", cfg.tileN1}, {"N0", cfg.tileN0}};
    return compiler::Specification::parse(yaml, params);
}

} // namespace teaal::accel
