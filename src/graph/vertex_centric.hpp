/**
 * @file
 * Vertex-centric programming substrate (paper §8, Figure 12).
 *
 * A graph algorithm is expressed as per-iteration cascades: the
 * processing phase selects the edges of active vertices (take), reduces
 * incoming messages into R (with algorithm-specific x and + operators),
 * and the apply phase updates the property vector and the next active
 * set. BFS redefines (x, +) to (select, or); SSSP to (add, min).
 *
 * runVertexCentric executes the functional cascade and records the
 * per-iteration facts the three hardware designs of Figure 13 differ
 * on; modelDesign turns those facts into time/ops/traffic under the
 * Graphicionado hardware parameters (Table 5):
 *
 *   Graphicionado  applies to every vertex every iteration; edge-list
 *                  format re-reads source ids and always loads weights.
 *   GraphDynS-like 256-partition bitmap over the reduced set: only
 *                  partitions containing updates are applied; CSR
 *                  format drops per-edge source ids and (for BFS)
 *                  weights.
 *   Our proposal   no partitioning: apply exactly the vertices in R
 *                  (the paper's point change to the mapping).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/datasets.hpp"

namespace teaal::graph
{

enum class Algorithm { BFS, SSSP };

/** Facts recorded about one iteration of the cascade. */
struct IterationStats
{
    std::size_t active = 0;       ///< |A0| source vertices
    std::size_t edgesTouched = 0; ///< edges leaving the active set
    std::size_t reduced = 0;      ///< |R| destinations receiving messages
    std::size_t updated = 0;      ///< |M| properties actually improved
    std::size_t partitionsTouched = 0; ///< 256-way bitmap cover of R
};

/** Whole-run record. */
struct RunStats
{
    std::vector<IterationStats> iterations;
    std::size_t vertices = 0;
    std::size_t edges = 0;

    std::size_t totalEdgesTouched() const;
};

/**
 * Execute the algorithm functionally from @p source.
 * @param partitions Bitmap granularity used by the GraphDynS model.
 */
RunStats runVertexCentric(const workloads::Graph& g, Algorithm alg,
                          ft::Coord source = 0,
                          std::size_t max_iterations = 10000,
                          std::size_t partitions = 256);

/** The three designs compared in Figure 13. */
enum class Design { Graphicionado, GraphDynSLike, Proposal };

std::string designName(Design d);

/** Table 5 Graphicionado hardware parameters. */
struct GraphConfig
{
    double clock = 1e9;
    int streams = 8;
    double memGBs = 68.0;
};

/** Modeled cost of a run on one design. */
struct DesignCost
{
    double seconds = 0;
    double applyOps = 0;
    double trafficBytes = 0;
    std::vector<double> applyOpsPerIteration;
};

DesignCost modelDesign(const RunStats& run, Design design, Algorithm alg,
                       const GraphConfig& cfg = {});

/**
 * The Einsum cascades of Figure 12 as einsum-spec YAML (used by the
 * Table 2 printer, the examples, and the executor-level tests that
 * show the cascades run on the generic fibertree machinery).
 */
std::string graphicionadoCascadeYaml();
std::string graphDynSCascadeYaml();

} // namespace teaal::graph
