#include "graph/vertex_centric.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace teaal::graph
{

std::size_t
RunStats::totalEdgesTouched() const
{
    std::size_t total = 0;
    for (const IterationStats& it : iterations)
        total += it.edgesTouched;
    return total;
}

RunStats
runVertexCentric(const workloads::Graph& g, Algorithm alg,
                 ft::Coord source, std::size_t max_iterations,
                 std::size_t partitions)
{
    TEAAL_ASSERT(source >= 0 && source < g.vertices,
                 "source vertex out of range");
    const auto n = static_cast<std::size_t>(g.vertices);
    const float inf = std::numeric_limits<float>::infinity();

    RunStats run;
    run.vertices = n;
    run.edges = g.edges();

    // Property vector P: BFS = visited flag (via level), SSSP = dist.
    std::vector<float> prop(n, alg == Algorithm::BFS ? 0.0f : inf);
    std::vector<std::uint8_t> active(n, 0);
    std::vector<float> reduced(n, 0.0f);
    std::vector<std::uint8_t> has_msg(n, 0);
    if (alg == Algorithm::BFS)
        prop[static_cast<std::size_t>(source)] = 1.0f;
    else
        prop[static_cast<std::size_t>(source)] = 0.0f;
    active[static_cast<std::size_t>(source)] = 1;
    std::vector<std::uint32_t> frontier{
        static_cast<std::uint32_t>(source)};

    const std::size_t part_size =
        std::max<std::size_t>(1, (n + partitions - 1) / partitions);

    for (std::size_t iter = 0;
         !frontier.empty() && iter < max_iterations; ++iter) {
        IterationStats stats;
        stats.active = frontier.size();

        // Processing phase: SO = take(G, A0, 0); R[d] = SO x A0
        // (x, + redefined per algorithm).
        std::vector<std::uint32_t> touched;
        for (std::uint32_t s : frontier) {
            const std::uint32_t begin = g.offsets[s];
            const std::uint32_t end = g.offsets[s + 1];
            stats.edgesTouched += end - begin;
            for (std::uint32_t e = begin; e < end; ++e) {
                const std::uint32_t d = g.targets[e];
                float msg;
                if (alg == Algorithm::BFS) {
                    msg = 1.0f; // x = select source flag
                } else {
                    msg = prop[s] + g.weights[e]; // x = add
                }
                if (!has_msg[d]) {
                    has_msg[d] = 1;
                    reduced[d] = msg;
                    touched.push_back(d);
                } else if (alg == Algorithm::SSSP) {
                    reduced[d] = std::min(reduced[d], msg); // + = min
                }
            }
        }
        stats.reduced = touched.size();

        // GraphDynS bitmap cover over the reduce set.
        {
            std::vector<std::uint8_t> bit(partitions, 0);
            for (std::uint32_t d : touched)
                bit[d / part_size] = 1;
            stats.partitionsTouched = static_cast<std::size_t>(
                std::count(bit.begin(), bit.end(), 1));
        }

        // Apply phase: P1 = R + P0 (BFS: or; SSSP: min), M = changed,
        // A1 = take(M, P1, 1).
        std::vector<std::uint32_t> next;
        for (std::uint32_t d : touched) {
            bool improved = false;
            if (alg == Algorithm::BFS) {
                if (prop[d] == 0.0f) {
                    prop[d] = 1.0f;
                    improved = true;
                }
            } else {
                if (reduced[d] < prop[d]) {
                    prop[d] = reduced[d];
                    improved = true;
                }
            }
            if (improved)
                next.push_back(d);
            has_msg[d] = 0;
        }
        stats.updated = next.size();

        run.iterations.push_back(stats);
        frontier = std::move(next);
    }
    return run;
}

std::string
designName(Design d)
{
    switch (d) {
      case Design::Graphicionado:
        return "Graphicionado";
      case Design::GraphDynSLike:
        return "GraphDynS-like";
      case Design::Proposal:
        return "Our Proposal";
    }
    return "?";
}

DesignCost
modelDesign(const RunStats& run, Design design, Algorithm alg,
            const GraphConfig& cfg)
{
    DesignCost cost;
    const double bw = cfg.memGBs * 1e9;
    const double lanes = static_cast<double>(cfg.streams) * cfg.clock;
    const std::size_t partitions = 256;
    const std::size_t part_size = std::max<std::size_t>(
        1, (run.vertices + partitions - 1) / partitions);

    for (const IterationStats& it : run.iterations) {
        // ------------------------------ processing phase
        // Per-edge bytes: destination id always; Graphicionado's
        // edge-list format re-reads the source id per edge and always
        // loads the weight; CSR (GraphDynS, proposal) reads per-active
        // row offsets instead and skips weights for BFS (§8).
        double edge_bytes = 4.0;
        if (design == Design::Graphicionado)
            edge_bytes += 4.0 + 4.0;
        else if (alg == Algorithm::SSSP)
            edge_bytes += 4.0;
        double process_bytes =
            static_cast<double>(it.edgesTouched) * edge_bytes +
            static_cast<double>(it.active) * 12.0; // prop + offsets
        // Messages written/read through the reduce stage.
        process_bytes += static_cast<double>(it.reduced) * 8.0;
        const double process_ops =
            static_cast<double>(it.edgesTouched);
        const double process_time =
            std::max(process_bytes / bw, process_ops / lanes);

        // ----------------------------------- apply phase
        std::size_t applied;
        switch (design) {
          case Design::Graphicionado:
            applied = run.vertices;
            break;
          case Design::GraphDynSLike:
            applied = std::min(run.vertices,
                               it.partitionsTouched * part_size);
            break;
          case Design::Proposal:
            applied = it.reduced;
            break;
          default:
            applied = run.vertices;
        }
        // Read P0 + R, write P1 + the new active flag.
        const double apply_bytes = static_cast<double>(applied) * 24.0;
        const double apply_ops = static_cast<double>(applied) * 2.0;
        const double apply_time =
            std::max(apply_bytes / bw, apply_ops / lanes);

        cost.seconds += process_time + apply_time;
        cost.applyOps += apply_ops;
        cost.trafficBytes += process_bytes + apply_bytes;
        cost.applyOpsPerIteration.push_back(apply_ops);
    }
    return cost;
}

std::string
graphicionadoCascadeYaml()
{
    // Figure 12a. The paper indexes the destination rank as d in the
    // processing phase and v in the apply phase (both are vertices);
    // the executable form names that rank V throughout so the apply
    // unions co-iterate R with the property vectors.
    return "declaration:\n"
           "  G: [V, S]\n"
           "  A0: [S]\n"
           "  SO: [V, S]\n"
           "  R: [V]\n"
           "  P0: [V]\n"
           "  P1: [V]\n"
           "  M: [V]\n"
           "  A1: [V]\n"
           "expressions:\n"
           "  - SO[v, s] = take(G[v, s], A0[s], 0)\n"
           "  - R[v] = SO[v, s] * A0[s]\n"
           "  - P1[v] = R[v] + P0[v]\n"
           "  - M[v] = P1[v] - P0[v]\n"
           "  - A1[v] = take(M[v], P1[v], 1)\n";
}

std::string
graphDynSCascadeYaml()
{
    // Figure 12b, destination rank named V as in Fig 12a above.
    return "declaration:\n"
           "  G: [V, S]\n"
           "  A0: [S]\n"
           "  SO: [V, S]\n"
           "  R: [V]\n"
           "  P0: [V]\n"
           "  MP: [V]\n"
           "  NP: [V]\n"
           "  M: [V]\n"
           "  A1: [V]\n"
           "  P1: [V]\n"
           "expressions:\n"
           "  - SO[v, s] = take(G[v, s], A0[s], 0)\n"
           "  - R[v] = SO[v, s] * A0[s]\n"
           "  - MP[v] = take(R[v], P0[v], 1)\n"
           "  - NP[v] = R[v] + MP[v]\n"
           "  - M[v] = NP[v] - MP[v]\n"
           "  - A1[v] = take(M[v], NP[v], 1)\n"
           "  - P1 = NP\n";
}

} // namespace teaal::graph
