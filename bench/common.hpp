/**
 * @file
 * Shared infrastructure for the figure/table-reproduction benches.
 *
 * Every bench binary prints the same rows/series its paper figure
 * plots. "Reported" columns are approximate values digitized from the
 * paper's figures (flagged `approx`): absolute fidelity to them is
 * not the goal — the cross-workload, cross-accelerator *shape* is
 * (see EXPERIMENTS.md).
 *
 * Workload sizing: full Table 4 sizes make some benches take minutes,
 * so benches run the validation matrices at TEAAL_SCALE (default
 * 0.35) and graphs at TEAAL_GRAPH_SCALE (default 0.125). Every bench
 * prints the scale it used; set the env vars to 1.0 for full-size
 * runs.
 */
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "accelerators/accelerators.hpp"
#include "baselines/baselines.hpp"
#include "compiler/pipeline.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

namespace teaal::bench
{

/** One warmup call, then the best (minimum — noise-resistant) wall
 *  time of @p iters timed calls. Shared by the timing microbenches so
 *  their methodology cannot diverge. */
inline double
bestSeconds(const std::function<void()>& fn, int iters)
{
    using Clock = std::chrono::steady_clock;
    fn();
    double best = 1e30;
    for (int i = 0; i < iters; ++i) {
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** Scale factor from an environment variable. */
inline double
envScale(const char* name, double fallback)
{
    const char* value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    const double parsed = std::atof(value);
    return parsed > 0 ? parsed : fallback;
}

inline double
matrixScale()
{
    return envScale("TEAAL_SCALE", 0.35);
}

inline double
graphScale()
{
    return envScale("TEAAL_GRAPH_SCALE", 0.125);
}

/** The five validation matrices of Figures 9-11. */
inline const std::vector<std::string>&
validationKeys()
{
    static const std::vector<std::string> keys{"wi", "p2", "ca", "po",
                                               "em"};
    return keys;
}

/** A and B operands for SpMSpM on a Table 4 stand-in (A x A shape). */
struct SpmspmInput
{
    ft::Tensor a;
    ft::Tensor b;
    baselines::SpmspmWork work;
};

inline SpmspmInput
loadSpmspm(const std::string& key, double scale)
{
    const workloads::DatasetInfo& info = workloads::dataset(key);
    SpmspmInput in{
        workloads::synthesize(info, "A", 1000 + key[0], scale,
                              {"K", "M"}),
        workloads::synthesize(info, "B", 2000 + key[1], scale,
                              {"K", "N"}),
        {}};
    in.work = baselines::countSpmspmWork(in.a, in.b);
    return in;
}

/** Workload borrowing one SpMSpM input pair (no tensor copies). */
inline compiler::Workload
workloadOf(const SpmspmInput& in)
{
    compiler::Workload w;
    w.add("A", in.a).add("B", in.b);
    return w;
}

/** RunOptions for single-shot bench runs: each workload is run
 *  exactly once, so caching its plans would only pin memory. */
inline compiler::RunOptions
singleShot()
{
    compiler::RunOptions opts;
    opts.cacheState = false;
    return opts;
}

/** Compile one accelerator spec and run it on one input. */
inline compiler::SimulationResult
runAccelerator(compiler::Specification spec, const SpmspmInput& in)
{
    auto model = compiler::compile(std::move(spec));
    const compiler::Workload w = workloadOf(in);
    return model.run(w, singleShot());
}

/**
 * Emit one machine-readable result row as a single-line JSON object:
 * string labels first, then numeric metrics. Every bench that wants
 * to be diffed/plotted by tooling prints these alongside its table.
 */
inline void
jsonRow(std::ostream& os, const std::string& bench,
        const std::vector<std::pair<std::string, std::string>>& labels,
        const std::vector<std::pair<std::string, double>>& metrics)
{
    os << "{\"bench\":\"" << bench << "\"";
    for (const auto& [key, value] : labels)
        os << ",\"" << key << "\":\"" << value << "\"";
    for (const auto& [key, value] : metrics)
        os << ",\"" << key << "\":" << value;
    os << "}\n";
}

/**
 * Timing-bench variant: appends the canonical `threads` and `wall_ms`
 * fields every timing row carries, so the CI perf differ
 * (ci/perf_diff.py) can key results per configuration and compare
 * wall time across runs uniformly.
 */
inline void
jsonRow(std::ostream& os, const std::string& bench,
        const std::vector<std::pair<std::string, std::string>>& labels,
        const std::vector<std::pair<std::string, double>>& metrics,
        unsigned threads, double wall_ms)
{
    std::vector<std::pair<std::string, double>> all = metrics;
    all.emplace_back("threads", static_cast<double>(threads));
    all.emplace_back("wall_ms", wall_ms);
    jsonRow(os, bench, labels, all);
}

/** Print the standard bench header. */
inline void
header(const std::string& what, double scale)
{
    std::cout << "# " << what << "\n"
              << "# workload scale factor: " << scale
              << "  (set TEAAL_SCALE/TEAAL_GRAPH_SCALE=1.0 for "
                 "full Table 4 sizes)\n"
              << "# 'reported' columns are approximate values "
                 "digitized from the paper's figures\n\n";
}

// ------------------------------------------------------------------
// Approximate reported values digitized from the paper's figures.
// Keyed by dataset; ordering follows validationKeys().
// ------------------------------------------------------------------

/** Fig. 9a: ExTensor traffic normalized to the algorithmic minimum. */
inline const std::map<std::string, double>&
reportedExtensorTraffic()
{
    static const std::map<std::string, double> v{
        {"wi", 2.2}, {"p2", 4.6}, {"ca", 2.4}, {"po", 2.2}, {"em", 2.9}};
    return v;
}

/** Fig. 9b: Gamma traffic normalized to the algorithmic minimum. */
inline const std::map<std::string, double>&
reportedGammaTraffic()
{
    static const std::map<std::string, double> v{
        {"wi", 1.1}, {"p2", 1.2}, {"ca", 1.1}, {"po", 1.0}, {"em", 1.2}};
    return v;
}

/** Fig. 9c: OuterSPACE traffic normalized to the algorithmic min. */
inline const std::map<std::string, double>&
reportedOuterSpaceTraffic()
{
    static const std::map<std::string, double> v{
        {"wi", 5.3}, {"p2", 6.2}, {"ca", 5.0}, {"po", 4.1}, {"em", 5.8}};
    return v;
}

/** Fig. 10a: ExTensor speedup over MKL. */
inline const std::map<std::string, double>&
reportedExtensorSpeedup()
{
    static const std::map<std::string, double> v{
        {"wi", 3.9}, {"p2", 5.2}, {"ca", 3.6}, {"po", 2.9}, {"em", 4.5}};
    return v;
}

/** Fig. 10b: Gamma speedup over MKL. */
inline const std::map<std::string, double>&
reportedGammaSpeedup()
{
    static const std::map<std::string, double> v{{"wi", 19.0},
                                                 {"p2", 38.0},
                                                 {"ca", 22.0},
                                                 {"po", 16.0},
                                                 {"em", 26.0}};
    return v;
}

/** Fig. 11: ExTensor energy in mJ. */
inline const std::map<std::string, double>&
reportedExtensorEnergyMj()
{
    static const std::map<std::string, double> v{
        {"wi", 12.0}, {"p2", 26.0}, {"ca", 21.0}, {"po", 28.0},
        {"em", 52.0}};
    return v;
}

} // namespace teaal::bench
