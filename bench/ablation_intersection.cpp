/**
 * @file
 * Ablation D: ExTensor's intersection unit type. The skip-ahead unit
 * (its architectural focus, Table 1) fast-forwards through
 * non-matching runs; two-finger pays every element.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Ablation D: ExTensor intersection unit type "
                  "(email-Enron stand-in)",
                  scale);
    const auto in = bench::loadSpmspm("em", scale);

    TextTable table("ExTensor with varying intersection type");
    table.setHeader({"type", "isect cycles (M)", "isect time (ms)",
                     "total time (ms)"});
    for (const char* type :
         {"two-finger", "leader-follower", "skip-ahead"}) {
        accel::ExTensorConfig cfg;
        cfg.intersection = type;
        const auto result =
            bench::runAccelerator(accel::extensor(cfg), in);
        const auto& record = result.records[0];
        const auto it = record.components.find("SkipAhead");
        const double cycles =
            it != record.components.end() ? it->second.count("cycles")
                                          : 0;
        const auto ts =
            result.perf.einsums[0].componentSeconds.find("SkipAhead");
        const double seconds =
            ts != result.perf.einsums[0].componentSeconds.end()
                ? ts->second
                : 0;
        table.addRow({type, TextTable::num(cycles / 1e6, 2),
                      TextTable::num(seconds * 1e3, 3),
                      TextTable::num(result.perf.totalSeconds * 1e3,
                                     3)});
    }
    table.print();
    return 0;
}
