/**
 * @file
 * Serving-latency bench for the simulation-as-a-service daemon
 * (serve/server.hpp): an open-loop Poisson load generator in the
 * TailBench style, swept from light load to past saturation.
 *
 * Methodology:
 *   1. Start an in-process Server on an ephemeral loopback port,
 *      compile one accelerator model, register several dataset pairs
 *      (distinct binding sets keep concurrent requests off a single
 *      plan's per-workload serialization), and warm every plan.
 *   2. Closed-loop phase: one client, sequential requests — measures
 *      per-request service time and calibrates capacity. This is the
 *      bench's deterministic row for the CI perf gate.
 *   3. Open-loop sweep: for each target rate (fractions and multiples
 *      of measured capacity), draw Poisson arrivals from a seeded RNG
 *      and let a pool of client connections fire them on schedule.
 *      Latency is completion minus *scheduled arrival* — queueing
 *      delay counts, which is what makes open-loop tails honest.
 *      Past saturation the server sheds with `overloaded` instead of
 *      letting the accepted tail collapse.
 *
 *   4. Deadline sweep: closed-loop requests carrying `deadline_ms`
 *      budgets at fractions of the measured service time. Budgets
 *      below the service time must come back as structured
 *      `deadline_exceeded` (and promptly — elapsed_ms tracks the
 *      budget, not the full run); generous budgets must not fire.
 *
 * Rows: one gated closed-loop jsonRow (threads/wall_ms), plus
 * informational open-loop rows (p50/p95/p99/shed per target rate)
 * and deadline-sweep rows (ok/deadline_exceeded/p95 elapsed per
 * budget) — no wall_ms on either, so the perf differ reports them
 * without gating; their wall time is load-dependent by construction.
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <random>
#include <thread>

#include "common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "workloads/mtx.hpp"

using namespace teaal;

namespace
{

using Clock = std::chrono::steady_clock;

double
nowSeconds(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since).count();
}

/** Peak resident set (kB) from /proc/self/status, 0 if unreadable. */
double
peakRssKb()
{
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    char line[256];
    double kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::sscanf(line, "VmHWM: %lf kB", &kb) == 1)
            break;
    }
    std::fclose(f);
    return kb;
}

struct SweepPoint
{
    double targetQps = 0;
    double achievedQps = 0;
    double p50Ms = 0;
    double p95Ms = 0;
    double p99Ms = 0;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
};

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

/** One open-loop phase: @p n Poisson arrivals at @p qps, driven by
 *  @p workers synchronous client connections. */
SweepPoint
openLoopPhase(int port, const std::vector<std::string>& requests,
              double qps, std::size_t n, unsigned workers,
              std::uint32_t seed)
{
    // Pre-draw the arrival schedule (seconds from phase start) so
    // every worker sees the same deterministic Poisson process.
    std::mt19937 rng(seed);
    std::exponential_distribution<double> gap(qps);
    std::vector<double> arrivals(n);
    double t = 0;
    for (std::size_t i = 0; i < n; ++i) {
        t += gap(rng);
        arrivals[i] = t;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::vector<double> latencies(n, -1.0);
    std::mutex latMutex;

    const Clock::time_point start = Clock::now();
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            serve::Client client;
            client.connect(port);
            for (;;) {
                const std::size_t i = next.fetch_add(1);
                if (i >= n)
                    break;
                const double at = arrivals[i];
                const double now = nowSeconds(start);
                if (now < at)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(at - now));
                const std::string response = client.requestLine(
                    requests[(i + w) % requests.size()]);
                const double done = nowSeconds(start);
                const serve::Json r = serve::parseJson(response);
                const serve::Json* okField = r.find("ok");
                if (okField != nullptr && okField->boolean()) {
                    ok.fetch_add(1);
                    std::lock_guard<std::mutex> lk(latMutex);
                    latencies[i] = (done - at) * 1e3;
                } else {
                    shed.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& th : pool)
        th.join();
    const double elapsed = nowSeconds(start);

    std::vector<double> accepted;
    for (double ms : latencies) {
        if (ms >= 0)
            accepted.push_back(ms);
    }
    SweepPoint point;
    point.targetQps = qps;
    point.achievedQps =
        elapsed > 0 ? static_cast<double>(ok.load()) / elapsed : 0;
    point.p50Ms = percentile(accepted, 0.50);
    point.p95Ms = percentile(accepted, 0.95);
    point.p99Ms = percentile(accepted, 0.99);
    point.ok = ok.load();
    point.shed = shed.load();
    return point;
}

} // namespace

int
main()
{
    const double scale = bench::envScale("TEAAL_SERVE_SCALE", 0.05);
    std::cout << "# serve_latency: open-loop latency sweep against "
                 "the in-process serving daemon\n"
              << "# workload scale factor: " << scale
              << "  (TEAAL_SERVE_SCALE)\n\n";

    // ------------------------------------------------------ datasets
    // Several binding pairs so concurrent evaluations use distinct
    // plan-cache entries (same-workload runs serialize by design).
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "teaal_serve_bench";
    std::filesystem::create_directories(dir);
    constexpr int kPairs = 4;
    const workloads::DatasetInfo& info = workloads::dataset("wi");
    std::vector<std::string> aPaths, bPaths;
    for (int i = 0; i < kPairs; ++i) {
        const ft::Tensor a = workloads::synthesize(
            info, "A", 100 + i, scale, {"K", "M"});
        const ft::Tensor b = workloads::synthesize(
            info, "B", 200 + i, scale, {"K", "N"});
        const std::string ap =
            (dir / ("a" + std::to_string(i) + ".mtx")).string();
        const std::string bp =
            (dir / ("b" + std::to_string(i) + ".mtx")).string();
        workloads::writeMatrixMarket(ap, a);
        workloads::writeMatrixMarket(bp, b);
        aPaths.push_back(ap);
        bPaths.push_back(bp);
    }

    // -------------------------------------------------------- server
    serve::ServerOptions opts;
    opts.maxInFlight = 8; // small cap: the sweep's saturation phases
                          // must actually shed
    serve::Server server(opts);
    server.start();

    serve::Client control;
    control.connect(server.port());

    serve::Json compileReq = serve::Json::makeObject();
    compileReq.set("op", serve::Json::makeString("compile"));
    compileReq.set("accel", serve::Json::makeString("gamma"));
    const serve::Json compiled = control.request(compileReq);
    const std::string model = compiled.find("model")->str();

    std::vector<std::string> evaluateLines;
    for (int i = 0; i < kPairs; ++i) {
        auto load = [&](const std::string& path, const char* name,
                        const char* col) {
            serve::Json req = serve::Json::makeObject();
            req.set("op", serve::Json::makeString("load_dataset"));
            req.set("path", serve::Json::makeString(path));
            req.set("name", serve::Json::makeString(name));
            serve::Json ranks = serve::Json::makeArray();
            ranks.push(serve::Json::makeString("K"));
            ranks.push(serve::Json::makeString(col));
            req.set("rank_ids", std::move(ranks));
            return control.request(req).find("dataset")->str();
        };
        const std::string da = load(aPaths[i], "A", "M");
        const std::string db = load(bPaths[i], "B", "N");

        serve::Json bindings = serve::Json::makeObject();
        bindings.set("A", serve::Json::makeString(da));
        bindings.set("B", serve::Json::makeString(db));
        serve::Json eval = serve::Json::makeObject();
        eval.set("op", serve::Json::makeString("evaluate"));
        eval.set("model", serve::Json::makeString(model));
        eval.set("bindings", std::move(bindings));
        eval.set("threads", serve::Json::makeNumber(1));
        evaluateLines.push_back(eval.dump());
    }

    // Warm every plan (first evaluation instantiates and caches).
    for (const std::string& line : evaluateLines) {
        const serve::Json r =
            serve::parseJson(control.requestLine(line));
        if (r.find("ok") == nullptr || !r.find("ok")->boolean()) {
            std::cerr << "warmup failed: " << r.dump() << "\n";
            return 1;
        }
    }

    // ------------------------------------------- closed-loop capacity
    constexpr int kClosedLoop = 60;
    const Clock::time_point c0 = Clock::now();
    for (int i = 0; i < kClosedLoop; ++i)
        control.requestLine(evaluateLines[i % kPairs]);
    const double closedSeconds = nowSeconds(c0);
    const double serviceMs = closedSeconds * 1e3 / kClosedLoop;
    const double capacityQps = kClosedLoop / closedSeconds;
    std::cout << "closed loop: " << kClosedLoop << " requests, "
              << serviceMs << " ms/request, capacity ~" << capacityQps
              << " qps\n\n";

    // ------------------------------------------------ open-loop sweep
    TextTable table("open-loop sweep (Poisson arrivals, latency from "
                    "scheduled arrival)");
    table.setHeader({"target qps", "achieved", "p50 ms", "p95 ms",
                     "p99 ms", "ok", "shed"});
    std::vector<SweepPoint> sweep;
    const std::vector<double> fractions{0.5, 1.0, 2.0};
    std::vector<std::string> loadLabels;
    for (std::size_t s = 0; s < fractions.size(); ++s) {
        char label[32];
        std::snprintf(label, sizeof(label), "%gx", fractions[s]);
        loadLabels.emplace_back(label);
        const double qps =
            std::max(1.0, capacityQps * fractions[s]);
        const SweepPoint point = openLoopPhase(
            server.port(), evaluateLines, qps, /*n=*/80,
            /*workers=*/16, /*seed=*/7000 + static_cast<int>(s));
        sweep.push_back(point);
        table.addRow({TextTable::num(point.targetQps),
                      TextTable::num(point.achievedQps),
                      TextTable::num(point.p50Ms),
                      TextTable::num(point.p95Ms),
                      TextTable::num(point.p99Ms),
                      std::to_string(point.ok),
                      std::to_string(point.shed)});
    }
    std::cout << table.render() << "\n";

    // --------------------------------------------- deadline sweep
    // Per-request budgets as fractions of the measured service time.
    // Informational (no assertions): the structured-timeout contract
    // itself is covered by the serve tests; this charts how the cut
    // moves with the budget on this machine.
    struct DeadlinePoint
    {
        std::string label;
        double deadlineMs = 0;
        std::uint64_t ok = 0;
        std::uint64_t exceeded = 0;
        std::uint64_t other = 0;
        double p95ElapsedMs = 0;
    };
    TextTable dtable("deadline sweep (budget as a fraction of "
                     "closed-loop service time)");
    dtable.setHeader({"budget", "deadline ms", "ok",
                      "deadline_exceeded", "other", "p95 elapsed ms"});
    std::vector<DeadlinePoint> dsweep;
    constexpr int kDeadlineRequests = 20;
    const std::vector<std::pair<const char*, double>> budgets{
        {"0.25x", 0.25}, {"1x", 1.0}, {"4x", 4.0}};
    for (const auto& [label, frac] : budgets) {
        DeadlinePoint point;
        point.label = label;
        point.deadlineMs = std::max(0.05, serviceMs * frac);
        std::vector<double> elapsed;
        for (int i = 0; i < kDeadlineRequests; ++i) {
            serve::Json req =
                serve::parseJson(evaluateLines[i % kPairs]);
            req.set("deadline_ms",
                    serve::Json::makeNumber(point.deadlineMs));
            const serve::Json r = control.request(req);
            const std::string code = serve::responseErrorCode(r);
            if (code.empty())
                ++point.ok;
            else if (code == "deadline_exceeded")
                ++point.exceeded;
            else
                ++point.other;
            if (const serve::Json* e = r.find("elapsed_ms"))
                elapsed.push_back(e->number());
        }
        point.p95ElapsedMs = percentile(elapsed, 0.95);
        dsweep.push_back(point);
        dtable.addRow({point.label, TextTable::num(point.deadlineMs),
                       std::to_string(point.ok),
                       std::to_string(point.exceeded),
                       std::to_string(point.other),
                       TextTable::num(point.p95ElapsedMs)});
    }
    std::cout << dtable.render() << "\n";

    const double rssKb = peakRssKb();
    std::cout << "peak RSS: " << rssKb << " kB\n";
    const serve::Json stats = serve::parseJson(
        control.requestLine("{\"op\":\"stats\"}"));
    std::cout << "server stats: " << stats.dump() << "\n\n";

    // The deterministic row the CI perf gate compares across commits.
    bench::jsonRow(std::cout, "serve_latency",
                   {{"phase", "closed_loop"}},
                   {{"service_ms", serviceMs},
                    {"capacity_qps", capacityQps},
                    {"peak_rss_kb", rssKb}},
                   /*threads=*/1, /*wall_ms=*/closedSeconds * 1e3);
    // Informational rows: no wall_ms, so the differ lists but never
    // gates them (their duration is load-dependent by construction).
    for (std::size_t s = 0; s < sweep.size(); ++s) {
        const SweepPoint& point = sweep[s];
        bench::jsonRow(std::cout, "serve_latency",
                       {{"phase", "open_loop"},
                        {"load", loadLabels[s]}},
                       {{"target_qps", point.targetQps},
                        {"achieved_qps", point.achievedQps},
                        {"p50_ms", point.p50Ms},
                        {"p95_ms", point.p95Ms},
                        {"p99_ms", point.p99Ms},
                        {"ok", static_cast<double>(point.ok)},
                        {"shed", static_cast<double>(point.shed)}});
    }
    for (const DeadlinePoint& point : dsweep) {
        bench::jsonRow(
            std::cout, "serve_latency",
            {{"phase", "deadline_sweep"}, {"budget", point.label}},
            {{"deadline_ms", point.deadlineMs},
             {"requests", static_cast<double>(kDeadlineRequests)},
             {"ok", static_cast<double>(point.ok)},
             {"deadline_exceeded", static_cast<double>(point.exceeded)},
             {"other", static_cast<double>(point.other)},
             {"p95_elapsed_ms", point.p95ElapsedMs}});
    }

    control.close();
    server.stop();
    std::filesystem::remove_all(dir);

    // The load-shedding contract, asserted where it matters: past
    // saturation (the last sweep point, 2x capacity) the server must
    // have shed — an open-loop overload it absorbed silently would
    // mean an unbounded queue — and the *accepted* tail must stay
    // bounded by the in-flight cap's queueing (generous noise
    // factor; this is a contract check, not a perf gate).
    const SweepPoint& saturated = sweep.back();
    if (saturated.shed == 0) {
        std::cerr << "FAIL: no requests shed at "
                  << saturated.targetQps
                  << " qps (2x capacity); admission control did not "
                     "engage\n";
        return 1;
    }
    const double p99Bound =
        static_cast<double>(opts.maxInFlight) * serviceMs * 8.0;
    if (saturated.p99Ms > p99Bound) {
        std::cerr << "FAIL: accepted p99 " << saturated.p99Ms
                  << " ms exceeds " << p99Bound
                  << " ms (maxInFlight x service x 8) at saturation; "
                     "shedding is not bounding the tail\n";
        return 1;
    }
    return 0;
}
